//! Serving-plane integration tests: cross-client batch coalescing
//! must be invisible in results — bit-identical to sequential serving
//! at every batch size, with or without injected faults.

use rand::Rng;
use tiptoe_core::config::TiptoeConfig;
use tiptoe_core::instance::TiptoeInstance;
use tiptoe_corpus::synth::{generate, Corpus, CorpusConfig};
use tiptoe_embed::text::TextEmbedder;
use tiptoe_math::rng::seeded_rng;
use tiptoe_net::{FaultPlan, FaultPolicy};
use tiptoe_underhood::ClientKey;

const SEED: u64 = 83;
const DOCS: usize = 200;
const SHARDS: usize = 4;

fn build(policy: Option<FaultPolicy>) -> (Corpus, TiptoeInstance<TextEmbedder>) {
    let corpus = generate(&CorpusConfig::small(DOCS, SEED), 24);
    let mut config = TiptoeConfig::test_small(DOCS, SEED);
    config.num_shards = SHARDS;
    if let Some(p) = policy {
        config.fault_policy = p;
    }
    config.validate();
    let embedder = TextEmbedder::new(config.d_embed, SEED, 0);
    let instance = TiptoeInstance::build(&config, embedder, &corpus);
    (corpus, instance)
}

/// Concurrent ciphertext-level answers through the plane equal the
/// sequential service answers exactly, at batch sizes around, at, and
/// beyond the coalescer's `max_batch`.
#[test]
fn coalesced_answers_are_bit_identical_at_every_batch_size() {
    let (_, instance) = build(None);
    let service = &instance.ranking;
    let mut rng = seeded_rng(5);
    let uh = service.underhood();
    let key = ClientKey::generate(uh, instance.config.rank_lwe.n, &mut rng);
    for batch in [1usize, 3, 19] {
        let cts: Vec<_> = (0..batch)
            .map(|_| {
                let v: Vec<u64> = (0..service.upload_dim())
                    .map(|_| rng.gen_range(0..instance.config.rank_lwe.p))
                    .collect();
                uh.encrypt_query::<u64, _>(&key, &service.public_matrix(), &v, &mut rng)
            })
            .collect();
        let plane = instance.serving_plane();
        let coalesced: Vec<Vec<u64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = cts
                .iter()
                .map(|ct| {
                    let plane = &plane;
                    scope.spawn(move || service.answer_via(ct, Some(plane)).0)
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client thread")).collect()
        });
        for (ct, got) in cts.iter().zip(&coalesced) {
            let (sequential, _) = service.answer(ct);
            assert_eq!(&sequential, got, "batch size {batch} must be bit-identical");
        }
    }
}

/// Full end-to-end searches through the plane return the same hits,
/// clusters, and wire footprint as direct searches with the same
/// client seed.
#[test]
fn served_searches_match_direct_searches_end_to_end() {
    let (corpus, instance) = build(None);
    let plane = instance.serving_plane();
    // Same seed ⇒ same keys, tokens, and query randomness; the only
    // difference is the serving mode.
    let mut direct = instance.new_client(11);
    let mut served = instance.new_client(11);
    for q in corpus.queries.iter().take(3) {
        let a = direct.search(&instance, &q.text, 10);
        let b = served.search_served(&instance, &q.text, 10, &plane);
        assert_eq!(a.cluster, b.cluster, "cluster drifted: {}", q.text);
        assert_eq!(a.hits, b.hits, "hits drifted: {}", q.text);
        assert_eq!(a.cost.rank_up, b.cost.rank_up);
        assert_eq!(a.cost.rank_down, b.cost.rank_down);
        assert_eq!(a.cost.url_up, b.cost.url_up);
        assert_eq!(a.cost.url_down, b.cost.url_down);
    }
}

/// Nineteen concurrent clients through the plane (well past
/// `max_batch`, so flushes mix requests from different clients) each
/// get exactly the result they would have gotten alone.
#[test]
fn concurrent_served_searches_stay_bit_identical() {
    let (corpus, instance) = build(None);
    let clients = 19usize;
    let expect: Vec<_> = (0..clients)
        .map(|i| {
            let mut c = instance.new_client(100 + i as u64);
            let q = &corpus.queries[i % corpus.queries.len()];
            let r = c.search(&instance, &q.text, 10);
            (r.cluster, r.hits)
        })
        .collect();
    let plane = instance.serving_plane();
    let got: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|i| {
                let (plane, corpus, instance) = (&plane, &corpus, &instance);
                scope.spawn(move || {
                    let mut c = instance.new_client(100 + i as u64);
                    let q = &corpus.queries[i % corpus.queries.len()];
                    let r = c.search_served(instance, &q.text, 10, plane);
                    (r.cluster, r.hits)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    assert_eq!(expect, got, "coalesced fleet must match sequential clients");
}

/// A lone client pays no coalescing latency: with nobody to batch
/// with, every lane it crosses flushes solo instead of waiting for
/// the flush deadline, so a served search stays within a small factor
/// of a direct one even under a deliberately deployment-scale
/// deadline. (The old thread-cooperative scheduler made a lone query
/// wait out `max_wait` once per lane — with this config's 200 ms
/// deadline across the token, shard, and URL lanes, well over a
/// second of pure idle waiting per query.)
#[test]
fn solo_served_searches_do_not_wait_out_the_flush_deadline() {
    let corpus = generate(&CorpusConfig::small(DOCS, SEED), 24);
    let mut config = TiptoeConfig::test_small(DOCS, SEED);
    config.num_shards = SHARDS;
    config.coalesce.max_wait = std::time::Duration::from_millis(200);
    config.validate();
    let embedder = TextEmbedder::new(config.d_embed, SEED, 0);
    let instance = TiptoeInstance::build(&config, embedder, &corpus);

    let solo_before =
        tiptoe_obs::metrics().counter_with("net.coalesce.flushes", Some("solo".into())).get();
    let mut direct = instance.new_client(41);
    let mut served = instance.new_client(41);
    let q = &corpus.queries[0];
    let t0 = std::time::Instant::now();
    let a = direct.search(&instance, &q.text, 10);
    let direct_elapsed = t0.elapsed();
    let plane = instance.serving_plane();
    let t0 = std::time::Instant::now();
    let b = served.search_served(&instance, &q.text, 10, &plane);
    let served_elapsed = t0.elapsed();
    assert_eq!(a.hits, b.hits, "solo served search must stay bit-identical");

    // The mechanism: the lone query's lane crossings flushed solo
    // (the counter is process-global, so only monotonicity is
    // asserted — other tests may flush concurrently).
    assert!(
        tiptoe_obs::metrics().counter_with("net.coalesce.flushes", Some("solo".into())).get()
            > solo_before,
        "a lone served search must take the solo fast path"
    );
    // The latency pin, with slack for debug builds and CI noise: the
    // old scheduler's per-lane idle waits would add over a second
    // here; a small multiple of direct latency is the budget.
    assert!(
        served_elapsed < direct_elapsed * 3 + std::time::Duration::from_millis(100),
        "solo served search took {served_elapsed:?} vs direct {direct_elapsed:?}"
    );
}

/// Coalescing composes with fault injection: under a seeded plan with
/// a crashed shard, served searches degrade exactly like unserved
/// ones — same hits, same missing clusters, same failed shards.
#[test]
fn served_faulty_searches_match_unserved_faulty_searches() {
    let (corpus, instance) = build(Some(FaultPolicy::tolerant()));
    let crashed = 2usize;
    let plan = FaultPlan::none().crash_shard(crashed);
    let plane = instance.serving_plane();
    let mut unserved = instance.new_client(21);
    let mut served = instance.new_client(21);
    for q in corpus.queries.iter().take(2) {
        let a = unserved.search_with_faults(&instance, &q.text, 10, &plan);
        let b = served.search_served_with_faults(&instance, &q.text, 10, &plan, &plane);
        assert_eq!(a.cluster, b.cluster);
        assert_eq!(a.hits, b.hits, "degraded hits drifted: {}", q.text);
        let da = a.degraded.expect("fault-tolerant searches report state");
        let db = b.degraded.expect("fault-tolerant searches report state");
        assert_eq!(da.missing_clusters, db.missing_clusters);
        assert_eq!(da.searched_cluster_missing, db.searched_cluster_missing);
        let (lo, hi) = instance.ranking.shard_clusters(crashed);
        assert_eq!(db.missing_clusters, (lo..hi).collect::<Vec<_>>());
        assert_eq!(da.rank_report.failed_shards(), vec![crashed]);
        assert_eq!(db.rank_report.failed_shards(), vec![crashed]);
    }
}

/// Benign-plan parity on the served fault-tolerant path: with nothing
/// failing, coalesced degraded-mode searches equal plain searches.
#[test]
fn served_benign_plan_is_bit_identical_to_plain_search() {
    let (corpus, plain) = build(None);
    let (_, tolerant) = build(Some(FaultPolicy::tolerant()));
    let plane = tolerant.serving_plane();
    let mut a = plain.new_client(31);
    let mut b = tolerant.new_client(31);
    let q = &corpus.queries[0];
    let ra = a.search(&plain, &q.text, 10);
    let rb = b.search_served_with_faults(&tolerant, &q.text, 10, &FaultPlan::none(), &plane);
    assert_eq!(ra.cluster, rb.cluster);
    assert_eq!(ra.hits, rb.hits);
    let db = rb.degraded.expect("reports even when healthy");
    assert!(db.missing_clusters.is_empty());
    assert!(db.rank_report.all_ok());
}
