//! Wire-format integration tests: every protocol message produced by a
//! live deployment round-trips through its byte encoding, the encoded
//! size equals the `byte_len()` used by the communication accounting,
//! and corrupted/truncated inputs are rejected without panicking.

use rand::Rng;
use tiptoe_dpf::DpfKey;
use tiptoe_lwe::{scheme, LweCiphertext, LweParams, MatrixA};
use tiptoe_math::matrix::Mat;
use tiptoe_math::rng::seeded_rng;
use tiptoe_rlwe::RlweParams;
use tiptoe_underhood::{ClientKey, EncryptedSecret, QueryToken, Underhood};

fn test_underhood() -> Underhood {
    let lwe = LweParams::insecure_test(64, 1 << 17, 81920.0);
    let rlwe = RlweParams { degree: 64, q_bits: 58, t: 1 << 24, sigma: 3.2 };
    Underhood::with_outer(lwe, rlwe, 44)
}

#[test]
fn live_protocol_messages_roundtrip() {
    let uh = test_underhood();
    let mut rng = seeded_rng(1);
    let cols = 32;
    let db = Mat::from_fn(8, cols, |_, _| rng.gen_range(0..16u32));
    let a = MatrixA::new(9, cols, uh.lwe().n);
    let key = ClientKey::generate(&uh, uh.lwe().n, &mut rng);

    // 1. The encrypted secret (token-phase upload).
    let es = EncryptedSecret::encrypt(&uh, &key, &mut rng);
    let es_bytes = es.encode();
    assert_eq!(es_bytes.len() as u64, es.byte_len(), "EncryptedSecret accounting");
    let es_back = EncryptedSecret::decode(&es_bytes).expect("decodes");
    assert_eq!(es_back.len(), es.len());

    // 2. The query token (token-phase download) — and the decoded copy
    //    must be *usable*: the full protocol must round-trip through
    //    serialized messages.
    let hint = scheme::preproc::<u64>(&db, &a.row_range(0, cols));
    let sh = uh.preprocess_hint(&hint);
    let token = uh.generate_token(&sh, &es_back);
    let token_bytes = token.encode();
    assert_eq!(token_bytes.len() as u64, token.byte_len(), "QueryToken accounting");
    let token_back = QueryToken::decode(&token_bytes).expect("decodes");
    assert_eq!(token_back.rows(), token.rows());

    // 3. The online query ciphertext.
    let mut v = vec![0u64; cols];
    v[5] = 1;
    let ct = uh.encrypt_query::<u64, _>(&key, &a, &v, &mut rng);
    let ct_bytes = ct.encode();
    assert_eq!(ct_bytes.len() as u64, ct.byte_len(), "LweCiphertext accounting");
    let ct_back = LweCiphertext::<u64>::decode(&ct_bytes).expect("decodes");

    // 4. End-to-end through the serialized artifacts.
    let mut decoded = uh.decode_token::<u64>(&key, &token_back);
    let applied = scheme::apply(&db, &ct_back);
    let got = uh.decrypt(&mut decoded, &applied);
    let want: Vec<u64> = (0..8).map(|r| db.get(r, 5) as u64).collect();
    assert_eq!(got, want, "protocol must survive serialization");
}

#[test]
fn corrupted_messages_are_rejected_not_panicked() {
    let uh = test_underhood();
    let mut rng = seeded_rng(2);
    let key = ClientKey::generate(&uh, uh.lwe().n, &mut rng);
    let es = EncryptedSecret::encrypt(&uh, &key, &mut rng);
    let bytes = es.encode();

    // Truncations at every interesting boundary.
    for cut in [0usize, 3, 4, 12, bytes.len() / 2, bytes.len() - 1] {
        assert!(EncryptedSecret::decode(&bytes[..cut]).is_err(), "cut at {cut}");
    }
    // Trailing garbage.
    let mut extended = bytes.clone();
    extended.push(0xff);
    assert!(EncryptedSecret::decode(&extended).is_err());
    // A hostile count prefix must not cause a giant allocation.
    let mut hostile = bytes.clone();
    hostile[..4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(EncryptedSecret::decode(&hostile).is_err());
}

#[test]
fn dpf_keys_roundtrip_and_reject_bitflips() {
    let mut rng = seeded_rng(3);
    let beta = vec![5u32; 16];
    let (k0, _k1) = tiptoe_dpf::generate(8, 200, &beta, &mut rng);
    let bytes = k0.encode();
    assert_eq!(bytes.len() as u64, k0.byte_len());
    let back = DpfKey::decode(&bytes).expect("decodes");
    for x in [0usize, 100, 200, 255] {
        assert_eq!(tiptoe_dpf::eval(&back, x), tiptoe_dpf::eval(&k0, x));
    }
    // Structural fields are validated.
    let mut bad_party = bytes.clone();
    bad_party[0] = 7;
    assert!(DpfKey::decode(&bad_party).is_err());
    let mut bad_height = bytes.clone();
    bad_height[1] = 99;
    assert!(DpfKey::decode(&bad_height).is_err());
}

#[test]
fn u32_ciphertexts_roundtrip_too() {
    let params = LweParams::insecure_test(32, 991, 6.4);
    let mut rng = seeded_rng(4);
    let a = MatrixA::new(5, 24, params.n);
    let sk = tiptoe_lwe::LweSecretKey::<u32>::generate(&params, &mut rng);
    let mut v = vec![0u64; 24];
    v[3] = 1;
    let ct = scheme::encrypt(&params, &sk, &a, &v, &mut rng);
    let bytes = ct.encode();
    assert_eq!(bytes.len() as u64, ct.byte_len());
    let back = LweCiphertext::<u32>::decode(&bytes).expect("decodes");
    assert_eq!(back, ct);
    // Cross-width decode fails cleanly.
    assert!(LweCiphertext::<u64>::decode(&bytes).is_err());
}
