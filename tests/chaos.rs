//! Chaos and property-fuzz suite for the overload-safe serving plane.
//!
//! Every test here injects a failure the plane must *contain*:
//! coalescer lanes crash mid-flush under concurrent submitters, pool
//! workers are poisoned by seeded request streams, whole availability
//! zones of shards crash together, and more clients arrive than the
//! admission capacity can hold. The invariants are always the same —
//! no query is lost, none is duplicated, none is answered
//! incorrectly, and every failure surfaces as a typed error rather
//! than a panic.
//!
//! `TIPTOE_CHAOS_SEED` reseeds the fuzzed schedules (CI sweeps it);
//! unset, the suite runs at the default seed.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Barrier;
use std::time::Duration;

use tiptoe_core::client::TiptoeClient;
use tiptoe_core::config::TiptoeConfig;
use tiptoe_core::instance::TiptoeInstance;
use tiptoe_corpus::synth::{generate, CorpusConfig};
use tiptoe_embed::text::TextEmbedder;
use tiptoe_net::{
    CoalescePolicy, Coalescer, FaultPlan, ServeError, WorkerPool, MAX_LANE_RETRIES,
};

const DOCS: usize = 220;
const SEED: u64 = 51;

/// The fuzz seed: `TIPTOE_CHAOS_SEED` if set (CI sweeps a small
/// matrix of them), else the workspace default.
fn chaos_seed() -> u64 {
    std::env::var("TIPTOE_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(SEED)
}

/// SplitMix64: one multiply-xor chain per draw, so fuzzed schedules
/// are reproducible from (seed, index) without shared RNG state.
fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn build(fault_tolerant: bool, num_shards: usize) -> TiptoeInstance<TextEmbedder> {
    let corpus = generate(&CorpusConfig::small(DOCS, SEED), 20);
    let mut config = TiptoeConfig::test_small(DOCS, SEED);
    config.num_shards = num_shards;
    if fault_tolerant {
        config.fault_policy = tiptoe_net::FaultPolicy::tolerant();
    }
    config.validate();
    let embedder = TextEmbedder::new(config.d_embed, SEED, 0);
    TiptoeInstance::build(&config, embedder, &corpus)
}

fn client(instance: &TiptoeInstance<TextEmbedder>) -> TiptoeClient {
    instance.new_client(7)
}

const QUERIES: [&str; 4] = [
    "museum history archive",
    "health doctor symptoms",
    "travel island beach",
    "recipe kitchen cooking",
];

/// Which ranking shard owns `cluster`.
fn owner_of<E: tiptoe_embed::Embedder>(instance: &TiptoeInstance<E>, cluster: usize) -> usize {
    (0..instance.ranking.num_shards())
        .find(|&w| {
            let (lo, hi) = instance.ranking.shard_clusters(w);
            (lo..hi).contains(&cluster)
        })
        .expect("every cluster has a shard")
}

#[test]
fn lane_crash_mid_flush_loses_no_request() {
    // The first two flushes panic inside the batched kernel while 16
    // submitters race. Crashed batches are failed and re-enqueued by
    // their own submitters, so with MAX_LANE_RETRIES > 2 every request
    // must still come back — exactly once, with its own answer.
    let crashes_left = AtomicU64::new(2);
    let policy = CoalescePolicy {
        max_batch: 4,
        max_wait: Duration::from_millis(5),
        queue_depth: 64,
        adaptive: false,
    };
    let c = Coalescer::new(policy, |reqs: Vec<u64>| {
        let crash = crashes_left
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| Some(v.saturating_sub(1)))
            .expect("update");
        if crash > 0 {
            panic!("injected mid-flush lane crash");
        }
        reqs.into_iter().map(|r| r.wrapping_mul(3).wrapping_add(1)).collect()
    });
    let crash_counter_before = tiptoe_obs::metrics().counter("net.coalesce.lane_crashes").get();
    let delivered = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for i in 0..16u64 {
            let c = &c;
            let delivered = &delivered;
            scope.spawn(move || {
                let resp = c
                    .submit_within(i, Duration::from_secs(60))
                    .expect("two lane crashes are within the retry budget");
                assert_eq!(
                    resp,
                    i.wrapping_mul(3).wrapping_add(1),
                    "response must belong to this request, not a co-batched one"
                );
                delivered.fetch_add(1, Ordering::SeqCst);
            });
        }
    });
    assert_eq!(delivered.load(Ordering::SeqCst), 16, "no request lost across lane crashes");
    assert_eq!(crashes_left.load(Ordering::SeqCst), 0, "both injected crashes fired");
    assert!(
        tiptoe_obs::metrics().counter("net.coalesce.lane_crashes").get()
            >= crash_counter_before + 2
    );
}

#[test]
fn fuzzed_lane_crashes_answer_correctly_or_fail_typed() {
    // Seeded fuzz: every 4th-ish flush (by SplitMix64 over the flush
    // index) crashes. A submitter either gets its own correct answer
    // or — after MAX_LANE_RETRIES + 1 consecutive crashed flushes — a
    // typed LaneFailed. Nothing panics, nothing is miscounted.
    let seed = chaos_seed();
    let flush_idx = AtomicU64::new(0);
    let policy = CoalescePolicy {
        max_batch: 4,
        max_wait: Duration::from_millis(2),
        queue_depth: 64,
        adaptive: false,
    };
    let c = Coalescer::new(policy, |reqs: Vec<u64>| {
        let i = flush_idx.fetch_add(1, Ordering::SeqCst);
        if splitmix(seed ^ i).is_multiple_of(4) {
            panic!("fuzzed lane crash at flush {i}");
        }
        reqs.into_iter().map(|r| r ^ 0xABCD).collect()
    });
    let ok = AtomicUsize::new(0);
    let lane_failed = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for i in 0..24u64 {
            let (c, ok, lane_failed) = (&c, &ok, &lane_failed);
            scope.spawn(move || match c.submit_within(i, Duration::from_secs(60)) {
                Ok(resp) => {
                    assert_eq!(resp, i ^ 0xABCD, "answers never cross requests");
                    ok.fetch_add(1, Ordering::SeqCst);
                }
                Err(ServeError::LaneFailed { crashes }) => {
                    assert_eq!(crashes, MAX_LANE_RETRIES + 1, "gave up exactly at the bound");
                    lane_failed.fetch_add(1, Ordering::SeqCst);
                }
                Err(e) => panic!("unexpected error kind under lane fuzz: {e:?}"),
            });
        }
    });
    let (ok, failed) = (ok.load(Ordering::SeqCst), lane_failed.load(Ordering::SeqCst));
    assert_eq!(ok + failed, 24, "every request accounted for: answered or typed-failed");
    assert!(ok > 0, "a 1-in-4 crash rate must let most requests through");
}

#[test]
fn reactor_crash_mid_flush_loses_no_request_and_duplicates_none() {
    // Kill the coalescer's timer thread at its worst moment — after it
    // pops due deadlines but before it fires them — while 12
    // submitters race in small waves (so some batches are partial and
    // depend on the timer). Every request must come back exactly once
    // with its own answer: parked waiters' fallback timeouts drain any
    // batch the dead timer abandoned, and the generation protocol
    // ensures a request drained by one path can't be re-flushed by
    // another.
    let served = AtomicUsize::new(0);
    let policy = CoalescePolicy {
        max_batch: 4,
        max_wait: Duration::from_millis(2),
        queue_depth: 64,
        adaptive: false,
    };
    let c = Coalescer::new(policy, |reqs: Vec<u64>| {
        served.fetch_add(reqs.len(), Ordering::SeqCst);
        reqs.into_iter().map(|r| r.wrapping_mul(7).wrapping_add(3)).collect()
    });
    let reactor_crashes_before =
        tiptoe_obs::metrics().counter("net.coalesce.reactor_crashes").get();
    tiptoe_net::chaos_inject_reactor_panic();
    let delivered = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for i in 0..12u64 {
            let (c, delivered) = (&c, &delivered);
            scope.spawn(move || {
                // Staggered arrivals: three waves of four, so the
                // injected crash lands while partial batches are
                // waiting on the (dead) timer.
                std::thread::sleep(Duration::from_micros(300 * (i / 4)));
                let resp = c
                    .submit_within(i, Duration::from_secs(60))
                    .expect("a reactor crash must not fail requests");
                assert_eq!(resp, i.wrapping_mul(7).wrapping_add(3), "answer belongs to request");
                delivered.fetch_add(1, Ordering::SeqCst);
            });
        }
    });
    assert_eq!(delivered.load(Ordering::SeqCst), 12, "no request lost to the timer crash");
    assert_eq!(served.load(Ordering::SeqCst), 12, "no request duplicated into a second flush");
    // The injected panic actually fired and was contained (the
    // reactor thread restarts its loop rather than dying silently).
    assert!(
        tiptoe_obs::metrics().counter("net.coalesce.reactor_crashes").get()
            > reactor_crashes_before,
        "chaos injection must have crashed the reactor"
    );
    // The plane still coalesces afterwards: a fresh submit succeeds.
    assert_eq!(c.submit_within(100, Duration::from_secs(60)).expect("post-crash"), 703);
}

#[test]
fn fuzzed_poisoned_pool_workers_degrade_without_loss() {
    // A seeded stream of poison requests across 32 fan-out rounds:
    // exactly the poisoned slots degrade to None, every other slot
    // answers correctly, and the worker threads survive to the end.
    const POISON: u64 = u64::MAX;
    let seed = chaos_seed();
    let pool: WorkerPool<u64, u64> = WorkerPool::spawn(4, |idx, x: u64| {
        assert_ne!(x, POISON, "injected poison request for worker {idx}");
        x.wrapping_mul(2) + idx as u64
    });
    let mut poisoned_rounds = 0usize;
    for round in 0..32u64 {
        let reqs: Vec<u64> = (0..4)
            .map(|w| {
                if splitmix(seed ^ (round * 4 + w)).is_multiple_of(5) { POISON } else { round * 4 + w }
            })
            .collect();
        let out = pool.try_scatter_gather(reqs.clone());
        assert_eq!(out.len(), 4, "one slot per worker, every round");
        for (w, (req, resp)) in reqs.iter().zip(&out).enumerate() {
            if *req == POISON {
                assert_eq!(*resp, None, "poisoned slot must degrade, not fabricate");
                poisoned_rounds += 1;
            } else {
                assert_eq!(*resp, Some(req.wrapping_mul(2) + w as u64));
            }
        }
    }
    assert!(poisoned_rounds > 0, "the seeded schedule must actually poison something");
    // All four threads are still alive and correct after the chaos.
    assert_eq!(pool.try_scatter_gather(vec![1, 2, 3, 4]), vec![
        Some(2),
        Some(5),
        Some(8),
        Some(11)
    ]);
    pool.shutdown();
}

#[test]
fn az_correlated_crash_degrades_exactly_the_zone() {
    // One availability zone (two of four shards) crashes as a unit.
    // Queries whose searched cluster lives on a surviving shard must
    // return bit-identical hits to fault-free serving; queries whose
    // cluster lived in the dead zone must say so and score zeros —
    // never garbage, never a panic.
    let plain = build(false, 4);
    let tolerant = build(true, 4);
    let query = QUERIES[0];
    let reference = client(&plain).search(&plain, query, 10);
    let owner = owner_of(&tolerant, reference.cluster);
    let w = tolerant.ranking.num_shards();

    // Zone A: the two shards after the owner — the searched cluster
    // survives the outage.
    let mut zone = [(owner + 1) % w, (owner + 2) % w];
    zone.sort_unstable();
    let plan = FaultPlan::none().correlated_crash(&zone);
    assert_eq!(plan.correlated_groups(), &[zone.to_vec()]);
    let mut dead_clusters: Vec<usize> = zone
        .iter()
        .flat_map(|&s| {
            let (lo, hi) = tolerant.ranking.shard_clusters(s);
            lo..hi
        })
        .collect();
    dead_clusters.sort_unstable();

    let results = client(&tolerant).search_with_faults(&tolerant, query, 10, &plan);
    let dq = results.degraded.expect("degraded state");
    assert_eq!(dq.rank_report.failed_shards(), zone.to_vec(), "exactly the zone fails");
    assert_eq!(dq.missing_clusters, dead_clusters, "missing set is the zone's cluster union");
    assert!(!dq.searched_cluster_missing);
    assert_eq!(results.cluster, reference.cluster);
    assert_eq!(results.hits, reference.hits, "survivor-zone query stays bit-identical");

    // Zone B contains the owner: the client must report the searched
    // cluster missing and surface only zero scores.
    let mut owner_zone = [owner, (owner + 1) % w];
    owner_zone.sort_unstable();
    let plan = FaultPlan::none().correlated_crash(&owner_zone);
    let results = client(&tolerant).search_with_faults(&tolerant, query, 10, &plan);
    let dq = results.degraded.expect("degraded state");
    assert!(dq.searched_cluster_missing);
    assert!(dq.missing_clusters.contains(&results.cluster));
    for hit in &results.hits {
        assert_eq!(hit.score, 0.0, "a dead zone must not fabricate scores");
    }
}

#[test]
fn overload_sheds_with_typed_errors_and_conserves_every_query() {
    // Admission control at an operator-pinned capacity of 2. Phase 1
    // is deterministic: saturate the plane by hand, observe a typed
    // shed that consumes no client token, release, observe admission.
    // Phase 2 is chaotic: 8 clients arrive together against capacity
    // 2; whatever interleaving the scheduler picks, admitted + shed
    // must equal 8, every admitted answer must be bit-identical to
    // unloaded serving, and the controller's ledger must agree.
    let corpus = generate(&CorpusConfig::small(DOCS, SEED), 20);
    let mut config = TiptoeConfig::test_small(DOCS, SEED);
    config.num_shards = 3;
    config.admission.enabled = true;
    config.admission.max_inflight = 2; // operator override: skip derivation
    config.admission.queue_depth = 0;
    config.admission.deadline = Duration::from_secs(60); // debug-build headroom
    config.validate();
    let embedder = TextEmbedder::new(config.d_embed, SEED, 0);
    let instance = TiptoeInstance::build(&config, embedder, &corpus);

    let references: Vec<Vec<_>> =
        QUERIES.iter().map(|q| client(&instance).search(&instance, q, 10).hits).collect();

    let plane = instance.serving_plane();
    let ctrl = plane.admission().expect("admission enabled");
    assert_eq!(ctrl.capacity(), 2, "operator override pins the capacity");

    // Phase 1: deterministic shed.
    let permits: Vec<_> = (0..2).map(|_| ctrl.try_admit().expect("capacity free")).collect();
    let mut c = client(&instance);
    let tokens_before = c.tokens_available();
    let sheds_before = instance.transcript.sheds();
    let err = c
        .try_search_served(&instance, QUERIES[0], 10, &plane)
        .expect_err("a saturated plane must shed");
    assert_eq!(err, ServeError::Overloaded { inflight: 2, capacity: 2 });
    assert_eq!(c.tokens_available(), tokens_before, "a shed query consumes no token");
    assert_eq!(instance.transcript.sheds(), sheds_before + 1, "the shed reaches the transcript");
    drop(permits);
    let ok = c.try_search_served(&instance, QUERIES[0], 10, &plane).expect("freed capacity");
    assert_eq!(ok.hits, references[0], "post-shed admission serves normally");

    // Phase 2: 2x overload chaos.
    let barrier = Barrier::new(8);
    let ok_count = AtomicUsize::new(0);
    let shed_count = AtomicUsize::new(0);
    let admitted_before = ctrl.admitted();
    let ctrl_sheds_before = ctrl.sheds();
    let transcript_sheds_before = instance.transcript.sheds();
    std::thread::scope(|scope| {
        for i in 0..8usize {
            let (instance, plane, barrier) = (&instance, &plane, &barrier);
            let (references, ok_count, shed_count) = (&references, &ok_count, &shed_count);
            scope.spawn(move || {
                let mut c = instance.new_client(100 + i as u64);
                barrier.wait();
                match c.try_search_served(instance, QUERIES[i % 4], 10, plane) {
                    Ok(r) => {
                        assert_eq!(
                            r.hits,
                            references[i % 4],
                            "admitted queries stay bit-identical under overload"
                        );
                        ok_count.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(ServeError::Overloaded { inflight, capacity }) => {
                        assert_eq!(capacity, 2);
                        assert!(inflight >= capacity);
                        shed_count.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(e) => panic!("unexpected error kind under overload: {e:?}"),
                }
            });
        }
    });
    let (ok, shed) = (ok_count.load(Ordering::SeqCst), shed_count.load(Ordering::SeqCst));
    assert_eq!(ok + shed, 8, "every arrival accounted for: answered or shed, none lost");
    assert!(ok >= 1, "the first arrivals must be admitted");
    assert_eq!(ctrl.admitted() - admitted_before, ok as u64, "controller agrees on admissions");
    assert_eq!(ctrl.sheds() - ctrl_sheds_before, shed as u64, "controller agrees on sheds");
    assert_eq!(
        instance.transcript.sheds() - transcript_sheds_before,
        shed as u64,
        "transcript agrees on sheds"
    );
    assert_eq!(ctrl.inflight(), 0, "every permit released");
    assert_eq!(ctrl.shed_log().len() as u64, ctrl.sheds(), "shed log covers every shed");
}
