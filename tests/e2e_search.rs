//! End-to-end integration tests: the full private pipeline against a
//! plaintext reference implementation, plus corpus-update behavior.

use tiptoe_core::config::TiptoeConfig;
use tiptoe_core::instance::TiptoeInstance;
use tiptoe_corpus::synth::{generate, Corpus, CorpusConfig};
use tiptoe_embed::text::TextEmbedder;
use tiptoe_embed::vector::normalize;
use tiptoe_embed::Embedder;

fn build(num_docs: usize, seed: u64) -> (Corpus, TiptoeInstance<TextEmbedder>) {
    let corpus = generate(&CorpusConfig::small(num_docs, seed), 20);
    let config = TiptoeConfig::test_small(num_docs, seed);
    let embedder = TextEmbedder::new(config.d_embed, seed, 0);
    let instance = TiptoeInstance::build(&config, embedder, &corpus);
    (corpus, instance)
}

/// Plaintext reference of the *entire* client pipeline: embed, PCA,
/// cluster select, quantized scores over the chosen cluster, batch
/// fetch, top-k of that batch.
fn reference_search(
    instance: &TiptoeInstance<TextEmbedder>,
    query: &str,
    k: usize,
) -> (usize, Vec<(u32, i64)>) {
    let config = &instance.config;
    let quant = config.quantizer();
    let raw = instance.embedder.embed_text(query);
    let mut q = instance.artifacts.pca.project(&raw);
    normalize(&mut q);
    // Select from the *published* centroid cache (int8-compressed, as
    // the client downloads it), not the exact training centroids: the
    // quantization can flip near-ties, and the reference must model
    // the knowledge the client actually has.
    let cluster = {
        let mut best = 0usize;
        let mut best_score = f32::NEG_INFINITY;
        for (i, c) in instance.artifacts.meta.centroids.iter().enumerate() {
            let s = tiptoe_embed::vector::dot(c, &q);
            if s > best_score {
                best_score = s;
                best = i;
            }
        }
        best
    };
    let q_zp = quant.to_zp(&q);

    let members = &instance.artifacts.clustering.members[cluster];
    let scores: Vec<i64> = members
        .iter()
        .map(|&doc| {
            let d_zp = quant.to_zp(&instance.artifacts.reduced_embeddings[doc as usize]);
            quant.quantized_dot(&d_zp, &q_zp)
        })
        .collect();
    let best_row = scores
        .iter()
        .enumerate()
        .max_by_key(|(_, &s)| s)
        .map(|(i, _)| i)
        .unwrap_or(0);
    let upb = instance.artifacts.meta.urls_per_batch as usize;
    let first = (best_row / upb) * upb;
    let last = (first + upb).min(members.len());
    let mut batch_hits: Vec<(u32, i64)> =
        (first..last).map(|row| (members[row], scores[row])).collect();
    batch_hits.sort_by_key(|&(_, s)| std::cmp::Reverse(s));
    batch_hits.truncate(k);
    (cluster, batch_hits)
}

#[test]
fn private_pipeline_matches_plaintext_reference() {
    let (corpus, instance) = build(250, 51);
    let mut client = instance.new_client(1);
    for q in corpus.queries.iter().take(8) {
        let private = client.search(&instance, &q.text, 10);
        let (ref_cluster, ref_hits) = reference_search(&instance, &q.text, 10);
        assert_eq!(private.cluster, ref_cluster, "cluster selection must agree");
        assert_eq!(private.hits.len(), ref_hits.len(), "result count");
        let got_scores: Vec<i64> = private
            .hits
            .iter()
            .map(|h| (h.score * 64.0).round() as i64)
            .collect();
        let want_scores: Vec<i64> = ref_hits.iter().map(|(_, s)| *s).collect();
        assert_eq!(got_scores, want_scores, "score sequences must match exactly");
    }
}

#[test]
fn rankings_hold_across_multiple_clients() {
    let (corpus, instance) = build(150, 52);
    let mut alice = instance.new_client(10);
    let mut bob = instance.new_client(20);
    // Different keys, identical results for the same query.
    let q = &corpus.queries[0].text;
    let a = alice.search(&instance, q, 5);
    let b = bob.search(&instance, q, 5);
    assert_eq!(a.cluster, b.cluster);
    let a_docs: Vec<u32> = a.hits.iter().map(|h| h.doc).collect();
    let b_docs: Vec<u32> = b.hits.iter().map(|h| h.doc).collect();
    assert_eq!(a_docs, b_docs);
}

#[test]
fn corpus_update_republishes_compact_metadata() {
    let (_, instance) = build(120, 53);
    // §3.2: even if all centroids change, re-downloading the metadata
    // is cheap relative to the index itself.
    let update = instance.metadata_update_bytes();
    assert!(update > 0);
    assert!(
        update < instance.server_storage_bytes() / 20,
        "metadata update ({update} B) should be far smaller than the index"
    );

    // Rebuild with one more document: a fresh deployment answers
    // queries that include the new document.
    let mut corpus = generate(&CorpusConfig::small(120, 53), 5);
    let new_id = corpus.docs.len() as u32;
    let new_text = "zzqx unique freshly added document about quantum gardening";
    corpus.docs.push(tiptoe_corpus::synth::Document {
        id: new_id,
        url: "https://www.example.com/fresh/quantum-gardening".into(),
        text: new_text.into(),
        topic: 0,
    });
    let config = TiptoeConfig::test_small(corpus.docs.len(), 53);
    let embedder = TextEmbedder::new(config.d_embed, 53, 0);
    let updated = TiptoeInstance::build(&config, embedder, &corpus);
    let mut client = updated.new_client(2);
    let results = client.search(&updated, new_text, 10);
    assert!(
        results.hits.iter().any(|h| h.doc == new_id),
        "updated corpus must serve the new document"
    );
}

#[test]
fn image_modality_roundtrips_through_the_same_pipeline() {
    use tiptoe_embed::clip::ClipLikeEmbedder;
    let clip = ClipLikeEmbedder::new(96, 61, 0.25);
    let captions: Vec<String> =
        (0..80).map(|i| format!("scene number {i} with object {}", i % 7)).collect();
    let mut docs = Vec::new();
    let mut latents = Vec::new();
    for (i, c) in captions.iter().enumerate() {
        let img = clip.embed_image(i as u64, c);
        docs.push(tiptoe_corpus::synth::Document {
            id: i as u32,
            url: format!("https://img.example.org/{i}.jpg"),
            text: c.clone(),
            topic: 0,
        });
        latents.push(img.latent);
    }
    let corpus = Corpus { docs, queries: Vec::new() };
    let mut config = TiptoeConfig::test_small(80, 61);
    config.d_embed = 96;
    config.d_reduced = 48;
    let instance = TiptoeInstance::build_with_embeddings(&config, &clip, &corpus, latents);
    let mut client = instance.new_client(3);
    let results = client.search(&instance, &captions[12], 5);
    assert!(!results.hits.is_empty());
    // The captioned image should rank at or near the top when its
    // cluster is selected.
    if instance.artifacts.clustering.members[results.cluster].contains(&12) {
        assert!(results.hits.iter().take(3).any(|h| h.doc == 12), "hits {:?}", results.hits);
    }
}

#[test]
fn deployment_reports_storage_and_preprocessing() {
    let (_, instance) = build(100, 54);
    assert!(instance.server_storage_bytes() > 0);
    let report = &instance.artifacts.report;
    assert!(report.crypto.as_nanos() > 0, "crypto preprocessing must be measured");
    assert!(report.core_seconds_per_doc(100) > 0.0);
}
