//! Property tests proving the parallel, cache-blocked, and batched
//! server kernels are *bit-identical* to the scalar reference kernels
//! for both word widths (`q = 2^32` and `q = 2^64`).
//!
//! Wrapping mod-`2^k` addition is associative and commutative, so any
//! reordering of the accumulation (column tiles, row spans across
//! threads, shared database passes over a query batch) must reproduce
//! the scalar result exactly — not approximately. These properties are
//! what lets the deployment knobs (`Parallelism`, `TIPTOE_THREADS`)
//! change wall-clock time without ever changing results.

use proptest::prelude::*;
use rand::Rng;
use tiptoe_lwe::{scheme, LweCiphertext, MatrixA};
use tiptoe_math::matrix::{self, Mat};
use tiptoe_math::nibble::NibbleMat;
use tiptoe_math::rng::seeded_rng;
use tiptoe_math::zq::Word;

/// Deterministic random database + vector shapes from a seed. Sizes
/// straddle the `TILE_COLS` blocking boundary via the `wide` flag.
fn random_mat_u32(seed: u64, rows: usize, cols: usize) -> Mat<u32> {
    let mut rng = seeded_rng(seed);
    Mat::from_fn(rows, cols, |_, _| rng.gen())
}

fn random_vec<W: Word>(seed: u64, len: usize) -> Vec<W> {
    let mut rng = seeded_rng(seed);
    (0..len).map(|_| W::from_u64(rng.gen())).collect()
}

fn shape(rows_small: usize, cols_small: usize, wide: bool) -> (usize, usize) {
    if wide {
        // Straddle one TILE_COLS boundary so the tiled loop takes both
        // the full-tile and remainder paths.
        (rows_small, matrix::TILE_COLS + cols_small)
    } else {
        (rows_small, cols_small)
    }
}

fn check_matvec_family<W: Word>(seed: u64, rows: usize, cols: usize, threads: usize) {
    let db = random_mat_u32(seed, rows, cols);
    let v: Vec<W> = random_vec(seed ^ 0xABCD, cols);
    let scalar = matrix::matvec(&db, &v);
    assert_eq!(matrix::matvec_blocked(&db, &v), scalar, "blocked != scalar");
    assert_eq!(matrix::matvec_par(&db, &v, threads), scalar, "parallel != scalar");
    let vs: Vec<Vec<W>> = (0..3).map(|b| random_vec(seed ^ (b as u64) << 8, cols)).collect();
    let batched = matrix::matvec_batch(&db, &vs, threads);
    for (b, vb) in vs.iter().enumerate() {
        assert_eq!(batched[b], matrix::matvec(&db, vb), "batched != scalar at {b}");
    }
}

fn check_preproc_family<W: Word>(seed: u64, rows: usize, cols: usize, n: usize, threads: usize) {
    let db = random_mat_u32(seed, rows, cols);
    let a = MatrixA::new(seed ^ 0x5EED, cols, n);
    let range = a.row_range(0, cols);
    let scalar: Mat<W> = scheme::preproc(&db, &range);
    let par: Mat<W> = scheme::preproc_par(&db, &range, threads);
    assert_eq!(par.data(), scalar.data(), "parallel preproc != scalar");

    // Packed (signed 4-bit) storage: reduce entries into [-8, 8) mod p
    // first so the nibble matrix represents the same residues.
    let p = 1u64 << 17;
    let reduced = Mat::from_fn(rows, cols, |i, j| {
        let signed = (db.get(i, j) % 16) as i64 - 8;
        signed.rem_euclid(p as i64) as u32
    });
    let packed = NibbleMat::from_residues_mod_p(&reduced, p);
    let scalar_packed: Mat<W> = scheme::preproc_packed(&packed, &range);
    let par_packed: Mat<W> = scheme::preproc_packed_par(&packed, &range, threads);
    assert_eq!(par_packed.data(), scalar_packed.data(), "parallel packed preproc != scalar");

    // Batched packed apply against per-ciphertext packed apply.
    let cts: Vec<LweCiphertext<W>> =
        (0..3).map(|b| LweCiphertext { c: random_vec(seed ^ (0xB0 + b as u64), cols) }).collect();
    let batched = scheme::apply_packed_many(&packed, &cts, threads);
    for (b, ct) in cts.iter().enumerate() {
        assert_eq!(batched[b], scheme::apply_packed(&packed, ct), "packed batch at {b}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matvec_kernels_bit_identical_u64(
        seed in any::<u64>(),
        rows in 1usize..24,
        cols in 1usize..96,
        wide in any::<bool>(),
        threads in 0usize..6,
    ) {
        let (rows, cols) = shape(rows, cols, wide);
        check_matvec_family::<u64>(seed, rows, cols, threads);
    }

    #[test]
    fn matvec_kernels_bit_identical_u32(
        seed in any::<u64>(),
        rows in 1usize..24,
        cols in 1usize..96,
        wide in any::<bool>(),
        threads in 0usize..6,
    ) {
        let (rows, cols) = shape(rows, cols, wide);
        check_matvec_family::<u32>(seed, rows, cols, threads);
    }

    #[test]
    fn wide_kernels_bit_identical(
        seed in any::<u64>(),
        rows in 1usize..16,
        cols in 1usize..48,
        n in 1usize..24,
        threads in 0usize..6,
    ) {
        let h = random_mat_u32(seed, rows, cols);
        let h64: Mat<u64> = Mat::from_fn(rows, cols, |i, j| h.get(i, j) as u64);
        let s: Vec<u64> = random_vec(seed ^ 0x77, cols);
        prop_assert_eq!(
            matrix::matvec_wide_par(&h64, &s, threads),
            matrix::matvec_wide(&h64, &s)
        );

        let a: Mat<u64> = Mat::from_fn(cols, n, |i, j| {
            u64::from_u64((i as u64) << 32 ^ j as u64 ^ seed)
        });
        let scalar: Mat<u64> = matrix::matmul_hint(&h, &a);
        let par: Mat<u64> = matrix::matmul_hint_par(&h, &a, threads);
        prop_assert_eq!(par.data(), scalar.data());
    }
}

proptest! {
    // Preproc re-expands seeded `A` rows per thread; fewer, heavier
    // cases keep this test fast while still sweeping thread counts.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn preproc_kernels_bit_identical_u64(
        seed in any::<u64>(),
        rows in 1usize..20,
        cols in 1usize..40,
        n in 1usize..24,
        threads in 0usize..6,
    ) {
        check_preproc_family::<u64>(seed, rows, cols, n, threads);
    }

    #[test]
    fn preproc_kernels_bit_identical_u32(
        seed in any::<u64>(),
        rows in 1usize..20,
        cols in 1usize..40,
        n in 1usize..24,
        threads in 0usize..6,
    ) {
        check_preproc_family::<u32>(seed, rows, cols, n, threads);
    }
}
