//! Search-quality integration tests: the *ordering* relationships of
//! the paper's Figure 4 and Figure 9 must hold on the synthetic
//! benchmark (absolute MRR values differ — the embedding model is a
//! synthetic stand-in; see DESIGN.md §2).

use tiptoe_core::config::TiptoeConfig;
use tiptoe_core::instance::TiptoeInstance;
use tiptoe_corpus::synth::{generate, Corpus, CorpusConfig};
use tiptoe_embed::text::TextEmbedder;
use tiptoe_embed::Embedder;
use tiptoe_ir::exhaustive::ExhaustiveSearch;
use tiptoe_ir::metrics::QualityReport;
use tiptoe_ir::tfidf::TfIdf;
use tiptoe_ir::{Retriever, SearchHit};

const K: usize = 100;

fn corpus() -> Corpus {
    generate(&CorpusConfig::small(600, 81), 60)
}

fn evaluate<R: Retriever>(retriever: &R, corpus: &Corpus) -> QualityReport {
    let results: Vec<Vec<SearchHit>> =
        corpus.queries.iter().map(|q| retriever.search(&q.text, K)).collect();
    let relevant: Vec<u32> = corpus.queries.iter().map(|q| q.relevant).collect();
    QualityReport::evaluate(&results, &relevant, K)
}

fn evaluate_tiptoe(instance: &TiptoeInstance<TextEmbedder>, corpus: &Corpus) -> QualityReport {
    let mut client = instance.new_client(1);
    let results: Vec<Vec<SearchHit>> = corpus
        .queries
        .iter()
        .map(|q| {
            client
                .search(instance, &q.text, K)
                .hits
                .into_iter()
                .map(|h| SearchHit { doc: h.doc, score: h.score })
                .collect()
        })
        .collect();
    let relevant: Vec<u32> = corpus.queries.iter().map(|q| q.relevant).collect();
    QualityReport::evaluate(&results, &relevant, K)
}

#[test]
fn exhaustive_embeddings_upper_bound_tiptoe() {
    let corpus = corpus();
    let config = TiptoeConfig::test_small(corpus.docs.len(), 81);
    let embedder = TextEmbedder::new(config.d_embed, 81, 0);
    let instance = TiptoeInstance::build(&config, embedder.clone(), &corpus);

    // Exhaustive search over the same reduced embeddings the server
    // indexes (no clustering): Figure 4's "Embeddings" bar.
    let exhaustive =
        ExhaustiveSearch::from_embeddings(&embedder, instance.artifacts.reduced_embeddings.clone());
    let texts = corpus.texts();
    let _ = texts; // corpus borrowed below
    let mut client = instance.new_client(1);

    let mut exhaustive_results = Vec::new();
    let mut tiptoe_results = Vec::new();
    for q in &corpus.queries {
        // Exhaustive ranks with the same reduced query embedding.
        let raw = instance.embedder.embed_text(&q.text);
        let mut red = instance.artifacts.pca.project(&raw);
        tiptoe_embed::vector::normalize(&mut red);
        exhaustive_results.push(exhaustive.search_embedding(&red, K));
        tiptoe_results.push(
            client
                .search(&instance, &q.text, K)
                .hits
                .into_iter()
                .map(|h| SearchHit { doc: h.doc, score: h.score })
                .collect::<Vec<_>>(),
        );
    }
    let relevant: Vec<u32> = corpus.queries.iter().map(|q| q.relevant).collect();
    let full = QualityReport::evaluate(&exhaustive_results, &relevant, K);
    let clustered = QualityReport::evaluate(&tiptoe_results, &relevant, K);
    assert!(
        full.mrr >= clustered.mrr - 1e-9,
        "clustering cannot beat exhaustive search: {} vs {}",
        full.mrr,
        clustered.mrr
    );
    assert!(full.mrr > 0.1, "exhaustive search should work on this corpus: {}", full.mrr);
}

#[test]
fn restricted_dictionary_hurts_tfidf() {
    // The Coeus dictionary restriction (§8.2): a small top-IDF
    // dictionary collapses tf-idf quality.
    let corpus = corpus();
    let texts = corpus.texts();
    let full = TfIdf::build(&texts);
    let restricted = TfIdf::build_restricted(&texts, 50);
    let full_report = evaluate(&full, &corpus);
    let restricted_report = evaluate(&restricted, &corpus);
    assert!(
        full_report.mrr > restricted_report.mrr + 0.05,
        "restricting the dictionary must hurt: {} vs {}",
        full_report.mrr,
        restricted_report.mrr
    );
}

#[test]
fn tiptoe_quality_bounded_by_cluster_hit_rate() {
    // Figure 4 (right): the dotted gray line — the fraction of queries
    // whose answer lies in the searched cluster — upper-bounds
    // Tiptoe's CDF at every rank.
    let corpus = corpus();
    let config = TiptoeConfig::test_small(corpus.docs.len(), 81);
    let embedder = TextEmbedder::new(config.d_embed, 81, 0);
    let instance = TiptoeInstance::build(&config, embedder, &corpus);
    let mut client = instance.new_client(2);

    let mut cluster_hits = 0usize;
    let mut results = Vec::new();
    for q in &corpus.queries {
        let r = client.search(&instance, &q.text, K);
        if instance.artifacts.clustering.members[r.cluster].contains(&q.relevant) {
            cluster_hits += 1;
        }
        results.push(
            r.hits
                .into_iter()
                .map(|h| SearchHit { doc: h.doc, score: h.score })
                .collect::<Vec<_>>(),
        );
    }
    let relevant: Vec<u32> = corpus.queries.iter().map(|q| q.relevant).collect();
    let report = QualityReport::evaluate(&results, &relevant, K);
    let bound = cluster_hits as f64 / corpus.queries.len() as f64;
    assert!(
        report.recall() <= bound + 1e-9,
        "recall {} cannot exceed the cluster-hit bound {}",
        report.recall(),
        bound
    );
    assert!(bound > 0.15, "cluster selection should work sometimes: {bound}");
}

#[test]
fn dual_assignment_does_not_hurt_quality() {
    // Figure 9 ➎: assigning boundary documents to two clusters
    // improves (or at least does not hurt) MRR, at ~1.2× index cost.
    let corpus = corpus();
    let mut with = TiptoeConfig::test_small(corpus.docs.len(), 81);
    with.cluster.dual_assign_frac = 0.2;
    let mut without = with.clone();
    without.cluster.dual_assign_frac = 0.0;

    let e1 = TextEmbedder::new(with.d_embed, 81, 0);
    let e2 = TextEmbedder::new(with.d_embed, 81, 0);
    let instance_with = TiptoeInstance::build(&with, e1, &corpus);
    let instance_without = TiptoeInstance::build(&without, e2, &corpus);

    let r_with = evaluate_tiptoe(&instance_with, &corpus);
    let r_without = evaluate_tiptoe(&instance_without, &corpus);
    assert!(
        r_with.mrr >= r_without.mrr - 0.02,
        "dual assignment should not hurt: {} vs {}",
        r_with.mrr,
        r_without.mrr
    );
    // And it must cost ~1.2× index slots.
    let overhead = instance_with.artifacts.order.len() as f64
        / instance_without.artifacts.order.len() as f64;
    assert!((1.1..=1.3).contains(&overhead), "index overhead {overhead}");
}
