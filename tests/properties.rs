//! Property-based tests (proptest) over the workspace's core
//! invariants: crypto round-trips, codec round-trips, packing bounds,
//! and clustering assignments.

use proptest::prelude::*;
use tiptoe_corpus::tzip;
use tiptoe_lwe::{scheme, LweParams, LweSecretKey, MatrixA};
use tiptoe_math::fixed::FixedEncoder;
use tiptoe_math::matrix::Mat;
use tiptoe_math::ntt::NttTable;
use tiptoe_math::rng::seeded_rng;
use tiptoe_pir::BitPacker;
use tiptoe_rlwe::{decrypt, encrypt, expand, RlweContext, RlweParams, RlweSecretKey};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tzip_roundtrips_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let compressed = tzip::compress(&data);
        prop_assert_eq!(tzip::decompress(&compressed).expect("own output decodes"), data);
    }

    #[test]
    fn tzip_roundtrips_repetitive_text(
        word in "[a-z]{1,8}",
        reps in 1usize..400,
    ) {
        let data: Vec<u8> = word.as_bytes().iter().copied().cycle().take(word.len() * reps).collect();
        let compressed = tzip::compress(&data);
        prop_assert_eq!(tzip::decompress(&compressed).expect("decodes"), data);
    }

    #[test]
    fn bit_packer_roundtrips(
        p in 3u64..(1 << 20),
        data in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let packer = BitPacker::new(p);
        let packed = packer.pack(&data, data.len());
        prop_assert!(packed.iter().all(|&e| (e as u64) < p));
        prop_assert_eq!(packer.unpack(&packed, data.len()), data);
    }

    #[test]
    fn fixed_encoder_error_bounded(
        bits in 1u32..8,
        xs in proptest::collection::vec(-1.5f32..1.5, 1..64),
    ) {
        let enc = FixedEncoder::new(bits, 1 << 17);
        for &x in &xs {
            let decoded = enc.decode_signed(enc.encode(x)) as f64 / enc.scale() as f64;
            let clipped = x.clamp(-1.0, 1.0) as f64;
            prop_assert!((decoded - clipped).abs() <= 0.5 / enc.scale() as f64 + 1e-9);
        }
    }

    #[test]
    fn ntt_roundtrip_random_polys(seed in any::<u64>()) {
        let table = NttTable::new(64, 40);
        let q = table.modulus().value();
        let mut rng = seeded_rng(seed);
        use rand::Rng;
        let original: Vec<u64> = (0..64).map(|_| rng.gen_range(0..q)).collect();
        let mut a = original.clone();
        table.forward(&mut a);
        table.inverse(&mut a);
        prop_assert_eq!(a, original);
    }

    #[test]
    fn lwe_selection_queries_decrypt_exactly(
        seed in any::<u64>(),
        rows in 1usize..10,
        cols in 4usize..48,
    ) {
        let params = LweParams::insecure_test(32, 991, 6.4);
        let mut rng = seeded_rng(seed);
        use rand::Rng;
        let db = Mat::from_fn(rows, cols, |_, _| rng.gen_range(0..991u64) as u32);
        let a = MatrixA::new(seed ^ 1, cols, params.n);
        let sk = LweSecretKey::<u32>::generate(&params, &mut rng);
        let target = rng.gen_range(0..cols);
        let mut v = vec![0u64; cols];
        v[target] = 1;
        let ct = scheme::encrypt(&params, &sk, &a, &v, &mut rng);
        let hint = scheme::preproc::<u32>(&db, &a.row_range(0, cols));
        let applied = scheme::apply(&db, &ct);
        let got = scheme::decrypt(&params, &sk, &hint, &applied);
        let want: Vec<u64> = (0..rows).map(|r| db.get(r, target) as u64).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn rlwe_roundtrip_random_messages(seed in any::<u64>()) {
        let ctx = RlweContext::new(RlweParams::insecure_test());
        let mut rng = seeded_rng(seed);
        use rand::Rng;
        let sk = RlweSecretKey::generate(&ctx, &mut rng);
        let t = ctx.params().t as i64;
        let m: Vec<i64> = (0..ctx.params().degree)
            .map(|_| rng.gen_range(-(t / 2)..t / 2))
            .collect();
        let ct = encrypt(&ctx, &sk, &m, seed ^ 2, &mut rng);
        prop_assert_eq!(decrypt(&ctx, &sk, &expand(&ctx, &ct)), m);
    }

    #[test]
    fn kmeans_assignments_are_locally_optimal(
        seed in any::<u64>(),
        n in 20usize..120,
    ) {
        use tiptoe_cluster::{cluster_documents, ClusterConfig};
        use tiptoe_embed::vector::{dist2, normalize};
        let mut rng = seeded_rng(seed);
        use rand::Rng;
        let points: Vec<Vec<f32>> = (0..n)
            .map(|_| {
                let mut v: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                normalize(&mut v);
                v
            })
            .collect();
        let config = ClusterConfig {
            target_size: (n / 3).max(4),
            split_factor: 1.5,
            dual_assign_frac: 0.0,
            kmeans_sample: n,
            kmeans_iters: 8,
            seed,
        };
        let clustering = cluster_documents(&points, &config);
        // Every document sits in its nearest cluster (Lloyd fixpoint is
        // not guaranteed after splitting, so allow the second-nearest).
        for (i, &c) in clustering.primary.iter().enumerate() {
            let mut dists: Vec<(usize, f32)> = clustering
                .centroids
                .iter()
                .enumerate()
                .map(|(j, cent)| (j, dist2(&points[i], cent)))
                .collect();
            dists.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"));
            let top2: Vec<usize> = dists.iter().take(2).map(|(j, _)| *j).collect();
            prop_assert!(top2.contains(&(c as usize)), "doc {} assigned to {}", i, c);
        }
        // With dual assignment off, every member list holds exactly
        // the documents whose primary cluster it is.
        for (ci, members) in clustering.members.iter().enumerate() {
            for &m in members {
                prop_assert_eq!(clustering.primary[m as usize] as usize, ci);
            }
        }
        let total: usize = clustering.members.iter().map(Vec::len).sum();
        prop_assert_eq!(total, n);
    }

    #[test]
    fn dpf_reconstructs_point_functions(
        seed in any::<u64>(),
        height in 1u32..9,
        block in 1usize..8,
    ) {
        let mut rng = seeded_rng(seed);
        use rand::Rng;
        let alpha = rng.gen_range(0..1usize << height);
        let beta: Vec<u32> = (0..block).map(|_| rng.gen()).collect();
        let (k0, k1) = tiptoe_dpf::generate(height, alpha, &beta, &mut rng);
        // Spot-check a few leaves plus alpha itself.
        let mut points = vec![alpha, 0, (1usize << height) - 1];
        points.push(rng.gen_range(0..1usize << height));
        for x in points {
            let got: Vec<u32> = tiptoe_dpf::eval(&k0, x)
                .into_iter()
                .zip(tiptoe_dpf::eval(&k1, x))
                .map(|(a, b)| a.wrapping_add(b))
                .collect();
            let want = if x == alpha { beta.clone() } else { vec![0u32; block] };
            prop_assert_eq!(got, want);
        }
        // Keys round-trip the wire format.
        let bytes = k0.encode();
        prop_assert_eq!(bytes.len() as u64, k0.byte_len());
        let back = tiptoe_dpf::DpfKey::decode(&bytes).expect("decodes");
        prop_assert_eq!(tiptoe_dpf::full_eval(&back), tiptoe_dpf::full_eval(&k0));
    }

    #[test]
    fn rlwe_mod_switch_preserves_headroom_messages(
        seed in any::<u64>(),
        log_q2 in 40u32..60,
    ) {
        // Production ring; messages bounded away from t/2 survive any
        // switched modulus at or above the context's safe minimum
        // (t = 2^28 -> min 40; below that the switch's own rounding
        // noise can flip message bits).
        let ctx = RlweContext::new(RlweParams::production());
        prop_assert!(log_q2 >= ctx.min_switch_log_q2());
        let mut rng = seeded_rng(seed);
        use rand::Rng;
        let sk = RlweSecretKey::generate(&ctx, &mut rng);
        let t = ctx.params().t as i64;
        let m: Vec<i64> = (0..ctx.params().degree)
            .map(|_| rng.gen_range(-(t / 4)..t / 4))
            .collect();
        let ct = tiptoe_rlwe::expand(&ctx, &encrypt(&ctx, &sk, &m, seed ^ 3, &mut rng));
        let switched = tiptoe_rlwe::mod_switch(&ctx, &ct, log_q2);
        prop_assert_eq!(tiptoe_rlwe::decrypt_switched(&ctx, &sk, &switched), m);
    }

    #[test]
    fn url_batch_payloads_roundtrip(
        n in 1usize..40,
        seed in any::<u64>(),
    ) {
        use tiptoe_core::batch::CompressedUrlBatch;
        let mut rng = seeded_rng(seed);
        use rand::Rng;
        let urls: Vec<(u32, String)> = (0..n)
            .map(|i| (i as u32, format!("https://www.site-{}.org/{}", rng.gen_range(0..9), i)))
            .collect();
        let entries: Vec<(u32, &str)> = urls.iter().map(|(d, u)| (*d, u.as_str())).collect();
        let batch = CompressedUrlBatch::build(&entries);
        let decoded = batch.decode().expect("decodes");
        prop_assert_eq!(decoded, urls);
    }
}
