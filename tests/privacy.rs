//! Query-privacy integration tests (paper §2, Definition 2.1, and
//! Appendix D).
//!
//! Full computational indistinguishability is a cryptographic
//! property; what a test suite *can* check mechanically is every
//! observable the definition covers: the message flow, every message's
//! exact size, and the server-visible access behavior must be
//! independent of the client's query string — and ciphertexts must not
//! repeat or leak plaintext structure.

use tiptoe_core::config::TiptoeConfig;
use tiptoe_core::instance::TiptoeInstance;
use tiptoe_corpus::synth::{generate, CorpusConfig};
use tiptoe_embed::text::TextEmbedder;
use tiptoe_lwe::{scheme::encrypt, LweParams, LweSecretKey, MatrixA};
use tiptoe_math::rng::seeded_rng;
use tiptoe_net::Direction;

fn build(seed: u64) -> TiptoeInstance<TextEmbedder> {
    let corpus = generate(&CorpusConfig::small(180, seed), 0);
    let config = TiptoeConfig::test_small(180, seed);
    let embedder = TextEmbedder::new(config.d_embed, seed, 0);
    TiptoeInstance::build(&config, embedder, &corpus)
}

#[test]
fn wire_transcript_is_independent_of_the_query() {
    let instance = build(71);
    let mut client = instance.new_client(1);

    // Queries chosen to hit different clusters, different scores,
    // different result sets.
    let queries = [
        "health doctor knee pain clinic",
        "w1 w2 w3",
        "museum",
        "completely unrelated gibberish zzzz qqqq xxxx",
    ];
    let mut footprints = Vec::new();
    for q in queries {
        instance.transcript.reset();
        let results = client.search(&instance, q, 5);
        let phases: Vec<(&'static str, u64, u64)> = instance
            .transcript
            .phases()
            .into_iter()
            .map(|p| {
                (
                    p.as_str(),
                    instance.transcript.phase_total(p, Direction::Upload),
                    instance.transcript.phase_total(p, Direction::Download),
                )
            })
            .collect();
        footprints.push((phases, results.cost.total_bytes()));
    }
    for w in footprints.windows(2) {
        assert_eq!(w[0], w[1], "transcript shape must not depend on the query");
    }
}

#[test]
fn queries_for_different_clusters_are_same_size() {
    // The cluster index i* is part of the client's secret; the upload
    // is always a dC-dimensional ciphertext regardless of i*.
    let instance = build(72);
    let mut client = instance.new_client(2);
    let mut sizes = std::collections::HashSet::new();
    let mut clusters = std::collections::HashSet::new();
    for q in ["health", "travel", "finance", "w77 w78", "galaxy planet"] {
        let r = client.search(&instance, q, 3);
        clusters.insert(r.cluster);
        sizes.insert((r.cost.rank_up, r.cost.rank_down, r.cost.url_up, r.cost.url_down));
    }
    assert!(clusters.len() > 1, "test needs queries spanning clusters");
    assert_eq!(sizes.len(), 1, "sizes leaked the cluster: {sizes:?}");
}

#[test]
fn repeated_encryptions_of_the_same_query_differ() {
    // Fresh randomness per encryption: identical plaintexts must not
    // produce identical ciphertexts (semantic security's minimum bar).
    let params = LweParams::insecure_test(64, 1 << 17, 81920.0);
    let mut rng = seeded_rng(73);
    let a = MatrixA::new(9, 32, params.n);
    let sk = LweSecretKey::<u64>::generate(&params, &mut rng);
    let v = vec![5u64; 32];
    let c1 = encrypt(&params, &sk, &a, &v, &mut rng);
    let c2 = encrypt(&params, &sk, &a, &v, &mut rng);
    assert_ne!(c1.c, c2.c, "ciphertexts must be randomized");
}

#[test]
fn ciphertext_words_look_uniform() {
    // χ²-style sanity check on the top byte of LWE ciphertext words:
    // the A·s term should spread mass over the full ring.
    let params = LweParams::insecure_test(64, 1 << 17, 81920.0);
    let mut rng = seeded_rng(74);
    let m = 4096;
    let a = MatrixA::new(11, m, params.n);
    let sk = LweSecretKey::<u64>::generate(&params, &mut rng);
    let v = vec![0u64; m];
    let ct = encrypt(&params, &sk, &a, &v, &mut rng);
    let mut counts = [0u32; 16];
    for &w in &ct.c {
        counts[(w >> 60) as usize] += 1;
    }
    let expected = m as f64 / 16.0;
    for (i, &c) in counts.iter().enumerate() {
        let dev = (c as f64 - expected).abs() / expected;
        assert!(dev < 0.35, "top-nibble {i} count {c} deviates {dev:.2} from uniform");
    }
}

#[test]
fn server_work_touches_every_cluster_for_any_query() {
    // The ranking answer is a product with the *entire* matrix: its
    // cost (and the response size) is the same no matter which cluster
    // the query targets — a structural non-leakage property.
    let instance = build(75);
    let mut client = instance.new_client(3);
    let r1 = client.search(&instance, "health", 3);
    let r2 = client.search(&instance, "galaxy", 3);
    assert_eq!(r1.cost.rank_down, r2.cost.rank_down);
    assert_eq!(
        instance.ranking.rows() as u64 * 8,
        r1.cost.rank_down,
        "every query downloads one full padded cluster of scores"
    );
}
