//! Decoder fuzzing: every protocol decoder must survive arbitrary and
//! mutated bytes without panicking, and must bound its allocations by
//! the *received* data rather than attacker-declared lengths.
//!
//! Complements `tests/robustness.rs` (seeded random sweeps) with
//! property-based coverage and deterministic hostile-header cases.

use proptest::prelude::*;
use tiptoe_core::batch::CompressedUrlBatch;
use tiptoe_corpus::tzip;
use tiptoe_dpf::DpfKey;
use tiptoe_lwe::{LweCiphertext, LweParams};
use tiptoe_math::rng::seeded_rng;
use tiptoe_net::{open, seal};
use tiptoe_rlwe::RlweParams;
use tiptoe_underhood::{ClientKey, EncryptedSecret, QueryToken, Underhood};

fn test_underhood() -> Underhood {
    let lwe = LweParams::insecure_test(32, 991, 6.4);
    let rlwe = RlweParams { degree: 64, q_bits: 58, t: 1 << 24, sigma: 3.2 };
    Underhood::with_outer(lwe, rlwe, 44)
}

/// A valid encoded secret + token pair to mutate from.
fn valid_messages() -> (Vec<u8>, Vec<u8>) {
    let uh = test_underhood();
    let mut rng = seeded_rng(99);
    let db = tiptoe_math::matrix::Mat::from_fn(6, 16, |i, j| ((i * 17 + j * 5) % 16) as u32);
    let a = tiptoe_lwe::MatrixA::new(3, 16, uh.lwe().n);
    let key = ClientKey::generate(&uh, uh.lwe().n, &mut rng);
    let es = EncryptedSecret::encrypt(&uh, &key, &mut rng);
    let hint = tiptoe_lwe::scheme::preproc::<u32>(&db, &a.row_range(0, 16));
    let token = uh.generate_token(&uh.preprocess_hint(&hint), &es);
    (es.encode(), token.encode())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_bytes_never_panic_any_decoder(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        let _ = EncryptedSecret::decode(&data);
        let _ = QueryToken::decode(&data);
        let _ = DpfKey::decode(&data);
        let _ = LweCiphertext::<u32>::decode(&data);
        let _ = LweCiphertext::<u64>::decode(&data);
        let _ = tzip::decompress(&data);
        let _ = CompressedUrlBatch::decode_payload(&data);
        let _ = open(&data);
    }

    #[test]
    fn mutated_valid_secrets_never_panic(
        idx in 0usize..4096,
        xor in 1u8..=255,
    ) {
        let (es_bytes, _) = valid_messages();
        let mut mutated = es_bytes;
        let i = idx % mutated.len();
        mutated[i] ^= xor;
        let _ = EncryptedSecret::decode(&mutated);
    }

    #[test]
    fn mutated_valid_tokens_never_panic(
        idx in 0usize..4096,
        xor in 1u8..=255,
    ) {
        let (_, token_bytes) = valid_messages();
        let mut mutated = token_bytes;
        let i = idx % mutated.len();
        mutated[i] ^= xor;
        let _ = QueryToken::decode(&mutated);
    }

    #[test]
    fn truncated_valid_tokens_never_panic(cut in 0usize..4096) {
        let (es_bytes, token_bytes) = valid_messages();
        let t = cut % (token_bytes.len() + 1);
        let _ = QueryToken::decode(&token_bytes[..t]);
        let e = cut % (es_bytes.len() + 1);
        let _ = EncryptedSecret::decode(&es_bytes[..e]);
    }

    #[test]
    fn tampered_envelopes_are_rejected_not_parsed(
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        idx in 0usize..4096,
        xor in 1u8..=255,
    ) {
        let sealed = seal(&payload);
        prop_assert_eq!(open(&sealed).expect("own envelope opens"), &payload[..]);
        let mut tampered = sealed.clone();
        let i = idx % tampered.len();
        tampered[i] ^= xor;
        prop_assert!(open(&tampered).is_err(), "bit flip at {i} must be caught");
        // Any truncation is caught too.
        let t = idx % sealed.len();
        prop_assert!(open(&sealed[..t]).is_err());
    }

    #[test]
    fn tzip_decoder_output_is_bounded_by_the_declared_header(
        body in proptest::collection::vec(any::<u8>(), 4..512),
    ) {
        if let Ok(out) = tzip::decompress(&body) {
            let declared = u32::from_le_bytes([body[0], body[1], body[2], body[3]]) as usize;
            prop_assert_eq!(out.len(), declared);
        }
    }
}

#[test]
fn hostile_length_headers_fail_fast_without_huge_allocation() {
    // tzip: a 4 GiB declared size must be rejected up front (the
    // decoder caps declared sizes and clamps its pre-allocation).
    let mut hostile = vec![0u8; 64];
    hostile[..4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(tzip::decompress(&hostile).is_err());

    // Envelope: a huge declared payload length on a short buffer.
    let valid = seal(b"ok");
    let mut huge = valid.clone();
    huge[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(open(&huge).is_err());

    // Query token: a row count far beyond the shipped chunks.
    let (_, token_bytes) = valid_messages();
    let mut rows_forged = token_bytes.clone();
    rows_forged[..4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(QueryToken::decode(&rows_forged).is_err());

    // The originals still parse after all this.
    assert!(QueryToken::decode(&token_bytes).is_ok());
    assert_eq!(open(&valid).expect("valid"), b"ok");
}

#[test]
fn pir_recover_rejects_short_answers_gracefully() {
    use tiptoe_math::rng::seeded_rng;
    use tiptoe_pir::{PirClient, PirDatabase, PirServer};
    let uh = test_underhood();
    let mut rng = seeded_rng(5);
    let records: Vec<Vec<u8>> = (0..6).map(|i| vec![i as u8 + 1; 40]).collect();
    let db = PirDatabase::build_with_params(&records, *uh.lwe());
    let server = PirServer::new(db, 11, uh.clone());
    let key = ClientKey::generate(&uh, uh.lwe().n, &mut rng);
    let es = EncryptedSecret::encrypt(&uh, &key, &mut rng);
    let client = PirClient::new(&uh, &key);
    let ct = client.query(&server.public_matrix(), 6, 2, &mut rng);
    let answer = server.answer(&ct);

    for cut in [0, 1, answer.len() / 2, answer.len() - 1] {
        let mut decoded = client.decode_token(&server.generate_token(&es));
        assert!(
            client.recover(server.database(), &mut decoded, &answer[..cut]).is_err(),
            "cut={cut} must error"
        );
    }
    let mut decoded = client.decode_token(&server.generate_token(&es));
    let got = client.recover(server.database(), &mut decoded, &answer).expect("full answer");
    assert_eq!(&got[..40], &records[2][..]);
}
