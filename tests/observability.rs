//! Integration tests for the unified tracing & metrics layer
//! (`tiptoe-obs`): span-tree determinism across thread counts,
//! metrics/Transcript agreement, and zero behavioral impact of the
//! tracing switch.
//!
//! The obs registry and span buffer are process-global, so these tests
//! serialize on a mutex and reset both before each scenario.

use std::sync::{Mutex, MutexGuard};

use tiptoe_core::client::SearchResults;
use tiptoe_core::config::TiptoeConfig;
use tiptoe_core::instance::TiptoeInstance;
use tiptoe_corpus::synth::{generate, CorpusConfig};
use tiptoe_embed::text::TextEmbedder;
use tiptoe_net::{Direction, Phase};

/// Serializes tests touching the global obs state, and leaves tracing
/// disabled afterwards whichever way the test exits.
struct ObsGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

fn obs_lock() -> ObsGuard {
    static LOCK: Mutex<()> = Mutex::new(());
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    tiptoe_obs::disable();
    tiptoe_obs::set_trace_path(None);
    tiptoe_obs::clear_spans();
    tiptoe_obs::metrics().reset();
    ObsGuard(guard)
}

impl Drop for ObsGuard {
    fn drop(&mut self) {
        tiptoe_obs::disable();
        tiptoe_obs::set_trace_path(None);
        tiptoe_obs::clear_spans();
    }
}

const DOCS: usize = 120;
const SEED: u64 = 17;
const QUERY: &str = "museum history archive";

fn build(num_threads: usize) -> TiptoeInstance<TextEmbedder> {
    let corpus = generate(&CorpusConfig::small(DOCS, SEED), 4);
    let mut config = TiptoeConfig::test_small(DOCS, SEED);
    config.parallelism.num_threads = num_threads;
    let embedder = TextEmbedder::new(config.d_embed, SEED, 0);
    TiptoeInstance::build(&config, embedder, &corpus)
}

fn run_query(instance: &TiptoeInstance<TextEmbedder>) -> SearchResults {
    let mut client = instance.new_client(1);
    client.search(instance, QUERY, 10)
}

/// The span tree as (name, parent-name) pairs in completion order —
/// the thread-count-independent shape of a trace.
fn tree_shape(spans: &[tiptoe_obs::SpanRecord]) -> Vec<(String, Option<String>)> {
    let by_id: std::collections::HashMap<u64, &tiptoe_obs::SpanRecord> =
        spans.iter().map(|s| (s.id, s)).collect();
    spans
        .iter()
        .map(|s| {
            let parent =
                s.parent.and_then(|p| by_id.get(&p)).map(|p| p.display_name());
            (s.display_name(), parent)
        })
        .collect()
}

#[test]
fn span_tree_is_deterministic_across_thread_counts() {
    let _guard = obs_lock();
    let shapes: Vec<Vec<(String, Option<String>)>> = [1usize, 0]
        .iter()
        .map(|&threads| {
            let instance = build(threads);
            tiptoe_obs::enable();
            let _ = run_query(&instance);
            let spans = tiptoe_obs::spans_snapshot();
            tiptoe_obs::disable();
            tiptoe_obs::clear_spans();
            assert!(!spans.is_empty(), "tracing enabled but no spans recorded");
            tree_shape(&spans)
        })
        .collect();
    assert_eq!(
        shapes[0], shapes[1],
        "span names and parentage must not depend on the kernel thread count"
    );

    // The trace covers every client phase and the per-shard server work.
    let names: Vec<&str> = shapes[0].iter().map(|(n, _)| n.as_str()).collect();
    for want in [
        "client.query",
        "client.embed",
        "client.route",
        "client.encrypt",
        "client.rank_phase",
        "client.rank_decrypt",
        "client.url_phase",
        "client.token_fetch",
        "client.token_decrypt",
        "client.recover",
        "rank.answer",
        "rank.shard[0]",
        "url.answer",
        "lwe.matvec",
    ] {
        assert!(names.contains(&want), "missing span {want:?} in {names:?}");
    }
    // Phase spans must nest under the query root.
    for (name, parent) in &shapes[0] {
        if name.starts_with("client.") && name != "client.query" {
            assert!(
                parent.is_some(),
                "client phase span {name:?} must have a parent"
            );
        }
    }
}

#[test]
fn metrics_byte_counters_match_the_transcript_exactly() {
    let _guard = obs_lock();
    // The registry was reset by the lock; every byte the transcript
    // sees from here on is mirrored into the global counters.
    let instance = build(1);
    let _ = run_query(&instance);

    let m = tiptoe_obs::metrics();
    for phase in Phase::ALL {
        let up = m.counter_with("net.bytes_up", Some(phase.as_str().to_owned())).get();
        let down = m.counter_with("net.bytes_down", Some(phase.as_str().to_owned())).get();
        assert_eq!(
            up,
            instance.transcript.phase_total(phase, Direction::Upload),
            "upload counter for phase {phase} diverged from the transcript"
        );
        assert_eq!(
            down,
            instance.transcript.phase_total(phase, Direction::Download),
            "download counter for phase {phase} diverged from the transcript"
        );
    }
    let total_up: u64 =
        Phase::ALL.iter().map(|p| instance.transcript.phase_total(*p, Direction::Upload)).sum();
    let total_down: u64 = Phase::ALL
        .iter()
        .map(|p| instance.transcript.phase_total(*p, Direction::Download))
        .sum();
    assert_eq!(total_up, instance.transcript.total(Direction::Upload));
    assert_eq!(total_down, instance.transcript.total(Direction::Download));
    assert!(total_down > 0, "the query must have downloaded something");
}

#[test]
fn tracing_on_off_is_bit_identical() {
    let _guard = obs_lock();
    let baseline = {
        let instance = build(1);
        run_query(&instance)
    };
    let traced = {
        let instance = build(1);
        tiptoe_obs::enable();
        let r = run_query(&instance);
        tiptoe_obs::disable();
        tiptoe_obs::clear_spans();
        r
    };
    assert_eq!(baseline.cluster, traced.cluster);
    assert_eq!(baseline.hits, traced.hits, "tracing must not perturb results");
    let bits =
        |r: &SearchResults| r.hits.iter().map(|h| (h.doc, h.score.to_bits())).collect::<Vec<_>>();
    assert_eq!(bits(&baseline), bits(&traced));
}
