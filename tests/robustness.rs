//! Malicious-server robustness tests.
//!
//! The paper's threat model (§2): "In the face of malicious servers,
//! Tiptoe guarantees neither the availability of its service nor the
//! correctness of its results." What the *client implementation* must
//! still guarantee is memory safety and graceful failure: a server
//! returning garbage must never crash the client, corrupt unrelated
//! state, or trick a decoder into unbounded allocation.

use rand::Rng;
use tiptoe_core::batch::CompressedUrlBatch;
use tiptoe_core::config::TiptoeConfig;
use tiptoe_corpus::tzip;
use tiptoe_dpf::DpfKey;
use tiptoe_lwe::{LweCiphertext, LweParams, MatrixA};
use tiptoe_math::rng::seeded_rng;
use tiptoe_pir::{PirClient, PirDatabase, PirServer};
use tiptoe_rlwe::RlweParams;
use tiptoe_underhood::{ClientKey, EncryptedSecret, QueryToken, Underhood};

fn test_underhood() -> Underhood {
    let lwe = LweParams::insecure_test(32, 991, 6.4);
    let rlwe = RlweParams { degree: 64, q_bits: 58, t: 1 << 24, sigma: 3.2 };
    Underhood::with_outer(lwe, rlwe, 44)
}

#[test]
fn garbage_ranking_answer_yields_garbage_not_panic() {
    // A malicious ranking service substitutes random words for the
    // true M·ct. The client decrypts garbage scores — allowed by the
    // threat model — but must not crash.
    let uh = test_underhood();
    let mut rng = seeded_rng(1);
    let cols = 16;
    let db = tiptoe_math::matrix::Mat::from_fn(6, cols, |_, _| rng.gen_range(0..16u32));
    let a = MatrixA::new(3, cols, uh.lwe().n);
    let key = ClientKey::generate(&uh, uh.lwe().n, &mut rng);
    let es = EncryptedSecret::encrypt(&uh, &key, &mut rng);
    let hint = tiptoe_lwe::scheme::preproc::<u32>(&db, &a.row_range(0, cols));
    let token = uh.generate_token(&uh.preprocess_hint(&hint), &es);
    let mut decoded = uh.decode_token::<u32>(&key, &token);

    let forged: Vec<u32> = (0..6).map(|_| rng.gen()).collect();
    let scores = uh.decrypt(&mut decoded, &forged);
    assert_eq!(scores.len(), 6);
    assert!(scores.iter().all(|&s| s < uh.lwe().p), "scores stay reduced mod p");
}

#[test]
fn garbage_pir_record_fails_to_decode_gracefully() {
    let uh = test_underhood();
    let mut rng = seeded_rng(2);
    let records: Vec<Vec<u8>> = (0..8).map(|i| vec![i as u8; 50]).collect();
    let db = PirDatabase::build_with_params(&records, *uh.lwe());
    let server = PirServer::new(db, 7, uh.clone());
    let key = ClientKey::generate(&uh, uh.lwe().n, &mut rng);
    let es = EncryptedSecret::encrypt(&uh, &key, &mut rng);
    let token = server.generate_token(&es);
    let client = PirClient::new(&uh, &key);
    let mut decoded = client.decode_token(&token);
    let _ct = client.query(&server.public_matrix(), 8, 3, &mut rng);
    // The server answers with random words of the right length.
    let forged: Vec<u32> = (0..server.database().rows()).map(|_| rng.gen()).collect();
    let bytes =
        client.recover(server.database(), &mut decoded, &forged).expect("right-length answer");
    // Recovered garbage; decoding it as a URL batch must error (or
    // yield nothing), never panic.
    let decoded_batch = CompressedUrlBatch::decode_payload(&bytes);
    if let Ok(entries) = decoded_batch {
        assert!(entries.len() <= records.len() * 4, "bounded output from garbage");
    }

    // A *truncated* answer must surface as an error, not a panic.
    let short = &forged[..forged.len() / 2];
    let mut decoded2 = client.decode_token(&server.generate_token(&es));
    assert!(client.recover(server.database(), &mut decoded2, short).is_err());
}

#[test]
fn fuzzed_token_bytes_never_panic_the_decoder() {
    let mut rng = seeded_rng(3);
    for round in 0..300 {
        let len = rng.gen_range(0..400usize);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        // Either parses (structurally valid by luck) or errors — both
        // fine; panics and hangs are not.
        let _ = QueryToken::decode(&bytes);
        let _ = EncryptedSecret::decode(&bytes);
        let _ = DpfKey::decode(&bytes);
        let _ = LweCiphertext::<u64>::decode(&bytes);
        let _ = LweCiphertext::<u32>::decode(&bytes);
        let _ = tzip::decompress(&bytes);
        let _ = round;
    }
}

#[test]
fn bitflipped_valid_messages_never_panic_decoders() {
    // Start from VALID encodings and flip one random bit at a time —
    // the adversarial sweet spot for parser bugs.
    let uh = test_underhood();
    let mut rng = seeded_rng(4);
    let key = ClientKey::generate(&uh, uh.lwe().n, &mut rng);
    let es = EncryptedSecret::encrypt(&uh, &key, &mut rng);
    let base = es.encode();
    for _ in 0..100 {
        let mut mutated = base.clone();
        let bit = rng.gen_range(0..mutated.len() * 8);
        mutated[bit / 8] ^= 1 << (bit % 8);
        let _ = EncryptedSecret::decode(&mutated);
    }

    let compressed = tzip::compress(b"the quick brown fox jumps over the lazy dog repeatedly");
    for _ in 0..200 {
        let mut mutated = compressed.clone();
        let bit = rng.gen_range(0..mutated.len() * 8);
        mutated[bit / 8] ^= 1 << (bit % 8);
        let _ = tzip::decompress(&mutated);
    }
}

#[test]
fn config_rejects_inconsistent_parameters() {
    // Misconfiguration must fail fast at validation, not corrupt a
    // deployment.
    let mut config = TiptoeConfig::test_small(100, 1);
    config.d_reduced = config.d_embed + 1;
    assert!(std::panic::catch_unwind(move || config.validate()).is_err());

    let mut config2 = TiptoeConfig::test_small(100, 1);
    config2.num_shards = 0;
    assert!(std::panic::catch_unwind(move || config2.validate()).is_err());
}
