//! Malicious-server robustness tests.
//!
//! The paper's threat model (§2): "In the face of malicious servers,
//! Tiptoe guarantees neither the availability of its service nor the
//! correctness of its results." What the *client implementation* must
//! still guarantee is memory safety and graceful failure: a server
//! returning garbage must never crash the client, corrupt unrelated
//! state, or trick a decoder into unbounded allocation.

use std::time::Duration;

use rand::Rng;
use tiptoe_core::batch::CompressedUrlBatch;
use tiptoe_core::config::TiptoeConfig;
use tiptoe_corpus::tzip;
use tiptoe_dpf::DpfKey;
use tiptoe_lwe::{LweCiphertext, LweParams, MatrixA};
use tiptoe_math::rng::seeded_rng;
use tiptoe_net::{
    AdmissionController, AdmissionPolicy, BreakerBank, BreakerPolicy, BreakerState, FaultPlan,
    ShardGate,
};
use tiptoe_pir::{PirClient, PirDatabase, PirServer};
use tiptoe_rlwe::RlweParams;
use tiptoe_underhood::{ClientKey, EncryptedSecret, QueryToken, Underhood};

fn test_underhood() -> Underhood {
    let lwe = LweParams::insecure_test(32, 991, 6.4);
    let rlwe = RlweParams { degree: 64, q_bits: 58, t: 1 << 24, sigma: 3.2 };
    Underhood::with_outer(lwe, rlwe, 44)
}

#[test]
fn garbage_ranking_answer_yields_garbage_not_panic() {
    // A malicious ranking service substitutes random words for the
    // true M·ct. The client decrypts garbage scores — allowed by the
    // threat model — but must not crash.
    let uh = test_underhood();
    let mut rng = seeded_rng(1);
    let cols = 16;
    let db = tiptoe_math::matrix::Mat::from_fn(6, cols, |_, _| rng.gen_range(0..16u32));
    let a = MatrixA::new(3, cols, uh.lwe().n);
    let key = ClientKey::generate(&uh, uh.lwe().n, &mut rng);
    let es = EncryptedSecret::encrypt(&uh, &key, &mut rng);
    let hint = tiptoe_lwe::scheme::preproc::<u32>(&db, &a.row_range(0, cols));
    let token = uh.generate_token(&uh.preprocess_hint(&hint), &es);
    let mut decoded = uh.decode_token::<u32>(&key, &token);

    let forged: Vec<u32> = (0..6).map(|_| rng.gen()).collect();
    let scores = uh.decrypt(&mut decoded, &forged);
    assert_eq!(scores.len(), 6);
    assert!(scores.iter().all(|&s| s < uh.lwe().p), "scores stay reduced mod p");
}

#[test]
fn garbage_pir_record_fails_to_decode_gracefully() {
    let uh = test_underhood();
    let mut rng = seeded_rng(2);
    let records: Vec<Vec<u8>> = (0..8).map(|i| vec![i as u8; 50]).collect();
    let db = PirDatabase::build_with_params(&records, *uh.lwe());
    let server = PirServer::new(db, 7, uh.clone());
    let key = ClientKey::generate(&uh, uh.lwe().n, &mut rng);
    let es = EncryptedSecret::encrypt(&uh, &key, &mut rng);
    let token = server.generate_token(&es);
    let client = PirClient::new(&uh, &key);
    let mut decoded = client.decode_token(&token);
    let _ct = client.query(&server.public_matrix(), 8, 3, &mut rng);
    // The server answers with random words of the right length.
    let forged: Vec<u32> = (0..server.database().rows()).map(|_| rng.gen()).collect();
    let bytes =
        client.recover(server.database(), &mut decoded, &forged).expect("right-length answer");
    // Recovered garbage; decoding it as a URL batch must error (or
    // yield nothing), never panic.
    let decoded_batch = CompressedUrlBatch::decode_payload(&bytes);
    if let Ok(entries) = decoded_batch {
        assert!(entries.len() <= records.len() * 4, "bounded output from garbage");
    }

    // A *truncated* answer must surface as an error, not a panic.
    let short = &forged[..forged.len() / 2];
    let mut decoded2 = client.decode_token(&server.generate_token(&es));
    assert!(client.recover(server.database(), &mut decoded2, short).is_err());
}

#[test]
fn fuzzed_token_bytes_never_panic_the_decoder() {
    let mut rng = seeded_rng(3);
    for round in 0..300 {
        let len = rng.gen_range(0..400usize);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        // Either parses (structurally valid by luck) or errors — both
        // fine; panics and hangs are not.
        let _ = QueryToken::decode(&bytes);
        let _ = EncryptedSecret::decode(&bytes);
        let _ = DpfKey::decode(&bytes);
        let _ = LweCiphertext::<u64>::decode(&bytes);
        let _ = LweCiphertext::<u32>::decode(&bytes);
        let _ = tzip::decompress(&bytes);
        let _ = round;
    }
}

#[test]
fn bitflipped_valid_messages_never_panic_decoders() {
    // Start from VALID encodings and flip one random bit at a time —
    // the adversarial sweet spot for parser bugs.
    let uh = test_underhood();
    let mut rng = seeded_rng(4);
    let key = ClientKey::generate(&uh, uh.lwe().n, &mut rng);
    let es = EncryptedSecret::encrypt(&uh, &key, &mut rng);
    let base = es.encode();
    for _ in 0..100 {
        let mut mutated = base.clone();
        let bit = rng.gen_range(0..mutated.len() * 8);
        mutated[bit / 8] ^= 1 << (bit % 8);
        let _ = EncryptedSecret::decode(&mutated);
    }

    let compressed = tzip::compress(b"the quick brown fox jumps over the lazy dog repeatedly");
    for _ in 0..200 {
        let mut mutated = compressed.clone();
        let bit = rng.gen_range(0..mutated.len() * 8);
        mutated[bit / 8] ^= 1 << (bit % 8);
        let _ = tzip::decompress(&mutated);
    }
}

#[test]
fn config_rejects_inconsistent_parameters() {
    // Misconfiguration must fail fast at validation, not corrupt a
    // deployment.
    let mut config = TiptoeConfig::test_small(100, 1);
    config.d_reduced = config.d_embed + 1;
    assert!(std::panic::catch_unwind(move || config.validate()).is_err());

    let mut config2 = TiptoeConfig::test_small(100, 1);
    config2.num_shards = 0;
    assert!(std::panic::catch_unwind(move || config2.validate()).is_err());
}

#[test]
fn shed_decisions_are_deterministic_for_a_given_arrival_schedule() {
    // Overload shedding must be a pure function of the arrival order:
    // replaying the same admit/depart schedule against a fresh
    // controller reproduces the same admit/shed outcome for every
    // arrival and the same shed log, arrival for arrival.
    let policy = AdmissionPolicy {
        enabled: true,
        max_inflight: 2,
        queue_depth: 1,
        deadline: Duration::from_secs(1),
    };
    let run = |seed: u64| {
        let ctrl = AdmissionController::new(policy, 2);
        let mut rng = seeded_rng(seed);
        let mut held = Vec::new();
        let mut outcomes = Vec::new();
        for _ in 0..64 {
            if rng.gen_range(0..3u32) == 0 && !held.is_empty() {
                drop(held.remove(0)); // a running query finishes
            } else {
                outcomes.push(match ctrl.try_admit() {
                    Ok(permit) => {
                        held.push(permit);
                        true
                    }
                    Err(_) => false,
                });
            }
        }
        drop(held);
        assert_eq!(ctrl.inflight(), 0, "every permit released");
        (outcomes, ctrl.shed_log(), ctrl.admitted(), ctrl.sheds())
    };
    let a = run(42);
    let b = run(42);
    assert_eq!(a, b, "same schedule, same shed set");
    assert!(a.3 > 0, "the schedule must overload the capacity");
    assert!(a.2 > 0, "and still admit work");
    // A different schedule produces a different record — the log is
    // data, not a constant.
    let c = run(43);
    assert_ne!(a.1, c.1, "shed logs track the actual schedule");
}

#[test]
fn circuit_breaker_walks_closed_open_half_open_closed() {
    let policy = BreakerPolicy {
        enabled: true,
        failure_threshold: 2,
        latency_threshold: Duration::from_millis(10),
        open_cooldown: 3,
        close_after: 2,
    };
    let bank = BreakerBank::new(policy, 2);
    const FAST: Duration = Duration::from_millis(1);
    const SLOW: Duration = Duration::from_millis(50);

    // Closed: traffic flows; one failure alone does not trip.
    assert_eq!(bank.gate(0), ShardGate::Serve);
    bank.record(0, false, FAST);
    assert_eq!(bank.state(0), BreakerState::Closed);
    bank.record(0, true, FAST); // a healthy answer resets the streak
    bank.record(0, false, FAST);
    assert_eq!(bank.state(0), BreakerState::Closed);
    bank.record(0, false, FAST); // second consecutive failure trips it
    assert_eq!(bank.state(0), BreakerState::Open);

    // Open: skipped for `open_cooldown` gates, then a half-open probe.
    assert_eq!(bank.gate(0), ShardGate::Skip);
    assert_eq!(bank.gate(0), ShardGate::Skip);
    assert_eq!(bank.gate(0), ShardGate::Probe, "cooldown drained: probe the shard");
    assert_eq!(bank.state(0), BreakerState::HalfOpen);

    // A degraded probe slams it shut again...
    bank.record(0, false, FAST);
    assert_eq!(bank.state(0), BreakerState::Open);
    for _ in 0..2 {
        assert_eq!(bank.gate(0), ShardGate::Skip);
    }
    assert_eq!(bank.gate(0), ShardGate::Probe);

    // ...and `close_after` healthy probes close it.
    bank.record(0, true, FAST);
    assert_eq!(bank.state(0), BreakerState::HalfOpen);
    assert_eq!(bank.gate(0), ShardGate::Probe);
    bank.record(0, true, FAST);
    assert_eq!(bank.state(0), BreakerState::Closed);
    assert_eq!(bank.gate(0), ShardGate::Serve);

    // Straggler-awareness: slow successes count as degraded.
    bank.record(0, true, SLOW);
    bank.record(0, true, SLOW);
    assert_eq!(bank.state(0), BreakerState::Open);
    assert_eq!(bank.degraded_shards(), vec![0]);

    // The neighbor's breaker never moved.
    assert_eq!(bank.state(1), BreakerState::Closed);
    assert_eq!(bank.gate(1), ShardGate::Serve);
}

#[test]
fn breaker_rerouted_queries_stay_bit_identical() {
    // End to end: a persistently crashed shard trips its breaker, so
    // later queries skip it outright (zero attempts — no retry burn).
    // Every admitted query before, during, and after the trip must
    // return byte-for-byte the hits of fault-free serving, because the
    // searched cluster lives on a surviving shard either way.
    use tiptoe_core::instance::TiptoeInstance;
    use tiptoe_corpus::synth::{generate, CorpusConfig};
    use tiptoe_embed::text::TextEmbedder;

    const DOCS: usize = 220;
    const SEED: u64 = 51;
    let corpus = generate(&CorpusConfig::small(DOCS, SEED), 20);
    let mut plain_config = TiptoeConfig::test_small(DOCS, SEED);
    plain_config.num_shards = 3;
    plain_config.validate();
    let mut config = plain_config.clone();
    config.fault_policy = tiptoe_net::FaultPolicy::tolerant();
    config.breaker = BreakerPolicy {
        enabled: true,
        failure_threshold: 2,
        // Generous straggler threshold: debug builds must not trip
        // healthy shards on real latency.
        latency_threshold: Duration::from_secs(60),
        open_cooldown: 100, // stays open for the whole test
        close_after: 2,
    };
    config.validate();
    let embedder = TextEmbedder::new(config.d_embed, SEED, 0);
    let plain = TiptoeInstance::build(&plain_config, TextEmbedder::new(config.d_embed, SEED, 0), &corpus);
    let tolerant = TiptoeInstance::build(&config, embedder, &corpus);

    let query = "museum history archive";
    let reference = plain.new_client(7).search(&plain, query, 10);
    let owner = (0..tolerant.ranking.num_shards())
        .find(|&w| {
            let (lo, hi) = tolerant.ranking.shard_clusters(w);
            (lo..hi).contains(&reference.cluster)
        })
        .expect("every cluster has a shard");
    let crashed = (owner + 1) % tolerant.ranking.num_shards();
    let plan = FaultPlan::none().crash_shard(crashed);

    let plane = tolerant.serving_plane();
    let bank = plane.breakers().expect("breakers enabled");
    assert_eq!(bank.len(), tolerant.ranking.num_shards() + 1, "ranking shards + URL server");
    let mut c = tolerant.new_client(7);
    for round in 0..4 {
        let results = c
            .try_search_served_with_faults(&tolerant, query, 10, &plan, &plane)
            .expect("admitted query completes despite the dead shard");
        let dq = results.degraded.expect("degraded state");
        assert_eq!(results.cluster, reference.cluster, "round {round}");
        assert_eq!(
            results.hits, reference.hits,
            "round {round}: rerouted query must stay bit-identical"
        );
        assert!(!dq.searched_cluster_missing);
        assert_eq!(dq.rank_report.failed_shards(), vec![crashed]);
        if round >= 2 {
            // Breaker open: the dead shard is skipped, not retried.
            assert_eq!(bank.state(crashed), BreakerState::Open, "round {round}");
            assert_eq!(
                dq.rank_report.shards[crashed].attempts, 0,
                "round {round}: open breaker spends no attempts on the dead shard"
            );
            assert_eq!(dq.rank_report.retries, 0, "round {round}: no retry burn");
        }
    }
    assert_eq!(bank.degraded_shards(), vec![crashed]);
    // The URL server stayed healthy the whole time.
    assert_eq!(bank.state(tolerant.ranking.num_shards()), BreakerState::Closed);
}
