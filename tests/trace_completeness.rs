//! Trace-completeness suite: every query served through the
//! coalescing plane must own a span tree rooted at `client.query`
//! from which the shared flush spans (and the kernel work under them)
//! are reachable — via parent edges or the flush's *follows* links —
//! with zero orphans, at any cohort size, even under reactor-crash
//! chaos. The tracing switch and the span-sampling rate must never
//! change results, and the flight recorder keeps per-query timelines
//! even for queries the sampler traced out.
//!
//! The obs span buffer, recorder ring, and metrics registry are
//! process-global, so these tests serialize on a mutex and reset the
//! relevant state before each scenario.

use std::collections::{HashMap, HashSet};
use std::sync::{Mutex, MutexGuard};

use tiptoe_core::config::TiptoeConfig;
use tiptoe_core::instance::TiptoeInstance;
use tiptoe_corpus::synth::{generate, Corpus, CorpusConfig};
use tiptoe_embed::text::TextEmbedder;
use tiptoe_obs::recorder::{self, EventKind};
use tiptoe_obs::SpanRecord;

const DOCS: usize = 200;
const SEED: u64 = 83;
const SHARDS: usize = 3;

/// Serializes tests touching the global obs state and resets tracing,
/// sampling, spans, and the flight recorder on entry and exit.
struct ObsGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

fn obs_lock() -> ObsGuard {
    static LOCK: Mutex<()> = Mutex::new(());
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    reset_obs();
    ObsGuard(guard)
}

impl Drop for ObsGuard {
    fn drop(&mut self) {
        reset_obs();
    }
}

fn reset_obs() {
    tiptoe_obs::disable();
    tiptoe_obs::set_trace_path(None);
    tiptoe_obs::set_span_sample(1);
    tiptoe_obs::clear_spans();
    recorder::reset();
}

fn build() -> (Corpus, TiptoeInstance<TextEmbedder>) {
    let corpus = generate(&CorpusConfig::small(DOCS, SEED), 24);
    let mut config = TiptoeConfig::test_small(DOCS, SEED);
    config.num_shards = SHARDS;
    config.validate();
    let embedder = TextEmbedder::new(config.d_embed, SEED, 0);
    let instance = TiptoeInstance::build(&config, embedder, &corpus);
    (corpus, instance)
}

/// Runs `clients` concurrent served searches (one query each) and
/// returns their (cluster, hits) results in client order.
///
/// The driver thread holds an open query scope for the whole cohort:
/// a client whose scope opens while no other query is active clears
/// the span buffer (the intended boundary semantics for sequential
/// CLI queries), so on a loaded box where the cohort's threads
/// serialize, a later client would wipe an earlier client's spans and
/// the completeness asserts would see missing roots.
fn run_cohort(
    corpus: &Corpus,
    instance: &TiptoeInstance<TextEmbedder>,
    clients: usize,
) -> Vec<(usize, Vec<tiptoe_core::client::RankedUrl>)> {
    let _cohort_scope = tiptoe_obs::query_scope();
    let plane = instance.serving_plane();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|i| {
                let (plane, corpus, instance) = (&plane, corpus, instance);
                scope.spawn(move || {
                    let mut c = instance.new_client(700 + i as u64);
                    let q = &corpus.queries[i % corpus.queries.len()];
                    let r = c.search_served(instance, &q.text, 10, plane);
                    (r.cluster, r.hits)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    })
}

/// Ids reachable from the `client.query` roots by following parent
/// edges downward and *follows* edges forward, to a fixpoint.
fn reachable_from_roots(spans: &[SpanRecord]) -> HashSet<u64> {
    let mut reachable: HashSet<u64> =
        spans.iter().filter(|s| s.name == "client.query").map(|s| s.id).collect();
    loop {
        let before = reachable.len();
        for s in spans {
            if reachable.contains(&s.id) {
                continue;
            }
            let via_parent = s.parent.is_some_and(|p| reachable.contains(&p));
            let via_follows = s.follows.iter().any(|f| reachable.contains(f));
            if via_parent || via_follows {
                reachable.insert(s.id);
            }
        }
        if reachable.len() == before {
            return reachable;
        }
    }
}

/// Asserts the snapshot is a complete forest for `clients` queries:
/// one `client.query` root per query, flush spans present and linked
/// to every batched member, and no span unreachable from the roots.
fn assert_complete(spans: &[SpanRecord], clients: usize) {
    let roots: Vec<&SpanRecord> = spans.iter().filter(|s| s.name == "client.query").collect();
    assert_eq!(roots.len(), clients, "one client.query root per query");
    for r in &roots {
        assert!(r.parent.is_none(), "client.query must be a root span");
    }

    let flushes: Vec<&SpanRecord> =
        spans.iter().filter(|s| s.name == "net.coalesce.flush").collect();
    assert!(!flushes.is_empty(), "served queries must record flush spans");
    for f in &flushes {
        assert!(
            f.parent.is_some(),
            "a flush span must be parented under its delegate's submission"
        );
        assert!(!f.follows.is_empty(), "a flush span must follow from its batched members");
    }
    // The kernel work runs *under* the flush spans, not beside them.
    let by_id: HashMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    let flush_ids: HashSet<u64> = flushes.iter().map(|f| f.id).collect();
    assert!(
        spans.iter().any(|s| s.parent.is_some_and(|p| flush_ids.contains(&p))),
        "flush spans must have kernel children"
    );

    let reachable = reachable_from_roots(spans);
    let orphans: Vec<String> = spans
        .iter()
        .filter(|s| !reachable.contains(&s.id))
        .map(|s| {
            let parent = s.parent.and_then(|p| by_id.get(&p)).map(|p| p.display_name());
            format!("{} (parent {:?}, follows {:?})", s.display_name(), parent, s.follows)
        })
        .collect();
    assert!(orphans.is_empty(), "{} orphan spans: {:?}", orphans.len(), orphans);
}

/// Every query in a coalesced cohort — below, at, and well past the
/// coalescer's batch size — yields a span tree rooted at its own
/// `client.query`, with the shared flush spans reachable through the
/// delegated-flush path and zero orphans (the defect this suite
/// pins: flush spans used to be parentless on the delegate's
/// thread-local stack).
#[test]
fn every_coalesced_query_yields_a_complete_span_tree() {
    let _guard = obs_lock();
    let (corpus, instance) = build();
    for clients in [1usize, 3, 19] {
        tiptoe_obs::clear_spans();
        tiptoe_obs::enable();
        let results = run_cohort(&corpus, &instance, clients);
        let spans = tiptoe_obs::spans_snapshot();
        tiptoe_obs::disable();
        assert_eq!(results.len(), clients);
        assert!(!spans.is_empty(), "tracing enabled but no spans recorded");
        assert_complete(&spans, clients);
    }
}

/// A reactor crash mid-cohort (the timer thread dies and restarts;
/// parked waiters drain abandoned batches through the fallback path)
/// must not orphan any span: the fallback flush is a delegated flush
/// like any other and stays linked to every member it answers.
#[test]
fn reactor_crash_chaos_keeps_traces_complete() {
    let _guard = obs_lock();
    let (corpus, instance) = build();
    let clients = 5usize;
    tiptoe_obs::enable();
    tiptoe_net::chaos_inject_reactor_panic();
    let results = run_cohort(&corpus, &instance, clients);
    let spans = tiptoe_obs::spans_snapshot();
    tiptoe_obs::disable();
    assert_eq!(results.len(), clients, "a reactor crash must not lose queries");
    assert_complete(&spans, clients);
}

/// The tracing switch is behaviorally invisible through the
/// delegated-flush path: the same cohort traced and untraced returns
/// bit-identical clusters and hits.
#[test]
fn tracing_switch_never_changes_coalesced_results() {
    let _guard = obs_lock();
    let (corpus, instance) = build();
    let clients = 7usize;
    let untraced = run_cohort(&corpus, &instance, clients);
    tiptoe_obs::enable();
    let traced = run_cohort(&corpus, &instance, clients);
    tiptoe_obs::disable();
    assert_eq!(untraced, traced, "tracing on/off must be bit-identical");
}

/// Span sampling (`TIPTOE_TRACE_SAMPLE`) composes with the flight
/// recorder: a sampled-out query records no spans but still gets a
/// full per-query timeline (lane events plus its typed outcome), and
/// sampling never changes results or the transcript's wire
/// accounting.
#[test]
fn sampled_out_queries_still_get_recorder_timelines() {
    let _guard = obs_lock();
    let (corpus, instance) = build();
    let q = &corpus.queries[0];

    // Baseline: trace every query.
    let plane = instance.serving_plane();
    let baseline = {
        let mut c = instance.new_client(900);
        c.search_served(&instance, &q.text, 10, &plane)
    };

    // 1-in-1000 sampling: queries after the first are sampled out.
    tiptoe_obs::enable();
    tiptoe_obs::set_span_sample(1000);
    recorder::reset();
    let up_before = instance.transcript.total(tiptoe_net::Direction::Upload);
    let down_before = instance.transcript.total(tiptoe_net::Direction::Download);
    let mut c = instance.new_client(901);
    let first = c.search_served(&instance, &q.text, 10, &plane);
    tiptoe_obs::clear_spans();
    let mut c = instance.new_client(900);
    let sampled_out = c.search_served(&instance, &q.text, 10, &plane);
    let spans = tiptoe_obs::spans_snapshot();
    tiptoe_obs::disable();
    tiptoe_obs::set_span_sample(1);

    // The sampler actually suppressed the second query's spans ...
    assert!(
        !spans.iter().any(|s| s.name == "client.query"),
        "the sampled-out query must record no spans"
    );
    // ... without changing what either query returned or shipped.
    assert_eq!(sampled_out.hits, baseline.hits, "sampling must not change results");
    assert_eq!(first.hits, baseline.hits, "the sampled query must match too");
    assert_eq!(
        sampled_out.cost.rank_up, baseline.cost.rank_up,
        "sampling must not change wire accounting"
    );
    assert_eq!(sampled_out.cost.rank_down, baseline.cost.rank_down);
    assert!(
        instance.transcript.total(tiptoe_net::Direction::Upload) > up_before
            && instance.transcript.total(tiptoe_net::Direction::Download) > down_before,
        "both queries reached the transcript"
    );

    // The flight recorder is always on: both queries (the traced one
    // and the sampled-out one) own complete timelines ending in an OK
    // outcome, with the coalescer's lane events inside.
    let finished: Vec<u64> = recorder::events()
        .into_iter()
        .filter(|e| e.kind == EventKind::Finished)
        .map(|e| e.query)
        .collect();
    assert!(
        finished.len() >= 2,
        "both queries must close their timelines (got {finished:?})"
    );
    for query in finished.iter().rev().take(2) {
        let timeline = recorder::timeline(*query);
        assert!(
            timeline.iter().any(|e| e.kind == EventKind::LaneEnqueued),
            "query {query} timeline lacks lane events: {timeline:?}"
        );
        assert!(
            timeline.iter().any(|e| e.kind == EventKind::LaneFlushed),
            "query {query} timeline lacks flush events: {timeline:?}"
        );
        let last = timeline.last().expect("non-empty timeline");
        assert_eq!(last.kind, EventKind::Finished);
        assert_eq!(last.a, tiptoe_obs::recorder::result_code::OK);
    }
}
