//! End-to-end fault-injection tests for the degraded-mode query path.
//!
//! The simulated cluster (see `tiptoe-net::fault`) injects crashes,
//! stragglers, corruption, and truncation deterministically from a
//! seeded [`FaultPlan`]; the coordinator recovers with timeouts,
//! bounded retries, and hedged requests per [`FaultPolicy`]. These
//! tests drive full private searches through that machinery.

use std::time::Duration;

use tiptoe_core::client::TiptoeClient;
use tiptoe_core::config::TiptoeConfig;
use tiptoe_core::instance::TiptoeInstance;
use tiptoe_corpus::synth::{generate, CorpusConfig};
use tiptoe_embed::text::TextEmbedder;
use tiptoe_net::{FaultKind, FaultPlan, FaultPolicy};

const DOCS: usize = 220;
const SEED: u64 = 51;

/// Builds matching instances; only the fault policy differs.
fn build(enabled: bool, num_shards: usize) -> TiptoeInstance<TextEmbedder> {
    build_with_policy(
        if enabled { Some(FaultPolicy::tolerant()) } else { None },
        num_shards,
    )
}

fn build_with_policy(
    policy: Option<FaultPolicy>,
    num_shards: usize,
) -> TiptoeInstance<TextEmbedder> {
    let corpus = generate(&CorpusConfig::small(DOCS, SEED), 20);
    let mut config = TiptoeConfig::test_small(DOCS, SEED);
    config.num_shards = num_shards;
    if let Some(policy) = policy {
        config.fault_policy = policy;
    }
    config.validate();
    let embedder = TextEmbedder::new(config.d_embed, SEED, 0);
    TiptoeInstance::build(&config, embedder, &corpus)
}

/// The tolerant policy with hedging off, so first-attempt faults must
/// go through the retry path instead of being absorbed by the hedge.
fn no_hedge() -> FaultPolicy {
    FaultPolicy { hedge_after: None, ..FaultPolicy::tolerant() }
}

fn client(instance: &TiptoeInstance<TextEmbedder>) -> TiptoeClient {
    instance.new_client(7)
}

#[test]
fn benign_plan_results_are_bit_identical_to_the_plain_path() {
    // Acceptance bar: with no faults injected, the fault-tolerant path
    // (per-shard tokens, enveloped dispatch, survivor-subset
    // decryption) returns byte-for-byte the hits of the raw fan-out.
    let plain = build(false, 3);
    let tolerant = build(true, 3);
    let mut c_plain = client(&plain);
    let mut c_tol = client(&tolerant);
    for query in ["museum history archive", "health doctor symptoms", "travel island beach"] {
        let a = c_plain.search(&plain, query, 10);
        let b = c_tol.search_with_faults(&tolerant, query, 10, &FaultPlan::none());
        assert_eq!(a.cluster, b.cluster, "{query}: cluster drifted");
        assert_eq!(a.hits, b.hits, "{query}: hits drifted");
        let dq = b.degraded.expect("fault-tolerant searches report degraded state");
        assert!(dq.missing_clusters.is_empty());
        assert!(!dq.url_failed && !dq.searched_cluster_missing);
        assert!(dq.rank_report.all_ok() && dq.url_report.all_ok());
        assert_eq!(dq.rank_report.retries + dq.url_report.retries, 0);
    }
}

#[test]
fn crashed_shard_plus_straggler_degrades_within_the_deadline() {
    // The headline scenario: one ranking shard is hard-crashed and
    // another is 10x slow. The query must still complete within the
    // policy deadline, return ranked results over the surviving
    // shards, and report exactly the crashed shard's clusters missing.
    let plain = build(false, 3);
    let tolerant = build(true, 3);
    let policy = tolerant.config.fault_policy;
    let query = "museum history archive";

    // Learn which shard owns the searched cluster, then crash one of
    // the *other* shards so the searched scores survive.
    let reference = client(&plain).search(&plain, query, 10);
    let owner = (0..tolerant.ranking.num_shards())
        .find(|&w| {
            let (lo, hi) = tolerant.ranking.shard_clusters(w);
            (lo..hi).contains(&reference.cluster)
        })
        .expect("every cluster has a shard");
    let crashed = (owner + 1) % tolerant.ranking.num_shards();
    let straggler = (owner + 2) % tolerant.ranking.num_shards();
    let plan = FaultPlan::none().crash_shard(crashed).with_fault(
        straggler,
        0,
        FaultKind::Straggle { factor: 10.0, extra: Duration::from_secs(10) },
    );

    let results = client(&tolerant).search_with_faults(&tolerant, query, 10, &plan);
    let dq = results.degraded.expect("degraded state");

    // Ranked results over the surviving shards, identical to the
    // healthy run (the searched cluster's shard answered).
    assert_eq!(results.cluster, reference.cluster);
    assert_eq!(results.hits, reference.hits);
    assert!(!dq.searched_cluster_missing);

    // Exactly the crashed shard's clusters are reported missing.
    let (lo, hi) = tolerant.ranking.shard_clusters(crashed);
    assert_eq!(dq.missing_clusters, (lo..hi).collect::<Vec<_>>());
    assert_eq!(dq.rank_report.failed_shards(), vec![crashed]);

    // The crash burned every retry; the straggler was rescued by the
    // hedged second request. Everything stayed inside the deadline.
    assert!(dq.rank_report.retries >= policy.max_retries);
    assert!(dq.rank_report.timeouts > policy.max_retries);
    assert!(dq.rank_report.hedges >= 1, "straggler should have hedged");
    assert!(
        dq.rank_report.timing.wall <= policy.deadline,
        "virtual wall {:?} blew the deadline {:?}",
        dq.rank_report.timing.wall,
        policy.deadline
    );
    assert!(dq.url_report.all_ok() && !dq.url_failed);
}

#[test]
fn hedged_request_beats_a_ten_x_straggler() {
    // Deterministic hedging proof: the straggler's first attempt is
    // 10x slow (plus a 10 s fixed delay, far beyond any timeout), so
    // only the hedge can save the shard — and it must, well before the
    // attempt timeout would even expire.
    let tolerant = build(true, 3);
    let policy = tolerant.config.fault_policy;
    let hedge_after = policy.hedge_after.expect("default policy hedges");
    let plan = FaultPlan::none().with_fault(
        1,
        0,
        FaultKind::Straggle { factor: 10.0, extra: Duration::from_secs(10) },
    );
    let results = client(&tolerant).search_with_faults(&tolerant, "travel island beach", 5, &plan);
    let dq = results.degraded.expect("degraded state");
    assert!(dq.rank_report.all_ok(), "hedge must rescue the straggler");
    assert_eq!(dq.rank_report.retries, 0, "no retry: the hedge races the primary");
    assert!(dq.rank_report.hedges >= 1);
    assert!(dq.rank_report.shards[1].hedged);
    assert!(dq.rank_report.shards[1].wall >= hedge_after);
    assert!(dq.rank_report.timing.wall <= policy.deadline);
    assert!(!results.hits.is_empty());
}

#[test]
fn flaky_shard_recovers_via_retry() {
    let plain = build(false, 3);
    let tolerant = build_with_policy(Some(no_hedge()), 3);
    let query = "health doctor symptoms";
    let reference = client(&plain).search(&plain, query, 10);
    let plan = FaultPlan::none().flaky_then_recover(2, 1);
    let results = client(&tolerant).search_with_faults(&tolerant, query, 10, &plan);
    let dq = results.degraded.expect("degraded state");
    assert!(dq.rank_report.all_ok(), "one crash then recovery must succeed");
    assert!(dq.rank_report.retries >= 1);
    assert!(dq.missing_clusters.is_empty());
    assert_eq!(results.hits, reference.hits, "recovered run matches the healthy run");
}

#[test]
fn corrupted_and_truncated_responses_are_rejected_and_retried() {
    let plain = build(false, 3);
    let tolerant = build_with_policy(Some(no_hedge()), 3);
    let query = "recipe kitchen cooking";
    let reference = client(&plain).search(&plain, query, 10);
    let plan = FaultPlan::none()
        .with_fault(0, 0, FaultKind::Corrupt)
        .with_fault(1, 0, FaultKind::Truncate);
    let results = client(&tolerant).search_with_faults(&tolerant, query, 10, &plan);
    let dq = results.degraded.expect("degraded state");
    assert!(dq.rank_report.all_ok());
    assert!(dq.rank_report.corrupted >= 2, "both tampered responses must be caught");
    assert!(dq.rank_report.retries >= 2);
    assert!(
        dq.rank_report.wasted_response_bytes > 0,
        "rejected responses must be charged to the retry ledger"
    );
    assert_eq!(results.hits, reference.hits);
    // Wasted bytes surfaced in the shared transcript.
    use tiptoe_net::{Direction, Phase};
    assert_eq!(
        tolerant.transcript.phase_total(Phase::RankingRetries, Direction::Download),
        dq.rank_report.wasted_response_bytes
    );
}

#[test]
fn url_server_crash_degrades_to_empty_hits_not_a_panic() {
    // The URL server lives at plan address W, after the ranking
    // shards. Crashing it must not lose the ranking answer: the query
    // completes, flags `url_failed`, and returns no hits.
    let tolerant = build(true, 3);
    let url_addr = tolerant.ranking.num_shards();
    let plan = FaultPlan::none().crash_shard(url_addr);
    let results = client(&tolerant).search_with_faults(&tolerant, "museum history archive", 5, &plan);
    let dq = results.degraded.expect("degraded state");
    assert!(dq.rank_report.all_ok(), "ranking shards were healthy");
    assert!(dq.url_failed);
    assert!(!dq.url_report.all_ok());
    assert!(results.hits.is_empty());
    // The accounted download is the full-phase size even on failure
    // (the observable wire footprint must not depend on faults).
    assert_eq!(results.cost.url_down, (tolerant.url.database().rows() * 4) as u64);
}

#[test]
fn searched_cluster_crash_is_reported_and_scores_zero() {
    // When the searched cluster's own shard dies, the client must say
    // so rather than silently returning garbage rankings.
    let tolerant = build(true, 3);
    let query = "travel island beach";
    // Find the shard that owns the searched cluster via a benign probe.
    let probe = client(&tolerant).search_with_faults(&tolerant, query, 5, &FaultPlan::none());
    let owner = (0..tolerant.ranking.num_shards())
        .find(|&w| {
            let (lo, hi) = tolerant.ranking.shard_clusters(w);
            (lo..hi).contains(&probe.cluster)
        })
        .expect("cluster has a shard");
    let plan = FaultPlan::none().crash_shard(owner);
    let results = client(&tolerant).search_with_faults(&tolerant, query, 5, &plan);
    let dq = results.degraded.expect("degraded state");
    assert!(dq.searched_cluster_missing);
    assert!(dq.missing_clusters.contains(&results.cluster));
    // Surviving-shard scores are exact zeros for the dead cluster, so
    // every surfaced hit carries a zero score.
    for hit in &results.hits {
        assert_eq!(hit.score, 0.0, "dead cluster must not fabricate scores");
    }
}

#[test]
fn all_ranking_shards_down_still_returns_cleanly() {
    let tolerant = build(true, 2);
    let plan = FaultPlan::none().crash_shard(0).crash_shard(1);
    let results = client(&tolerant).search_with_faults(&tolerant, "health doctor", 5, &plan);
    let dq = results.degraded.expect("degraded state");
    assert_eq!(dq.rank_report.failed_shards().len(), 2);
    assert!(dq.searched_cluster_missing);
    let total_clusters = tolerant.ranking.shard_clusters(1).1;
    assert_eq!(dq.missing_clusters.len(), total_clusters);
    for hit in &results.hits {
        assert_eq!(hit.score, 0.0);
    }
}
