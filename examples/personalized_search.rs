//! Personalized private search (paper §9): blend a private profile
//! into the query embedding *client-side* — the servers run unchanged
//! and never see the profile.
//!
//! ```text
//! cargo run --release --example personalized_search
//! ```

use tiptoe_core::config::TiptoeConfig;
use tiptoe_core::instance::TiptoeInstance;
use tiptoe_corpus::synth::{Corpus, Document};
use tiptoe_embed::personalize::PersonalizedEmbedder;
use tiptoe_embed::text::TextEmbedder;
use tiptoe_embed::Embedder;

fn main() {
    // A corpus of "restaurants" in two cities plus unrelated pages.
    let mut docs = Vec::new();
    let mut add = |url: &str, text: &str| {
        docs.push(Document {
            id: docs.len() as u32,
            url: url.to_owned(),
            text: text.to_owned(),
            topic: 0,
        });
    };
    for i in 0..40 {
        add(
            &format!("https://eat.example/tokyo/{i}"),
            &format!("restaurant tokyo shibuya ramen sushi izakaya dinner menu {i}"),
        );
        add(
            &format!("https://eat.example/paris/{i}"),
            &format!("restaurant paris montmartre bistro croissant wine dinner menu {i}"),
        );
        add(
            &format!("https://news.example/{i}"),
            &format!("quarterly market news finance report earnings {i}"),
        );
    }
    let corpus = Corpus { docs, queries: Vec::new() };
    let config = TiptoeConfig::test_small(corpus.docs.len(), 41);
    let base = TextEmbedder::new(config.d_embed, 41, 0);

    // The server indexes with the plain model; personalization is a
    // client-side wrapper only.
    let instance = TiptoeInstance::build(&config, base.clone(), &corpus);
    println!("== Tiptoe personalized search: {} documents ==\n", instance.artifacts.meta.c);

    let count_city = |hits: &[tiptoe_core::client::RankedUrl], city: &str| {
        hits.iter().filter(|h| h.url.contains(city)).count()
    };

    // Query WITHOUT a profile.
    let mut plain_client = instance.new_client(1);
    let plain = plain_client.search(&instance, "restaurant dinner", 8);
    println!("'restaurant dinner' without a profile:");
    println!(
        "  tokyo {} / paris {} of {} results\n",
        count_city(&plain.hits, "tokyo"),
        count_city(&plain.hits, "paris"),
        plain.hits.len()
    );

    // The same query with city profiles: the client embeds with the
    // personalized wrapper; the server-side index is IDENTICAL (built
    // from the plain model's document embeddings).
    let raw_docs: Vec<Vec<f32>> =
        corpus.docs.iter().map(|d| base.embed_text(&d.text)).collect();
    for (city, hint) in [("tokyo", "tokyo shibuya japan ramen"), ("paris", "paris montmartre france bistro")] {
        let profile = base.embed_text(hint);
        let personalized = PersonalizedEmbedder::new(base.clone(), profile, 0.45);
        let p_instance = TiptoeInstance::build_with_embeddings(
            &config,
            personalized,
            &corpus,
            raw_docs.clone(),
        );
        let mut client = p_instance.new_client(2);
        let results = client.search(&p_instance, "restaurant dinner", 8);
        println!("'restaurant dinner' with a {city} profile (client-side blend):");
        println!(
            "  tokyo {} / paris {} of {} results",
            count_city(&results.hits, "tokyo"),
            count_city(&results.hits, "paris"),
            results.hits.len()
        );
    }
    println!("\nThe profiles never left the client: every deployment's servers saw the");
    println!("same index and only ciphertext queries.");
}
