//! Private web search over a larger synthetic crawl, with the
//! Figure 5-style sample-query output and a per-phase cost breakdown.
//!
//! ```text
//! cargo run --release --example web_search [num_docs]
//! ```

use tiptoe_core::config::TiptoeConfig;
use tiptoe_core::instance::TiptoeInstance;
use tiptoe_corpus::synth::{generate, CorpusConfig};
use tiptoe_embed::text::TextEmbedder;
use tiptoe_math::stats::{fmt_bytes, fmt_seconds};
use tiptoe_net::LinkModel;

fn main() {
    let num_docs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10_000);
    println!("== Tiptoe private web search: {num_docs} documents ==\n");

    let corpus = generate(&CorpusConfig::small(num_docs, 11), 20);
    let config = TiptoeConfig::test_small(num_docs, 11);
    let embedder = TextEmbedder::new(config.d_embed, 11, 0);

    let t0 = std::time::Instant::now();
    let instance = TiptoeInstance::build(&config, embedder, &corpus);
    println!(
        "index built in {} ({:.4} core-s/doc; paper: 0.013)",
        fmt_seconds(t0.elapsed().as_secs_f64()),
        instance.artifacts.report.core_seconds_per_doc(num_docs),
    );
    println!(
        "  {} clusters, padded cluster size {}, {} URL batches",
        instance.artifacts.meta.c, instance.artifacts.meta.rows, instance.artifacts.meta.num_batches,
    );

    let mut client = instance.new_client(3);
    let link = LinkModel::paper();

    // Figure 5-style: print top answers for sampled benchmark queries.
    println!("\n-- sample queries (answers are synthetic URLs) --");
    let mut shown = 0;
    for q in corpus.queries.iter().take(5) {
        let results = client.search(&instance, &q.text, 3);
        println!("\nQ: {}", q.text);
        for (i, hit) in results.hits.iter().enumerate() {
            let marker = if hit.doc == q.relevant { "  <- ground-truth answer" } else { "" };
            println!("  {}. {}{}", i + 1, hit.url, marker);
        }
        shown += 1;
        if shown == 5 {
            // Detailed cost breakdown for the last query.
            let c = &results.cost;
            println!("\n-- per-query cost breakdown (cf. Table 7) --");
            println!("  up,   token : {}", fmt_bytes(c.token_up));
            println!("  up,   rank  : {}", fmt_bytes(c.rank_up));
            println!("  up,   URL   : {}", fmt_bytes(c.url_up));
            println!("  down, token : {}", fmt_bytes(c.token_down));
            println!("  down, rank  : {}", fmt_bytes(c.rank_down));
            println!("  down, URL   : {}", fmt_bytes(c.url_down));
            println!(
                "  offline share of traffic: {:.0}% (paper: 74%)",
                100.0 * c.offline_bytes() as f64 / c.total_bytes() as f64
            );
            println!(
                "  server compute: {:.1} core-ms; perceived latency ~{}",
                c.server_core_seconds() * 1e3,
                fmt_seconds(c.perceived_latency(&link).as_secs_f64()),
            );
        }
    }
}
