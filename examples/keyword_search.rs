//! Exact keyword search backends (paper §9): embedding search is weak
//! on phone numbers and addresses, so those route to private key-value
//! lookups.
//!
//! ```text
//! cargo run --release --example keyword_search
//! ```

use tiptoe_core::keyword::{extract_key, KeyKind, KeywordBackend};
use tiptoe_lwe::LweParams;
use tiptoe_math::rng::seeded_rng;
use tiptoe_rlwe::RlweParams;
use tiptoe_underhood::{ClientKey, Underhood};

fn main() {
    println!("== Tiptoe exact keyword search backends ==\n");

    // Small (fast) crypto parameters for the demo.
    let uh = || {
        Underhood::with_outer(
            LweParams::insecure_test(32, 991, 6.4),
            RlweParams { degree: 64, q_bits: 58, t: 1 << 24, sigma: 3.2 },
            44,
        )
    };

    // Phone-number backend: canonical digits -> document IDs.
    let phone_entries = vec![
        ("617-253-0000".to_owned(), 101u32),
        ("(617) 253-0000".to_owned(), 102),
        ("415-555-2671".to_owned(), 205),
        ("+44 20 7946 0958".to_owned(), 310),
    ];
    let phones = KeywordBackend::build_with(KeyKind::PhoneNumber, &phone_entries, 32, 1, uh());

    // Address backend.
    let address_entries = vec![
        ("123 Main Street, New York".to_owned(), 400u32),
        ("1600 Amphitheatre Parkway".to_owned(), 401),
        ("221B Baker Street".to_owned(), 402),
    ];
    let addresses = KeywordBackend::build_with(KeyKind::Address, &address_entries, 32, 2, uh());

    let mut rng = seeded_rng(3);
    let key = ClientKey::generate(phones.underhood(), phones.underhood().lwe().n, &mut rng);

    for query in [
        "call 617 253 0000 now",
        "who lives at 123 Main Street, New York",
        "knee pain", // no exact key -> falls back to embedding search
    ] {
        println!("Q: {query}");
        match extract_key(query) {
            Some((KeyKind::PhoneNumber, _)) => {
                let docs = phones.lookup(&key, query, &mut rng);
                println!("  routed to phone backend -> documents {docs:?}");
            }
            Some((KeyKind::Address, canonical)) => {
                let docs = addresses.lookup(&key, &canonical, &mut rng);
                debug_assert!(!canonical.is_empty());
                println!("  routed to address backend -> documents {docs:?}");
            }
            _ => println!("  no exact-string key found -> embedding search path"),
        }
        println!();
    }
    println!("Each lookup PIR-fetched one hash bucket: the backends never");
    println!("learned which key was queried.");
}
