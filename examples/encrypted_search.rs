//! Private search over an *encrypted* corpus (paper §9): the client
//! owns the documents, the server stores only ciphertext, and queries
//! reveal nothing — not even to a server that also can't read the
//! corpus.
//!
//! ```text
//! cargo run --release --example encrypted_search
//! ```

use rand::Rng;
use tiptoe_core::config::TiptoeConfig;
use tiptoe_core::encrypted::{build_encrypted_index, search_encrypted, PrivateDoc};
use tiptoe_embed::text::TextEmbedder;
use tiptoe_embed::Embedder;
use tiptoe_math::rng::seeded_rng;
use tiptoe_math::stats::fmt_bytes;
use tiptoe_underhood::ClientKey;

fn main() {
    let mut config = TiptoeConfig::test_small(120, 29);
    let mut rng = seeded_rng(29);

    // The client's private document collection (think: personal notes,
    // mail, internal wikis). Embedded locally with a local model.
    let embedder = TextEmbedder::new(96, 29, 0);
    config.d_embed = 96;
    config.d_reduced = 96; // client-side pipeline; skip PCA for clarity
    let topics = [
        ("notes/quarterly-budget.md", "budget forecast spending quarterly finance planning"),
        ("notes/garden-layout.md", "garden tomato layout soil compost spring planting"),
        ("notes/rust-profiling.md", "rust profiling performance flamegraph optimization"),
        ("mail/travel-itinerary.eml", "flight hotel itinerary tokyo travel booking"),
        ("mail/doctor-appointment.eml", "doctor appointment knee pain clinic schedule"),
        ("wiki/deploy-runbook.md", "deploy runbook rollback incident production checklist"),
    ];
    let docs: Vec<PrivateDoc> = (0..120)
        .map(|i| {
            let (path, words) = topics[i % topics.len()];
            let mut text = String::from(words);
            // Per-document variation.
            text.push_str(&format!(" note{} extra{}", i, rng.gen_range(0..50)));
            PrivateDoc {
                id: i as u32,
                url: format!("file:///home/me/{}-{}", i, path),
                embedding: embedder.embed_text(&text),
            }
        })
        .collect();

    println!("== Tiptoe private search over an encrypted corpus ==\n");
    let (index_key, server) = build_encrypted_index(&config, &docs, 0x5e_c2e7_1234);
    println!(
        "server stores {} of ciphertext ({} records); plaintext never leaves the client\n",
        fmt_bytes(server.storage_bytes()),
        docs.len(),
    );

    let client_key = ClientKey::generate(server.underhood(), server.underhood().lwe().n, &mut rng);
    for query in ["knee pain appointment", "tomato compost planting", "rollback incident"] {
        let q_emb = embedder.embed_text(query);
        let hits = search_encrypted(&index_key, &server, &client_key, &q_emb, 3, &mut rng);
        println!("Q: {query}");
        for (id, url, score) in &hits {
            println!("  #{id:<4} {url} (score {score:.3})");
        }
        println!();
    }
}
