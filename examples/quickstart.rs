//! Quickstart: build a Tiptoe deployment over a small synthetic web
//! corpus and run a few private searches.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tiptoe_core::config::TiptoeConfig;
use tiptoe_core::instance::TiptoeInstance;
use tiptoe_corpus::synth::{generate, CorpusConfig};
use tiptoe_embed::text::TextEmbedder;
use tiptoe_math::stats::{fmt_bytes, fmt_seconds};
use tiptoe_net::LinkModel;

fn main() {
    // 1. A 2 000-document synthetic web corpus (stands in for C4).
    let corpus = generate(&CorpusConfig::small(2000, 7), 5);
    println!("corpus: {} documents, {} of text", corpus.docs.len(), fmt_bytes(corpus.text_bytes()));

    // 2. Batch jobs + services. `test_small` keeps the lattice
    //    dimensions tiny so the demo runs in seconds; swap in
    //    `TiptoeConfig::text` for the paper's full parameters.
    let config = TiptoeConfig::test_small(corpus.docs.len(), 7);
    let embedder = TextEmbedder::new(config.d_embed, 7, 0);
    let instance = TiptoeInstance::build(&config, embedder, &corpus);
    println!(
        "deployment: {} clusters x {} docs, {} ranking shards, {} server state",
        instance.artifacts.meta.c,
        instance.artifacts.meta.rows,
        instance.ranking.num_shards(),
        fmt_bytes(instance.server_storage_bytes()),
    );

    // 3. A client: downloads metadata once, prefetches a query token.
    let mut client = instance.new_client(1);
    println!("client setup download: {}", fmt_bytes(client.setup_bytes));
    let token_cost = client.fetch_token(&instance);
    println!(
        "token prefetch (before the query is typed): up {}, down {}",
        fmt_bytes(token_cost.token_up),
        fmt_bytes(token_cost.token_down),
    );

    // 4. Private searches. The services only ever see ciphertexts.
    let link = LinkModel::paper();
    for query in ["museum history archive", "health doctor advice", &corpus.queries[0].text] {
        let results = client.search(&instance, query, 5);
        println!("\nQ: {query}");
        for (i, hit) in results.hits.iter().enumerate() {
            println!("  {}. {} (score {:.3})", i + 1, hit.url, hit.score);
        }
        let c = &results.cost;
        println!(
            "  cost: {} online ({} offline), {:.0} core-ms server, ~{} perceived",
            fmt_bytes(c.online_bytes()),
            fmt_bytes(c.offline_bytes()),
            c.server_core_seconds() * 1e3,
            fmt_seconds(c.perceived_latency(&link).as_secs_f64()),
        );
    }
}
