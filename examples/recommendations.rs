//! Private recommendations (paper §9): retrieve the catalog items
//! nearest a client's profile vector without revealing the profile —
//! or the recommendations — to the service.
//!
//! ```text
//! cargo run --release --example recommendations
//! ```

use rand::Rng;
use tiptoe_core::config::TiptoeConfig;
use tiptoe_core::recommend::{Item, RecommendationEngine};
use tiptoe_embed::vector::{add_assign, normalize, scale};
use tiptoe_math::rng::seeded_rng;
use tiptoe_underhood::ClientKey;

fn main() {
    let config = TiptoeConfig::test_small(240, 23);
    let d = config.d_reduced;
    let mut rng = seeded_rng(23);

    // A catalog with 8 latent "genres": items cluster around genre
    // anchors, like embeddings of films or products would.
    let genres = ["sci-fi", "cooking", "jazz", "hiking", "history", "gaming", "poetry", "diy"];
    let anchors: Vec<Vec<f32>> = (0..genres.len())
        .map(|_| {
            let mut a: Vec<f32> = (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            normalize(&mut a);
            a
        })
        .collect();
    let items: Vec<Item> = (0..240)
        .map(|i| {
            let g = i % genres.len();
            let mut e = anchors[g].clone();
            for x in e.iter_mut() {
                *x += rng.gen_range(-0.25f32..0.25);
            }
            normalize(&mut e);
            Item { id: i as u32, name: format!("{}-title-{}", genres[g], i / genres.len()), embedding: e }
        })
        .collect();

    println!("== Tiptoe private recommendations: {} items ==\n", items.len());
    let engine = RecommendationEngine::build(&config, items.clone());
    let key = ClientKey::generate(engine.service().underhood(), config.rank_lwe.n, &mut rng);

    // The client's profile: the mean of its three recently-viewed
    // items (two jazz, one poetry) — never sent in plaintext.
    let viewed = [2usize, 10, 6];
    let mut profile = vec![0.0f32; d];
    for &v in &viewed {
        add_assign(&mut profile, &items[v].embedding);
    }
    scale(&mut profile, 1.0 / viewed.len() as f32);
    println!("recently viewed: {:?}\n", viewed.iter().map(|&v| &items[v].name).collect::<Vec<_>>());

    let recs = engine.recommend(&key, &profile, 6, &mut rng);
    println!("private recommendations:");
    for (id, name, score) in &recs {
        println!("  #{id:<4} {name:<22} (score {score:.3})");
    }
    println!("\nThe service saw only LWE/RLWE ciphertexts: neither the profile");
    println!("vector nor the recommended items are visible to it.");
}
