//! Incremental corpus updates (paper §3.2): index new documents into a
//! live deployment without repeating the cryptographic preprocessing.
//!
//! ```text
//! cargo run --release --example corpus_update
//! ```

use tiptoe_core::config::TiptoeConfig;
use tiptoe_core::instance::TiptoeInstance;
use tiptoe_core::update::UpdateError;
use tiptoe_corpus::synth::{generate, CorpusConfig};
use tiptoe_embed::text::TextEmbedder;
use tiptoe_math::stats::fmt_bytes;

fn main() {
    let corpus = generate(&CorpusConfig::small(1200, 19), 0);
    let config = TiptoeConfig::test_small(1200, 19);
    let embedder = TextEmbedder::new(config.d_embed, 19, 0);
    let mut instance = TiptoeInstance::build(&config, embedder, &corpus);
    println!(
        "deployment: {} docs, {} clusters, {} server state\n",
        corpus.docs.len(),
        instance.artifacts.meta.c,
        fmt_bytes(instance.server_storage_bytes()),
    );

    // New pages arrive after the batch build.
    let fresh = [
        ("https://news.example/breaking/quantum-garden",
         "zzqx quantum gardening techniques for lunar greenhouses breakthrough"),
        ("https://blog.example/rust-search",
         "qvvw building private search engines in rust with homomorphic encryption"),
        ("https://docs.example/tidal-synth",
         "xyyk tidal synthesizer patch design and modular routing guide"),
    ];
    let mut added = Vec::new();
    for (url, text) in fresh {
        match instance.add_document(text, url) {
            Ok(report) => {
                println!(
                    "indexed doc #{} into cluster {} (row {}); clients re-download {} of metadata",
                    report.doc, report.cluster, report.row, fmt_bytes(report.metadata_bytes),
                );
                added.push((report.doc, url, text));
            }
            Err(e @ UpdateError::ClusterFull) | Err(e @ UpdateError::BatchFull) => {
                println!("update deferred ({e}); a production deployment would queue a re-shard");
            }
        }
    }

    // Fresh clients (new metadata + tokens, per §6.3: old tokens are
    // stale once the corpus changes) find the new pages privately.
    println!();
    let mut client = instance.new_client(5);
    for (doc, url, text) in &added {
        let results = client.search(&instance, text, 10);
        let found = results.hits.iter().any(|h| h.doc == *doc && h.url == *url);
        println!("search for the new page -> {}", if found { format!("found {url}") } else { "not in top-10".into() });
    }
    println!("\nEach update cost one rank-one hint correction plus a single NTT-chunk");
    println!("refresh — no full preprocessing re-run.");
}
