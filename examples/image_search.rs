//! Private text-to-image search (paper §7, §8.3): the server indexes
//! CLIP-like *image latents*; the client embeds *text* into the same
//! joint space and privately retrieves the nearest images.
//!
//! ```text
//! cargo run --release --example image_search
//! ```

use tiptoe_core::config::TiptoeConfig;
use tiptoe_core::instance::TiptoeInstance;
use tiptoe_corpus::synth::{BenchmarkQuery, Corpus, Document};
use tiptoe_embed::clip::ClipLikeEmbedder;
use tiptoe_math::stats::fmt_bytes;

/// Builds a synthetic image corpus: each "image" is described by a
/// caption; the document URL points at the image file; the stored
/// embedding is the image latent (caption + noise), as in LAION-400M.
fn image_corpus(clip: &ClipLikeEmbedder, captions: &[String]) -> (Corpus, Vec<Vec<f32>>) {
    let mut docs = Vec::new();
    let mut latents = Vec::new();
    for (i, caption) in captions.iter().enumerate() {
        let img = clip.embed_image(i as u64, caption);
        docs.push(Document {
            id: i as u32,
            url: format!("https://images.example.org/{}/{}.jpg", i % 16, img.id),
            text: caption.clone(), // kept for reference; never embedded
            topic: 0,
        });
        latents.push(img.latent);
    }
    (Corpus { docs, queries: Vec::new() }, latents)
}

fn main() {
    // Captions drawn from a few scene templates (MS-COCO-flavored).
    let subjects = ["a train", "a small dog", "a young man", "fresh vegetables", "a red bicycle",
                    "two children", "a sailboat", "an old clock", "a mountain trail", "a street musician"];
    let contexts = ["next to a train station", "wearing a life jacket", "in a blue shirt",
                    "on a wooden kitchen table", "leaning against a brick wall", "playing in the park",
                    "under a stormy sky", "on a marble mantel", "at sunrise", "in a crowded square"];
    let mut captions = Vec::new();
    for s in &subjects {
        for c in &contexts {
            captions.push(format!("{s} {c}"));
        }
    }
    println!("== Tiptoe private text-to-image search: {} images ==\n", captions.len());

    // Dimension 96 keeps the demo fast; the paper uses CLIP's 512.
    let clip = ClipLikeEmbedder::new(96, 17, 0.3);
    let (corpus, latents) = image_corpus(&clip, &captions);

    let mut config = TiptoeConfig::test_small(corpus.docs.len(), 17);
    config.d_embed = 96;
    config.d_reduced = 48; // image search halves less aggressively (512->384 in the paper)
    let instance = TiptoeInstance::build_with_embeddings(&config, &clip, &corpus, latents);
    println!(
        "index: {} clusters, {} server state\n",
        instance.artifacts.meta.c,
        fmt_bytes(instance.server_storage_bytes())
    );

    let mut client = instance.new_client(9);
    let queries: Vec<BenchmarkQuery> = vec![
        BenchmarkQuery { text: "a train next to a train station".into(), relevant: 0 },
        BenchmarkQuery { text: "a dog wearing a life jacket".into(), relevant: 11 },
        BenchmarkQuery { text: "a young man in a blue shirt".into(), relevant: 22 },
    ];
    for q in &queries {
        let results = client.search(&instance, &q.text, 3);
        println!("Q: {}", q.text);
        for (i, hit) in results.hits.iter().enumerate() {
            let marker = if hit.doc == q.relevant { "   <- the captioned image" } else { "" };
            println!("  {}. {}{}", i + 1, hit.url, marker);
        }
        let online_cpu = results.cost.rank_server.cpu + results.cost.url_server.cpu;
        println!(
            "  ({} online traffic, {:.2} core-ms online server work)\n",
            fmt_bytes(results.cost.online_bytes()),
            online_cpu.as_secs_f64() * 1e3,
        );
    }
}
