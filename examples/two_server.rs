//! The non-colluding two-server mode (paper §9): secret-share the
//! query with distributed point functions instead of encrypting it —
//! dramatically less traffic, at the cost of trusting that the two
//! providers do not collude.
//!
//! ```text
//! cargo run --release --example two_server
//! ```

use tiptoe_core::config::TiptoeConfig;
use tiptoe_core::instance::TiptoeInstance;
use tiptoe_core::noncolluding::{build_replica, search_two_server};
use tiptoe_corpus::synth::{generate, CorpusConfig};
use tiptoe_embed::text::TextEmbedder;
use tiptoe_embed::Embedder;
use tiptoe_math::rng::seeded_rng;
use tiptoe_math::stats::fmt_bytes;

fn main() {
    let corpus = generate(&CorpusConfig::small(1500, 31), 10);
    let config = TiptoeConfig::test_small(1500, 31);
    let embedder = TextEmbedder::new(config.d_embed, 31, 0);
    println!("== Tiptoe two-server mode: {} documents ==\n", corpus.docs.len());

    // Build once; deploy identical replicas to two providers assumed
    // not to collude (say, two different clouds).
    let instance = TiptoeInstance::build(&config, embedder, &corpus);
    let replica = build_replica(&config, &instance.artifacts);
    let mut rng = seeded_rng(1);

    for q in corpus.queries.iter().take(3) {
        let q_raw = instance.embedder.embed_text(&q.text);
        let results = search_two_server(
            &config,
            &instance.artifacts,
            [&replica, &replica],
            &q_raw,
            5,
            &mut rng,
        );
        println!("Q: {}", q.text);
        for (i, (doc, url, score)) in results.hits.iter().enumerate() {
            let mark = if *doc == q.relevant { "  <- ground truth" } else { "" };
            println!("  {}. {} ({score:.3}){mark}", i + 1, url);
        }
        println!(
            "  traffic: {} up (4 DPF keys), {} down (score + record shares)\n",
            fmt_bytes(results.cost.up),
            fmt_bytes(results.cost.down),
        );
    }

    println!("Each provider alone saw only pseudorandom DPF keys and computed");
    println!("plaintext matrix products over them: neither learns the query, the");
    println!("cluster, nor the retrieved URLs unless the two providers collude.");
}
