//! Distributed point functions (DPFs) for Tiptoe's non-colluding
//! two-server mode (paper §9, "Reducing communication with
//! non-colluding services").
//!
//! "If instead the client can communicate with two search services
//! assumed to be non-colluding, we can forgo the use of encryption to
//! substantially reduce the communication costs. … the client would
//! share an encoding of its query embedding (vector q̃ in Figure 10)
//! using a distributed point function. The servers could execute the
//! nearest-neighbor search protocol of §4 on a secret-shared query,
//! instead of an encrypted one."
//!
//! This crate implements the tree-based DPF of Boyle–Gilboa–Ishai
//! (CCS 2016): a *point function* `f_{α,β}` over a power-of-two domain
//! is split into two keys such that (1) each key alone is
//! computationally independent of `(α, β)` and (2) the two full
//! evaluations are additive shares of the vector that is `β` at
//! position `α` and zero elsewhere — exactly the Figure 10 query
//! vector `q̃` when `β` is the client's quantized query block and `α`
//! its cluster index.
//!
//! Shares and outputs live in `Z_{2^32}` (wrapping `u32` arithmetic),
//! matching the plaintext matrix-vector kernels in `tiptoe-math`. The
//! PRG is ChaCha12 (`rand::StdRng`) over 256-bit seeds; a production
//! deployment would swap in fixed-key AES, which changes no interface.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use tiptoe_math::wire::{WireError, WireReader, WireWriter};

/// A 256-bit PRG seed.
pub type Seed = [u8; 32];

/// One level's correction word.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CorrectionWord {
    seed: Seed,
    t_left: bool,
    t_right: bool,
}

/// One party's DPF key.
#[derive(Debug, Clone)]
pub struct DpfKey {
    /// Which party this key belongs to (0 or 1).
    pub party: u8,
    /// Domain height (`2^height` leaves).
    height: u32,
    /// Values per leaf (the block dimension).
    block: usize,
    root_seed: Seed,
    correction: Vec<CorrectionWord>,
    /// Output-layer correction word: converts the on-path leaf seeds'
    /// pseudorandom blocks into additive shares of `β`.
    leaf_cw: Vec<u32>,
}

impl DpfKey {
    /// Wire size in bytes: party + height + root seed + per-level
    /// correction words (32-byte seed + control-bit byte) + the leaf
    /// correction block with its count prefix. This compactness is
    /// what makes the §9 two-server upload ~1 MiB at C4 scale.
    pub fn byte_len(&self) -> u64 {
        2 + 32 + self.correction.len() as u64 * 33 + 4 + self.leaf_cw.len() as u64 * 4
    }

    /// Number of leaves in the domain.
    pub fn domain_size(&self) -> usize {
        1usize << self.height
    }

    /// Values per leaf.
    pub fn block_len(&self) -> usize {
        self.block
    }

    /// Serializes to the wire format (`encode().len() == byte_len()`).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(self.byte_len() as usize);
        w.put_u8(self.party);
        w.put_u8(self.height as u8);
        w.put_bytes(&self.root_seed);
        for cw in &self.correction {
            w.put_bytes(&cw.seed);
            w.put_u8(u8::from(cw.t_left) | (u8::from(cw.t_right) << 1));
        }
        w.put_u32_slice(&self.leaf_cw);
        w.finish()
    }

    /// Parses from the wire format.
    ///
    /// # Errors
    ///
    /// Fails on truncation, invalid fields, or trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let party = r.get_u8()?;
        if party > 1 {
            return Err(WireError::Invalid("party"));
        }
        let height = r.get_u8()? as u32;
        if height > 30 {
            return Err(WireError::Invalid("domain height"));
        }
        let root_seed: Seed =
            r.get_bytes(32)?.try_into().expect("fixed-size slice");
        let mut correction = Vec::with_capacity(height as usize);
        for _ in 0..height {
            let seed: Seed = r.get_bytes(32)?.try_into().expect("fixed-size slice");
            let bits = r.get_u8()?;
            if bits > 3 {
                return Err(WireError::Invalid("correction control bits"));
            }
            correction.push(CorrectionWord {
                seed,
                t_left: bits & 1 == 1,
                t_right: bits & 2 == 2,
            });
        }
        let leaf_cw = r.get_u32_slice()?;
        if leaf_cw.is_empty() {
            return Err(WireError::Invalid("empty leaf block"));
        }
        let block = leaf_cw.len();
        r.finish()?;
        Ok(Self { party, height, block, root_seed, correction, leaf_cw })
    }
}

/// PRG: expands a seed into `(left_seed, t_left, right_seed, t_right)`.
fn prg(seed: &Seed) -> (Seed, bool, Seed, bool) {
    let mut rng = StdRng::from_seed(*seed);
    let mut left = [0u8; 32];
    let mut right = [0u8; 32];
    rng.fill_bytes(&mut left);
    rng.fill_bytes(&mut right);
    let bits: u8 = rng.gen();
    (left, bits & 1 == 1, right, bits & 2 == 2)
}

/// Expands a leaf seed into a pseudorandom output block ("Convert").
fn leaf_block(seed: &Seed, block: usize) -> Vec<u32> {
    // Domain-separate from the tree PRG by flipping a fixed byte.
    let mut s = *seed;
    s[0] ^= 0xa5;
    let mut rng = StdRng::from_seed(s);
    (0..block).map(|_| rng.gen()).collect()
}

fn xor_seed(a: &Seed, b: &Seed) -> Seed {
    let mut out = [0u8; 32];
    for (o, (&x, &y)) in out.iter_mut().zip(a.iter().zip(b.iter())) {
        *o = x ^ y;
    }
    out
}

/// Generates a DPF key pair for the point function over `2^height`
/// leaves that equals `beta` (a block of `Z_{2^32}` values) at leaf
/// `alpha` and zero elsewhere.
///
/// # Panics
///
/// Panics if `alpha` is outside the domain, `beta` is empty, or
/// `height > 30`.
pub fn generate<R: Rng + ?Sized>(
    height: u32,
    alpha: usize,
    beta: &[u32],
    rng: &mut R,
) -> (DpfKey, DpfKey) {
    assert!(height <= 30, "domain too large");
    assert!(alpha < (1usize << height), "alpha outside the domain");
    assert!(!beta.is_empty(), "beta must be nonempty");

    let root0: Seed = rng.gen();
    let root1: Seed = rng.gen();
    let mut s0 = root0;
    let mut s1 = root1;
    let mut t0 = false;
    let mut t1 = true;
    let mut correction = Vec::with_capacity(height as usize);

    for level in 0..height {
        let bit = (alpha >> (height - 1 - level)) & 1 == 1;
        let (l0, tl0, r0, tr0) = prg(&s0);
        let (l1, tl1, r1, tr1) = prg(&s1);
        // The "lose" direction (away from alpha) must collapse to
        // equal seeds after correction; the "keep" direction stays
        // pseudorandomly independent with unequal control bits.
        let (lose0, lose1) = if bit { (l0, l1) } else { (r0, r1) };
        let cw_seed = xor_seed(&lose0, &lose1);
        let t_left = tl0 ^ tl1 ^ bit ^ true;
        let t_right = tr0 ^ tr1 ^ bit;
        correction.push(CorrectionWord { seed: cw_seed, t_left, t_right });

        let (keep0, tk0) = if bit { (r0, tr0) } else { (l0, tl0) };
        let (keep1, tk1) = if bit { (r1, tr1) } else { (l1, tl1) };
        let cw_keep_t = if bit { t_right } else { t_left };
        let next_s0 = if t0 { xor_seed(&keep0, &cw_seed) } else { keep0 };
        let next_s1 = if t1 { xor_seed(&keep1, &cw_seed) } else { keep1 };
        let next_t0 = tk0 ^ (t0 && cw_keep_t);
        let next_t1 = tk1 ^ (t1 && cw_keep_t);
        s0 = next_s0;
        s1 = next_s1;
        t0 = next_t0;
        t1 = next_t1;
    }

    debug_assert_ne!(t0, t1, "on-path control bits must differ");
    let v0 = leaf_block(&s0, beta.len());
    let v1 = leaf_block(&s1, beta.len());
    // CW = (-1)^{t1} · (β − Convert(s0) + Convert(s1)).
    let leaf_cw: Vec<u32> = beta
        .iter()
        .zip(v0.iter().zip(v1.iter()))
        .map(|(&b, (&x0, &x1))| {
            let diff = b.wrapping_sub(x0).wrapping_add(x1);
            if t1 {
                diff.wrapping_neg()
            } else {
                diff
            }
        })
        .collect();

    let make = |party: u8, root_seed: Seed| DpfKey {
        party,
        height,
        block: beta.len(),
        root_seed,
        correction: correction.clone(),
        leaf_cw: leaf_cw.clone(),
    };
    (make(0, root0), make(1, root1))
}

/// Walks the tree from the root to leaf `x`, returning the final
/// `(seed, control bit)`.
fn walk(key: &DpfKey, x: usize) -> (Seed, bool) {
    let mut s = key.root_seed;
    let mut t = key.party == 1;
    for level in 0..key.height {
        let bit = (x >> (key.height - 1 - level)) & 1 == 1;
        let cw = &key.correction[level as usize];
        let (mut l, mut tl, mut r, mut tr) = prg(&s);
        if t {
            l = xor_seed(&l, &cw.seed);
            r = xor_seed(&r, &cw.seed);
            tl ^= cw.t_left;
            tr ^= cw.t_right;
        }
        if bit {
            s = r;
            t = tr;
        } else {
            s = l;
            t = tl;
        }
    }
    (s, t)
}

/// Converts a final `(seed, t)` pair into this party's output share.
fn share_from_leaf(key: &DpfKey, s: &Seed, t: bool) -> Vec<u32> {
    let mut out = leaf_block(s, key.block);
    if t {
        for (o, &c) in out.iter_mut().zip(key.leaf_cw.iter()) {
            *o = o.wrapping_add(c);
        }
    }
    if key.party == 1 {
        for o in out.iter_mut() {
            *o = o.wrapping_neg();
        }
    }
    out
}

/// Evaluates one party's share at leaf `x`
/// (`eval(k0, x) + eval(k1, x) = f_{α,β}(x)` in `Z_{2^32}`).
///
/// # Panics
///
/// Panics if `x` is outside the domain.
pub fn eval(key: &DpfKey, x: usize) -> Vec<u32> {
    assert!(x < key.domain_size(), "point outside the domain");
    let (s, t) = walk(key, x);
    share_from_leaf(key, &s, t)
}

/// Evaluates one party's shares at *every* leaf, concatenated
/// (`2^height · block` values) — the expanded query-vector share `q̃_w`
/// the server feeds into its plaintext matrix-vector product.
pub fn full_eval(key: &DpfKey) -> Vec<u32> {
    let mut out = Vec::with_capacity(key.domain_size() * key.block);
    // Depth-first expansion, reusing interior PRG calls (2x faster
    // than 2^h independent walks).
    let mut stack: Vec<(Seed, bool, u32)> = vec![(key.root_seed, key.party == 1, 0)];
    while let Some((s, t, depth)) = stack.pop() {
        if depth == key.height {
            out.extend(share_from_leaf(key, &s, t));
            continue;
        }
        let cw = &key.correction[depth as usize];
        let (mut l, mut tl, mut r, mut tr) = prg(&s);
        if t {
            l = xor_seed(&l, &cw.seed);
            r = xor_seed(&r, &cw.seed);
            tl ^= cw.t_left;
            tr ^= cw.t_right;
        }
        // Push right first so the left subtree pops first (in-order).
        stack.push((r, tr, depth + 1));
        stack.push((l, tl, depth + 1));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiptoe_math::rng::seeded_rng;

    fn reconstruct(k0: &DpfKey, k1: &DpfKey, x: usize) -> Vec<u32> {
        eval(k0, x)
            .into_iter()
            .zip(eval(k1, x))
            .map(|(a, b)| a.wrapping_add(b))
            .collect()
    }

    #[test]
    fn point_function_reconstructs_everywhere() {
        let mut rng = seeded_rng(1);
        let beta = vec![7u32, 0xdead_beef, 1u32.wrapping_neg()];
        for height in [1u32, 2, 3, 5] {
            for alpha in [0usize, 1, (1 << height) - 1] {
                let (k0, k1) = generate(height, alpha, &beta, &mut rng);
                for x in 0..1usize << height {
                    let got = reconstruct(&k0, &k1, x);
                    let want = if x == alpha { beta.clone() } else { vec![0; 3] };
                    assert_eq!(got, want, "h={height} α={alpha} x={x}");
                }
            }
        }
    }

    #[test]
    fn full_eval_matches_pointwise_eval() {
        let mut rng = seeded_rng(2);
        let beta = vec![42u32; 4];
        let (k0, k1) = generate(4, 11, &beta, &mut rng);
        let f0 = full_eval(&k0);
        let f1 = full_eval(&k1);
        assert_eq!(f0.len(), 16 * 4);
        for x in 0..16 {
            assert_eq!(&f0[x * 4..(x + 1) * 4], &eval(&k0, x)[..]);
            assert_eq!(&f1[x * 4..(x + 1) * 4], &eval(&k1, x)[..]);
        }
        // Sum of full evaluations is the unit-block vector.
        for x in 0..16 {
            for j in 0..4 {
                let sum = f0[x * 4 + j].wrapping_add(f1[x * 4 + j]);
                assert_eq!(sum, if x == 11 { 42 } else { 0 });
            }
        }
    }

    #[test]
    fn single_share_is_not_the_plaintext() {
        // Each party's expanded share must look nothing like the
        // point function: almost all entries nonzero.
        let mut rng = seeded_rng(3);
        let (k0, k1) = generate(6, 5, &[1u32], &mut rng);
        for key in [&k0, &k1] {
            let share = full_eval(key);
            let zeros = share.iter().filter(|&&x| x == 0).count();
            assert!(zeros <= 2, "share leaks structure: {zeros} zeros of {}", share.len());
        }
    }

    #[test]
    fn shares_of_different_alphas_have_identical_sizes() {
        let mut rng = seeded_rng(4);
        let beta = vec![9u32; 8];
        let (a0, _) = generate(7, 3, &beta, &mut rng);
        let (b0, _) = generate(7, 120, &beta, &mut rng);
        assert_eq!(a0.byte_len(), b0.byte_len());
        assert_eq!(a0.domain_size(), 128);
        assert_eq!(a0.block_len(), 8);
    }

    #[test]
    fn key_size_is_logarithmic_in_the_domain() {
        let mut rng = seeded_rng(5);
        let beta = vec![1u32; 192];
        let (small, _) = generate(4, 1, &beta, &mut rng);
        let (large, _) = generate(20, 1, &beta, &mut rng);
        // 16 extra levels cost 16 x 33 bytes.
        assert_eq!(large.byte_len() - small.byte_len(), 16 * 33);
        // The paper's estimate: a key at C ~= 2^20 clusters with a
        // 192-dim block is around a kilobyte.
        assert!(large.byte_len() < 2048, "key too large: {}", large.byte_len());
    }

    #[test]
    fn key_wire_roundtrip() {
        let mut rng = seeded_rng(7);
        let beta = vec![17u32, 0xffff_0001];
        let (k0, k1) = generate(5, 19, &beta, &mut rng);
        for key in [&k0, &k1] {
            let bytes = key.encode();
            assert_eq!(bytes.len() as u64, key.byte_len());
            let back = DpfKey::decode(&bytes).expect("decodes");
            assert_eq!(back.party, key.party);
            for x in 0..32 {
                assert_eq!(eval(&back, x), eval(key, x));
            }
            assert!(DpfKey::decode(&bytes[..bytes.len() - 2]).is_err());
        }
    }

    #[test]
    #[should_panic(expected = "outside the domain")]
    fn oob_alpha_rejected() {
        let mut rng = seeded_rng(6);
        let _ = generate(3, 8, &[1u32], &mut rng);
    }
}
