//! Microbenches for the clustering pipeline and client-side centroid
//! selection.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::Rng;
use tiptoe_cluster::{cluster_documents, ClusterConfig};
use tiptoe_embed::vector::normalize;
use tiptoe_math::rng::seeded_rng;

fn points(n: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = seeded_rng(seed);
    (0..n)
        .map(|_| {
            let mut v: Vec<f32> = (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            normalize(&mut v);
            v
        })
        .collect()
}

fn bench_cluster_pipeline(c: &mut Criterion) {
    let pts = points(4000, 64, 1);
    let config = ClusterConfig::for_corpus(4000, 2);
    c.bench_function("cluster_4000x64", |b| b.iter(|| cluster_documents(&pts, &config)));
}

fn bench_centroid_selection(c: &mut Criterion) {
    let pts = points(4000, 64, 3);
    let config = ClusterConfig::for_corpus(4000, 4);
    let clustering = cluster_documents(&pts, &config);
    let q = &pts[17];
    c.bench_function("nearest_centroid_64c", |b| b.iter(|| clustering.nearest_centroid(q)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cluster_pipeline, bench_centroid_selection
}
criterion_main!(benches);
