//! Microbenches for the inner (SimplePIR-style) LHE scheme: the §6.1
//! claims — `Apply` costs ~2N word operations and runs near plaintext
//! matrix-vector speed — plus encryption and preprocessing rates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::Rng;
use tiptoe_lwe::{scheme, LweParams, LweSecretKey, MatrixA};
use tiptoe_math::matrix::Mat;
use tiptoe_math::rng::seeded_rng;

fn bench_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("lwe_apply");
    let params = LweParams::ranking_text();
    let mut rng = seeded_rng(1);
    for &(rows, cols) in &[(256usize, 4096usize), (512, 8192)] {
        let db = Mat::from_fn(rows, cols, |_, _| rng.gen_range(0..16u32));
        let a = MatrixA::new(7, cols, params.n);
        let sk = LweSecretKey::<u64>::generate(&params, &mut rng);
        let v: Vec<u64> = (0..cols).map(|_| rng.gen_range(0..params.p)).collect();
        let ct = scheme::encrypt(&params, &sk, &a, &v, &mut rng);
        // Throughput in database bytes touched per second (the paper's
        // DRAM-bandwidth-bound figure of merit).
        group.throughput(Throughput::Bytes((rows * cols * 4) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{rows}x{cols}")),
            &(db, ct),
            |b, (db, ct)| b.iter(|| scheme::apply(db, ct)),
        );
    }
    group.finish();
}

fn bench_apply_packed(c: &mut Criterion) {
    // The §8.6 4-bit storage: same scan, 8x fewer database bytes.
    let mut group = c.benchmark_group("lwe_apply_packed");
    let mut rng = seeded_rng(4);
    let (rows, cols) = (512usize, 8192usize);
    let signed: Vec<i8> = (0..rows * cols).map(|_| rng.gen_range(-8i8..=7)).collect();
    let packed = tiptoe_math::nibble::NibbleMat::from_signed(rows, cols, &signed);
    let v: Vec<u64> = (0..cols).map(|_| rng.gen()).collect();
    group.throughput(Throughput::Bytes(packed.storage_bytes() as u64));
    group.bench_function("512x8192_nibbles", |b| b.iter(|| packed.matvec(&v)));
    group.finish();
}

fn bench_encrypt(c: &mut Criterion) {
    let params = LweParams::ranking_text();
    let mut rng = seeded_rng(2);
    let cols = 4096;
    let a = MatrixA::new(9, cols, params.n);
    let sk = LweSecretKey::<u64>::generate(&params, &mut rng);
    let v: Vec<u64> = (0..cols).map(|_| rng.gen_range(0..params.p)).collect();
    c.bench_function("lwe_encrypt_4096", |b| {
        b.iter(|| scheme::encrypt(&params, &sk, &a, &v, &mut rng))
    });
}

fn bench_preproc(c: &mut Criterion) {
    let params = LweParams::ranking_text();
    let mut rng = seeded_rng(3);
    let (rows, cols) = (64usize, 1024usize);
    let db = Mat::from_fn(rows, cols, |_, _| rng.gen_range(0..16u32));
    let a = MatrixA::new(11, cols, params.n);
    c.bench_function("lwe_preproc_64x1024", |b| {
        b.iter(|| scheme::preproc::<u64>(&db, &a.row_range(0, cols)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_apply, bench_apply_packed, bench_encrypt, bench_preproc
}
criterion_main!(benches);
