//! Microbenches for the outer RLWE scheme: NTTs at the production ring
//! degree and the plaintext-multiply-accumulate kernel that dominates
//! token generation.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::Rng;
use tiptoe_math::ntt::NttTable;
use tiptoe_math::rng::seeded_rng;
use tiptoe_rlwe::{
    encrypt_scalar, expand, mod_switch, mul_plain_acc, RlweCiphertext, RlweContext, RlweParams,
    RlweSecretKey,
};

fn bench_ntt(c: &mut Criterion) {
    let table = NttTable::new(2048, 62);
    let q = table.modulus().value();
    let mut rng = seeded_rng(1);
    let data: Vec<u64> = (0..2048).map(|_| rng.gen_range(0..q)).collect();
    c.bench_function("ntt_forward_2048", |b| {
        b.iter(|| {
            let mut a = data.clone();
            table.forward(&mut a);
            a
        })
    });
    let mut fwd = data.clone();
    table.forward(&mut fwd);
    c.bench_function("ntt_inverse_2048", |b| {
        b.iter(|| {
            let mut a = fwd.clone();
            table.inverse(&mut a);
            a
        })
    });
}

fn bench_mul_plain_acc(c: &mut Criterion) {
    let ctx = RlweContext::new(RlweParams::production());
    let mut rng = seeded_rng(2);
    let sk = RlweSecretKey::generate(&ctx, &mut rng);
    let z = expand(&ctx, &encrypt_scalar(&ctx, &sk, 1, 3, &mut rng));
    let h_coeffs: Vec<u64> = (0..2048).map(|_| rng.gen_range(0..1u64 << 16)).collect();
    let h = ctx.plaintext_ntt(&h_coeffs);
    c.bench_function("rlwe_mul_plain_acc_2048", |b| {
        b.iter(|| {
            let mut acc = RlweCiphertext::zero(&ctx);
            mul_plain_acc(&mut acc, &h, &z);
            acc
        })
    });
}

fn bench_mod_switch(c: &mut Criterion) {
    let ctx = RlweContext::new(RlweParams::production());
    let mut rng = seeded_rng(4);
    let sk = RlweSecretKey::generate(&ctx, &mut rng);
    let m = vec![0i64; 2048];
    let ct = expand(&ctx, &tiptoe_rlwe::encrypt(&ctx, &sk, &m, 5, &mut rng));
    c.bench_function("rlwe_mod_switch_2048", |b| b.iter(|| mod_switch(&ctx, &ct, 44)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_ntt, bench_mul_plain_acc, bench_mod_switch
}
criterion_main!(benches);
