//! Microbenches for the corpus substrate: tzip compression throughput
//! on URL batches (the §5 "compress roughly 880 of them at a time"
//! workload) and the synthetic corpus generator.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tiptoe_corpus::synth::{generate, CorpusConfig};
use tiptoe_corpus::tzip;

fn url_blob(n: usize) -> Vec<u8> {
    let mut blob = String::new();
    for i in 0..n {
        blob.push_str(&format!(
            "https://www.site-{}.example.org/section/{}/article-{}\n",
            i % 23,
            i % 7,
            i
        ));
    }
    blob.into_bytes()
}

fn bench_tzip(c: &mut Criterion) {
    let blob = url_blob(880);
    let mut group = c.benchmark_group("tzip");
    group.throughput(Throughput::Bytes(blob.len() as u64));
    group.bench_function("compress_880_urls", |b| b.iter(|| tzip::compress(&blob)));
    let compressed = tzip::compress(&blob);
    group.bench_function("decompress_880_urls", |b| {
        b.iter(|| tzip::decompress(&compressed).expect("valid"))
    });
    group.finish();
}

fn bench_corpus_generation(c: &mut Criterion) {
    c.bench_function("generate_1000_docs", |b| {
        b.iter(|| generate(&CorpusConfig::small(1000, 5), 10))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tzip, bench_corpus_generation
}
criterion_main!(benches);
