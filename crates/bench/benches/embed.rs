//! Microbenches for the embedding substrate: text embedding, PCA
//! projection, and quantization (the client-local per-query work).

use criterion::{criterion_group, criterion_main, Criterion};
use tiptoe_embed::pca::Pca;
use tiptoe_embed::quantize::Quantizer;
use tiptoe_embed::text::TextEmbedder;
use tiptoe_embed::Embedder;

fn bench_embed_text(c: &mut Criterion) {
    let embedder = TextEmbedder::paper_text(1);
    let query = "private web search with homomorphic encryption at scale";
    c.bench_function("embed_query_768", |b| b.iter(|| embedder.embed_text(query)));
    let doc: String = (0..512).map(|i| format!("word{} ", i % 97)).collect();
    c.bench_function("embed_document_768_512tok", |b| b.iter(|| embedder.embed_text(&doc)));
}

fn bench_pca_project(c: &mut Criterion) {
    let embedder = TextEmbedder::paper_text(2);
    let samples: Vec<Vec<f32>> =
        (0..256).map(|i| embedder.embed_text(&format!("sample document {i}"))).collect();
    let pca = Pca::fit(&samples, 192, 3);
    let q = embedder.embed_text("the query");
    c.bench_function("pca_project_768_to_192", |b| b.iter(|| pca.project(&q)));
}

fn bench_quantize(c: &mut Criterion) {
    let quant = Quantizer::paper_text();
    let v: Vec<f32> = (0..192).map(|i| ((i as f32) / 192.0) * 2.0 - 1.0).collect();
    c.bench_function("quantize_192_to_zp", |b| b.iter(|| quant.to_zp(&v)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_embed_text, bench_pca_project, bench_quantize
}
criterion_main!(benches);
