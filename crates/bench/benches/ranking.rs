//! End-to-end benches of the two services: the ranking answer (the
//! per-query critical path of §4) and a full client search, including
//! the token-amortized throughput view of Table 7.

use criterion::{criterion_group, criterion_main, Criterion};
use tiptoe_core::config::TiptoeConfig;
use tiptoe_core::instance::TiptoeInstance;
use tiptoe_corpus::synth::{generate, CorpusConfig};
use tiptoe_embed::text::TextEmbedder;
use tiptoe_math::rng::seeded_rng;
use tiptoe_underhood::{ClientKey, EncryptedSecret};

fn build() -> TiptoeInstance<TextEmbedder> {
    let n = 2000;
    let corpus = generate(&CorpusConfig::small(n, 5), 0);
    let config = TiptoeConfig::test_small(n, 5);
    let embedder = TextEmbedder::new(config.d_embed, 5, 0);
    TiptoeInstance::build(&config, embedder, &corpus)
}

fn bench_ranking_answer(c: &mut Criterion) {
    let instance = build();
    let mut rng = seeded_rng(1);
    let uh = instance.ranking.underhood();
    let key = ClientKey::generate(uh, instance.config.rank_lwe.n, &mut rng);
    let v = vec![0u64; instance.ranking.upload_dim()];
    let ct = uh.encrypt_query::<u64, _>(&key, &instance.ranking.public_matrix(), &v, &mut rng);
    c.bench_function("ranking_answer_2000docs", |b| b.iter(|| instance.ranking.answer(&ct)));
}

fn bench_token_generation(c: &mut Criterion) {
    let instance = build();
    let mut rng = seeded_rng(2);
    let uh = instance.ranking.underhood();
    let key = ClientKey::generate(uh, instance.config.rank_lwe.n, &mut rng);
    let es = EncryptedSecret::encrypt(uh, &key, &mut rng);
    c.bench_function("ranking_token_2000docs", |b| b.iter(|| instance.ranking.generate_token(&es)));
}

fn bench_full_search(c: &mut Criterion) {
    let instance = build();
    let mut client = instance.new_client(3);
    // Prefetch enough tokens that the measured loop stays online-only.
    for _ in 0..32 {
        client.fetch_token(&instance);
    }
    c.bench_function("full_search_online_2000docs", |b| {
        b.iter(|| {
            if client.tokens_available() == 0 {
                client.fetch_token(&instance);
            }
            client.search(&instance, "health doctor clinic", 10)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ranking_answer, bench_token_generation, bench_full_search
}
criterion_main!(benches);
