//! Scalar vs cache-blocked vs parallel vs batched server kernels.
//!
//! The ISSUE-1 tentpole: the LHE hot path (`matvec` online, `preproc`
//! offline) in every execution strategy, at shapes sized so the
//! database no longer fits in cache (ℓ = 2^15 rows online). Set
//! `TIPTOE_THREADS` to pin the parallel variants' thread count and
//! `TIPTOE_BENCH_MS` to trade time for precision.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::Rng;
use tiptoe_lwe::{scheme, MatrixA};
use tiptoe_math::matrix::{self, Mat};
use tiptoe_math::par::max_threads;
use tiptoe_math::rng::seeded_rng;

const MATVEC_ROWS: usize = 1 << 15;
const MATVEC_COLS: usize = 1 << 10;
const PREPROC_ROWS: usize = 1 << 15;
const PREPROC_COLS: usize = 64;
const PREPROC_N: usize = 256;

fn bench_matvec_variants(c: &mut Criterion) {
    let mut rng = seeded_rng(11);
    let db = Mat::from_fn(MATVEC_ROWS, MATVEC_COLS, |_, _| rng.gen_range(0..16u32));
    let v: Vec<u64> = (0..MATVEC_COLS).map(|_| rng.gen()).collect();
    let threads = max_threads();

    let mut group = c.benchmark_group("kernel_matvec");
    group.throughput(Throughput::Bytes((MATVEC_ROWS * MATVEC_COLS * 4) as u64));
    let shape = format!("{MATVEC_ROWS}x{MATVEC_COLS}");
    group.bench_with_input(BenchmarkId::new("scalar", &shape), &(), |b, ()| {
        b.iter(|| matrix::matvec(&db, &v))
    });
    group.bench_with_input(BenchmarkId::new("blocked", &shape), &(), |b, ()| {
        b.iter(|| matrix::matvec_blocked(&db, &v))
    });
    group.bench_with_input(BenchmarkId::new(format!("parallel_t{threads}"), &shape), &(), |b, ()| {
        b.iter(|| matrix::matvec_par(&db, &v, 0))
    });
    // Batched: amortize the database scan over 4 concurrent queries
    // (report per-query cost by answering 4 and dividing mentally; the
    // throughput line already normalizes by DB bytes per pass).
    let vs: Vec<Vec<u64>> = (0..4).map(|s| {
        let mut r = seeded_rng(100 + s);
        (0..MATVEC_COLS).map(|_| r.gen()).collect()
    }).collect();
    group.bench_with_input(BenchmarkId::new("batched_b4", &shape), &(), |b, ()| {
        b.iter(|| matrix::matvec_batch(&db, &vs, 0))
    });
    group.finish();
}

fn bench_preproc_variants(c: &mut Criterion) {
    let mut rng = seeded_rng(12);
    let db = Mat::from_fn(PREPROC_ROWS, PREPROC_COLS, |_, _| rng.gen_range(0..16u32));
    let a = MatrixA::new(13, PREPROC_COLS, PREPROC_N);
    let range = a.row_range(0, PREPROC_COLS);
    let threads = max_threads();

    let mut group = c.benchmark_group("kernel_preproc");
    group.sample_size(10);
    let shape = format!("{PREPROC_ROWS}x{PREPROC_COLS}xn{PREPROC_N}");
    group.bench_with_input(BenchmarkId::new("scalar", &shape), &(), |b, ()| {
        b.iter(|| scheme::preproc::<u64>(&db, &range))
    });
    group.bench_with_input(BenchmarkId::new(format!("parallel_t{threads}"), &shape), &(), |b, ()| {
        b.iter(|| scheme::preproc_par::<u64>(&db, &range, 0))
    });
    group.finish();
}

criterion_group!(benches, bench_matvec_variants, bench_preproc_variants);
criterion_main!(benches);
