//! Microbenches for the URL-retrieval PIR: server answer throughput
//! over the packed record matrix (the §5 linear scan).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::Rng;
use tiptoe_lwe::LweParams;
use tiptoe_math::rng::seeded_rng;
use tiptoe_pir::{PirClient, PirDatabase, PirServer};
use tiptoe_rlwe::RlweParams;
use tiptoe_underhood::{ClientKey, Underhood};

fn bench_pir_answer(c: &mut Criterion) {
    let mut group = c.benchmark_group("pir_answer");
    let mut rng = seeded_rng(1);
    let lwe = LweParams { n: 256, log_q: 32, p: 991, sigma: 6.4 };
    let uh = Underhood::with_outer(
        lwe,
        RlweParams { degree: 2048, q_bits: 62, t: 1 << 28, sigma: 3.2 },
        44,
    );
    for &(records, record_bytes) in &[(64usize, 4096usize), (256, 4096)] {
        let recs: Vec<Vec<u8>> =
            (0..records).map(|_| (0..record_bytes).map(|_| rng.gen()).collect()).collect();
        let db = PirDatabase::build_with_params(&recs, lwe);
        let bytes = db.storage_bytes();
        let server = PirServer::new(db, 7, uh.clone());
        let key = ClientKey::generate(&uh, lwe.n, &mut rng);
        let client = PirClient::new(&uh, &key);
        let ct = client.query(&server.public_matrix(), records, records / 2, &mut rng);
        group.throughput(Throughput::Bytes(bytes));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{records}rec_x{record_bytes}B")),
            &(server, ct),
            |b, (server, ct)| b.iter(|| server.answer(ct)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pir_answer
}
criterion_main!(benches);
