//! Microbenches for the DPF substrate of the two-server mode (§9):
//! key generation and the full-domain expansion that dominates the
//! servers' per-query work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tiptoe_math::rng::seeded_rng;

fn bench_generate(c: &mut Criterion) {
    let mut rng = seeded_rng(1);
    let beta = vec![7u32; 192];
    c.bench_function("dpf_generate_h14_d192", |b| {
        b.iter(|| tiptoe_dpf::generate(14, 1234, &beta, &mut rng))
    });
}

fn bench_full_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("dpf_full_eval");
    let mut rng = seeded_rng(2);
    for height in [8u32, 10, 12] {
        let beta = vec![7u32; 192];
        let (k0, _) = tiptoe_dpf::generate(height, 17, &beta, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(format!("2^{height}_leaves")), &k0, |b, k| {
            b.iter(|| tiptoe_dpf::full_eval(k))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_generate, bench_full_eval
}
criterion_main!(benches);
