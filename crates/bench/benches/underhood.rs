//! Microbenches for the composed scheme: token generation (the §6.3
//! offline server work) and client-side token decoding.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::Rng;
use tiptoe_lwe::{scheme, LweParams, MatrixA};
use tiptoe_math::matrix::Mat;
use tiptoe_math::rng::seeded_rng;
use tiptoe_underhood::{ClientKey, EncryptedSecret, Underhood};

fn setup() -> (Underhood, tiptoe_underhood::ServerHint, EncryptedSecret, ClientKey) {
    // Scaled-down inner secret keeps the bench quick; the kernel cost
    // per (row, secret-coordinate) pair is what we measure.
    let lwe = LweParams { n: 256, log_q: 64, p: 1 << 17, sigma: 81920.0 };
    let uh = Underhood::with_outer(
        lwe,
        tiptoe_rlwe::RlweParams { degree: 2048, q_bits: 62, t: 1 << 28, sigma: 3.2 },
        44,
    );
    let mut rng = seeded_rng(1);
    let cols = 512;
    let db = Mat::from_fn(128, cols, |_, _| rng.gen_range(0..16u32));
    let a = MatrixA::new(3, cols, uh.lwe().n);
    let hint = scheme::preproc::<u64>(&db, &a.row_range(0, cols));
    let sh = uh.preprocess_hint(&hint);
    let key = ClientKey::generate(&uh, uh.lwe().n, &mut rng);
    let es = EncryptedSecret::encrypt(&uh, &key, &mut rng);
    (uh, sh, es, key)
}

fn bench_token_generation(c: &mut Criterion) {
    let (uh, sh, es, _) = setup();
    c.bench_function("underhood_token_gen_128rows_n256", |b| {
        b.iter(|| uh.generate_token(&sh, &es))
    });
}

fn bench_token_decode(c: &mut Criterion) {
    let (uh, sh, es, key) = setup();
    let token = uh.generate_token(&sh, &es);
    c.bench_function("underhood_token_decode_128rows", |b| {
        b.iter(|| uh.decode_token::<u64>(&key, &token))
    });
}

fn bench_encrypt_secret(c: &mut Criterion) {
    let (uh, _, _, key) = setup();
    let mut rng = seeded_rng(2);
    c.bench_function("underhood_encrypt_secret_n256", |b| {
        b.iter(|| EncryptedSecret::encrypt(&uh, &key, &mut rng))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_token_generation, bench_token_decode, bench_encrypt_secret
}
criterion_main!(benches);
