//! Shared harness code for the paper-reproduction binaries
//! (`src/bin/fig4_search_quality.rs` and friends; see `DESIGN.md` §5
//! for the experiment index).
//!
//! The heart of this crate is [`evaluate_variant`]: a
//! plaintext-equivalent evaluator of Tiptoe's *search quality* under
//! any subset of the paper's optimizations (Figure 9's ➊–➏). Using the
//! plaintext-equivalent path for quality sweeps is sound because the
//! cryptographic layer computes the same quantized inner products
//! *exactly* (verified by `tests/e2e_search.rs` and by the agreement
//! check each binary can run via [`verify_crypto_agreement`]); it
//! makes a 300-query × 6-variant sweep tractable on one core.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod measure;
pub mod serving;

use tiptoe_cluster::{cluster_documents, ClusterConfig, Clustering};
use tiptoe_corpus::synth::Corpus;
use tiptoe_embed::pca::Pca;
use tiptoe_embed::quantize::Quantizer;
use tiptoe_embed::vector::normalize;
use tiptoe_embed::Embedder;
use tiptoe_ir::metrics::QualityReport;
use tiptoe_ir::topk::TopK;
use tiptoe_ir::SearchHit;
use tiptoe_math::rng::{derive_seed, seeded_rng};

/// Which of the paper's optimizations are active (Figure 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AblationFlags {
    /// ➋ Cluster embeddings; only score one cluster.
    pub clustering: bool,
    /// ➌ Restrict output to the one URL chunk holding the top result.
    pub chunk_restrict: bool,
    /// ➍ Chunk URLs in semantic (cluster-member) order rather than
    /// random order.
    pub semantic_chunks: bool,
    /// ➎ Assign ~20% boundary documents to two clusters.
    pub dual_assign: bool,
    /// ➏ Reduce the embedding dimension with PCA.
    pub pca: bool,
}

impl AblationFlags {
    /// Full Tiptoe (all optimizations on).
    pub fn full() -> Self {
        Self {
            clustering: true,
            chunk_restrict: true,
            semantic_chunks: true,
            dual_assign: true,
            pca: true,
        }
    }

    /// The Figure 9 sequence ➊, ➋, ➌, ➍, ➎, ➏ (cumulative).
    pub fn figure9_sequence() -> [(&'static str, Self); 6] {
        let none = Self {
            clustering: false,
            chunk_restrict: false,
            semantic_chunks: false,
            dual_assign: false,
            pca: false,
        };
        [
            ("1 no optimizations", none),
            ("2 + clustering", Self { clustering: true, ..none }),
            (
                "3 + URL chunking (random)",
                Self { clustering: true, chunk_restrict: true, ..none },
            ),
            (
                "4 + semantic URL batches",
                Self { clustering: true, chunk_restrict: true, semantic_chunks: true, ..none },
            ),
            (
                "5 + dual assignment",
                Self {
                    clustering: true,
                    chunk_restrict: true,
                    semantic_chunks: true,
                    dual_assign: true,
                    ..none
                },
            ),
            ("6 + PCA (full Tiptoe)", Self::full()),
        ]
    }
}

/// Knobs of the quality evaluator.
#[derive(Debug, Clone, Copy)]
pub struct VariantConfig {
    /// Reduced dimension when PCA is on.
    pub d_reduced: usize,
    /// Quantization precision bits (3 = signed 4-bit).
    pub quant_bits: u32,
    /// URLs per chunk for the ➌/➍ restriction.
    pub urls_per_chunk: usize,
    /// Results cutoff (the paper's MRR@100).
    pub k: usize,
    /// Clustering seed.
    pub seed: u64,
}

impl Default for VariantConfig {
    fn default() -> Self {
        Self { d_reduced: 192, quant_bits: 3, urls_per_chunk: 12, k: 100, seed: 7 }
    }
}

/// Outcome of evaluating one variant.
#[derive(Debug, Clone)]
pub struct VariantOutcome {
    /// Quality metrics.
    pub report: QualityReport,
    /// Fraction of queries whose answer lay in the searched cluster
    /// (1.0 when clustering is off) — the Figure 4 dotted bound.
    pub cluster_hit_rate: f64,
    /// Active embedding dimension (after optional PCA).
    pub d_active: usize,
    /// Index slots relative to N (1.0 without, ~1.2 with dual assign).
    pub index_overhead: f64,
}

/// Quantizes to small signed integers for fast exact scoring.
fn quantize_signed(quant: &Quantizer, v: &[f32]) -> Vec<i8> {
    quant.to_signed(v).into_iter().map(|x| x as i8).collect()
}

/// Exact signed dot product of two quantized vectors.
fn signed_dot(a: &[i8], b: &[i8]) -> i32 {
    a.iter().zip(b.iter()).map(|(&x, &y)| x as i32 * y as i32).sum()
}

/// Evaluates Tiptoe's search quality under a set of optimization
/// flags, using the plaintext-equivalent pipeline (see module docs).
pub fn evaluate_variant<E: Embedder>(
    corpus: &Corpus,
    embedder: &E,
    flags: AblationFlags,
    config: &VariantConfig,
) -> VariantOutcome {
    // --- Batch side: embed, (PCA), normalize, quantize.
    let raw: Vec<Vec<f32>> = corpus.docs.iter().map(|d| embedder.embed_text(&d.text)).collect();
    let pca = flags.pca.then(|| {
        let sample: Vec<Vec<f32>> = raw.iter().take(2048).cloned().collect();
        Pca::fit(&sample, config.d_reduced.min(embedder.dim()), config.seed ^ 0x9ca)
    });
    let reduce = |v: &[f32]| -> Vec<f32> {
        let mut out = match &pca {
            Some(p) => p.project(v),
            None => v.to_vec(),
        };
        normalize(&mut out);
        out
    };
    let reduced: Vec<Vec<f32>> = raw.iter().map(|v| reduce(v)).collect();
    let d_active = reduced[0].len();
    let quant = Quantizer::new(config.quant_bits, 1 << 17);
    let q_docs: Vec<Vec<i8>> = reduced.iter().map(|v| quantize_signed(&quant, v)).collect();

    // --- Clustering (optional).
    let clustering: Option<Clustering> = flags.clustering.then(|| {
        let mut cc = ClusterConfig::for_corpus(corpus.docs.len(), config.seed);
        cc.dual_assign_frac = if flags.dual_assign { 0.2 } else { 0.0 };
        cluster_documents(&reduced, &cc)
    });
    let index_overhead = clustering
        .as_ref()
        .map_or(1.0, |c| c.total_assignments() as f64 / corpus.docs.len() as f64);

    // --- Per-query evaluation.
    let mut results = Vec::with_capacity(corpus.queries.len());
    let mut cluster_hits = 0usize;
    let mut chunk_rng = seeded_rng(derive_seed(config.seed, 0xc4a));
    for query in &corpus.queries {
        let q_emb = reduce(&embedder.embed_text(&query.text));
        let q_quant = quantize_signed(&quant, &q_emb);

        let hits: Vec<SearchHit> = match &clustering {
            None => {
                cluster_hits += 1; // no clustering: the bound is trivial
                let mut top = TopK::new(config.k);
                for (doc, dq) in q_docs.iter().enumerate() {
                    top.push(SearchHit {
                        doc: doc as u32,
                        score: signed_dot(dq, &q_quant) as f32,
                    });
                }
                top.into_sorted()
            }
            Some(clustering) => {
                let cluster = clustering.nearest_centroid(&q_emb);
                let members: &[u32] = &clustering.members[cluster];
                if members.contains(&query.relevant) {
                    cluster_hits += 1;
                }
                let scores: Vec<i32> = members
                    .iter()
                    .map(|&m| signed_dot(&q_docs[m as usize], &q_quant))
                    .collect();
                if !flags.chunk_restrict {
                    let mut top = TopK::new(config.k);
                    for (row, &m) in members.iter().enumerate() {
                        top.push(SearchHit { doc: m, score: scores[row] as f32 });
                    }
                    top.into_sorted()
                } else {
                    // Chunk the member list; ➍ orders it semantically
                    // (anchor-similarity), ➌ permutes it randomly.
                    let order: Vec<usize> = if flags.semantic_chunks {
                        let ordered = tiptoe_cluster::semantic_order(
                            members,
                            &reduced,
                            &clustering.centroids[cluster],
                        );
                        ordered
                            .iter()
                            .map(|m| members.iter().position(|x| x == m).expect("member"))
                            .collect()
                    } else {
                        use rand::seq::SliceRandom;
                        let mut idx: Vec<usize> = (0..members.len()).collect();
                        idx.shuffle(&mut chunk_rng);
                        idx
                    };
                    let best_pos = order
                        .iter()
                        .position(|&row| {
                            scores[row] == *scores.iter().max().expect("nonempty cluster")
                        })
                        .unwrap_or(0);
                    let chunk_id = best_pos / config.urls_per_chunk;
                    let lo = chunk_id * config.urls_per_chunk;
                    let hi = (lo + config.urls_per_chunk).min(order.len());
                    let mut top = TopK::new(config.k);
                    for &row in &order[lo..hi] {
                        top.push(SearchHit { doc: members[row], score: scores[row] as f32 });
                    }
                    top.into_sorted()
                }
            }
        };
        results.push(hits);
    }
    let relevant: Vec<u32> = corpus.queries.iter().map(|q| q.relevant).collect();
    VariantOutcome {
        report: QualityReport::evaluate(&results, &relevant, config.k),
        cluster_hit_rate: cluster_hits as f64 / corpus.queries.len().max(1) as f64,
        d_active,
        index_overhead,
    }
}

/// Runs a handful of benchmark queries through the *full private
/// pipeline* and through [`evaluate_variant`]'s plaintext-equivalent
/// path, asserting that both return identical document rankings.
///
/// # Panics
///
/// Panics if any ranking disagrees.
pub fn verify_crypto_agreement(
    instance: &tiptoe_core::instance::TiptoeInstance<tiptoe_embed::text::TextEmbedder>,
    corpus: &Corpus,
    queries: usize,
) {
    let mut client = instance.new_client(0x7e57);
    for q in corpus.queries.iter().take(queries) {
        let private = client.search(instance, &q.text, 20);
        // Plaintext reference of the same pipeline.
        let quant = instance.config.quantizer();
        let raw = instance.embedder.embed_text(&q.text);
        let mut qv = instance.artifacts.pca.project(&raw);
        normalize(&mut qv);
        let cluster = instance.artifacts.clustering.nearest_centroid(&qv);
        assert_eq!(private.cluster, cluster, "cluster selection diverged");
        let q_zp = quant.to_zp(&qv);
        let members = &instance.artifacts.clustering.members[cluster];
        for hit in private.hits.iter().take(3) {
            // The private score equals the plaintext quantized score.
            let row = members.iter().position(|&m| m == hit.doc);
            if let Some(row) = row {
                let d_zp = quant.to_zp(&instance.artifacts.reduced_embeddings[members[row] as usize]);
                let want = quant.quantized_dot(&d_zp, &q_zp);
                let got = (hit.score * 64.0).round() as i64;
                assert_eq!(got, want, "score diverged for doc {}", hit.doc);
            }
        }
    }
}

/// Formats an MRR with the paper's precision.
pub fn fmt_mrr(mrr: f64) -> String {
    format!("{mrr:.3}")
}
