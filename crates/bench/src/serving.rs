//! Serving-plane load benchmark (paper §8.1: up to 19 closed-loop
//! clients saturate the servers): sweeps client counts over both
//! serving modes — every query paying its own database scans versus
//! coalesced through the [`tiptoe_core::serving::ServingPlane`] — and
//! reports, per cell, the measured wall-clock queries/s, latency
//! percentiles, and the *scan-normalized* throughput.
//!
//! Two throughput views are reported because they answer different
//! questions:
//!
//! - **Wall-clock qps** is what this process sustained. On a small
//!   (often single-core) CI box with toy in-cache shards it mostly
//!   measures per-query compute, which batching cannot reduce — the
//!   multiply count is the same either way.
//! - **Scan-normalized throughput** (`queries_per_scan`) is the
//!   deployment-relevant capacity metric: a Tiptoe ranking server at
//!   paper scale is bound by streaming its shard matrix from memory,
//!   so server capacity is proportional to queries served *per lane
//!   scan*. A direct query costs `num_shards + 1` lane scans by
//!   construction (every ranking shard plus the URL server); a
//!   coalesced flush costs one lane scan shared by the whole batch.
//!   Coalesced scan counts are measured, not modeled: they are the
//!   serving plane's actual flush count (the
//!   `net.coalesce.batch_size` histogram) during the run, with
//!   results verified bit-identical to direct serving.
//!
//! Used by `src/bin/bench_serving.rs` (writes `BENCH_serving.json`)
//! and the CLI's `serve-bench` subcommand.

use tiptoe_core::config::TiptoeConfig;
use tiptoe_core::instance::TiptoeInstance;
use tiptoe_core::throughput::{
    measure_online_throughput, measure_online_throughput_coalesced, ThroughputReport,
};
use tiptoe_corpus::synth::{generate, CorpusConfig};
use tiptoe_embed::text::TextEmbedder;

/// Knobs for one serving-bench run.
#[derive(Debug, Clone)]
pub struct ServingBenchConfig {
    /// Synthetic corpus size.
    pub docs: usize,
    /// Closed-loop queries each client issues in the measured window.
    pub queries_per_client: usize,
    /// Client counts to sweep (each measured in both modes).
    pub clients: Vec<usize>,
    /// Ranking shards (the coalescer runs one lane per shard).
    pub shards: usize,
    /// Corpus/instance seed.
    pub seed: u64,
}

impl Default for ServingBenchConfig {
    fn default() -> Self {
        Self { docs: 240, queries_per_client: 12, clients: vec![1, 4, 19], shards: 4, seed: 61 }
    }
}

/// One measured cell of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct ServingRow {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Whether shard compute went through the serving plane.
    pub coalesced: bool,
    /// Wall-clock throughput and latency percentiles for this cell.
    pub report: ThroughputReport,
    /// Lane scans consumed serving this cell's queries. Direct mode
    /// pays `num_shards + 1` scans per query by construction;
    /// coalesced mode's count is the measured flush count.
    pub scans: u64,
    /// Scan-normalized throughput: queries served per lane scan.
    pub queries_per_scan: f64,
}

/// Full sweep outcome plus the knobs that produced it.
#[derive(Debug, Clone)]
pub struct ServingBenchOutcome {
    /// The run's configuration.
    pub config: ServingBenchConfig,
    /// Coalescer batch bound in effect (from the instance config).
    pub max_batch: usize,
    /// Coalescer deadline in effect, microseconds.
    pub max_wait_us: u64,
    /// Coalescer backpressure bound in effect.
    pub queue_depth: usize,
    /// One row per (clients, mode) cell, direct mode first.
    pub rows: Vec<ServingRow>,
}

impl ServingBenchOutcome {
    fn cell(&self, clients: usize, coalesced: bool) -> Option<&ServingRow> {
        self.rows.iter().find(|r| r.clients == clients && r.coalesced == coalesced)
    }

    /// The headline capacity number: scan-normalized coalesced
    /// throughput at the largest client count over scan-normalized
    /// direct single-client throughput. Equals the mean effective
    /// batch size the plane achieved under that load. `None` if the
    /// sweep lacks either endpoint.
    pub fn scan_speedup(&self) -> Option<f64> {
        let max_clients = self.rows.iter().map(|r| r.clients).max()?;
        if max_clients == 1 {
            return None;
        }
        let base = self.cell(1, false)?;
        let top = self.cell(max_clients, true)?;
        Some(top.queries_per_scan / base.queries_per_scan)
    }

    /// Wall-clock counterpart of [`ServingBenchOutcome::scan_speedup`]
    /// (bounded by this process's core count, so near 1.0 on a
    /// single-core box).
    pub fn wall_speedup(&self) -> Option<f64> {
        let max_clients = self.rows.iter().map(|r| r.clients).max()?;
        if max_clients == 1 {
            return None;
        }
        let base = self.cell(1, false)?;
        let top = self.cell(max_clients, true)?;
        Some(top.report.qps / base.report.qps)
    }

    /// Renders the outcome as the `BENCH_serving.json` document.
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        fn opt(v: Option<f64>) -> String {
            v.map_or_else(|| "null".into(), |s| format!("{s:.3}"))
        }
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"bench\": \"serving\",");
        let _ = writeln!(json, "  \"docs\": {},", self.config.docs);
        let _ = writeln!(json, "  \"shards\": {},", self.config.shards);
        let _ = writeln!(json, "  \"queries_per_client\": {},", self.config.queries_per_client);
        let _ = writeln!(
            json,
            "  \"coalesce\": {{\"max_batch\": {}, \"max_wait_us\": {}, \"queue_depth\": {}}},",
            self.max_batch, self.max_wait_us, self.queue_depth
        );
        let _ = writeln!(
            json,
            "  \"speedup_scanbound_maxclients_vs_direct_1\": {},",
            opt(self.scan_speedup())
        );
        let _ = writeln!(
            json,
            "  \"speedup_wall_maxclients_vs_direct_1\": {},",
            opt(self.wall_speedup())
        );
        let _ = writeln!(json, "  \"results\": [");
        for (i, row) in self.rows.iter().enumerate() {
            let sep = if i + 1 == self.rows.len() { "" } else { "," };
            let r = &row.report;
            let _ = writeln!(
                json,
                "    {{\"clients\": {}, \"mode\": \"{}\", \"queries\": {}, \
                 \"qps\": {:.3}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \
                 \"scans\": {}, \"queries_per_scan\": {:.4}}}{sep}",
                row.clients,
                if row.coalesced { "coalesced" } else { "direct" },
                r.queries,
                r.qps,
                r.p50.as_secs_f64() * 1e3,
                r.p95.as_secs_f64() * 1e3,
                r.p99.as_secs_f64() * 1e3,
                row.scans,
                row.queries_per_scan,
            );
        }
        let _ = writeln!(json, "  ]");
        json.push_str("}\n");
        json
    }
}

/// Flush count (one sample per flush, i.e. per lane scan) in a
/// metrics-snapshot delta over the measured interval.
fn flushes_in(delta: &tiptoe_obs::metrics::MetricsSnapshot) -> u64 {
    delta.histograms.iter().find(|h| h.name == "net.coalesce.batch_size").map_or(0, |h| h.count)
}

/// Builds the instance, spot-checks that coalesced serving is
/// bit-identical to direct serving, then measures every
/// (clients, mode) cell of the sweep.
///
/// # Panics
///
/// Panics if the config is degenerate (no clients, zero queries) or
/// if the bit-identity spot check fails.
#[must_use]
pub fn run_serving_bench(cfg: &ServingBenchConfig) -> ServingBenchOutcome {
    assert!(!cfg.clients.is_empty(), "no client counts to sweep");
    let corpus = generate(&CorpusConfig::small(cfg.docs, cfg.seed), 32);
    let mut config = TiptoeConfig::test_small(cfg.docs, cfg.seed);
    config.num_shards = cfg.shards;
    // The coalescer runs at its *default* policy — benchmarking the
    // default is the point; a hand-tuned per-bench deadline would hide
    // a bad one. The default holds up across scan scales because the
    // deadline adapts: a lone client flushes solo with no wait at all,
    // and under load the effective wait derives from the measured
    // arrival rate and flush latency (the 1 ms `max_wait` is only the
    // cold-start ceiling), so microsecond-scale synthetic shards and
    // deployment-scale ones both self-tune.
    // Pin kernels to one thread in both modes: per-query compute is
    // then identical everywhere and the sweep isolates the serving
    // architecture (client concurrency + cross-client batching) from
    // intra-query thread-pool effects.
    config.parallelism.num_threads = 1;
    config.validate();
    let embedder = TextEmbedder::new(config.d_embed, cfg.seed, 0);
    let instance = TiptoeInstance::build(&config, embedder, &corpus);

    // Coalescing must be invisible in results before it is worth
    // measuring: same client seed, both modes, identical hits.
    {
        let plane = instance.serving_plane();
        let mut direct = instance.new_client(9);
        let mut served = instance.new_client(9);
        let q = &corpus.queries[0];
        let a = direct.search(&instance, &q.text, 10);
        let b = served.search_served(&instance, &q.text, 10, &plane);
        assert_eq!(a.cluster, b.cluster, "coalesced serving must be bit-identical");
        assert_eq!(a.hits, b.hits, "coalesced serving must be bit-identical");
    }

    // Every query scans each ranking shard's lane plus the URL lane.
    let scans_per_direct_query = (cfg.shards + 1) as u64;
    let mut rows = Vec::with_capacity(cfg.clients.len() * 2);
    for &clients in &cfg.clients {
        let direct = measure_online_throughput(&instance, &corpus, clients, cfg.queries_per_client);
        let scans = direct.queries as u64 * scans_per_direct_query;
        rows.push(ServingRow {
            clients,
            coalesced: false,
            report: direct,
            scans,
            queries_per_scan: direct.queries as f64 / scans as f64,
        });

        let before = tiptoe_obs::metrics().snapshot();
        let coalesced = measure_online_throughput_coalesced(
            &instance,
            &corpus,
            clients,
            cfg.queries_per_client,
        );
        let scans = flushes_in(&tiptoe_obs::metrics().snapshot().delta(&before));
        assert!(scans > 0, "coalesced run must have flushed at least once");
        rows.push(ServingRow {
            clients,
            coalesced: true,
            report: coalesced,
            scans,
            queries_per_scan: coalesced.queries as f64 / scans as f64,
        });
    }
    ServingBenchOutcome {
        config: cfg.clone(),
        max_batch: config.coalesce.max_batch,
        max_wait_us: config.coalesce.max_wait.as_micros() as u64,
        queue_depth: config.coalesce.queue_depth,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_every_cell_and_renders_json() {
        let cfg = ServingBenchConfig {
            docs: 120,
            queries_per_client: 2,
            clients: vec![1, 3],
            shards: 2,
            seed: 67,
        };
        let outcome = run_serving_bench(&cfg);
        assert_eq!(outcome.rows.len(), 4);
        assert!(outcome.rows.iter().all(|r| r.report.queries == 2 * r.clients));
        assert!(outcome.rows.iter().all(|r| r.report.qps > 0.0));
        assert!(outcome.rows.iter().all(|r| r.scans > 0 && r.queries_per_scan > 0.0));
        // A lone direct query costs shards + 1 = 3 lane scans.
        let direct1 = outcome.rows.iter().find(|r| r.clients == 1 && !r.coalesced).unwrap();
        assert!((direct1.queries_per_scan - 1.0 / 3.0).abs() < 1e-9);
        // Coalesced can never use *more* scans than one per request.
        for row in outcome.rows.iter().filter(|r| r.coalesced) {
            assert!(row.scans <= row.report.queries as u64 * 3);
        }
        assert!(outcome.scan_speedup().is_some());
        assert!(outcome.wall_speedup().is_some());
        let json = outcome.to_json();
        assert!(json.contains("\"bench\": \"serving\""), "{json}");
        assert!(json.contains("\"mode\": \"coalesced\""), "{json}");
        assert!(json.contains("\"mode\": \"direct\""), "{json}");
        assert!(json.contains("\"queries_per_scan\""), "{json}");
        assert!(json.ends_with("}\n"), "{json}");
    }
}
