//! Measured-deployment harness shared by the Table 6 and Table 7
//! binaries: brings up a deployment with the paper's *production*
//! cryptographic parameters at a scaled-down corpus, runs measured
//! queries through the full private pipeline, and calibrates the
//! analytic extrapolation to web scale.

use std::time::Duration;

use tiptoe_core::analysis::ScalingModel;
use tiptoe_core::client::QueryCost;
use tiptoe_core::config::TiptoeConfig;
use tiptoe_core::instance::TiptoeInstance;
use tiptoe_corpus::synth::{generate, Corpus, CorpusConfig};
use tiptoe_embed::text::TextEmbedder;
use tiptoe_embed::Embedder;

/// Everything the table binaries report about one deployment.
pub struct Measurement {
    /// Documents indexed.
    pub docs: usize,
    /// Reduced embedding dimension.
    pub d: usize,
    /// Clusters.
    pub clusters: usize,
    /// Padded cluster size (scores per query).
    pub rows: usize,
    /// Mean per-query cost over the measured queries.
    pub cost: QueryCost,
    /// Batch-job stage timings.
    pub report: tiptoe_core::batch::IndexingReport,
    /// Client one-time setup download.
    pub setup_bytes: u64,
    /// Centroid + metadata download (excluding the model).
    pub centroid_bytes: u64,
    /// PCA projection download.
    pub pca_bytes: u64,
    /// Embedding-model download (simulated size).
    pub model_bytes: u64,
    /// Server-side index state.
    pub server_bytes: u64,
    /// Calibrated 64-bit MAC throughput (word-ops/core-second),
    /// derived from the measured ranking answers.
    pub ops_per_core_second: f64,
    /// Measured client-side-index bytes per document (4-bit
    /// embeddings plus compressed URLs), for the Table 6 "client-side
    /// Tiptoe index" row.
    pub index_bytes_per_doc: f64,
}

impl Measurement {
    /// The web-scale extrapolation model calibrated from this run.
    pub fn scaling_model(&self) -> ScalingModel {
        ScalingModel {
            d: self.d,
            ops_per_core_second: self.ops_per_core_second,
            url_bytes: 22.0,
            n_lwe: 2048,
        }
    }
}

fn average_costs(costs: &[QueryCost]) -> QueryCost {
    let n = costs.len().max(1) as u32;
    let avg_d = |f: fn(&QueryCost) -> Duration| {
        costs.iter().map(f).sum::<Duration>() / n
    };
    let avg_b = |f: fn(&QueryCost) -> u64| costs.iter().map(f).sum::<u64>() / n as u64;
    let avg_t = |w: fn(&QueryCost) -> Duration, c: fn(&QueryCost) -> Duration| {
        tiptoe_net::ParallelTiming { wall: avg_d(w), cpu: avg_d(c) }
    };
    QueryCost {
        token_up: avg_b(|c| c.token_up),
        token_down: avg_b(|c| c.token_down),
        rank_up: avg_b(|c| c.rank_up),
        rank_down: avg_b(|c| c.rank_down),
        url_up: avg_b(|c| c.url_up),
        url_down: avg_b(|c| c.url_down),
        token_server: avg_t(|c| c.token_server.wall, |c| c.token_server.cpu),
        rank_server: avg_t(|c| c.rank_server.wall, |c| c.rank_server.cpu),
        url_server: avg_t(|c| c.url_server.wall, |c| c.url_server.cpu),
        client_time: avg_d(|c| c.client_time),
        client_preproc: avg_d(|c| c.client_preproc),
    }
}

/// Builds a text deployment with production crypto at `docs` scale and
/// measures `queries` full private searches.
pub fn measure_text_deployment(docs: usize, queries: usize, seed: u64) -> Measurement {
    let corpus = generate(&CorpusConfig::small(docs, seed), queries.max(1));
    let config = TiptoeConfig::text(docs, seed);
    let embedder = TextEmbedder::paper_text(seed);
    let (instance, _) =
        tiptoe_obs::timed_span("bench.build", || TiptoeInstance::build(&config, embedder, &corpus));
    measure_instance(docs, &corpus, instance, queries)
}

/// Builds an image deployment (CLIP-like 512-d latents, production
/// crypto with `p = 2^15`, PCA to 384) and measures it — the Table 6/7
/// image column.
pub fn measure_image_deployment(docs: usize, queries: usize, seed: u64) -> Measurement {
    use tiptoe_embed::clip::ClipLikeEmbedder;
    let clip = ClipLikeEmbedder::paper_image(seed);
    // Captions drive both the latents and the benchmark queries.
    let text_corpus = generate(&CorpusConfig::small(docs, seed), queries.max(1));
    let mut latents = Vec::with_capacity(docs);
    let mut image_docs = Vec::with_capacity(docs);
    for d in &text_corpus.docs {
        let caption: String = d.text.split(' ').take(12).collect::<Vec<_>>().join(" ");
        let img = clip.embed_image(d.id as u64, &caption);
        latents.push(img.latent);
        image_docs.push(tiptoe_corpus::synth::Document {
            id: d.id,
            url: format!("https://images.example.org/{}.jpg", d.id),
            text: caption,
            topic: d.topic,
        });
    }
    let corpus = Corpus { docs: image_docs, queries: text_corpus.queries };
    let config = TiptoeConfig::image(docs, seed);
    let (instance, _) = tiptoe_obs::timed_span("bench.build", || {
        TiptoeInstance::build_with_embeddings(&config, clip, &corpus, latents)
    });
    measure_instance(docs, &corpus, instance, queries)
}

fn measure_instance<E: Embedder + Send + Sync>(
    docs: usize,
    corpus: &Corpus,
    instance: TiptoeInstance<E>,
    queries: usize,
) -> Measurement {
    let mut client = instance.new_client(1);
    let mut costs = Vec::new();
    for q in corpus.queries.iter().take(queries.max(1)) {
        let (results, _) =
            tiptoe_obs::timed_span("bench.query", || client.search(&instance, &q.text, 100));
        costs.push(results.cost);
    }
    let cost = average_costs(&costs);

    // Calibrate word-op throughput from the measured ranking scans:
    // each answer performs 2 ops per matrix entry.
    let matrix_entries = instance.artifacts.rank_matrix.len() as f64;
    let rank_cpu = cost.rank_server.cpu.as_secs_f64().max(1e-9);
    let ops_per_core_second = 2.0 * matrix_entries / rank_cpu;

    // Client-side-index baseline: the same data a client would store
    // locally — 4-bit quantized embeddings plus the compressed URLs.
    let embedding_bytes = instance.artifacts.order.len() as f64 * meta_d(&instance) as f64 / 2.0;
    let url_bytes: usize =
        instance.artifacts.url_batches.iter().map(|b| b.compressed.len()).sum();
    let index_bytes_per_doc = (embedding_bytes + url_bytes as f64) / docs as f64;

    let meta = &instance.artifacts.meta;
    Measurement {
        docs,
        d: meta.d,
        clusters: meta.c,
        rows: meta.rows,
        cost,
        report: instance.artifacts.report.clone(),
        setup_bytes: client.setup_bytes,
        centroid_bytes: meta.centroid_bytes,
        pca_bytes: meta.pca_bytes,
        model_bytes: meta.model_bytes,
        server_bytes: instance.server_storage_bytes(),
        ops_per_core_second,
        index_bytes_per_doc,
    }
}

fn meta_d<E: Embedder>(instance: &TiptoeInstance<E>) -> usize {
    instance.artifacts.meta.d
}
