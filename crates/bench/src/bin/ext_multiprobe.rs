//! Extension experiment: multi-probe search (paper §8.2: "Querying
//! more clusters could improve search quality, but would substantially
//! increase Tiptoe's costs").
//!
//! Sweeps the number of probed clusters and reports search quality
//! (via the plaintext-equivalent evaluator — quality only depends on
//! which clusters are scored) against the linear cost multiplier.
//!
//! ```text
//! cargo run --release -p tiptoe-bench --bin ext_multiprobe [docs] [queries]
//! ```

use tiptoe_bench::fmt_mrr;
use tiptoe_cluster::{cluster_documents, ClusterConfig};
use tiptoe_embed::pca::Pca;
use tiptoe_embed::quantize::Quantizer;
use tiptoe_embed::text::TextEmbedder;
use tiptoe_embed::vector::normalize;
use tiptoe_embed::Embedder;
use tiptoe_corpus::synth::{generate, CorpusConfig};
use tiptoe_ir::metrics::QualityReport;
use tiptoe_ir::topk::TopK;
use tiptoe_ir::SearchHit;

fn main() {
    let docs: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(4000);
    let queries: usize = std::env::args().nth(2).and_then(|a| a.parse().ok()).unwrap_or(300);
    println!("== Extension: multi-probe cluster search ({docs} docs, {queries} queries) ==\n");

    let corpus = generate(&CorpusConfig::small(docs, 93), queries);
    let embedder = TextEmbedder::paper_text(93);

    // Batch side (same as the full-Tiptoe pipeline).
    let raw: Vec<Vec<f32>> = corpus.docs.iter().map(|d| embedder.embed_text(&d.text)).collect();
    let pca = Pca::fit(&raw.iter().take(2048).cloned().collect::<Vec<_>>(), 192, 1);
    let reduced: Vec<Vec<f32>> = raw
        .iter()
        .map(|v| {
            let mut r = pca.project(v);
            normalize(&mut r);
            r
        })
        .collect();
    let clustering = cluster_documents(&reduced, &ClusterConfig::for_corpus(docs, 7));
    let quant = Quantizer::paper_text();
    let q_docs: Vec<Vec<i64>> = reduced.iter().map(|v| quant.to_signed(v)).collect();

    println!("{:>7} {:>9} {:>12} {:>14} {:>16}", "probes", "MRR@100", "hit rate", "online cost", "server compute");
    let mut last_mrr = 0.0;
    for probes in [1usize, 2, 3, 5, 8] {
        let mut results = Vec::new();
        let mut hits_in_probed = 0usize;
        for q in &corpus.queries {
            let mut q_emb = pca.project(&embedder.embed_text(&q.text));
            normalize(&mut q_emb);
            let q_quant = quant.to_signed(&q_emb);
            let probe_clusters = clustering.nearest_centroids(&q_emb, probes);
            if probe_clusters
                .iter()
                .any(|&c| clustering.members[c].contains(&q.relevant))
            {
                hits_in_probed += 1;
            }
            let mut top = TopK::new(100);
            let mut seen = std::collections::HashSet::new();
            for &c in &probe_clusters {
                for &m in &clustering.members[c] {
                    if seen.insert(m) {
                        let score: i64 = q_docs[m as usize]
                            .iter()
                            .zip(q_quant.iter())
                            .map(|(&a, &b)| a * b)
                            .sum();
                        top.push(SearchHit { doc: m, score: score as f32 });
                    }
                }
            }
            results.push(top.into_sorted());
        }
        let relevant: Vec<u32> = corpus.queries.iter().map(|q| q.relevant).collect();
        let report = QualityReport::evaluate(&results, &relevant, 100);
        println!(
            "{:>7} {:>9} {:>11.1}% {:>13}x {:>15}x",
            probes,
            fmt_mrr(report.mrr),
            100.0 * hits_in_probed as f64 / corpus.queries.len() as f64,
            probes,
            probes,
        );
        assert!(
            report.mrr >= last_mrr - 1e-9,
            "more probes must not reduce quality: {} after {}",
            report.mrr,
            last_mrr
        );
        last_mrr = report.mrr;
    }
    println!("\nQuality rises monotonically with probes while online cost and server");
    println!("compute grow linearly — the trade-off §8.2 declines to pay by default.");
}
