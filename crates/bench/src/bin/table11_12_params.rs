//! Reproduces **Tables 11 and 12** (Appendix C): the LWE plaintext
//! modulus `p` as a function of the upload dimension `m`, for the URL
//! modulus `q = 2^32` and the ranking modulus `q = 2^64`.
//!
//! ```text
//! cargo run --release -p tiptoe-bench --bin table11_12_params
//! ```

use tiptoe_lwe::params::{computed_p, floor_pow2, TABLE_11, TABLE_12};

fn main() {
    println!("== Table 11: q = 2^32 (URL retrieval step) ==");
    println!("{:<10} {:>6} {:>8} {:>10} {:>10} {:>8}", "upload m", "n", "sigma", "paper p", "ours p", "Δ%");
    for row in &TABLE_11 {
        let ours = computed_p(row, 32);
        let delta = 100.0 * (ours as f64 - row.paper_p as f64) / row.paper_p as f64;
        println!(
            "2^{:<8} {:>6} {:>8} {:>10} {:>10} {:>7.2}%",
            row.log_m, row.n, row.sigma, row.paper_p, ours, delta
        );
    }

    println!("\n== Table 12: q = 2^64 (ranking step; paper rounds p down to a power of two) ==");
    println!("{:<10} {:>6} {:>8} {:>10} {:>10}", "upload m", "n", "sigma", "paper p", "ours p");
    for row in &TABLE_12 {
        let ours = floor_pow2(computed_p(row, 64));
        println!(
            "2^{:<8} {:>6} {:>8} 2^{:<8} 2^{:<8}",
            row.log_m,
            row.n,
            row.sigma,
            row.paper_p.trailing_zeros(),
            ours.trailing_zeros()
        );
    }
    println!("\nFormula: p = sqrt(q / (z·σ·√m)) with z = 7.55 (2^-40 Gaussian tail);");
    println!("see crates/lwe/src/params.rs and EXPERIMENTS.md for the derivation.");
}
