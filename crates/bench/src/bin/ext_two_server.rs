//! Extension experiment: the §9 non-colluding two-server mode,
//! **implemented** (DPF-shared queries over plaintext replicas) rather
//! than just estimated. Compares measured per-query traffic against
//! the single-server deployment on the same corpus, and prints the
//! analytic C4-scale numbers next to the paper's "roughly 1 MiB"
//! estimate.
//!
//! ```text
//! cargo run --release -p tiptoe-bench --bin ext_two_server [docs]
//! ```

use tiptoe_core::analysis::{non_colluding_bytes, C4_DOCS};
use tiptoe_core::config::TiptoeConfig;
use tiptoe_core::instance::TiptoeInstance;
use tiptoe_core::noncolluding::{build_replica, search_two_server};
use tiptoe_corpus::synth::{generate, CorpusConfig};
use tiptoe_embed::text::TextEmbedder;
use tiptoe_embed::Embedder;
use tiptoe_math::rng::seeded_rng;
use tiptoe_math::stats::fmt_bytes;

fn main() {
    let docs: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(2000);
    println!("== Extension: non-colluding two-server mode ({docs} docs) ==\n");

    let corpus = generate(&CorpusConfig::small(docs, 91), 10);
    let config = TiptoeConfig::test_small(docs, 91);
    let embedder = TextEmbedder::new(config.d_embed, 91, 0);
    let instance = TiptoeInstance::build(&config, embedder, &corpus);
    let replica = build_replica(&config, &instance.artifacts);
    let mut rng = seeded_rng(1);

    // Single-server (encrypted) baseline on the same corpus.
    let mut client = instance.new_client(1);
    let single = client.search(&instance, &corpus.queries[0].text, 10);

    // Two-server (secret-shared) run, same query.
    let q_raw = instance.embedder.embed_text(&corpus.queries[0].text);
    let double = search_two_server(
        &config,
        &instance.artifacts,
        [&replica, &replica],
        &q_raw,
        10,
        &mut rng,
    );

    println!("rankings agree: {}", single.hits.iter().map(|h| h.doc).eq(
        double.hits.iter().map(|(d, _, _)| *d)));
    println!("\n-- per-query communication on this corpus --");
    println!("  single-server (encrypted):      {}", fmt_bytes(single.cost.total_bytes()));
    println!("    of which pre-query tokens:    {}", fmt_bytes(single.cost.offline_bytes()));
    println!("  two-server (DPF, both servers): {}", fmt_bytes(double.cost.total()));
    println!("    upload (4 DPF keys):          {}", fmt_bytes(double.cost.up));
    println!("    download (score+record shares): {}", fmt_bytes(double.cost.down));
    let factor = single.cost.total_bytes() as f64 / double.cost.total().max(1) as f64;
    println!("  reduction: {factor:.0}x");

    println!("\n-- analytic at C4 scale (364M documents) --");
    let c4 = non_colluding_bytes(C4_DOCS, 192);
    println!("  two-server estimate: {} (paper: \"roughly 1 MiB\")", fmt_bytes(c4));
    println!("  single-server:       56.9 MiB (paper, measured)");

    println!("\n-- paper-shape checks --");
    let checks: [(&str, bool); 3] = [
        ("two-server identical ranking to single-server",
            single.hits.iter().map(|h| h.doc).eq(double.hits.iter().map(|(d, _, _)| *d))),
        ("two-server at least 10x cheaper on this corpus", factor >= 10.0),
        ("C4-scale estimate within 4x of the paper's 1 MiB",
            ((256u64 << 10)..(4u64 << 20)).contains(&c4)),
    ];
    let mut all_ok = true;
    for (name, ok) in checks {
        println!("  [{}] {}", if ok { "ok" } else { "FAIL" }, name);
        all_ok &= ok;
    }
    std::process::exit(if all_ok { 0 } else { 1 });
}
