//! Reproduces **Figure 8** (§8.5): Tiptoe's analytic per-query cost
//! scaling to 1–10 billion documents — server computation, pre-query
//! (token) communication, and online (ranking + URL) communication —
//! with the paper's reference corpus sizes marked.
//!
//! The paper computes this figure analytically from its measured
//! 364M-document point; we do the same, calibrating the word-op
//! throughput from a measured matrix-vector product on this machine.
//!
//! ```text
//! cargo run --release -p tiptoe-bench --bin fig8_scaling
//! ```

use std::time::Instant;

use rand::Rng;
use tiptoe_core::analysis::ScalingModel;
use tiptoe_math::matrix::{matvec, Mat};
use tiptoe_math::rng::seeded_rng;
use tiptoe_math::stats::fmt_bytes;

/// Measures this machine's 64-bit MAC throughput on the SimplePIR
/// apply kernel (the number the paper's r5 instances deliver from DRAM
/// bandwidth).
fn calibrate_ops_per_second() -> f64 {
    let mut rng = seeded_rng(1);
    let (rows, cols) = (512usize, 8192usize);
    let db = Mat::from_fn(rows, cols, |_, _| rng.gen_range(0..16u32));
    let v: Vec<u64> = (0..cols).map(|_| rng.gen()).collect();
    // Warm up, then measure.
    let _ = matvec(&db, &v);
    let reps = 8;
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(matvec(&db, std::hint::black_box(&v)));
    }
    let elapsed = t0.elapsed().as_secs_f64();
    (2.0 * (rows * cols * reps) as f64) / elapsed
}

fn main() {
    let ops = calibrate_ops_per_second();
    println!("calibrated MAC throughput: {:.2e} word-ops/core-s\n", ops);
    let model = ScalingModel { ops_per_core_second: ops, ..ScalingModel::text() };

    println!("== Figure 8: analytic Tiptoe per-query cost vs corpus size (text) ==");
    println!(
        "{:>14} {:>14} {:>14} {:>16} {:>14}",
        "docs", "compute", "comm(token)", "comm(rank+URL)", "total comm"
    );
    let mut marks: Vec<(u64, &str)> = vec![
        (364_000_000, "<- C4 crawl (measured point in the paper)"),
        (3_000_000_000, "<- Library of Congress web archive"),
        (8_000_000_000, "<- Google Knowledge Graph entities"),
        (10_000_000_000, ""),
    ];
    for i in 1..=10u64 {
        marks.push((i * 1_000_000_000, ""));
    }
    marks.sort_unstable_by_key(|(n, _)| *n);
    marks.dedup_by_key(|(n, _)| *n);
    for (n, label) in marks {
        println!(
            "{:>14} {:>12.0} s {:>14} {:>16} {:>14} {}",
            n,
            model.core_seconds(n),
            fmt_bytes(model.token_bytes(n)),
            fmt_bytes(model.online_bytes(n)),
            fmt_bytes(model.total_bytes(n)),
            label
        );
    }
    println!("\npaper reference: at 8 billion docs ≈ 1 900 core-s and ≈ 140 MiB total.");
    let n8 = 8_000_000_000u64;
    println!(
        "ours at 8 billion docs: {:.0} core-s and {} total.",
        model.core_seconds(n8),
        fmt_bytes(model.total_bytes(n8))
    );
    println!("\nShapes: compute grows linearly in N; communication ~ sqrt(N).");
    let r_compute = model.core_seconds(10_000_000_000) / model.core_seconds(1_000_000_000);
    let r_comm =
        model.total_bytes(10_000_000_000) as f64 / model.total_bytes(1_000_000_000) as f64;
    println!("10x docs -> {r_compute:.1}x compute, {r_comm:.1}x communication");
}
