//! Reproduces **Figure 5 / Appendix E**: sample Tiptoe search results —
//! random benchmark queries with their top privately-retrieved URLs,
//! for both text search and text-to-image search.
//!
//! Every answer below went through the full private pipeline
//! (encrypted ranking + PIR URL fetch); ground-truth answers are
//! marked the way the paper highlights the human-chosen result.
//!
//! ```text
//! cargo run --release -p tiptoe-bench --bin fig5_samples [docs]
//! ```

use tiptoe_core::config::TiptoeConfig;
use tiptoe_core::instance::TiptoeInstance;
use tiptoe_corpus::synth::{generate, BenchmarkQuery, Corpus, CorpusConfig, Document};
use tiptoe_embed::clip::ClipLikeEmbedder;
use tiptoe_embed::text::TextEmbedder;

fn main() {
    let docs: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(1500);

    // ---- Text search (top half of Figure 5). ----
    println!("== Figure 5 (top): random text-search queries ==\n");
    let corpus = generate(&CorpusConfig::small(docs, 95), 40);
    let config = TiptoeConfig::test_small(docs, 95);
    let embedder = TextEmbedder::new(config.d_embed, 95, 0);
    let instance = TiptoeInstance::build(&config, embedder, &corpus);
    let mut client = instance.new_client(1);
    for q in corpus.queries.iter().take(6) {
        let results = client.search(&instance, &q.text, 3);
        println!("Q: {}", q.text);
        for (i, hit) in results.hits.iter().enumerate() {
            let mark = if hit.doc == q.relevant { "  <- ground truth" } else { "" };
            println!("  {}. {}{}", i + 1, hit.url, mark);
        }
        println!();
    }

    // ---- Text-to-image search (bottom half). ----
    println!("== Figure 5 (bottom): random text-to-image queries ==\n");
    let clip = ClipLikeEmbedder::new(96, 96, 0.3);
    let captions: Vec<String> = (0..docs.min(400))
        .map(|i| {
            let subjects = ["a train", "a small dog", "a young man", "a red kite", "two boats"];
            let scenes = ["next to a station", "wearing a life jacket", "in a blue shirt",
                          "over the beach", "at the dock"];
            format!("{} {}", subjects[i % 5], scenes[(i / 5) % 5])
        })
        .collect();
    let mut image_docs = Vec::new();
    let mut latents = Vec::new();
    for (i, c) in captions.iter().enumerate() {
        let img = clip.embed_image(i as u64, c);
        image_docs.push(Document {
            id: i as u32,
            url: format!("https://commons.example.org/wiki/File:{}.jpg", c.replace(' ', "_")),
            text: c.clone(),
            topic: 0,
        });
        latents.push(img.latent);
    }
    let image_corpus = Corpus { docs: image_docs, queries: Vec::new() };
    let mut img_config = TiptoeConfig::test_small(captions.len(), 96);
    img_config.d_embed = 96;
    img_config.d_reduced = 48;
    let img_instance =
        TiptoeInstance::build_with_embeddings(&img_config, &clip, &image_corpus, latents);
    let mut img_client = img_instance.new_client(2);
    let image_queries = [
        BenchmarkQuery { text: "a train next to a station".into(), relevant: 0 },
        BenchmarkQuery { text: "a small dog wearing a life jacket".into(), relevant: 6 },
        BenchmarkQuery { text: "two boats at the dock".into(), relevant: 24 },
    ];
    for q in &image_queries {
        let results = img_client.search(&img_instance, &q.text, 3);
        println!("Q: {}", q.text);
        for (i, hit) in results.hits.iter().enumerate() {
            let mark = if hit.doc == q.relevant { "  <- the captioned image" } else { "" };
            println!("  {}. {}{}", i + 1, hit.url, mark);
        }
        println!();
    }
}
