//! Machine-readable kernel benchmark for the perf trajectory: times
//! the scalar / dispatched-SIMD / parallel / batched variants of the
//! LHE hot-path kernels (`matvec` online, `preproc` offline) and
//! writes `BENCH_kernels.json` at the repository root.
//!
//! `matvec` is measured at two shapes because they answer different
//! questions: the cache-resident **hot** shape (256×1024, ~1 MiB)
//! isolates the kernel itself — this is where SIMD dispatch shows its
//! real arithmetic speedup — while the paper-scale **streaming**
//! shape (2^15×1024, 128 MiB) is DRAM-bandwidth-bound on any host
//! (this VM streams ~5 GB/s single-core, and the scalar loop already
//! saturates that), so every single-query variant converges on the
//! memory ceiling there and only the batched variant, which amortizes
//! the database traffic across queries, escapes it.
//!
//! ```text
//! cargo run --release -p tiptoe-bench --bin bench_kernels
//! ```
//!
//! Methodology: every variant runs one warmup plus ≥5 measured reps
//! and reports the **minimum** — on a shared/virtualized host the min
//! is the only estimator that converges on the true cost of the code
//! rather than the noise of the neighbourhood. `scalar` is the pinned
//! portable baseline (`matvec_scalar`/`preproc_scalar`, never
//! auto-vectorized away by dispatch); `dispatched` is the production
//! entry point, which routes through the runtime CPU-feature dispatch
//! (`TIPTOE_FORCE_SCALAR=1` pins it back to the scalar tier). The
//! parallel variants are swept over thread counts, and `parallel_t1`
//! is explicitly labeled as the spawn/partition overhead baseline —
//! it is the dispatched kernel plus threading costs with zero
//! parallelism, so compare t≥2 against it, not against `scalar`.
//!
//! Knobs: `TIPTOE_THREADS` pins the sweep's top thread count
//! (default: one per core); `TIPTOE_BENCH_KERNEL_REPS` overrides the
//! per-variant repetition count (dev smoke runs only — the committed
//! artifact should use the default).

use std::fmt::Write as _;

use rand::Rng;
use tiptoe_lwe::{scheme, MatrixA};
use tiptoe_math::matrix::{self, Mat};
use tiptoe_math::par::max_threads;
use tiptoe_math::rng::seeded_rng;

const MATVEC_ROWS: usize = 1 << 15;
const MATVEC_COLS: usize = 1 << 10;
/// Cache-resident kernel-isolation shape: 256×1024 u32 = 1 MiB, which
/// sits in L2 next to the 8 KiB query vector, so the measurement is
/// arithmetic, not DRAM.
const HOT_ROWS: usize = 1 << 8;
/// Inner repeats for the hot shape so each sample is milliseconds,
/// not microseconds (reported time is per single call).
const HOT_INNER: usize = 64;
const BATCH: usize = 4;
const PREPROC_ROWS: usize = 1 << 15;
const PREPROC_COLS: usize = 64;
const PREPROC_N: usize = 256;

fn reps() -> usize {
    std::env::var("TIPTOE_BENCH_KERNEL_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&r| r >= 1)
        .unwrap_or(5)
}

/// Min-of-`reps` seconds for one run of `f` (after one warmup). The
/// min, not the median: timing noise on a busy host is strictly
/// additive, so the smallest sample is the least contaminated one.
/// Each measured rep is an obs span, so `TIPTOE_TRACE=…` captures the
/// per-rep timeline (including the kernels' own `lwe.*` child spans).
/// Every measured rep is also recorded into the `bench.rep_us`
/// registry histogram; the run reports its rep count and mean from a
/// [`tiptoe_obs::metrics::MetricsSnapshot::delta`] over the measured
/// interval, so a warm registry (or a co-resident bench) cannot
/// contaminate the numbers.
fn time<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    std::hint::black_box(f());
    let hist = tiptoe_obs::metrics().histogram("bench.rep_us");
    (0..reps)
        .map(|_| {
            let (out, wall) = tiptoe_obs::timed_span("bench.rep", &mut f);
            std::hint::black_box(out);
            hist.record(wall.as_micros() as u64);
            wall.as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

struct Entry {
    kernel: &'static str,
    variant: String,
    shape: String,
    seconds: f64,
    /// Per-query speedup over the scalar variant of the same kernel.
    speedup: f64,
    /// Set on entries that are not an apples-to-apples speedup claim
    /// (e.g. `parallel_t1`, which measures threading overhead).
    note: Option<&'static str>,
}

/// Thread counts for the parallel sweep: always 1 (the overhead
/// baseline) and 2 (the smallest real parallelism), then the detected
/// core count when it adds a new point.
fn thread_sweep(top: usize) -> Vec<usize> {
    let mut ts = vec![1, 2];
    if top > 2 {
        ts.push(top);
    }
    ts
}

fn main() {
    tiptoe_obs::init_from_env();
    let run_start = tiptoe_obs::metrics().snapshot();
    let reps = reps();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = max_threads();
    let tier = tiptoe_math::simd::tier_name();
    let mut entries: Vec<Entry> = Vec::new();

    let mut rng = seeded_rng(21);
    let v: Vec<u64> = (0..MATVEC_COLS).map(|_| rng.gen()).collect();
    let vs: Vec<Vec<u64>> = (0..BATCH)
        .map(|s| {
            let mut r = seeded_rng(100 + s as u64);
            (0..MATVEC_COLS).map(|_| r.gen()).collect()
        })
        .collect();
    let mut push = |kernel, variant: String, shape: &str, seconds, scalar: f64, note| {
        entries.push(Entry {
            kernel,
            variant,
            shape: shape.to_string(),
            seconds,
            speedup: scalar / seconds,
            note,
        });
    };

    // --- Online kernel, cache-resident shape: what the SIMD tiers buy
    // when the measurement is arithmetic rather than DRAM. ---
    let hot = Mat::from_fn(HOT_ROWS, MATVEC_COLS, |_, _| rng.gen_range(0..16u32));
    let shape = format!("{HOT_ROWS}x{MATVEC_COLS}");
    let per_call = |total: f64| total / HOT_INNER as f64;
    let scalar = per_call(time(reps, || {
        for _ in 0..HOT_INNER {
            std::hint::black_box(matrix::matvec_scalar(&hot, &v));
        }
    }));
    let dispatched = per_call(time(reps, || {
        for _ in 0..HOT_INNER {
            std::hint::black_box(matrix::matvec(&hot, &v));
        }
    }));
    push("matvec", "scalar".into(), &shape, scalar, scalar, None);
    push("matvec", format!("dispatched_{tier}"), &shape, dispatched, scalar, None);

    // --- Online kernel, paper-scale streaming shape (128 MiB): every
    // single-query variant is memory-bound here; batched amortizes the
    // database stream over BATCH queries. ---
    let db = Mat::from_fn(MATVEC_ROWS, MATVEC_COLS, |_, _| rng.gen_range(0..16u32));
    let shape = format!("{MATVEC_ROWS}x{MATVEC_COLS}");
    const STREAM_NOTE: &str = "DRAM-bandwidth-bound at this shape: the scalar loop already \
                               saturates the host's single-core stream; see the cache-resident \
                               matvec entries for the kernel's arithmetic speedup";
    let scalar = time(reps, || matrix::matvec_scalar(&db, &v));
    let dispatched = time(reps, || matrix::matvec(&db, &v));
    // Batched answers BATCH queries per pass; report per-query time.
    let batched = time(reps, || matrix::matvec_batch(&db, &vs, 1)) / BATCH as f64;
    push("matvec_stream", "scalar".into(), &shape, scalar, scalar, None);
    push("matvec_stream", format!("dispatched_{tier}"), &shape, dispatched, scalar, Some(STREAM_NOTE));
    push("matvec_stream", format!("batched_b{BATCH}_per_query"), &shape, batched, scalar, None);
    for t in thread_sweep(threads) {
        let seconds = time(reps, || matrix::matvec_par(&db, &v, t));
        let note = (t == 1)
            .then_some("threading overhead baseline: dispatched kernel plus spawn/partition cost at zero parallelism; compare t>=2 against this, not against scalar");
        push("matvec_stream", format!("parallel_t{t}"), &shape, seconds, scalar, note);
    }

    // --- Offline kernel: preproc (hint = M·A with seeded A). ---
    let db = Mat::from_fn(PREPROC_ROWS, PREPROC_COLS, |_, _| rng.gen_range(0..16u32));
    let a = MatrixA::new(23, PREPROC_COLS, PREPROC_N);
    let range = a.row_range(0, PREPROC_COLS);
    let shape = format!("{PREPROC_ROWS}x{PREPROC_COLS}xn{PREPROC_N}");
    let scalar = time(reps, || scheme::preproc_scalar::<u64>(&db, &range));
    let dispatched = time(reps, || scheme::preproc::<u64>(&db, &range));
    push("preproc", "scalar".into(), &shape, scalar, scalar, None);
    push("preproc", format!("dispatched_{tier}"), &shape, dispatched, scalar, None);
    for t in thread_sweep(threads) {
        let seconds = time(reps, || scheme::preproc_par::<u64>(&db, &range, t));
        let note = (t == 1)
            .then_some("threading overhead baseline: dispatched kernel plus spawn/partition cost at zero parallelism; compare t>=2 against this, not against scalar");
        push("preproc", format!("parallel_t{t}"), &shape, seconds, scalar, note);
    }

    // --- Emit BENCH_kernels.json at the workspace root. The rep
    // accounting comes from a metrics-snapshot delta over the run, so
    // it covers exactly this run's samples. ---
    let run_delta = tiptoe_obs::metrics().snapshot().delta(&run_start);
    let rep_us = run_delta.histograms.iter().find(|h| h.name == "bench.rep_us");
    let rep_samples = rep_us.map_or(0, |h| h.count);
    let rep_mean_us = rep_us.map_or(0, |h| h.sum.checked_div(h.count).unwrap_or(0));
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"kernels\",");
    let _ = writeln!(json, "  \"cores_detected\": {cores},");
    let _ = writeln!(json, "  \"threads_used\": {threads},");
    let _ = writeln!(json, "  \"simd_tier\": \"{tier}\",");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"rep_samples\": {rep_samples},");
    let _ = writeln!(json, "  \"rep_mean_us\": {rep_mean_us},");
    let _ = writeln!(json, "  \"stat\": \"min\",");
    let _ = writeln!(json, "  \"results\": [");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        let note = e.note.map_or(String::new(), |n| format!(", \"note\": \"{n}\""));
        let _ = writeln!(
            json,
            "    {{\"kernel\": \"{}\", \"variant\": \"{}\", \"shape\": \"{}\", \
             \"seconds\": {:.6}, \"speedup_vs_scalar\": {:.3}{note}}}{comma}",
            e.kernel, e.variant, e.shape, e.seconds, e.speedup
        );
    }
    json.push_str("  ]\n}\n");

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(root, &json).expect("write BENCH_kernels.json");

    tiptoe_obs::export::export_query_artifacts();

    println!("{json}");
    println!("wrote {root}");
    for e in &entries {
        println!(
            "{:<8} {:<24} {:<20} {:>10.3} ms   {:>6.2}x{}",
            e.kernel,
            e.variant,
            e.shape,
            e.seconds * 1e3,
            e.speedup,
            e.note.map_or("", |n| {
                if n.starts_with("threading overhead") {
                    "   (overhead baseline)"
                } else {
                    "   (memory-bound; see JSON note)"
                }
            })
        );
    }
}
