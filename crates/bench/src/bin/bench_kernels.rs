//! Machine-readable kernel benchmark for the perf trajectory: times
//! the scalar / cache-blocked / parallel / batched variants of the LHE
//! hot-path kernels (`matvec` online, `preproc` offline) at a
//! paper-scale online shape (ℓ = 2^15 rows) and writes
//! `BENCH_kernels.json` at the repository root.
//!
//! ```text
//! cargo run --release -p tiptoe-bench --bin bench_kernels
//! ```
//!
//! Knobs: `TIPTOE_THREADS` pins the parallel variants' thread count
//! (default: one per core); `TIPTOE_BENCH_KERNEL_REPS` overrides the
//! per-variant repetition count.

use std::fmt::Write as _;

use rand::Rng;
use tiptoe_lwe::{scheme, MatrixA};
use tiptoe_math::matrix::{self, Mat};
use tiptoe_math::par::max_threads;
use tiptoe_math::rng::seeded_rng;

const MATVEC_ROWS: usize = 1 << 15;
const MATVEC_COLS: usize = 1 << 10;
const BATCH: usize = 4;
const PREPROC_ROWS: usize = 1 << 15;
const PREPROC_COLS: usize = 64;
const PREPROC_N: usize = 256;

fn reps() -> usize {
    std::env::var("TIPTOE_BENCH_KERNEL_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&r| r >= 1)
        .unwrap_or(5)
}

/// Median-of-`reps` seconds for one run of `f` (after one warmup).
/// Each measured rep is an obs span, so `TIPTOE_TRACE=…` captures the
/// per-rep timeline (including the kernels' own `lwe.*` child spans).
fn time<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    std::hint::black_box(f());
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let (out, wall) = tiptoe_obs::timed_span("bench.rep", &mut f);
            std::hint::black_box(out);
            wall.as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

struct Entry {
    kernel: &'static str,
    variant: String,
    shape: String,
    seconds: f64,
    /// Per-query speedup over the scalar variant of the same kernel.
    speedup: f64,
}

fn main() {
    tiptoe_obs::init_from_env();
    let reps = reps();
    let threads = max_threads();
    let mut entries: Vec<Entry> = Vec::new();

    // --- Online kernel: matvec over a 128 MiB database. ---
    let mut rng = seeded_rng(21);
    let db = Mat::from_fn(MATVEC_ROWS, MATVEC_COLS, |_, _| rng.gen_range(0..16u32));
    let v: Vec<u64> = (0..MATVEC_COLS).map(|_| rng.gen()).collect();
    let vs: Vec<Vec<u64>> = (0..BATCH)
        .map(|s| {
            let mut r = seeded_rng(100 + s as u64);
            (0..MATVEC_COLS).map(|_| r.gen()).collect()
        })
        .collect();
    let shape = format!("{MATVEC_ROWS}x{MATVEC_COLS}");
    let scalar = time(reps, || matrix::matvec(&db, &v));
    let blocked = time(reps, || matrix::matvec_blocked(&db, &v));
    let parallel = time(reps, || matrix::matvec_par(&db, &v, 0));
    // Batched answers BATCH queries per pass; report per-query time.
    let batched = time(reps, || matrix::matvec_batch(&db, &vs, 0)) / BATCH as f64;
    for (variant, seconds) in [
        ("scalar", scalar),
        ("blocked", blocked),
        (&*format!("parallel_t{threads}"), parallel),
        (&*format!("batched_b{BATCH}_per_query"), batched),
    ]
    .map(|(v, s)| (v.to_string(), s))
    {
        entries.push(Entry {
            kernel: "matvec",
            variant,
            shape: shape.clone(),
            seconds,
            speedup: scalar / seconds,
        });
    }

    // --- Offline kernel: preproc (hint = M·A with seeded A). ---
    let db = Mat::from_fn(PREPROC_ROWS, PREPROC_COLS, |_, _| rng.gen_range(0..16u32));
    let a = MatrixA::new(23, PREPROC_COLS, PREPROC_N);
    let range = a.row_range(0, PREPROC_COLS);
    let shape = format!("{PREPROC_ROWS}x{PREPROC_COLS}xn{PREPROC_N}");
    let p_reps = reps.min(3);
    let scalar = time(p_reps, || scheme::preproc::<u64>(&db, &range));
    let parallel = time(p_reps, || scheme::preproc_par::<u64>(&db, &range, 0));
    for (variant, seconds) in
        [("scalar".to_string(), scalar), (format!("parallel_t{threads}"), parallel)]
    {
        entries.push(Entry {
            kernel: "preproc",
            variant,
            shape: shape.clone(),
            seconds,
            speedup: scalar / seconds,
        });
    }

    // --- Emit BENCH_kernels.json at the workspace root. ---
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"kernels\",");
    let _ = writeln!(
        json,
        "  \"cores_detected\": {},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let _ = writeln!(json, "  \"threads_used\": {threads},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"kernel\": \"{}\", \"variant\": \"{}\", \"shape\": \"{}\", \
             \"seconds\": {:.6}, \"speedup_vs_scalar\": {:.3}}}{comma}",
            e.kernel, e.variant, e.shape, e.seconds, e.speedup
        );
    }
    json.push_str("  ]\n}\n");

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(root, &json).expect("write BENCH_kernels.json");

    tiptoe_obs::export::export_query_artifacts();

    println!("{json}");
    println!("wrote {root}");
    for e in &entries {
        println!(
            "{:<8} {:<24} {:<20} {:>10.3} ms   {:>6.2}x",
            e.kernel,
            e.variant,
            e.shape,
            e.seconds * 1e3,
            e.speedup
        );
    }
}
