//! Reproduces **Figure 9** (§8.6): the impact of Tiptoe's
//! optimizations ➊–➏ on search quality (measured MRR@100 on the
//! synthetic benchmark) versus per-query communication and server
//! computation (analytic at C4 scale, exactly as the paper reports
//! "expected performance for Tiptoe without some optimizations").
//!
//! ```text
//! cargo run --release -p tiptoe-bench --bin fig9_ablations [docs] [queries]
//! ```

use tiptoe_bench::{evaluate_variant, fmt_mrr, AblationFlags, VariantConfig};
use tiptoe_core::analysis::{CoeusModel, ScalingModel, C4_DOCS};
use tiptoe_corpus::synth::{generate, CorpusConfig};
use tiptoe_embed::text::TextEmbedder;
use tiptoe_math::stats::fmt_bytes;

/// Analytic per-query cost of a variant at C4 scale.
///
/// Constants follow the paper's accounting:
/// - Without clustering (➊), the client downloads one 8-byte score per
///   document ("communication similar to that of Coeus's query
///   scoring") and retrieves the top-100 URLs with a SEAL-PIR-like
///   scheme whose per-retrieval compute is ~50 (heavier ring ops)
///   times the SimplePIR byte-scan.
/// - With clustering (➋+), costs follow [`ScalingModel`].
/// - Without the chunk restriction (➋), the client runs 100 separate
///   SimplePIR URL retrievals instead of 1 ("the client must run
///   SimplePIR to individually retrieve each of the 100 URLs"): 4× in
///   the paper's URL communication and compute.
/// - Dual assignment (➎) multiplies ranking compute and download 1.2×.
/// - Without PCA (➏ off), d = 768 instead of 192: ~2× total cost in
///   the paper (bandwidth and computation "by roughly 2×").
fn variant_cost(flags: AblationFlags, ops_per_core_second: f64) -> (u64, f64) {
    let n = C4_DOCS;
    let d = if flags.pca { 192 } else { 768 };
    let dual = if flags.dual_assign { 1.2 } else { 1.0 };
    let model = ScalingModel { d, ops_per_core_second, ..ScalingModel::text() };

    let url_retrievals = if flags.chunk_restrict { 1u64 } else { 100 };
    let url_scan_bytes = 22.0 * n as f64; // compressed URL store
    if !flags.clustering {
        // ➊: every score travels; URL fetches use an expensive
        // FHE-composed PIR (SEAL-PIR-like, per the Figure 9 caption).
        let comm = n * 8 + url_retrievals * (512 << 10);
        let ranking_ops = 2.0 * n as f64 * d as f64;
        let url_ops = url_retrievals as f64 * url_scan_bytes * 50.0;
        return (comm, (ranking_ops + url_ops) / ops_per_core_second);
    }
    let ranking_comm = (model.token_bytes(n) as f64
        + model.upload_dim(n) as f64 * 8.0
        + model.rows(n) as f64 * 8.0 * dual) as u64;
    let url_comm = url_retrievals * ((40u64 << 10) * 4 / 3 + (n / 880) * 4);
    let comm = ranking_comm + url_comm;
    let ranking_ops = 2.0 * n as f64 * d as f64 * dual;
    let url_ops = url_retrievals as f64 * url_scan_bytes;
    let token_ops = model.rows(n) as f64 * 2048.0 * 4.0;
    (comm, (ranking_ops + url_ops + token_ops) / ops_per_core_second)
}

fn main() {
    let docs: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(4000);
    let queries: usize = std::env::args().nth(2).and_then(|a| a.parse().ok()).unwrap_or(300);
    println!("== Figure 9: impact of optimizations ({docs} docs, {queries} queries) ==\n");

    let corpus = generate(&CorpusConfig::small(docs, 99), queries);
    let embedder = TextEmbedder::paper_text(99);
    let vconf = VariantConfig { d_reduced: 192, ..Default::default() };
    let ops = 2e9;

    println!(
        "{:<30} {:>8} {:>12} {:>14} {:>10} {:>8}",
        "variant", "MRR@100", "comm @C4", "compute @C4", "clu-hit", "d"
    );
    let mut rows = Vec::new();
    for (name, flags) in AblationFlags::figure9_sequence() {
        let outcome = evaluate_variant(&corpus, &embedder, flags, &vconf);
        let (comm, core_s) = variant_cost(flags, ops);
        println!(
            "{:<30} {:>8} {:>12} {:>11.0} cs {:>9.1}% {:>8}",
            name,
            fmt_mrr(outcome.report.mrr),
            fmt_bytes(comm),
            core_s,
            100.0 * outcome.cluster_hit_rate,
            outcome.d_active,
        );
        rows.push((name, outcome, comm, core_s));
    }

    println!("\nCoeus reference point: {} comm, {:.0} core-s at C4 scale",
        fmt_bytes(CoeusModel::comm_bytes(C4_DOCS)),
        CoeusModel::core_seconds(C4_DOCS));

    println!("\n-- paper-shape checks --");
    let mrr = |i: usize| rows[i].1.report.mrr;
    let comm = |i: usize| rows[i].2;
    let compute = |i: usize| rows[i].3;
    let checks: [(&str, bool); 6] = [
        ("clustering shrinks communication >= 10x (paper: 20x)", comm(0) / comm(1) >= 10),
        ("clustering costs quality (paper: -0.2 MRR)", mrr(1) < mrr(0)),
        ("chunk restriction cheapens URL step, costs some MRR",
            comm(2) < comm(1) && mrr(2) <= mrr(1) + 1e-9),
        ("semantic batches recover MRR at no cost (paper: +0.04)",
            mrr(3) >= mrr(2) - 0.005 && comm(3) == comm(2)),
        // The paper's ➎ effect is +0.015 MRR — inside measurement noise
        // at this corpus scale; assert the change is marginal and the
        // cluster-hit bound does not degrade.
        ("dual assignment is cost-bounded and ~quality-neutral (paper: +0.015)",
            (mrr(4) - mrr(3)).abs() <= 0.02
                && rows[4].1.cluster_hit_rate >= rows[3].1.cluster_hit_rate - 1e-9),
        ("PCA halves cost (paper: ~2x) at small MRR loss (paper: -0.02)",
            compute(5) < compute(4) * 0.6 && mrr(5) >= mrr(4) - 0.1),
    ];
    let mut all_ok = true;
    for (name, ok) in checks {
        println!("  [{}] {}", if ok { "ok" } else { "FAIL" }, name);
        all_ok &= ok;
    }
    println!(
        "\nOverall: optimizations cut communication {:.0}x and compute {:.0}x\n\
         (paper: two orders / one order of magnitude) for an MRR drop of {:.3}\n\
         (paper: 0.2).",
        comm(0) as f64 / comm(5) as f64,
        compute(0) / compute(5),
        mrr(0) - mrr(5),
    );
    std::process::exit(if all_ok { 0 } else { 1 });
}
