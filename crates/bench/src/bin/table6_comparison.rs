//! Reproduces **Table 6** (§8.3): Tiptoe versus the private-search
//! alternatives — Coeus query-scoring and a client-side search index —
//! in client storage, per-query communication, server compute,
//! end-to-end latency, and AWS cost.
//!
//! Tiptoe's row is **measured** with the paper's production
//! cryptographic parameters (n = 2048 / q = 2^64 / p = 2^17 ranking;
//! n = 1408 / q = 2^32 URL retrieval) on a scaled-down corpus, then
//! extrapolated to the paper's 360M/400M-document scale with the same
//! analytic model the paper uses in §8.5 — calibrated against the
//! measured run.
//!
//! ```text
//! cargo run --release -p tiptoe-bench --bin table6_comparison [docs]
//! ```

use tiptoe_bench::measure::measure_text_deployment;
use tiptoe_core::analysis::{aws, ClientIndexModel, CoeusModel, C4_DOCS, LAION_DOCS, WIKIPEDIA_DOCS};
use tiptoe_math::stats::{fmt_bytes, fmt_seconds};
use tiptoe_net::LinkModel;

fn main() {
    let docs: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(4096);
    println!("== Table 6: comparison to private-search alternatives ==\n");
    println!("measuring Tiptoe (production crypto) at {docs} documents ...");
    let m = measure_text_deployment(docs, 3, 7);
    let link = LinkModel::paper();
    let model = m.scaling_model();

    println!(
        "  measured: {} comm/query ({} offline), {:.2} core-s, ~{} perceived\n",
        fmt_bytes(m.cost.total_bytes()),
        fmt_bytes(m.cost.offline_bytes()),
        m.cost.server_core_seconds(),
        fmt_seconds(m.cost.perceived_latency(&link).as_secs_f64()),
    );
    println!("  calibrated MAC throughput: {:.2e} ops/core-s\n", m.ops_per_core_second);

    // --- Extrapolation to the paper's corpus sizes. Latency model:
    // the paper spreads ranking over 160 vCPUs (40 r5.xlarge).
    let vcpus = 160.0;
    let extrapolate = |n_docs: u64, comm_scale: f64, compute_scale: f64| {
        let comm = (model.total_bytes(n_docs) as f64 * comm_scale) as u64;
        let core_s = model.core_seconds(n_docs) * compute_scale;
        let online = (model.online_bytes(n_docs) as f64 * comm_scale) as u64;
        let wall = core_s / vcpus;
        let latency = link
            .phase_latency(online / 2, online / 2, std::time::Duration::from_secs_f64(wall))
            .as_secs_f64();
        (comm, core_s, latency, aws::query_cost(core_s, comm))
    };
    let (t_comm, t_core, t_lat, t_cost) = extrapolate(C4_DOCS, 1.0, 1.0);
    // Image search: 1.2x corpus, 2x embedding dimension -> paper reports
    // 2.3x compute and 1.2x communication over text.
    let (i_comm, i_core, i_lat, i_cost) = extrapolate(LAION_DOCS, 1.2, 2.3);

    println!(
        "{:<38} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "system", "client-GiB", "comm/query", "core-s/q", "latency", "$/query"
    );
    let gib = |b: u64| format!("{:.1}", b as f64 / (1u64 << 30) as f64);

    println!("-- Wikipedia search over 5M documents --");
    println!(
        "{:<38} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "Coeus query-scoring [reported]",
        "0",
        fmt_bytes(CoeusModel::comm_bytes(WIKIPEDIA_DOCS)),
        format!("{:.0}", CoeusModel::core_seconds(WIKIPEDIA_DOCS)),
        "2.8 s",
        format!("{:.3}", CoeusModel::aws_cost(WIKIPEDIA_DOCS)),
    );

    println!("-- Text search over 360M documents --");
    println!(
        "{:<38} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "Client-side Tiptoe index",
        gib(ClientIndexModel::tiptoe_index_bytes(C4_DOCS, 192)),
        "0", "0", "-", "0",
    );
    println!(
        "{:<38} {:>12}   (measured {:.0} B/doc x 364M; paper: 48 GiB)",
        "  measured from this run",
        gib((m.index_bytes_per_doc * C4_DOCS as f64) as u64),
        m.index_bytes_per_doc,
    );
    println!(
        "{:<38} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "  (BM25 index would be)",
        gib(ClientIndexModel::bm25_index_bytes(C4_DOCS)),
        "0", "0", "-", "0",
    );
    println!(
        "{:<38} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "  (ColBERT index would be)",
        gib(ClientIndexModel::colbert_index_bytes(C4_DOCS)),
        "0", "0", "-", "0",
    );
    println!(
        "{:<38} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "Tiptoe [extrapolated from measured]",
        "0.3",
        fmt_bytes(t_comm),
        format!("{t_core:.0}"),
        fmt_seconds(t_lat),
        format!("{t_cost:.3}"),
    );
    println!("{:<38} paper: 0.3 GiB, 56.9 MiB, 145 core-s, 2.7 s, $0.003", "");

    println!("-- Coeus scaled to 360M documents (estimate, §8.4) --");
    println!(
        "{:<38} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "Coeus query-scoring",
        "0",
        fmt_bytes(CoeusModel::comm_bytes(C4_DOCS)),
        format!("{:.0}", CoeusModel::core_seconds(C4_DOCS)),
        "-",
        format!("{:.2}", CoeusModel::aws_cost(C4_DOCS)),
    );

    println!("-- Image search over 400M documents --");
    println!(
        "{:<38} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "Client-side Tiptoe index",
        gib(ClientIndexModel::tiptoe_index_bytes(LAION_DOCS, 384)),
        "0", "0", "-", "0",
    );
    println!(
        "{:<38} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "Tiptoe [extrapolated]",
        "0.7",
        fmt_bytes(i_comm),
        format!("{i_core:.0}"),
        fmt_seconds(i_lat),
        format!("{i_cost:.3}"),
    );
    println!("{:<38} paper: 0.7 GiB, 71 MiB, 339 core-s, 3.5 s, $0.008", "");

    // --- Shape checks.
    println!("\n-- paper-shape checks --");
    let tiptoe_vs_coeus_comm = CoeusModel::comm_bytes(C4_DOCS) as f64 / t_comm as f64;
    let tiptoe_vs_coeus_cost = CoeusModel::aws_cost(C4_DOCS) / t_cost;
    let checks: [(&str, bool); 4] = [
        ("Tiptoe comm 10-100x below Coeus at C4 scale", tiptoe_vs_coeus_comm > 10.0),
        ("Tiptoe cost ~1000x below Coeus (paper: >1000x)", tiptoe_vs_coeus_cost > 100.0),
        ("Tiptoe comm within 4x of the paper's 56.9 MiB",
            (14u64 << 20..=228u64 << 20).contains(&t_comm)),
        ("majority of traffic is pre-query at scale",
            model.token_bytes(C4_DOCS) > model.online_bytes(C4_DOCS)),
    ];
    let mut all_ok = true;
    for (name, ok) in checks {
        println!("  [{}] {}", if ok { "ok" } else { "FAIL" }, name);
        all_ok &= ok;
    }
    std::process::exit(if all_ok { 0 } else { 1 });
}
