//! Reproduces **Table 7** (§8.4): the full Tiptoe cost breakdown —
//! index preprocessing, client downloads, per-phase communication,
//! client preprocessing time, per-phase latency, and throughput.
//!
//! Measured with production cryptographic parameters at a scaled-down
//! corpus; each block prints the paper's 364M-document reference value
//! alongside.
//!
//! ```text
//! cargo run --release -p tiptoe-bench --bin table7_breakdown [docs]
//! ```

use tiptoe_bench::measure::{measure_image_deployment, measure_text_deployment};
use tiptoe_math::stats::{fmt_bytes, fmt_seconds};
use tiptoe_net::LinkModel;

fn main() {
    tiptoe_obs::init_from_env();
    let docs: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(4096);
    println!("== Table 7: Tiptoe cost breakdown (text search) ==\n");
    println!("measuring at {docs} documents with production crypto ...\n");
    let m = measure_text_deployment(docs, 3, 11);
    let link = LinkModel::paper();

    println!("corpus size:        {} documents (paper: 364M)", m.docs);
    println!("embedding dim:      {} (paper: 192)", m.d);
    println!("clusters:           {} of ≈{} docs", m.clusters, m.rows);

    println!("\n-- index preprocessing (paper: 0.013 core-s/doc total) --");
    let stage = |name: &str, d: std::time::Duration| {
        println!("  {:<18} {:>12} ({:.2e} core-s/doc)", name, fmt_seconds(d.as_secs_f64()),
            d.as_secs_f64() / m.docs as f64);
    };
    stage("embed", m.report.embed);
    stage("build centroids", m.report.cluster);
    stage("balance, PCA", m.report.pca);
    stage("matrix layout", m.report.layout);
    stage("URL batching", m.report.urls);
    stage("crypto", m.report.crypto);
    println!(
        "  {:<18} {:>12} ({:.4} core-s/doc)",
        "total",
        fmt_seconds(m.report.total().as_secs_f64()),
        m.report.core_seconds_per_doc(m.docs)
    );

    println!("\n-- client download (one-time) --");
    println!("  model:     {:>12}   (paper: 0.27 GiB)", fmt_bytes(m.model_bytes));
    println!("  centroids: {:>12}   (paper: 0.02 GiB)", fmt_bytes(m.centroid_bytes));
    println!("  PCA:       {:>12}   (paper: 0.6 MiB)", fmt_bytes(m.pca_bytes));
    println!("  total:     {:>12}", fmt_bytes(m.setup_bytes));

    let c = &m.cost;
    println!("\n-- communication per query (measured; paper @364M) --");
    println!("  up,   token:   {:>12}   (paper: 32.4 MiB)", fmt_bytes(c.token_up));
    println!("  up,   ranking: {:>12}   (paper: 11.6 MiB)", fmt_bytes(c.rank_up));
    println!("  up,   URL:     {:>12}   (paper:  2.4 MiB)", fmt_bytes(c.url_up));
    println!("  down, token:   {:>12}   (paper:  9.8 MiB)", fmt_bytes(c.token_down));
    println!("  down, ranking: {:>12}   (paper:  0.5 MiB)", fmt_bytes(c.rank_down));
    println!("  down, URL:     {:>12}   (paper:  0.1 MiB)", fmt_bytes(c.url_down));
    println!(
        "  offline share: {:>11.0}%   (paper: 74%)",
        100.0 * c.offline_bytes() as f64 / c.total_bytes() as f64
    );

    println!("\n-- client preprocessing per query --");
    println!(
        "  {:>12}   (paper: 37.7 s/query)",
        fmt_seconds(c.client_preproc.as_secs_f64())
    );

    println!("\n-- query latency (100 Mbit/s + 50 ms RTT link; paper values @364M) --");
    let token_lat = c.token_latency(&link);
    let rank_lat = link.phase_latency(c.rank_up, c.rank_down, c.rank_server.wall);
    let url_lat = link.phase_latency(c.url_up, c.url_down, c.url_server.wall);
    println!("  token:     {:>12}   (paper: 6.5 s)", fmt_seconds(token_lat.as_secs_f64()));
    println!("  ranking:   {:>12}   (paper: 1.9 s)", fmt_seconds(rank_lat.as_secs_f64()));
    println!("  URL:       {:>12}   (paper: 0.6 s)", fmt_seconds(url_lat.as_secs_f64()));
    println!(
        "  perceived: {:>12}   (paper: 2.7 s)",
        fmt_seconds(c.perceived_latency(&link).as_secs_f64())
    );

    println!("\n-- throughput (queries/s at the paper's vCPU allocation) --");
    // The paper allocates 32 vCPUs to token generation, 160 to ranking,
    // 16 to URL retrieval for text search.
    let tput = |vcpus: f64, cpu: std::time::Duration| vcpus / cpu.as_secs_f64().max(1e-9);
    println!(
        "  token (32 vCPU):    {:>8.1} q/s   (paper: 0.5 q/s @364M)",
        tput(32.0, c.token_server.cpu)
    );
    println!(
        "  ranking (160 vCPU): {:>8.1} q/s   (paper: 2.9 q/s @364M)",
        tput(160.0, c.rank_server.cpu)
    );
    println!(
        "  URL (16 vCPU):      {:>8.1} q/s   (paper: 5.0 q/s @364M)",
        tput(16.0, c.url_server.cpu)
    );
    // Extrapolated to the paper's 364M-document corpus with the model
    // calibrated on this run.
    let model = m.scaling_model();
    let n = tiptoe_core::analysis::C4_DOCS;
    let rank_core_s = 2.0 * n as f64 * m.d as f64 * 1.2 / model.ops_per_core_second;
    let url_core_s = n as f64 * 22.0 / model.ops_per_core_second;
    // Token cost scales with the number of 2048-row hint chunks, not
    // rows: each chunk costs a fixed number of NTT-pointwise MACs.
    let ring = 2048f64;
    let chunks_measured = (m.rows as f64 / ring).ceil() * 4.0 /* rank shards */
        + (22.0 * m.docs as f64 * 10.0f64.sqrt() / ring).ceil().max(1.0);
    let chunks_c4 = (model.rows(n) as f64 / ring).ceil()
        + ((22.0 * n as f64 * 10.0).sqrt() * 8.0 / 9.0 / ring).ceil();
    let token_core_s =
        c.token_server.cpu.as_secs_f64() * (chunks_c4 / chunks_measured.max(1.0)).max(1.0);
    println!("  -- extrapolated to 364M docs --");
    println!("  token (32 vCPU):    {:>8.1} q/s", 32.0 / token_core_s);
    println!("  ranking (160 vCPU): {:>8.1} q/s", 160.0 / rank_core_s);
    println!("  URL (16 vCPU):      {:>8.1} q/s", 16.0 / url_core_s);

    println!("\n-- server state --");
    println!("  index + hints: {}", fmt_bytes(m.server_bytes));

    // --- Image column (Table 7 right): CLIP-like 512-d latents, PCA
    //     to 384, p = 2^15, at a quarter of the text scale.
    let img_docs = (docs / 2).max(512);
    println!("\n== image search column ({img_docs} images) ==");
    let im = measure_image_deployment(img_docs, 2, 12);
    let ic = &im.cost;
    println!("  embedding dim:   {} (paper: 384)", im.d);
    println!("  up,   token:   {:>12}   (paper: 32.4 MiB)", fmt_bytes(ic.token_up));
    println!("  up,   ranking: {:>12}   (paper: 16.2 MiB @400M)", fmt_bytes(ic.rank_up));
    println!("  down, ranking: {:>12}   (paper:  1.0 MiB @400M)", fmt_bytes(ic.rank_down));
    println!(
        "  image/text ranking-upload ratio: {:.2} (paper: 16.2/11.6 = 1.40)",
        ic.rank_up as f64 / c.rank_up as f64 * (docs as f64 / img_docs as f64).sqrt()
    );

    // --- Concurrent multi-client throughput (the paper's 19-client
    //     load driver), exercised via the channel-based cluster.
    println!("\n-- multi-client online throughput (concurrent driver) --");
    let corpus = tiptoe_corpus::synth::generate(
        &tiptoe_corpus::synth::CorpusConfig::small(512, 13),
        8,
    );
    let config = tiptoe_core::config::TiptoeConfig::text(512, 13);
    let embedder = tiptoe_embed::text::TextEmbedder::paper_text(13);
    let small = tiptoe_core::instance::TiptoeInstance::build(&config, embedder, &corpus);
    let report = tiptoe_core::throughput::measure_online_throughput(&small, &corpus, 3, 2);
    println!(
        "  {} queries across 3 clients: {:.1} q/s online (512-doc corpus, 1 core)",
        report.queries, report.qps
    );

    // Shape checks.
    println!("\n-- paper-shape checks --");
    let checks: [(&str, bool); 4] = [
        ("token upload dominated by Enc2(s) ≈ 32 MiB (paper: 32.4 MiB)",
            (30u64 << 20..=35u64 << 20).contains(&c.token_up)),
        ("token phase is the most expensive phase",
            c.token_server.cpu >= c.rank_server.cpu && c.token_server.cpu >= c.url_server.cpu),
        ("ranking download is small (scores only)", c.rank_down < c.token_down),
        ("client preprocessing far exceeds online client work",
            c.client_preproc > c.client_time),
    ];
    let mut all_ok = true;
    for (name, ok) in checks {
        println!("  [{}] {}", if ok { "ok" } else { "FAIL" }, name);
        all_ok &= ok;
    }
    std::process::exit(if all_ok { 0 } else { 1 });
}
