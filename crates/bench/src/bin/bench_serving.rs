//! Serving-plane throughput benchmark: sweeps concurrent closed-loop
//! clients over direct vs. coalesced serving (paper §8.1's 19-client
//! saturation setup) and writes `BENCH_serving.json` at the workspace
//! root.
//!
//! Usage: `bench_serving [docs] [queries_per_client] [clients-csv]`
//! (defaults: 240 docs, 12 queries/client, clients 1,4,19). The CI
//! smoke job runs `bench_serving 160 4 4`.
//!
//! When the sweep covers both the 1-client and the 19-client cell, the
//! binary asserts the headline capacity claim: scan-normalized
//! coalesced throughput at 19 clients is at least 2x direct 1-client
//! throughput (i.e. the plane's measured mean batch size is >= 2, so
//! a scan-bound server serves >= 2x the queries per scan). Wall-clock
//! qps is reported alongside but not gated: it is bounded by the CI
//! box's core count, not by the serving architecture.

use tiptoe_bench::serving::{run_serving_bench, ServingBenchConfig};

fn main() {
    tiptoe_obs::init_from_env();
    let mut args = std::env::args().skip(1);
    let mut cfg = ServingBenchConfig::default();
    if let Some(docs) = args.next().and_then(|a| a.parse().ok()) {
        cfg.docs = docs;
    }
    if let Some(qpc) = args.next().and_then(|a| a.parse().ok()) {
        cfg.queries_per_client = qpc;
    }
    if let Some(csv) = args.next() {
        let clients: Vec<usize> = csv.split(',').filter_map(|c| c.trim().parse().ok()).collect();
        assert!(!clients.is_empty(), "client list parsed empty: {csv}");
        cfg.clients = clients;
    }

    println!(
        "serving bench: {} docs, {} shards, {} queries/client, clients {:?}",
        cfg.docs, cfg.shards, cfg.queries_per_client, cfg.clients
    );
    let outcome = run_serving_bench(&cfg);

    println!(
        "{:>8}  {:>10}  {:>10}  {:>9}  {:>9}  {:>9}  {:>7}  {:>8}",
        "clients", "mode", "qps", "p50 ms", "p95 ms", "p99 ms", "scans", "q/scan"
    );
    for row in &outcome.rows {
        let r = &row.report;
        println!(
            "{:>8}  {:>10}  {:>10.2}  {:>9.2}  {:>9.2}  {:>9.2}  {:>7}  {:>8.3}",
            row.clients,
            if row.coalesced { "coalesced" } else { "direct" },
            r.qps,
            r.p50.as_secs_f64() * 1e3,
            r.p95.as_secs_f64() * 1e3,
            r.p99.as_secs_f64() * 1e3,
            row.scans,
            row.queries_per_scan,
        );
    }
    if let Some(s) = outcome.wall_speedup() {
        println!("wall-clock speedup (coalesced @max clients vs direct @1): {s:.2}x");
    }
    if let Some(s) = outcome.scan_speedup() {
        println!("scan-bound speedup (coalesced @max clients vs direct @1): {s:.2}x");
        if cfg.clients.contains(&1) && cfg.clients.contains(&19) {
            assert!(
                s >= 2.0,
                "scan-normalized coalesced 19-client throughput must be >= 2x \
                 direct 1-client (got {s:.2}x)"
            );
        }
    }

    let json = outcome.to_json();
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    std::fs::write(out, &json).expect("write BENCH_serving.json");
    println!("wrote {out}");
}
