//! Reproduces **Figure 4** (§8.2): search quality on the MS-MARCO-like
//! benchmark for ColBERT (reported), exhaustive embeddings, BM25,
//! tf-idf (unrestricted and Coeus-restricted), and Tiptoe — MRR@100 on
//! the left, the rank CDF with the cluster-hit bound on the right.
//!
//! Absolute MRR values differ from the paper's (the embedding model is
//! a synthetic stand-in, DESIGN.md §2); the *relationships* are the
//! reproduction target: exhaustive ≥ BM25/tf-idf-like ≥ Tiptoe;
//! restricted-dictionary tf-idf collapses; Tiptoe's CDF is bounded by
//! its cluster-hit rate.
//!
//! ```text
//! cargo run --release -p tiptoe-bench --bin fig4_search_quality [docs] [queries]
//! ```

use tiptoe_bench::{evaluate_variant, fmt_mrr, verify_crypto_agreement, AblationFlags, VariantConfig};
use tiptoe_core::config::TiptoeConfig;
use tiptoe_core::instance::TiptoeInstance;
use tiptoe_corpus::synth::{generate, CorpusConfig};
use tiptoe_embed::text::TextEmbedder;
use tiptoe_ir::bm25::Bm25;
use tiptoe_ir::metrics::QualityReport;
use tiptoe_ir::tfidf::TfIdf;
use tiptoe_ir::{Retriever, SearchHit};

/// ColBERT's MRR@100 from the MS MARCO leaderboard, which the paper
/// reports rather than measuring (§8.2).
const COLBERT_REPORTED_MRR: f64 = 0.40;

fn evaluate<R: Retriever>(r: &R, corpus: &tiptoe_corpus::synth::Corpus) -> QualityReport {
    let results: Vec<Vec<SearchHit>> =
        corpus.queries.iter().map(|q| r.search(&q.text, 100)).collect();
    let relevant: Vec<u32> = corpus.queries.iter().map(|q| q.relevant).collect();
    QualityReport::evaluate(&results, &relevant, 100)
}

fn main() {
    let docs: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(4000);
    let queries: usize = std::env::args().nth(2).and_then(|a| a.parse().ok()).unwrap_or(300);
    println!("== Figure 4: search quality ({docs} docs, {queries} queries) ==\n");

    let corpus = generate(&CorpusConfig::small(docs, 97), queries);
    let embedder = TextEmbedder::paper_text(97);
    let texts = corpus.texts();

    // Crypto/plaintext agreement spot-check on a small instance.
    {
        let small = generate(&CorpusConfig::small(300, 97), 10);
        let cfg = TiptoeConfig::test_small(300, 97);
        let small_embedder = TextEmbedder::new(cfg.d_embed, 97, 0);
        let inst = TiptoeInstance::build(&cfg, small_embedder, &small);
        verify_crypto_agreement(&inst, &small, 5);
        println!("[ok] private pipeline agrees with the plaintext evaluator (5 queries)\n");
    }

    // Baselines.
    let bm25 = evaluate(&Bm25::build(&texts), &corpus);
    let tfidf = evaluate(&TfIdf::build(&texts), &corpus);
    let tfidf_restricted = evaluate(&TfIdf::build_restricted(&texts, 65), &corpus);

    // Embedding variants via the shared harness.
    let vconf = VariantConfig { d_reduced: 192, ..Default::default() };
    let none = AblationFlags {
        clustering: false,
        chunk_restrict: false,
        semantic_chunks: false,
        dual_assign: false,
        pca: false,
    };
    let exhaustive = evaluate_variant(&corpus, &embedder, none, &vconf);
    let tiptoe = evaluate_variant(&corpus, &embedder, AblationFlags::full(), &vconf);

    println!("-- MRR@100 (left panel) --");
    println!("{:<34} {:>8} {:>12}", "system", "MRR@100", "mean rank");
    println!("{:<34} {:>8}    (reported from the MS MARCO leaderboard)", "ColBERT (not private)", fmt_mrr(COLBERT_REPORTED_MRR));
    println!("{:<34} {:>8} {:>12.1}", "Embeddings (not private)", fmt_mrr(exhaustive.report.mrr), exhaustive.report.mean_found_rank());
    println!("{:<34} {:>8} {:>12.1}", "BM25 (not private)", fmt_mrr(bm25.mrr), bm25.mean_found_rank());
    println!("{:<34} {:>8} {:>12.1}", "tf-idf (not private)", fmt_mrr(tfidf.mrr), tfidf.mean_found_rank());
    println!("{:<34} {:>8} {:>12.1}", "tf-idf, Coeus 65-term dictionary", fmt_mrr(tfidf_restricted.mrr), tfidf_restricted.mean_found_rank());
    println!("{:<34} {:>8} {:>12.1}", "Tiptoe (private)", fmt_mrr(tiptoe.report.mrr), tiptoe.report.mean_found_rank());

    println!("\n-- rank CDF (right panel): % queries with best result at index <= i --");
    println!("{:>6} {:>14} {:>10} {:>10} {:>14}", "i", "Embeddings", "tf-idf", "Tiptoe", "cluster bound");
    for i in [1usize, 5, 10, 25, 50, 75, 100] {
        println!(
            "{:>6} {:>13.1}% {:>9.1}% {:>9.1}% {:>13.1}%",
            i,
            100.0 * exhaustive.report.cdf_at(i),
            100.0 * tfidf.cdf_at(i),
            100.0 * tiptoe.report.cdf_at(i),
            100.0 * tiptoe.cluster_hit_rate,
        );
    }

    // With a synthetic (lexical) embedder the absolute "Tiptoe ≈
    // tf-idf" relation of the paper cannot transfer — a hashing
    // embedder has no learned paraphrase generalization (DESIGN.md
    // §2). The faithful, embedder-independent reproduction target is
    // the *clustering loss*: the ratio of Tiptoe's MRR to its own
    // exhaustive-embedding upper bound (paper: ≈0.17/0.33 ≈ 0.5).
    let ratio = tiptoe.report.mrr / exhaustive.report.mrr.max(1e-9);
    println!("\nTiptoe / exhaustive MRR ratio: {ratio:.2} (paper: ~0.5)");
    println!("\n-- paper-shape checks --");
    let checks: [(&str, bool); 5] = [
        ("exhaustive >= Tiptoe", exhaustive.report.mrr >= tiptoe.report.mrr - 1e-9),
        ("restricted tf-idf collapses vs tf-idf", tfidf_restricted.mrr < tfidf.mrr * 0.7),
        ("Tiptoe retains ~half of exhaustive MRR (paper: ~0.5)",
            (0.3..=0.85).contains(&ratio)),
        ("Tiptoe CDF bounded by cluster-hit rate",
            tiptoe.report.recall() <= tiptoe.cluster_hit_rate + 1e-9),
        ("cluster-hit bound in a plausible range (paper: ~35%)",
            (0.1..=0.9).contains(&tiptoe.cluster_hit_rate)),
    ];
    let mut all_ok = true;
    for (name, ok) in checks {
        println!("  [{}] {}", if ok { "ok" } else { "FAIL" }, name);
        all_ok &= ok;
    }
    std::process::exit(if all_ok { 0 } else { 1 });
}
