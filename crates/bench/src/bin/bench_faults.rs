//! Machine-readable robustness benchmark: drives full private searches
//! through the fault-injection layer (`tiptoe-net::fault`) at a sweep
//! of injected fault rates and writes `BENCH_faults.json` at the
//! repository root with client-perceived latency and MRR@100 per rate.
//!
//! ```text
//! cargo run --release -p tiptoe-bench --bin bench_faults [docs] [queries]
//! ```
//!
//! At rate 0.0 the harness additionally asserts the fault-tolerant
//! path is bit-identical to the plain fan-out (the degraded machinery
//! must cost nothing in quality when nothing fails).
//!
//! A second scenario drives the overload-safe serving plane at 2x its
//! admitted capacity while one availability zone (two of the four
//! ranking shards) is crashed: excess arrivals must shed with typed
//! errors, every admitted query whose searched cluster survives must
//! stay bit-identical to fault-free serving, and the p99 deadline
//! budget spent by admitted queries must stay within the configured
//! budget — all recorded in the same JSON artifact.

use std::fmt::Write as _;
use std::sync::{Barrier, Mutex};
use std::time::Duration;

use tiptoe_core::config::TiptoeConfig;
use tiptoe_core::instance::TiptoeInstance;
use tiptoe_corpus::synth::{generate, Corpus, CorpusConfig};
use tiptoe_embed::text::TextEmbedder;
use tiptoe_ir::metrics::QualityReport;
use tiptoe_ir::SearchHit;
use tiptoe_net::{BreakerState, FaultPlan, FaultPolicy, FaultRates, LinkModel, ServeError};

const SEED: u64 = 51;
const SHARDS: usize = 4;
const K: usize = 100;
const RATES: [f64; 4] = [0.0, 0.1, 0.25, 0.5];

struct RateRow {
    rate: f64,
    mrr: f64,
    mean_latency: Duration,
    max_latency: Duration,
    retries: u32,
    timeouts: u32,
    corrupted: u32,
    hedges: u32,
    degraded_queries: usize,
    searched_cluster_lost: usize,
    url_failures: usize,
}

fn build(corpus: &Corpus, docs: usize, policy: Option<FaultPolicy>) -> TiptoeInstance<TextEmbedder> {
    let mut config = TiptoeConfig::test_small(docs, SEED);
    config.num_shards = SHARDS;
    if let Some(policy) = policy {
        config.fault_policy = policy;
    }
    config.validate();
    let embedder = TextEmbedder::new(config.d_embed, SEED, 0);
    TiptoeInstance::build(&config, embedder, corpus)
}

fn to_ir_hits(hits: &[tiptoe_core::client::RankedUrl]) -> Vec<SearchHit> {
    hits.iter().map(|h| SearchHit { doc: h.doc, score: h.score }).collect()
}

fn main() {
    tiptoe_obs::init_from_env();
    let docs: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(240);
    let queries: usize = std::env::args().nth(2).and_then(|a| a.parse().ok()).unwrap_or(20);
    println!("== bench_faults: latency/quality vs injected fault rate ==");
    println!("   {docs} docs, {queries} queries, {SHARDS} ranking shards, k={K}\n");

    let corpus = generate(&CorpusConfig::small(docs, SEED), queries);
    let relevant: Vec<u32> = corpus.queries.iter().map(|q| q.relevant).collect();
    let link = LinkModel::paper();

    let plain = build(&corpus, docs, None);
    let tolerant = build(&corpus, docs, Some(FaultPolicy::tolerant()));
    let policy = tolerant.config.fault_policy;

    // Baseline: the plain (fault-oblivious) path, and the rate-0.0
    // bit-identity check against it.
    let mut plain_client = plain.new_client(7);
    let mut check_client = tolerant.new_client(7);
    let mut plain_hits: Vec<Vec<tiptoe_core::client::RankedUrl>> = Vec::with_capacity(queries);
    let mut plain_clusters: Vec<usize> = Vec::with_capacity(queries);
    let plain_results: Vec<Vec<SearchHit>> = corpus
        .queries
        .iter()
        .map(|q| {
            let a = plain_client.search(&plain, &q.text, K);
            let b = check_client.search_with_faults(&tolerant, &q.text, K, &FaultPlan::none());
            assert_eq!(a.cluster, b.cluster, "benign cluster drifted: {}", q.text);
            assert_eq!(a.hits, b.hits, "benign hits drifted: {}", q.text);
            let ir = to_ir_hits(&a.hits);
            plain_clusters.push(a.cluster);
            plain_hits.push(a.hits);
            ir
        })
        .collect();
    let baseline = QualityReport::evaluate(&plain_results, &relevant, K);
    println!("[ok] rate 0.0 is bit-identical to the plain path ({queries} queries)");
    println!("     baseline MRR@{K} = {:.3}\n", baseline.mrr);

    let mut rows: Vec<RateRow> = Vec::new();
    for (ri, &rate) in RATES.iter().enumerate() {
        let mut client = tolerant.new_client(7);
        let mut results: Vec<Vec<SearchHit>> = Vec::with_capacity(queries);
        let mut row = RateRow {
            rate,
            mrr: 0.0,
            mean_latency: Duration::ZERO,
            max_latency: Duration::ZERO,
            retries: 0,
            timeouts: 0,
            corrupted: 0,
            hedges: 0,
            degraded_queries: 0,
            searched_cluster_lost: 0,
            url_failures: 0,
        };
        let mut total_latency = Duration::ZERO;
        for (qi, query) in corpus.queries.iter().enumerate() {
            let plan = if rate == 0.0 {
                FaultPlan::none()
            } else {
                FaultPlan::from_rates(
                    SEED ^ (ri as u64) << 32 ^ qi as u64,
                    FaultRates::mixed(rate),
                )
            };
            let r = client.search_with_faults(&tolerant, &query.text, K, &plan);
            let latency = r.cost.perceived_latency(&link);
            total_latency += latency;
            row.max_latency = row.max_latency.max(latency);
            let dq = r.degraded.as_ref().expect("fault-tolerant searches report state");
            row.retries += dq.rank_report.retries + dq.url_report.retries;
            row.timeouts += dq.rank_report.timeouts + dq.url_report.timeouts;
            row.corrupted += dq.rank_report.corrupted + dq.url_report.corrupted;
            row.hedges += dq.rank_report.hedges + dq.url_report.hedges;
            if !dq.missing_clusters.is_empty() || dq.url_failed {
                row.degraded_queries += 1;
            }
            if dq.searched_cluster_missing {
                row.searched_cluster_lost += 1;
            }
            if dq.url_failed {
                row.url_failures += 1;
            }
            assert!(
                dq.rank_report.timing.wall <= policy.deadline,
                "rate {rate}, query {qi}: ranking wall {:?} blew the deadline",
                dq.rank_report.timing.wall
            );
            results.push(to_ir_hits(&r.hits));
        }
        row.mean_latency = total_latency / queries as u32;
        row.mrr = QualityReport::evaluate(&results, &relevant, K).mrr;
        rows.push(row);
    }

    // The sweep must show the expected shape: quality degrades
    // gracefully with the fault rate, never below zero, and the
    // zero-rate row matches the baseline exactly.
    assert!((rows[0].mrr - baseline.mrr).abs() < 1e-12, "rate 0.0 must match baseline MRR");
    assert_eq!(rows[0].retries, 0, "no faults, no retries");

    // --- Overload + AZ-crash scenario: 2x offered load against a
    // pinned admission capacity while one availability zone (shards
    // 0 and 1) is down. ---
    const AZ_GROUP: [usize; 2] = [0, 1];
    const CAPACITY: usize = 4;
    const WAVES: usize = 5;
    let mut over_config = TiptoeConfig::test_small(docs, SEED);
    over_config.num_shards = SHARDS;
    over_config.fault_policy = FaultPolicy::tolerant();
    over_config.admission.enabled = true;
    over_config.admission.max_inflight = CAPACITY; // operator-pinned capacity
    over_config.admission.queue_depth = 0;
    // The budget must cover both PIR phases' fault deadlines (the AZ
    // crash burns each phase's virtual-time budget before degrading).
    over_config.admission.deadline = Duration::from_secs(10);
    over_config.breaker.enabled = true;
    // Debug/CI machines must not trip healthy shards on real latency.
    over_config.breaker.latency_threshold = Duration::from_secs(60);
    over_config.validate();
    let overloaded = TiptoeInstance::build(
        &over_config,
        TextEmbedder::new(over_config.d_embed, SEED, 0),
        &corpus,
    );
    let plane = overloaded.serving_plane();
    let ctrl = plane.admission().expect("admission enabled");
    let bank = plane.breakers().expect("breakers enabled");
    let plan = FaultPlan::none().correlated_crash(&AZ_GROUP);

    // Each wave releases 2x capacity concurrent clients at a barrier;
    // queries cycle through the corpus.
    let offered = WAVES * 2 * CAPACITY;
    let admitted_runs: Mutex<Vec<(usize, tiptoe_core::client::SearchResults)>> =
        Mutex::new(Vec::new());
    let mut shed = 0u64;
    let mut deadline_exceeded = 0u64;
    for wave in 0..WAVES {
        let barrier = Barrier::new(2 * CAPACITY);
        let wave_outcomes: Mutex<Vec<Result<(), ServeError>>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for j in 0..2 * CAPACITY {
                let qi = (wave * 2 * CAPACITY + j) % queries;
                let (overloaded, plane, plan, barrier) = (&overloaded, &plane, &plan, &barrier);
                let (admitted_runs, wave_outcomes) = (&admitted_runs, &wave_outcomes);
                let text = &corpus.queries[qi].text;
                scope.spawn(move || {
                    let mut c = overloaded.new_client(1000 + (wave * 16 + j) as u64);
                    barrier.wait();
                    let outcome =
                        match c.try_search_served_with_faults(overloaded, text, K, plan, plane) {
                            Ok(r) => {
                                admitted_runs.lock().expect("runs lock").push((qi, r));
                                Ok(())
                            }
                            Err(e) => Err(e),
                        };
                    wave_outcomes.lock().expect("outcomes lock").push(outcome);
                });
            }
        });
        for outcome in wave_outcomes.into_inner().expect("outcomes lock") {
            match outcome {
                Ok(()) => {}
                Err(ServeError::Overloaded { .. }) => shed += 1,
                Err(ServeError::DeadlineExceeded { .. }) => deadline_exceeded += 1,
                Err(e) => panic!("unexpected typed error under overload: {e:?}"),
            }
        }
    }

    // Conservation: every offered query was answered or typed-failed
    // (a thread panic would have aborted the scope above).
    let admitted_runs = admitted_runs.into_inner().expect("runs lock");
    let admitted_ok = admitted_runs.len() as u64;
    assert_eq!(admitted_ok + shed + deadline_exceeded, offered as u64, "no query lost");
    assert_eq!(ctrl.admitted(), admitted_ok + deadline_exceeded, "controller admission ledger");
    assert_eq!(ctrl.sheds(), shed, "controller shed ledger");
    assert_eq!(overloaded.transcript.sheds(), shed, "transcript shed ledger");
    assert!(shed > 0, "2x offered load against a full plane must shed");
    assert!(admitted_ok as usize >= WAVES * CAPACITY, "each wave admits at least capacity");

    // Bit-identity of admitted queries whose searched cluster survived
    // the AZ crash, and budget-spent percentiles across all admitted.
    let survivor_shards: Vec<usize> =
        (0..SHARDS).filter(|s| !AZ_GROUP.contains(s)).collect();
    let mut survivor_checked = 0usize;
    let mut spent_ms: Vec<f64> = Vec::with_capacity(admitted_runs.len());
    for (qi, r) in &admitted_runs {
        let dq = r.degraded.as_ref().expect("fault-tolerant searches report state");
        let owner = (0..SHARDS)
            .find(|&w| {
                let (lo, hi) = overloaded.ranking.shard_clusters(w);
                (lo..hi).contains(&plain_clusters[*qi])
            })
            .expect("every cluster has a shard");
        if survivor_shards.contains(&owner) {
            assert!(!dq.searched_cluster_missing, "query {qi}: survivor cluster served");
            assert_eq!(
                r.hits, plain_hits[*qi],
                "query {qi}: admitted survivor-zone query must stay bit-identical"
            );
            survivor_checked += 1;
        } else {
            assert!(dq.searched_cluster_missing, "query {qi}: dead-zone cluster reported");
        }
        let spent = dq.rank_report.timing.wall + dq.url_report.timing.wall;
        spent_ms.push(spent.as_secs_f64() * 1e3);
    }
    assert!(survivor_checked > 0, "the corpus must map some queries to surviving shards");
    spent_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pct = |p: f64| spent_ms[((spent_ms.len() as f64 * p).ceil() as usize - 1).min(spent_ms.len() - 1)];
    let (p50_spent, p99_spent) = (pct(0.50), pct(0.99));
    let deadline_ms = over_config.admission.deadline.as_secs_f64() * 1e3;
    assert!(
        p99_spent <= deadline_ms,
        "admitted p99 budget spend {p99_spent:.1} ms blew the {deadline_ms:.0} ms budget"
    );

    // The crashed zone's breakers must have opened (degraded-mode
    // rerouting); the survivors and the URL server stay closed.
    for &s in &AZ_GROUP {
        assert_eq!(bank.state(s), BreakerState::Open, "shard {s}: AZ crash opens the breaker");
    }
    assert_eq!(bank.state(SHARDS), BreakerState::Closed, "URL server stays closed");
    let breaker_open = bank.degraded_shards();
    println!(
        "[ok] overload: {offered} offered, {admitted_ok} admitted, {shed} shed, \
         {deadline_exceeded} deadline-exceeded; {survivor_checked} survivor queries \
         bit-identical; budget spend p50 {p50_spent:.1} ms / p99 {p99_spent:.1} ms \
         (budget {deadline_ms:.0} ms); breakers open: {breaker_open:?}\n"
    );

    // --- Emit BENCH_faults.json at the workspace root. ---
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"faults\",");
    let _ = writeln!(json, "  \"docs\": {docs},");
    let _ = writeln!(json, "  \"queries\": {queries},");
    let _ = writeln!(json, "  \"shards\": {SHARDS},");
    let _ = writeln!(json, "  \"k\": {K},");
    let _ = writeln!(json, "  \"baseline_mrr\": {:.6},", baseline.mrr);
    let _ = writeln!(json, "  \"policy\": {{");
    let _ = writeln!(json, "    \"attempt_timeout_ms\": {},", policy.attempt_timeout.as_millis());
    let _ = writeln!(json, "    \"max_retries\": {},", policy.max_retries);
    let _ = writeln!(
        json,
        "    \"hedge_after_ms\": {},",
        policy.hedge_after.map_or("null".to_string(), |h| h.as_millis().to_string())
    );
    let _ = writeln!(json, "    \"deadline_ms\": {}", policy.deadline.as_millis());
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"overload\": {{");
    let _ = writeln!(json, "    \"capacity\": {CAPACITY},");
    let _ = writeln!(json, "    \"queue_depth\": {},", over_config.admission.queue_depth);
    let _ = writeln!(json, "    \"deadline_budget_ms\": {:.0},", deadline_ms);
    let _ = writeln!(json, "    \"az_group\": [{}, {}],", AZ_GROUP[0], AZ_GROUP[1]);
    let _ = writeln!(json, "    \"offered\": {offered},");
    let _ = writeln!(json, "    \"admitted\": {admitted_ok},");
    let _ = writeln!(json, "    \"shed\": {shed},");
    let _ = writeln!(json, "    \"deadline_exceeded\": {deadline_exceeded},");
    let _ = writeln!(json, "    \"survivor_bit_identical\": {survivor_checked},");
    let _ = writeln!(json, "    \"budget_spent_p50_ms\": {p50_spent:.3},");
    let _ = writeln!(json, "    \"budget_spent_p99_ms\": {p99_spent:.3},");
    let _ = writeln!(
        json,
        "    \"breakers_open\": [{}]",
        breaker_open.iter().map(|s| s.to_string()).collect::<Vec<_>>().join(", ")
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"fault_rate\": {:.2}, \"mrr_at_k\": {:.6}, \
             \"mean_latency_ms\": {:.3}, \"max_latency_ms\": {:.3}, \
             \"retries\": {}, \"timeouts\": {}, \"corrupted\": {}, \"hedges\": {}, \
             \"degraded_queries\": {}, \"searched_cluster_lost\": {}, \
             \"url_failures\": {}}}{comma}",
            r.rate,
            r.mrr,
            r.mean_latency.as_secs_f64() * 1e3,
            r.max_latency.as_secs_f64() * 1e3,
            r.retries,
            r.timeouts,
            r.corrupted,
            r.hedges,
            r.degraded_queries,
            r.searched_cluster_lost,
            r.url_failures
        );
    }
    json.push_str("  ]\n}\n");

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_faults.json");
    std::fs::write(root, &json).expect("write BENCH_faults.json");

    println!("{json}");
    println!("wrote {root}\n");
    println!(
        "{:>6} {:>9} {:>14} {:>13} {:>8} {:>9} {:>7} {:>9} {:>9}",
        "rate", "MRR@100", "mean lat (ms)", "max lat (ms)", "retries", "timeouts", "hedges", "degraded", "url fail"
    );
    for r in &rows {
        println!(
            "{:>6.2} {:>9.3} {:>14.1} {:>13.1} {:>8} {:>9} {:>7} {:>9} {:>9}",
            r.rate,
            r.mrr,
            r.mean_latency.as_secs_f64() * 1e3,
            r.max_latency.as_secs_f64() * 1e3,
            r.retries,
            r.timeouts,
            r.hedges,
            r.degraded_queries,
            r.url_failures
        );
    }
}
