//! Machine-readable robustness benchmark: drives full private searches
//! through the fault-injection layer (`tiptoe-net::fault`) at a sweep
//! of injected fault rates and writes `BENCH_faults.json` at the
//! repository root with client-perceived latency and MRR@100 per rate.
//!
//! ```text
//! cargo run --release -p tiptoe-bench --bin bench_faults [docs] [queries]
//! ```
//!
//! At rate 0.0 the harness additionally asserts the fault-tolerant
//! path is bit-identical to the plain fan-out (the degraded machinery
//! must cost nothing in quality when nothing fails).

use std::fmt::Write as _;
use std::time::Duration;

use tiptoe_core::config::TiptoeConfig;
use tiptoe_core::instance::TiptoeInstance;
use tiptoe_corpus::synth::{generate, Corpus, CorpusConfig};
use tiptoe_embed::text::TextEmbedder;
use tiptoe_ir::metrics::QualityReport;
use tiptoe_ir::SearchHit;
use tiptoe_net::{FaultPlan, FaultPolicy, FaultRates, LinkModel};

const SEED: u64 = 51;
const SHARDS: usize = 4;
const K: usize = 100;
const RATES: [f64; 4] = [0.0, 0.1, 0.25, 0.5];

struct RateRow {
    rate: f64,
    mrr: f64,
    mean_latency: Duration,
    max_latency: Duration,
    retries: u32,
    timeouts: u32,
    corrupted: u32,
    hedges: u32,
    degraded_queries: usize,
    searched_cluster_lost: usize,
    url_failures: usize,
}

fn build(corpus: &Corpus, docs: usize, policy: Option<FaultPolicy>) -> TiptoeInstance<TextEmbedder> {
    let mut config = TiptoeConfig::test_small(docs, SEED);
    config.num_shards = SHARDS;
    if let Some(policy) = policy {
        config.fault_policy = policy;
    }
    config.validate();
    let embedder = TextEmbedder::new(config.d_embed, SEED, 0);
    TiptoeInstance::build(&config, embedder, corpus)
}

fn to_ir_hits(hits: &[tiptoe_core::client::RankedUrl]) -> Vec<SearchHit> {
    hits.iter().map(|h| SearchHit { doc: h.doc, score: h.score }).collect()
}

fn main() {
    tiptoe_obs::init_from_env();
    let docs: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(240);
    let queries: usize = std::env::args().nth(2).and_then(|a| a.parse().ok()).unwrap_or(20);
    println!("== bench_faults: latency/quality vs injected fault rate ==");
    println!("   {docs} docs, {queries} queries, {SHARDS} ranking shards, k={K}\n");

    let corpus = generate(&CorpusConfig::small(docs, SEED), queries);
    let relevant: Vec<u32> = corpus.queries.iter().map(|q| q.relevant).collect();
    let link = LinkModel::paper();

    let plain = build(&corpus, docs, None);
    let tolerant = build(&corpus, docs, Some(FaultPolicy::tolerant()));
    let policy = tolerant.config.fault_policy;

    // Baseline: the plain (fault-oblivious) path, and the rate-0.0
    // bit-identity check against it.
    let mut plain_client = plain.new_client(7);
    let mut check_client = tolerant.new_client(7);
    let plain_results: Vec<Vec<SearchHit>> = corpus
        .queries
        .iter()
        .map(|q| {
            let a = plain_client.search(&plain, &q.text, K);
            let b = check_client.search_with_faults(&tolerant, &q.text, K, &FaultPlan::none());
            assert_eq!(a.cluster, b.cluster, "benign cluster drifted: {}", q.text);
            assert_eq!(a.hits, b.hits, "benign hits drifted: {}", q.text);
            to_ir_hits(&a.hits)
        })
        .collect();
    let baseline = QualityReport::evaluate(&plain_results, &relevant, K);
    println!("[ok] rate 0.0 is bit-identical to the plain path ({queries} queries)");
    println!("     baseline MRR@{K} = {:.3}\n", baseline.mrr);

    let mut rows: Vec<RateRow> = Vec::new();
    for (ri, &rate) in RATES.iter().enumerate() {
        let mut client = tolerant.new_client(7);
        let mut results: Vec<Vec<SearchHit>> = Vec::with_capacity(queries);
        let mut row = RateRow {
            rate,
            mrr: 0.0,
            mean_latency: Duration::ZERO,
            max_latency: Duration::ZERO,
            retries: 0,
            timeouts: 0,
            corrupted: 0,
            hedges: 0,
            degraded_queries: 0,
            searched_cluster_lost: 0,
            url_failures: 0,
        };
        let mut total_latency = Duration::ZERO;
        for (qi, query) in corpus.queries.iter().enumerate() {
            let plan = if rate == 0.0 {
                FaultPlan::none()
            } else {
                FaultPlan::from_rates(
                    SEED ^ (ri as u64) << 32 ^ qi as u64,
                    FaultRates::mixed(rate),
                )
            };
            let r = client.search_with_faults(&tolerant, &query.text, K, &plan);
            let latency = r.cost.perceived_latency(&link);
            total_latency += latency;
            row.max_latency = row.max_latency.max(latency);
            let dq = r.degraded.as_ref().expect("fault-tolerant searches report state");
            row.retries += dq.rank_report.retries + dq.url_report.retries;
            row.timeouts += dq.rank_report.timeouts + dq.url_report.timeouts;
            row.corrupted += dq.rank_report.corrupted + dq.url_report.corrupted;
            row.hedges += dq.rank_report.hedges + dq.url_report.hedges;
            if !dq.missing_clusters.is_empty() || dq.url_failed {
                row.degraded_queries += 1;
            }
            if dq.searched_cluster_missing {
                row.searched_cluster_lost += 1;
            }
            if dq.url_failed {
                row.url_failures += 1;
            }
            assert!(
                dq.rank_report.timing.wall <= policy.deadline,
                "rate {rate}, query {qi}: ranking wall {:?} blew the deadline",
                dq.rank_report.timing.wall
            );
            results.push(to_ir_hits(&r.hits));
        }
        row.mean_latency = total_latency / queries as u32;
        row.mrr = QualityReport::evaluate(&results, &relevant, K).mrr;
        rows.push(row);
    }

    // The sweep must show the expected shape: quality degrades
    // gracefully with the fault rate, never below zero, and the
    // zero-rate row matches the baseline exactly.
    assert!((rows[0].mrr - baseline.mrr).abs() < 1e-12, "rate 0.0 must match baseline MRR");
    assert_eq!(rows[0].retries, 0, "no faults, no retries");

    // --- Emit BENCH_faults.json at the workspace root. ---
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"faults\",");
    let _ = writeln!(json, "  \"docs\": {docs},");
    let _ = writeln!(json, "  \"queries\": {queries},");
    let _ = writeln!(json, "  \"shards\": {SHARDS},");
    let _ = writeln!(json, "  \"k\": {K},");
    let _ = writeln!(json, "  \"baseline_mrr\": {:.6},", baseline.mrr);
    let _ = writeln!(json, "  \"policy\": {{");
    let _ = writeln!(json, "    \"attempt_timeout_ms\": {},", policy.attempt_timeout.as_millis());
    let _ = writeln!(json, "    \"max_retries\": {},", policy.max_retries);
    let _ = writeln!(
        json,
        "    \"hedge_after_ms\": {},",
        policy.hedge_after.map_or("null".to_string(), |h| h.as_millis().to_string())
    );
    let _ = writeln!(json, "    \"deadline_ms\": {}", policy.deadline.as_millis());
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"fault_rate\": {:.2}, \"mrr_at_k\": {:.6}, \
             \"mean_latency_ms\": {:.3}, \"max_latency_ms\": {:.3}, \
             \"retries\": {}, \"timeouts\": {}, \"corrupted\": {}, \"hedges\": {}, \
             \"degraded_queries\": {}, \"searched_cluster_lost\": {}, \
             \"url_failures\": {}}}{comma}",
            r.rate,
            r.mrr,
            r.mean_latency.as_secs_f64() * 1e3,
            r.max_latency.as_secs_f64() * 1e3,
            r.retries,
            r.timeouts,
            r.corrupted,
            r.hedges,
            r.degraded_queries,
            r.searched_cluster_lost,
            r.url_failures
        );
    }
    json.push_str("  ]\n}\n");

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_faults.json");
    std::fs::write(root, &json).expect("write BENCH_faults.json");

    println!("{json}");
    println!("wrote {root}\n");
    println!(
        "{:>6} {:>9} {:>14} {:>13} {:>8} {:>9} {:>7} {:>9} {:>9}",
        "rate", "MRR@100", "mean lat (ms)", "max lat (ms)", "retries", "timeouts", "hedges", "degraded", "url fail"
    );
    for r in &rows {
        println!(
            "{:>6.2} {:>9.3} {:>14.1} {:>13.1} {:>8} {:>9} {:>7} {:>9} {:>9}",
            r.rate,
            r.mrr,
            r.mean_latency.as_secs_f64() * 1e3,
            r.max_latency.as_secs_f64() * 1e3,
            r.retries,
            r.timeouts,
            r.hedges,
            r.degraded_queries,
            r.url_failures
        );
    }
}
