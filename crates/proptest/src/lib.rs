//! A self-contained, offline drop-in for the subset of the `proptest`
//! API this workspace uses.
//!
//! The build environment has no registry access, so the real
//! `proptest` crate cannot be fetched. This shim keeps the same test
//! syntax — the [`proptest!`] macro with `arg in strategy` bindings,
//! `prop_assert!`/`prop_assert_eq!`, and `ProptestConfig` — over a
//! deterministic case generator: case `k` of test `t` is seeded from
//! `hash(t, k)`, so failures are exactly reproducible by rerunning the
//! test. Shrinking is not implemented; the failing case's seed and
//! inputs are reported instead.

#![forbid(unsafe_code)]

use rand::{SeedableRng, StdRng};

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A failed property assertion (message plus source location).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Derives the deterministic RNG for one test case.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Value generators.
pub mod strategy {
    use rand::{Rng, StdRng};

    /// A value generator: the (non-shrinking) core of proptest's
    /// `Strategy` trait.
    pub trait Strategy {
        /// The generated type.
        type Value: std::fmt::Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    /// Any numeric range is a strategy over its element type.
    macro_rules! impl_range_strategy {
        ($($t:ty),+ $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )+};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut StdRng) -> f32 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    /// Marker for [`super::any`].
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Self(core::marker::PhantomData)
        }
    }

    impl<T: rand::StandardSample + std::fmt::Debug> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen()
        }
    }

    /// A `&str` pattern is a strategy over `String`. Only the tiny
    /// pattern language the workspace uses is supported:
    /// `[lo-hi]{min,max}` (one character class with a repetition
    /// count). Anything else panics with a clear message.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> String {
            let (lo, hi, min, max) = parse_class_pattern(self).unwrap_or_else(|| {
                panic!(
                    "unsupported string pattern {self:?}: the offline proptest shim \
                     only supports \"[a-z]{{min,max}}\" style patterns"
                )
            });
            let len = rng.gen_range(min..=max);
            (0..len).map(|_| rng.gen_range(lo..=hi) as char).collect()
        }
    }

    fn parse_class_pattern(pat: &str) -> Option<(u8, u8, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let (class, rest) = rest.split_once(']')?;
        let class = class.as_bytes();
        let (lo, hi) = match class {
            [lo, b'-', hi] => (*lo, *hi),
            _ => return None,
        };
        let reps = rest.strip_prefix('{')?.strip_suffix('}')?;
        let (min, max) = reps.split_once(',')?;
        Some((lo, hi, min.parse().ok()?, max.parse().ok()?))
    }

    /// Collection strategies.
    pub mod collection {
        use super::Strategy;
        use rand::{Rng, StdRng};

        /// Strategy for `Vec<T>` with a length drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            min: usize,
            max_exclusive: usize,
        }

        /// A vector whose length is drawn from `len` and whose
        /// elements come from `element`.
        pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, min: len.start, max_exclusive: len.end }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = if self.min >= self.max_exclusive {
                    self.min
                } else {
                    rng.gen_range(self.min..self.max_exclusive)
                };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Strategy over any samplable type.
pub fn any<T: rand::StandardSample + std::fmt::Debug>() -> strategy::Any<T> {
    strategy::Any::default()
}

pub use strategy::collection;

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use super::strategy::Strategy;
    pub use super::{any, ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. Each `arg in strategy` binding draws from
/// the strategy; the body runs once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::case_rng(stringify!($name), case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let inputs = || {
                        let mut s = String::new();
                        $(
                            s.push_str(&format!("  {} = {:?}\n", stringify!($arg), $arg));
                        )+
                        s
                    };
                    let outcome: Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = outcome {
                        panic!(
                            "property {} failed at case {case}:\n{e}\ninputs:\n{}",
                            stringify!($name),
                            inputs()
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left), stringify!($right), l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in -2i8..=2) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2..=2).contains(&y));
        }

        #[test]
        fn vectors_respect_length(v in crate::collection::vec(any::<u8>(), 1..5)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }

        #[test]
        fn string_patterns_generate_class(w in "[a-z]{1,8}") {
            prop_assert!(!w.is_empty() && w.len() <= 8);
            prop_assert!(w.bytes().all(|b| b.is_ascii_lowercase()));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use rand::Rng;
        let a: u64 = crate::case_rng("t", 3).gen();
        let b: u64 = crate::case_rng("t", 3).gen();
        assert_eq!(a, b);
    }
}
