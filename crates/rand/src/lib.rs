//! A self-contained, offline drop-in for the subset of the `rand 0.8`
//! API this workspace uses.
//!
//! The build environment has no registry access, so the real `rand`
//! crate cannot be fetched. This shim re-implements the surface the
//! workspace needs — [`Rng`], [`RngCore`], [`SeedableRng`],
//! [`rngs::StdRng`], and [`seq::SliceRandom`] — with the same method
//! semantics. [`rngs::StdRng`] is a real ChaCha12 stream cipher (the
//! same construction the upstream crate uses), so DPF seed expansion
//! and the deterministic experiment plumbing keep their PRG quality.
//! Output streams are *not* bit-compatible with upstream `rand`; the
//! workspace only relies on self-consistency of seeded streams.

#![forbid(unsafe_code)]

/// Byte-level random source: the object-safe core trait.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniformly random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types samplable uniformly from raw bits (the `Standard`
/// distribution of upstream `rand`).
pub trait StandardSample: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),+ $(,)?) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )+};
}
impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    u64 => next_u64, i64 => next_u64, usize => next_u64, isize => next_u64,
    u128 => next_u64, i128 => next_u64,
);

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<const N: usize> StandardSample for [u8; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types with a uniform range sampler (the `SampleUniform` of
/// upstream `rand`); implemented for the primitive ints and floats.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive == false`) or
    /// `[lo, hi]` (`inclusive == true`).
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_uniform(rng, lo, hi, true)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty : $u:ty),+ $(,)?) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t, inclusive: bool) -> $t {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as $u).wrapping_sub(lo as $u).wrapping_add(1);
                    // span == 0 encodes the full domain.
                    let off = if span == 0 {
                        <$u as StandardSample>::sample(rng)
                    } else {
                        uniform_below_u64(rng, span as u64) as $u
                    };
                    (lo as $u).wrapping_add(off) as $t
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                    let span = (hi as $u).wrapping_sub(lo as $u);
                    let off = uniform_below_u64(rng, span as u64) as $u;
                    (lo as $u).wrapping_add(off) as $t
                }
            }
        }
    )+};
}
impl_uniform_int!(
    u8: u8, u16: u16, u32: u32, u64: u64, usize: usize,
    i8: u8, i16: u16, i32: u32, i64: u64, isize: usize,
);

/// Uniform integer in `[0, bound)` (`bound == 0` means `2^64`) via a
/// widening-multiply reduction; the bias is `< bound / 2^64`,
/// negligible for every use in this workspace.
#[inline]
fn uniform_below_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    let x = rng.next_u64();
    if bound == 0 {
        return x;
    }
    ((x as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_uniform_float {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t, inclusive: bool) -> $t {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                }
                let unit = <$t as StandardSample>::sample(rng);
                let v = lo + (hi - lo) * unit;
                // Guard against rounding up to an excluded endpoint.
                if inclusive || v < hi { v } else { lo }
            }
        }
    )+};
}
impl_uniform_float!(f32, f64);

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of an inferrable type.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from a range (`low..high` or `low..=high`).
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }

    /// Fills a slice of samplable values.
    fn fill<T: StandardSample>(&mut self, dest: &mut [T]) {
        for slot in dest {
            *slot = T::sample(self);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a 64-bit seed into a full seed with SplitMix64 (the
    /// same construction upstream `rand` uses for this method).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: ChaCha with 12 rounds
    /// over a 256-bit seed (the construction upstream `rand 0.8` uses
    /// for its `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        key: [u32; 8],
        counter: u64,
        buf: [u8; 64],
        pos: usize,
    }

    const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

    #[inline(always)]
    fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(16);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(12);
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(8);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(7);
    }

    impl StdRng {
        fn refill(&mut self) {
            let mut state = [0u32; 16];
            state[..4].copy_from_slice(&CHACHA_CONST);
            state[4..12].copy_from_slice(&self.key);
            state[12] = self.counter as u32;
            state[13] = (self.counter >> 32) as u32;
            // Nonce fixed to zero: one stream per seed.
            let initial = state;
            for _ in 0..6 {
                // Two rounds (one column + one diagonal pass) per loop.
                quarter_round(&mut state, 0, 4, 8, 12);
                quarter_round(&mut state, 1, 5, 9, 13);
                quarter_round(&mut state, 2, 6, 10, 14);
                quarter_round(&mut state, 3, 7, 11, 15);
                quarter_round(&mut state, 0, 5, 10, 15);
                quarter_round(&mut state, 1, 6, 11, 12);
                quarter_round(&mut state, 2, 7, 8, 13);
                quarter_round(&mut state, 3, 4, 9, 14);
            }
            for (i, word) in state.iter_mut().enumerate() {
                *word = word.wrapping_add(initial[i]);
                self.buf[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
            }
            self.counter = self.counter.wrapping_add(1);
            self.pos = 0;
        }

        #[inline]
        fn take(&mut self, n: usize) -> &[u8] {
            debug_assert!(n <= 8);
            if self.pos + n > 64 {
                self.refill();
            }
            let out = &self.buf[self.pos..self.pos + n];
            self.pos += n;
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut key = [0u32; 8];
            for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
                *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
            }
            let mut rng = Self { key, counter: 0, buf: [0u8; 64], pos: 64 };
            rng.refill();
            rng
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            u32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            u64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let n = chunk.len();
                chunk.copy_from_slice(self.take(n));
            }
        }
    }
}

pub use rngs::StdRng;

pub mod seq {
    //! Slice helpers.

    use super::RngCore;

    /// Random slice operations (the subset of upstream `SliceRandom`
    /// the workspace uses).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher-Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_below_u64(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = super::uniform_below_u64(rng, self.len() as u64) as usize;
                Some(&self[i])
            }
        }
    }
}

pub mod prelude {
    //! Common imports.
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn std_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn fill_bytes_matches_stream() {
        let mut a = StdRng::from_seed([3u8; 32]);
        let mut b = StdRng::from_seed([3u8; 32]);
        let mut buf = [0u8; 16];
        a.fill_bytes(&mut buf);
        let word0 = u64::from_le_bytes(buf[..8].try_into().unwrap());
        assert_eq!(word0, b.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-8i8..=7);
            assert!((-8..=7).contains(&y));
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use super::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn array_sampling_fills_all_bytes() {
        let mut rng = StdRng::seed_from_u64(4);
        let seed: [u8; 32] = rng.gen();
        assert!(seed.iter().any(|&b| b != 0));
    }
}
