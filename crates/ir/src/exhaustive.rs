//! Exhaustive (un-clustered) embedding search — the "Embeddings"
//! baseline of Figure 4, which upper-bounds what Tiptoe's clustered
//! search can achieve with the same embedding model.

use tiptoe_embed::vector::dot;
use tiptoe_embed::Embedder;

use crate::topk::TopK;
use crate::{Retriever, SearchHit};

/// Brute-force inner-product search over stored document embeddings.
pub struct ExhaustiveSearch<'a, E: Embedder> {
    embedder: &'a E,
    docs: Vec<Vec<f32>>,
}

impl<'a, E: Embedder> ExhaustiveSearch<'a, E> {
    /// Indexes documents by embedding each text.
    pub fn build<S: AsRef<str>>(embedder: &'a E, docs: &[S]) -> Self {
        let docs = docs.iter().map(|d| embedder.embed_text(d.as_ref())).collect();
        Self { embedder, docs }
    }

    /// Wraps precomputed document embeddings (used when the caller has
    /// already run the batch embedding job, applied PCA, or holds
    /// image latents). The stored dimension may differ from the
    /// embedder's raw dimension; only [`Self::search_embedding`] is
    /// usable in that case.
    ///
    /// # Panics
    ///
    /// Panics if the embeddings disagree with each other in dimension.
    pub fn from_embeddings(embedder: &'a E, docs: Vec<Vec<f32>>) -> Self {
        if let Some(first) = docs.first() {
            assert!(docs.iter().all(|d| d.len() == first.len()), "dimension mismatch");
        }
        Self { embedder, docs }
    }

    /// Ranks all documents against a *precomputed* query embedding.
    pub fn search_embedding(&self, query: &[f32], k: usize) -> Vec<SearchHit> {
        let mut top = TopK::new(k);
        for (doc, emb) in self.docs.iter().enumerate() {
            top.push(SearchHit { doc: doc as u32, score: dot(query, emb) });
        }
        top.into_sorted()
    }

    /// Number of indexed documents.
    pub fn num_docs(&self) -> usize {
        self.docs.len()
    }

    /// The stored embeddings.
    pub fn embeddings(&self) -> &[Vec<f32>] {
        &self.docs
    }
}

impl<E: Embedder> Retriever for ExhaustiveSearch<'_, E> {
    /// # Panics
    ///
    /// Panics if the stored embeddings are not in the embedder's raw
    /// space (e.g. after PCA) — use [`ExhaustiveSearch::search_embedding`]
    /// with a matching query embedding instead.
    fn search(&self, query: &str, k: usize) -> Vec<SearchHit> {
        if let Some(first) = self.docs.first() {
            assert_eq!(first.len(), self.embedder.dim(), "stored embeddings are not raw");
        }
        self.search_embedding(&self.embedder.embed_text(query), k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiptoe_embed::text::TextEmbedder;

    #[test]
    fn retrieves_lexically_closest_document() {
        let embedder = TextEmbedder::new(256, 3, 0);
        let docs = vec![
            "recipes for italian pasta dishes with tomato sauce",
            "the migration patterns of arctic birds",
            "pasta cooking techniques and italian sauce recipes",
        ];
        let search = ExhaustiveSearch::build(&embedder, &docs);
        let hits = search.search("italian pasta sauce recipes", 3);
        assert_eq!(hits.len(), 3);
        assert!(matches!(hits[0].doc, 0 | 2), "top hit {:?}", hits[0]);
        assert_eq!(hits[2].doc, 1, "bird doc should rank last");
    }

    #[test]
    fn precomputed_embeddings_match_text_path() {
        let embedder = TextEmbedder::new(128, 4, 0);
        let docs = vec!["alpha beta gamma", "delta epsilon zeta"];
        let a = ExhaustiveSearch::build(&embedder, &docs);
        let embs: Vec<Vec<f32>> = docs.iter().map(|d| embedder.embed_text(d)).collect();
        let b = ExhaustiveSearch::from_embeddings(&embedder, embs);
        let q = "beta gamma";
        assert_eq!(a.search(q, 2), b.search(q, 2));
    }

    #[test]
    fn k_zero_returns_empty() {
        let embedder = TextEmbedder::new(64, 5, 0);
        let search = ExhaustiveSearch::build(&embedder, &["doc"]);
        assert!(search.search("doc", 0).is_empty());
    }
}
