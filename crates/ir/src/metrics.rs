//! Search-quality metrics: MRR@k and the rank CDF of Figure 4.

use crate::SearchHit;

/// Reciprocal rank of `relevant` within `hits` (1-indexed), or 0 if it
/// does not appear in the top `k`.
pub fn reciprocal_rank(hits: &[SearchHit], relevant: u32, k: usize) -> f64 {
    hits.iter()
        .take(k)
        .position(|h| h.doc == relevant)
        .map_or(0.0, |i| 1.0 / (i as f64 + 1.0))
}

/// The outcome of evaluating one retrieval system over a query set.
#[derive(Debug, Clone)]
pub struct QualityReport {
    /// Mean reciprocal rank at the cutoff.
    pub mrr: f64,
    /// Cutoff `k` used (100 in the paper).
    pub k: usize,
    /// `ranks[i]` = 1-indexed rank of the relevant document for query
    /// `i`, or `None` if it missed the top `k`.
    pub ranks: Vec<Option<usize>>,
}

impl QualityReport {
    /// Evaluates ranked result lists against one relevant document per
    /// query.
    ///
    /// # Panics
    ///
    /// Panics if the two slices differ in length.
    pub fn evaluate(results: &[Vec<SearchHit>], relevant: &[u32], k: usize) -> Self {
        assert_eq!(results.len(), relevant.len(), "one relevant doc per query");
        let mut ranks = Vec::with_capacity(results.len());
        let mut mrr_sum = 0.0;
        for (hits, &rel) in results.iter().zip(relevant.iter()) {
            let pos = hits.iter().take(k).position(|h| h.doc == rel);
            if let Some(p) = pos {
                mrr_sum += 1.0 / (p as f64 + 1.0);
            }
            ranks.push(pos.map(|p| p + 1));
        }
        let mrr = if results.is_empty() { 0.0 } else { mrr_sum / results.len() as f64 };
        Self { mrr, k, ranks }
    }

    /// Fraction of queries whose relevant document appears at rank
    /// ≤ `i` — one point of the Figure 4 (right) CDF.
    pub fn cdf_at(&self, i: usize) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        let hit = self.ranks.iter().filter(|r| r.is_some_and(|rank| rank <= i)).count();
        hit as f64 / self.ranks.len() as f64
    }

    /// The full CDF over ranks `1..=k`.
    pub fn cdf(&self) -> Vec<f64> {
        (1..=self.k).map(|i| self.cdf_at(i)).collect()
    }

    /// Mean rank of the relevant document among queries that found it
    /// (the paper summarizes Tiptoe as "position 7.7 on average").
    pub fn mean_found_rank(&self) -> f64 {
        let found: Vec<f64> = self.ranks.iter().flatten().map(|&r| r as f64).collect();
        if found.is_empty() {
            0.0
        } else {
            found.iter().sum::<f64>() / found.len() as f64
        }
    }

    /// Fraction of queries whose relevant document was found at all.
    pub fn recall(&self) -> f64 {
        self.cdf_at(self.k)
    }

    /// Recall at a smaller cutoff `k ≤ self.k`.
    pub fn recall_at(&self, k: usize) -> f64 {
        self.cdf_at(k.min(self.k))
    }

    /// Mean NDCG@k with a single relevant document per query
    /// (`DCG = 1/log2(rank+1)`, ideal DCG = 1).
    pub fn ndcg_at(&self, k: usize) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .ranks
            .iter()
            .map(|r| match r {
                Some(rank) if *rank <= k => 1.0 / ((*rank as f64) + 1.0).log2(),
                _ => 0.0,
            })
            .sum();
        sum / self.ranks.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hits(docs: &[u32]) -> Vec<SearchHit> {
        docs.iter()
            .enumerate()
            .map(|(i, &doc)| SearchHit { doc, score: 1.0 - i as f32 * 0.01 })
            .collect()
    }

    #[test]
    fn reciprocal_rank_basics() {
        let h = hits(&[5, 3, 9]);
        assert_eq!(reciprocal_rank(&h, 5, 100), 1.0);
        assert_eq!(reciprocal_rank(&h, 3, 100), 0.5);
        assert_eq!(reciprocal_rank(&h, 9, 2), 0.0, "beyond cutoff");
        assert_eq!(reciprocal_rank(&h, 42, 100), 0.0, "absent");
    }

    #[test]
    fn evaluate_averages_over_queries() {
        let results = vec![hits(&[1, 2]), hits(&[3, 4]), hits(&[9, 9])];
        let report = QualityReport::evaluate(&results, &[1, 4, 7], 100);
        // RRs: 1.0, 0.5, 0.0 -> MRR 0.5.
        assert!((report.mrr - 0.5).abs() < 1e-12);
        assert_eq!(report.ranks, vec![Some(1), Some(2), None]);
    }

    #[test]
    fn cdf_is_monotone_and_matches_recall() {
        let results = vec![hits(&[1, 2, 3]), hits(&[2, 1, 3]), hits(&[3, 2, 1])];
        let report = QualityReport::evaluate(&results, &[1, 1, 1], 3);
        let cdf = report.cdf();
        assert_eq!(cdf.len(), 3);
        for w in cdf.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!((report.recall() - 1.0).abs() < 1e-12);
        assert!((report.cdf_at(1) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mean_found_rank_ignores_misses() {
        let results = vec![hits(&[1]), hits(&[9])];
        let report = QualityReport::evaluate(&results, &[1, 2], 10);
        assert_eq!(report.mean_found_rank(), 1.0);
    }

    #[test]
    fn empty_query_set_is_well_behaved() {
        let report = QualityReport::evaluate(&[], &[], 100);
        assert_eq!(report.mrr, 0.0);
        assert_eq!(report.cdf_at(1), 0.0);
        assert_eq!(report.ndcg_at(10), 0.0);
    }

    #[test]
    fn ndcg_rewards_earlier_ranks() {
        let top = QualityReport::evaluate(&[hits(&[1, 2, 3])], &[1], 10);
        let second = QualityReport::evaluate(&[hits(&[2, 1, 3])], &[1], 10);
        assert!((top.ndcg_at(10) - 1.0).abs() < 1e-12, "rank 1 is ideal");
        assert!(second.ndcg_at(10) < top.ndcg_at(10));
        assert!((second.ndcg_at(10) - 1.0 / 3f64.log2()).abs() < 1e-12);
        // A miss beyond the cutoff contributes zero.
        assert_eq!(second.ndcg_at(1), 0.0);
    }

    #[test]
    fn recall_at_is_monotone_in_k() {
        let results = vec![hits(&[5, 1]), hits(&[1, 9])];
        let report = QualityReport::evaluate(&results, &[1, 1], 10);
        assert!(report.recall_at(1) <= report.recall_at(2));
        assert_eq!(report.recall_at(1), 0.5);
        assert_eq!(report.recall_at(2), 1.0);
    }
}
