//! A bounded top-k collector over `(score, doc)` pairs.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SearchHit;

/// Wrapper giving [`SearchHit`] a *min*-heap order on score (ties
/// broken by document ID for determinism).
#[derive(Debug, Clone, Copy, PartialEq)]
struct MinHit(SearchHit);

impl Eq for MinHit {}

impl Ord for MinHit {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed on score: BinaryHeap is a max-heap and we want the
        // *worst* retained hit on top. On ties, the larger doc ID is
        // the worse hit (we prefer smaller IDs deterministically).
        other
            .0
            .score
            .partial_cmp(&self.0.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.0.doc.cmp(&other.0.doc))
    }
}

impl PartialOrd for MinHit {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Collects the `k` highest-scoring hits from a stream.
pub struct TopK {
    k: usize,
    heap: BinaryHeap<MinHit>,
}

impl TopK {
    /// A collector retaining the best `k` hits.
    pub fn new(k: usize) -> Self {
        Self { k, heap: BinaryHeap::with_capacity(k + 1) }
    }

    /// Offers one hit.
    pub fn push(&mut self, hit: SearchHit) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(MinHit(hit));
        } else if let Some(min) = self.heap.peek() {
            let better = hit.score > min.0.score
                || (hit.score == min.0.score && hit.doc < min.0.doc);
            if better {
                self.heap.pop();
                self.heap.push(MinHit(hit));
            }
        }
    }

    /// The collected hits, best first.
    pub fn into_sorted(self) -> Vec<SearchHit> {
        let mut hits: Vec<SearchHit> = self.heap.into_iter().map(|m| m.0).collect();
        hits.sort_by(|a, b| {
            b.score.partial_cmp(&a.score).unwrap_or(Ordering::Equal).then(a.doc.cmp(&b.doc))
        });
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_best_k() {
        let mut top = TopK::new(3);
        for (doc, score) in [(0u32, 0.1f32), (1, 0.9), (2, 0.5), (3, 0.7), (4, 0.3)] {
            top.push(SearchHit { doc, score });
        }
        let hits = top.into_sorted();
        assert_eq!(hits.iter().map(|h| h.doc).collect::<Vec<_>>(), vec![1, 3, 2]);
    }

    #[test]
    fn ties_break_by_doc_id() {
        let mut top = TopK::new(2);
        for doc in [5u32, 1, 3] {
            top.push(SearchHit { doc, score: 1.0 });
        }
        let hits = top.into_sorted();
        assert_eq!(hits.iter().map(|h| h.doc).collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn zero_k_collects_nothing() {
        let mut top = TopK::new(0);
        top.push(SearchHit { doc: 0, score: 1.0 });
        assert!(top.into_sorted().is_empty());
    }

    #[test]
    fn fewer_items_than_k() {
        let mut top = TopK::new(10);
        top.push(SearchHit { doc: 7, score: 0.5 });
        let hits = top.into_sorted();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].doc, 7);
    }
}
