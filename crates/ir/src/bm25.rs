//! The BM25 baseline with the Anserini default parameters the paper
//! uses (`k1 = 0.9`, `b = 0.4`; §8.2).

use std::collections::HashMap;

use crate::index::InvertedIndex;
use crate::topk::TopK;
use crate::{analyze, Retriever, SearchHit};

/// BM25 retriever.
pub struct Bm25 {
    index: InvertedIndex,
    k1: f32,
    b: f32,
}

impl Bm25 {
    /// Builds BM25 with the paper's parameters (`k1 = 0.9`, `b = 0.4`).
    pub fn build<S: AsRef<str>>(docs: &[S]) -> Self {
        Self::with_params(InvertedIndex::build(docs), 0.9, 0.4)
    }

    /// Builds BM25 with explicit parameters.
    pub fn with_params(index: InvertedIndex, k1: f32, b: f32) -> Self {
        Self { index, k1, b }
    }

    /// Robertson-Sparck-Jones IDF with the +1 smoothing Lucene uses.
    fn idf(&self, term: &str) -> f32 {
        let n = self.index.num_docs() as f32;
        let df = self.index.doc_freq(term) as f32;
        ((n - df + 0.5) / (df + 0.5) + 1.0).ln()
    }

    /// The underlying index.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }
}

impl Retriever for Bm25 {
    fn search(&self, query: &str, k: usize) -> Vec<SearchHit> {
        let avgdl = self.index.avg_doc_len().max(1e-9);
        let mut scores: HashMap<u32, f32> = HashMap::new();
        for term in analyze(query) {
            let Some(postings) = self.index.postings(&term) else {
                continue;
            };
            let idf = self.idf(&term);
            for p in postings {
                let tf = p.tf as f32;
                let dl = self.index.doc_len(p.doc) as f32;
                let denom = tf + self.k1 * (1.0 - self.b + self.b * dl / avgdl);
                *scores.entry(p.doc).or_insert(0.0) += idf * tf * (self.k1 + 1.0) / denom;
            }
        }
        let mut top = TopK::new(k);
        for (doc, score) in scores {
            top.push(SearchHit { doc, score });
        }
        top.into_sorted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<&'static str> {
        vec![
            "knee pain treatment and physical therapy exercises for knee injuries",
            "quarterly tax filing deadlines for corporations",
            "how to treat chronic knee pain in runners",
            "a very long document about many different topics including weather sports \
             politics cooking travel music films books and more with pain mentioned once",
        ]
    }

    #[test]
    fn relevant_documents_outrank_irrelevant() {
        let bm25 = Bm25::build(&corpus());
        let hits = bm25.search("knee pain", 4);
        assert!(matches!(hits[0].doc, 0 | 2));
        let tax_rank = hits.iter().position(|h| h.doc == 1);
        assert!(tax_rank.is_none(), "tax doc matched 'knee pain': {hits:?}");
    }

    #[test]
    fn length_normalization_penalizes_long_documents() {
        let bm25 = Bm25::build(&corpus());
        let hits = bm25.search("pain", 4);
        let long_doc = hits.iter().find(|h| h.doc == 3).expect("long doc matches");
        let short_doc = hits.iter().find(|h| h.doc == 2).expect("short doc matches");
        assert!(short_doc.score > long_doc.score, "length normalization inactive");
    }

    #[test]
    fn idf_is_positive_even_for_ubiquitous_terms() {
        // Lucene's +1 smoothing keeps IDF positive.
        let docs = vec!["common word", "common word", "common word"];
        let bm25 = Bm25::build(&docs);
        let hits = bm25.search("common", 3);
        assert_eq!(hits.len(), 3);
        assert!(hits.iter().all(|h| h.score > 0.0));
    }

    #[test]
    fn k_limits_result_count() {
        let bm25 = Bm25::build(&corpus());
        assert!(bm25.search("pain", 1).len() <= 1);
    }
}
