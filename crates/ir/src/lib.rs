//! Information-retrieval baselines and search-quality metrics
//! (paper §8.2, Figure 4).
//!
//! The paper compares Tiptoe against:
//!
//! - **tf-idf** (with stemming, via Gensim in the paper) — implemented
//!   in [`tfidf`], including the Coeus-style *restricted dictionary*
//!   mode (top-K terms by inverse document frequency) whose MRR@100
//!   collapses to 0 on MS MARCO;
//! - **BM25** (Anserini defaults `k1 = 0.9`, `b = 0.4`) — [`bm25`];
//! - **exhaustive embedding search** (the same embeddings as Tiptoe
//!   but without clustering) — [`exhaustive`];
//! - **ColBERT**, which the paper reports from the MS MARCO
//!   leaderboard rather than running; the bench harness does the same.
//!
//! Quality is measured with MRR@100 ("mean reciprocal rank at 100")
//! and the rank CDF of Figure 4 (right) — see [`metrics`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bm25;
pub mod exhaustive;
pub mod index;
pub mod metrics;
pub mod stem;
pub mod tfidf;
pub mod topk;

/// Tokenizes and stems a text into index terms.
pub fn analyze(text: &str) -> Vec<String> {
    text.to_lowercase()
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(stem::porter_stem)
        .collect()
}

/// A ranked search result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchHit {
    /// Document identifier.
    pub doc: u32,
    /// Retrieval score (higher is better).
    pub score: f32,
}

/// A retrieval system that ranks documents for a text query.
pub trait Retriever {
    /// Returns the top-`k` documents, best first.
    fn search(&self, query: &str, k: usize) -> Vec<SearchHit>;
}
