//! The Porter stemming algorithm (Porter, 1980).
//!
//! The paper's tf-idf baseline "uses the Gensim library for stemming
//! and building the tf-idf matrix"; Gensim's stemmer is Porter's, so we
//! implement the classic five-step algorithm. Operates on lowercase
//! ASCII words; non-ASCII input is returned unchanged.

/// Stems a lowercase word with Porter's algorithm.
pub fn porter_stem(word: impl AsRef<str>) -> String {
    let w = word.as_ref();
    if w.len() <= 2 || !w.bytes().all(|b| b.is_ascii_lowercase()) {
        return w.to_owned();
    }
    let mut b: Vec<u8> = w.bytes().collect();
    step1a(&mut b);
    step1b(&mut b);
    step1c(&mut b);
    step2(&mut b);
    step3(&mut b);
    step4(&mut b);
    step5(&mut b);
    String::from_utf8(b).expect("ASCII stays ASCII")
}

/// Is `b[i]` a consonant in Porter's sense?
fn is_consonant(b: &[u8], i: usize) -> bool {
    match b[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => false,
        b'y' => {
            if i == 0 {
                true
            } else {
                !is_consonant(b, i - 1)
            }
        }
        _ => true,
    }
}

/// Porter's measure `m` of the stem `b[..len]`: the number of VC
/// sequences in the C?(VC)^m V? decomposition.
fn measure(b: &[u8], len: usize) -> usize {
    let mut m = 0;
    let mut i = 0;
    // Skip initial consonants.
    while i < len && is_consonant(b, i) {
        i += 1;
    }
    loop {
        // Skip vowels.
        while i < len && !is_consonant(b, i) {
            i += 1;
        }
        if i >= len {
            return m;
        }
        // Skip consonants (one VC found).
        while i < len && is_consonant(b, i) {
            i += 1;
        }
        m += 1;
    }
}

/// Does the stem `b[..len]` contain a vowel?
fn has_vowel(b: &[u8], len: usize) -> bool {
    (0..len).any(|i| !is_consonant(b, i))
}

/// Does `b[..len]` end in a double consonant?
fn ends_double_consonant(b: &[u8], len: usize) -> bool {
    len >= 2 && b[len - 1] == b[len - 2] && is_consonant(b, len - 1)
}

/// Does `b[..len]` end consonant-vowel-consonant, where the final
/// consonant is not w, x, or y?
fn ends_cvc(b: &[u8], len: usize) -> bool {
    if len < 3 {
        return false;
    }
    is_consonant(b, len - 3)
        && !is_consonant(b, len - 2)
        && is_consonant(b, len - 1)
        && !matches!(b[len - 1], b'w' | b'x' | b'y')
}

fn ends_with(b: &[u8], suffix: &str) -> bool {
    b.ends_with(suffix.as_bytes())
}

/// If the word ends in `suffix` and the remaining stem has measure
/// `> min_m`, replace the suffix with `replacement`; returns whether
/// the suffix matched (regardless of the measure test).
fn replace_if_m(b: &mut Vec<u8>, suffix: &str, replacement: &str, min_m: usize) -> bool {
    if !ends_with(b, suffix) {
        return false;
    }
    let stem_len = b.len() - suffix.len();
    if measure(b, stem_len) > min_m {
        b.truncate(stem_len);
        b.extend_from_slice(replacement.as_bytes());
    }
    true
}

fn step1a(b: &mut Vec<u8>) {
    if ends_with(b, "sses") || ends_with(b, "ies") {
        b.truncate(b.len() - 2);
    } else if ends_with(b, "ss") {
        // unchanged
    } else if ends_with(b, "s") && b.len() > 1 {
        b.truncate(b.len() - 1);
    }
}

fn step1b(b: &mut Vec<u8>) {
    if ends_with(b, "eed") {
        if measure(b, b.len() - 3) > 0 {
            b.truncate(b.len() - 1);
        }
        return;
    }
    let matched = if ends_with(b, "ed") && has_vowel(b, b.len() - 2) {
        b.truncate(b.len() - 2);
        true
    } else if ends_with(b, "ing") && has_vowel(b, b.len() - 3) {
        b.truncate(b.len() - 3);
        true
    } else {
        false
    };
    if matched {
        if ends_with(b, "at") || ends_with(b, "bl") || ends_with(b, "iz") {
            b.push(b'e');
        } else if ends_double_consonant(b, b.len())
            && !matches!(b[b.len() - 1], b'l' | b's' | b'z')
        {
            b.truncate(b.len() - 1);
        } else if measure(b, b.len()) == 1 && ends_cvc(b, b.len()) {
            b.push(b'e');
        }
    }
}

fn step1c(b: &mut [u8]) {
    if ends_with(b, "y") && b.len() > 1 && has_vowel(b, b.len() - 1) {
        let last = b.len() - 1;
        b[last] = b'i';
    }
}

fn step2(b: &mut Vec<u8>) {
    const RULES: &[(&str, &str)] = &[
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    ];
    for (suffix, replacement) in RULES {
        if replace_if_m(b, suffix, replacement, 0) {
            return;
        }
    }
}

fn step3(b: &mut Vec<u8>) {
    const RULES: &[(&str, &str)] = &[
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    ];
    for (suffix, replacement) in RULES {
        if replace_if_m(b, suffix, replacement, 0) {
            return;
        }
    }
}

fn step4(b: &mut Vec<u8>) {
    const RULES: &[&str] = &[
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent", "ou",
        "ism", "ate", "iti", "ous", "ive", "ize",
    ];
    // "ion" requires a preceding s or t.
    if ends_with(b, "ion") {
        let stem_len = b.len() - 3;
        if stem_len > 0 && matches!(b[stem_len - 1], b's' | b't') && measure(b, stem_len) > 1 {
            b.truncate(stem_len);
        }
        return;
    }
    for suffix in RULES {
        if ends_with(b, suffix) {
            let stem_len = b.len() - suffix.len();
            if measure(b, stem_len) > 1 {
                b.truncate(stem_len);
            }
            return;
        }
    }
}

fn step5(b: &mut Vec<u8>) {
    // Step 5a.
    if ends_with(b, "e") {
        let stem_len = b.len() - 1;
        let m = measure(b, stem_len);
        if m > 1 || (m == 1 && !ends_cvc(b, stem_len)) {
            b.truncate(stem_len);
        }
    }
    // Step 5b.
    if ends_with(b, "ll") && measure(b, b.len()) > 1 {
        b.truncate(b.len() - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_porter_examples() {
        // Reference pairs from Porter's paper and the standard vocabulary.
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, want) in cases {
            assert_eq!(porter_stem(input), want, "stem({input})");
        }
    }

    #[test]
    fn related_word_forms_share_a_stem() {
        assert_eq!(porter_stem("searching"), porter_stem("searched"));
        assert_eq!(porter_stem("privacy"), porter_stem("privacy"));
        assert_eq!(porter_stem("connection"), porter_stem("connections"));
        assert_eq!(porter_stem("retrieving"), porter_stem("retrieves"));
    }

    #[test]
    fn short_and_non_ascii_words_pass_through() {
        assert_eq!(porter_stem("a"), "a");
        assert_eq!(porter_stem("is"), "is");
        assert_eq!(porter_stem("héllo"), "héllo");
        assert_eq!(porter_stem("abc123"), "abc123");
    }
}
