//! The tf-idf baseline (paper §8.2), with the optional Coeus-style
//! restricted dictionary.
//!
//! Documents and queries are represented as L2-normalized tf-idf
//! vectors over the stemmed vocabulary; ranking is by cosine
//! similarity, accumulated over postings lists. With an *unrestricted*
//! dictionary this is the baseline whose MRR@100 Tiptoe approaches
//! (paper: 0.187 vs Tiptoe's within 0.02); restricting the dictionary
//! to the top-IDF terms (as Coeus must, to bound its tf-idf matrix
//! width) collapses quality on MS MARCO-like workloads.

use std::collections::{HashMap, HashSet};

use crate::index::InvertedIndex;
use crate::topk::TopK;
use crate::{analyze, Retriever, SearchHit};

/// A tf-idf retriever over an inverted index.
pub struct TfIdf {
    index: InvertedIndex,
    /// If set, only these terms participate in scoring (Coeus mode).
    dictionary: Option<HashSet<String>>,
    /// Per-document vector norms for cosine normalization.
    doc_norms: Vec<f32>,
}

impl TfIdf {
    /// Builds the unrestricted-dictionary variant.
    pub fn build<S: AsRef<str>>(docs: &[S]) -> Self {
        Self::from_index(InvertedIndex::build(docs), None)
    }

    /// Builds the Coeus-style variant restricted to the `dict_size`
    /// terms with the highest IDF.
    pub fn build_restricted<S: AsRef<str>>(docs: &[S], dict_size: usize) -> Self {
        let index = InvertedIndex::build(docs);
        let dict: HashSet<String> = index.top_idf_terms(dict_size).into_iter().collect();
        Self::from_index(index, Some(dict))
    }

    fn from_index(index: InvertedIndex, dictionary: Option<HashSet<String>>) -> Self {
        // Accumulate per-document squared norms over in-dictionary terms.
        let mut norms2 = vec![0.0f32; index.num_docs()];
        for term in index_terms(&index) {
            if let Some(dict) = &dictionary {
                if !dict.contains(&term) {
                    continue;
                }
            }
            let idf = index.idf(&term);
            if let Some(postings) = index.postings(&term) {
                for p in postings {
                    let w = (1.0 + (p.tf as f32).ln()) * idf;
                    norms2[p.doc as usize] += w * w;
                }
            }
        }
        let doc_norms = norms2.into_iter().map(|n| n.sqrt().max(1e-9)).collect();
        Self { index, dictionary, doc_norms }
    }

    /// The dictionary size in effect (`None` = unrestricted).
    pub fn dictionary_size(&self) -> Option<usize> {
        self.dictionary.as_ref().map(HashSet::len)
    }

    /// The underlying index.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }
}

fn index_terms(index: &InvertedIndex) -> Vec<String> {
    // InvertedIndex does not expose key iteration directly; the
    // top_idf_terms(∞) list is exactly the vocabulary.
    index.top_idf_terms(usize::MAX)
}

impl Retriever for TfIdf {
    fn search(&self, query: &str, k: usize) -> Vec<SearchHit> {
        let mut q_weights: HashMap<String, f32> = HashMap::new();
        for term in analyze(query) {
            if let Some(dict) = &self.dictionary {
                if !dict.contains(&term) {
                    continue;
                }
            }
            *q_weights.entry(term).or_insert(0.0) += 1.0;
        }
        let mut scores: HashMap<u32, f32> = HashMap::new();
        let mut q_norm2 = 0.0f32;
        for (term, qtf) in &q_weights {
            let idf = self.index.idf(term);
            let qw = (1.0 + qtf.ln()) * idf;
            q_norm2 += qw * qw;
            if let Some(postings) = self.index.postings(term) {
                for p in postings {
                    let dw = (1.0 + (p.tf as f32).ln()) * idf;
                    *scores.entry(p.doc).or_insert(0.0) += qw * dw;
                }
            }
        }
        let q_norm = q_norm2.sqrt().max(1e-9);
        let mut top = TopK::new(k);
        for (doc, s) in scores {
            top.push(SearchHit { doc, score: s / (q_norm * self.doc_norms[doc as usize]) });
        }
        top.into_sorted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<&'static str> {
        vec![
            "knee pain treatment and physical therapy exercises",
            "quarterly tax filing deadlines for corporations",
            "how to treat chronic knee pain in runners",
            "the history of the roman empire and its emperors",
            "best exercises for lower back pain relief",
        ]
    }

    #[test]
    fn relevant_document_ranks_first() {
        let tfidf = TfIdf::build(&corpus());
        let hits = tfidf.search("knee pain", 5);
        assert!(!hits.is_empty());
        assert!(matches!(hits[0].doc, 0 | 2), "top hit {:?}", hits[0]);
        // Both knee-pain docs beat the tax doc.
        let rank_of = |d: u32| hits.iter().position(|h| h.doc == d);
        assert!(rank_of(1).is_none() || rank_of(0) < rank_of(1));
    }

    #[test]
    fn scores_are_descending_and_bounded() {
        let tfidf = TfIdf::build(&corpus());
        let hits = tfidf.search("pain exercises", 5);
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        for h in &hits {
            assert!(h.score <= 1.0 + 1e-4, "cosine above 1: {}", h.score);
        }
    }

    #[test]
    fn restricted_dictionary_drops_common_query_terms() {
        // With a tiny dictionary, common terms vanish and recall drops —
        // the effect that zeroes Coeus-style tf-idf on MS MARCO (§8.2).
        let full = TfIdf::build(&corpus());
        let restricted = TfIdf::build_restricted(&corpus(), 3);
        assert_eq!(restricted.dictionary_size(), Some(3));
        let q = "knee pain treatment";
        let full_hits = full.search(q, 5);
        let restricted_hits = restricted.search(q, 5);
        assert!(restricted_hits.len() <= full_hits.len());
    }

    #[test]
    fn no_match_returns_empty() {
        let tfidf = TfIdf::build(&corpus());
        assert!(tfidf.search("zzzz qqqq", 5).is_empty());
    }

    #[test]
    fn stemmed_query_matches_inflected_document() {
        let tfidf = TfIdf::build(&corpus());
        let hits = tfidf.search("treating knees", 5);
        assert!(hits.iter().any(|h| h.doc == 2), "stem matching failed: {hits:?}");
    }
}
