//! An inverted index over analyzed (tokenized + stemmed) documents,
//! shared by the tf-idf and BM25 baselines.

use std::collections::HashMap;

use crate::analyze;

/// One posting: a document and the term's frequency in it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Posting {
    /// Document identifier.
    pub doc: u32,
    /// Term frequency.
    pub tf: u32,
}

/// An inverted index mapping terms to postings lists.
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    postings: HashMap<String, Vec<Posting>>,
    doc_lengths: Vec<u32>,
    total_terms: u64,
}

impl InvertedIndex {
    /// Builds the index over a corpus of raw document texts.
    pub fn build<S: AsRef<str>>(docs: &[S]) -> Self {
        let mut index = Self::default();
        for doc in docs {
            index.add_document(doc.as_ref());
        }
        index
    }

    /// Appends one document (IDs are assigned sequentially).
    pub fn add_document(&mut self, text: &str) {
        let doc = self.doc_lengths.len() as u32;
        let terms = analyze(text);
        let mut counts: HashMap<String, u32> = HashMap::new();
        for t in &terms {
            *counts.entry(t.clone()).or_insert(0) += 1;
        }
        for (term, tf) in counts {
            self.postings.entry(term).or_default().push(Posting { doc, tf });
        }
        self.doc_lengths.push(terms.len() as u32);
        self.total_terms += terms.len() as u64;
    }

    /// Number of indexed documents.
    pub fn num_docs(&self) -> usize {
        self.doc_lengths.len()
    }

    /// Vocabulary size.
    pub fn num_terms(&self) -> usize {
        self.postings.len()
    }

    /// Token count of document `doc`.
    ///
    /// # Panics
    ///
    /// Panics if `doc` is out of range.
    pub fn doc_len(&self, doc: u32) -> u32 {
        self.doc_lengths[doc as usize]
    }

    /// Mean document length in tokens.
    pub fn avg_doc_len(&self) -> f32 {
        if self.doc_lengths.is_empty() {
            0.0
        } else {
            self.total_terms as f32 / self.doc_lengths.len() as f32
        }
    }

    /// Postings for a term, if indexed.
    pub fn postings(&self, term: &str) -> Option<&[Posting]> {
        self.postings.get(term).map(Vec::as_slice)
    }

    /// Document frequency of a term.
    pub fn doc_freq(&self, term: &str) -> usize {
        self.postings.get(term).map_or(0, Vec::len)
    }

    /// Inverse document frequency (plain log form used by tf-idf).
    pub fn idf(&self, term: &str) -> f32 {
        let df = self.doc_freq(term);
        if df == 0 {
            0.0
        } else {
            ((self.num_docs() as f32) / df as f32).ln()
        }
    }

    /// The `k` terms with the highest IDF (rarest first) — the
    /// dictionary-restriction rule Coeus uses ("the 65K stemmed words
    /// with the highest inverse-document-frequency score", §8.2).
    pub fn top_idf_terms(&self, k: usize) -> Vec<String> {
        let mut scored: Vec<(f32, &String)> =
            self.postings.keys().map(|t| (self.idf(t), t)).collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("no NaN idf").then(a.1.cmp(b.1)));
        scored.into_iter().take(k).map(|(_, t)| t.clone()).collect()
    }

    /// Estimated serialized index size in bytes (postings as doc+tf
    /// pairs) — used for the client-side-index baseline of Table 6.
    pub fn storage_bytes(&self) -> u64 {
        let posting_count: u64 = self.postings.values().map(|p| p.len() as u64).sum();
        let term_bytes: u64 = self.postings.keys().map(|t| t.len() as u64 + 8).sum();
        posting_count * 8 + term_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs() -> Vec<&'static str> {
        vec![
            "the quick brown fox jumps over the lazy dog",
            "a private search engine hides the search query",
            "the dog searches for private bones",
        ]
    }

    #[test]
    fn builds_postings_with_frequencies() {
        let idx = InvertedIndex::build(&docs());
        assert_eq!(idx.num_docs(), 3);
        // "search"/"searches"/"searching" stem together.
        let postings = idx.postings(&crate::stem::porter_stem("search")).expect("indexed");
        assert_eq!(postings.len(), 2);
        let doc1 = postings.iter().find(|p| p.doc == 1).expect("doc 1 present");
        assert_eq!(doc1.tf, 2);
    }

    #[test]
    fn idf_ranks_rare_terms_higher() {
        let idx = InvertedIndex::build(&docs());
        assert!(idx.idf("fox") > idx.idf("the"));
        assert_eq!(idx.idf("zzz_absent"), 0.0);
    }

    #[test]
    fn doc_lengths_and_average() {
        let idx = InvertedIndex::build(&docs());
        assert_eq!(idx.doc_len(0), 9);
        assert!(idx.avg_doc_len() > 5.0);
    }

    #[test]
    fn top_idf_terms_excludes_common_words() {
        let idx = InvertedIndex::build(&docs());
        let top = idx.top_idf_terms(5);
        assert_eq!(top.len(), 5);
        assert!(!top.contains(&"the".to_owned()), "common term in top-idf: {top:?}");
    }

    #[test]
    fn empty_index_is_well_behaved() {
        let idx = InvertedIndex::default();
        assert_eq!(idx.num_docs(), 0);
        assert_eq!(idx.avg_doc_len(), 0.0);
        assert!(idx.postings("x").is_none());
    }
}
