//! `tiptoe` — a command-line demonstration of private web search.
//!
//! ```text
//! tiptoe demo [NUM_DOCS]            # synthetic corpus + interactive search
//! tiptoe index FILE [QUERY...]      # index a file of documents, run queries
//! tiptoe search QUERY...            # synthetic corpus, run queries, exit
//! tiptoe serve-bench [CLIENTS]      # load-test direct vs coalesced serving
//! tiptoe overload-demo [CLIENTS]    # overload the plane, watch it shed
//! tiptoe top [CLIENTS] [--json]     # live serving-plane introspection
//! ```
//!
//! In `index` mode, `FILE` holds one document per line, either
//! `url<TAB>text` or just `text` (URLs are synthesized). Every query
//! runs through the full private pipeline: the services only ever see
//! lattice ciphertexts.
//!
//! Set `TIPTOE_TRACE=trace.json` to capture a per-query span trace
//! (Chrome `trace_event` JSON plus sibling `.metrics.json` and
//! `.folded` files); `search` is the non-interactive mode meant for
//! exactly that kind of scripted capture.

use std::io::{BufRead, Write};

use tiptoe_core::config::TiptoeConfig;
use tiptoe_core::instance::TiptoeInstance;
use tiptoe_corpus::synth::{generate, Corpus, CorpusConfig, Document};
use tiptoe_embed::text::TextEmbedder;
use tiptoe_math::stats::{fmt_bytes, fmt_seconds};
use tiptoe_net::LinkModel;

fn usage() -> ! {
    eprintln!("usage:");
    eprintln!("  tiptoe demo [NUM_DOCS]        synthetic corpus, interactive prompt");
    eprintln!("  tiptoe index FILE [QUERY...]  index 'url<TAB>text' lines, run queries");
    eprintln!("  tiptoe search QUERY...        synthetic corpus, run queries, exit");
    eprintln!("  tiptoe serve-bench [CLIENTS]  load-test direct vs coalesced serving");
    eprintln!("  tiptoe overload-demo [CLIENTS] drive 2x capacity, watch typed sheds");
    eprintln!("  tiptoe top [CLIENTS] [--json]  drive load, watch live plane snapshots");
    std::process::exit(2);
}

/// `tiptoe top [CLIENTS] [--json]`: bring up a small instance with
/// admission control and breakers on, run closed-loop clients against
/// the coalesced serving plane, and render a live
/// [`tiptoe_core::serving::PlaneStatus`] snapshot every refresh —
/// lane occupancy, cohort, breaker states, admission counters,
/// latency quantiles, and SLO burn rates. `--json` emits one JSON
/// object per refresh instead of the text panel (exporter mode).
fn top(clients: Option<usize>, json: bool) -> ! {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    let clients = clients.unwrap_or(4).max(1);
    let docs = 400;
    let (ticks, tick) = (8, std::time::Duration::from_millis(400));
    if !json {
        println!("tiptoe: indexing {docs} synthetic documents ...");
    }
    let corpus = generate(&CorpusConfig::small(docs, 7), 0);
    let mut config = TiptoeConfig::test_small(docs, 7);
    config.admission.enabled = true;
    config.admission.max_inflight = clients;
    config.admission.deadline = std::time::Duration::from_secs(30);
    config.breaker.enabled = true;
    config.validate();
    let embedder = TextEmbedder::new(config.d_embed, 7, 0);
    let instance = TiptoeInstance::build(&config, embedder, &corpus);
    let plane = instance.serving_plane();

    let queries = ["museum history archive", "health doctor symptoms", "travel island beach"];
    let stop = AtomicBool::new(false);
    let completed = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for i in 0..clients {
            let (instance, plane, stop, completed) = (&instance, &plane, &stop, &completed);
            let query = queries[i % queries.len()];
            scope.spawn(move || {
                let mut client = instance.new_client(500 + i as u64);
                while !stop.load(Ordering::Relaxed) {
                    if client.try_search_served(instance, query, 5, plane).is_ok() {
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        for t in 0..ticks {
            std::thread::sleep(tick);
            let status = plane.status();
            if json {
                println!("{}", status.to_json());
            } else {
                println!(
                    "--- tick {}/{} ({} queries completed) ---",
                    t + 1,
                    ticks,
                    completed.load(Ordering::Relaxed)
                );
                print!("{}", status.render());
            }
        }
        stop.store(true, Ordering::Relaxed);
    });
    if !json {
        println!(
            "\ntiptoe: {} queries completed by {clients} closed-loop clients",
            completed.load(Ordering::Relaxed)
        );
    }
    std::process::exit(0);
}

/// `tiptoe overload-demo [CLIENTS]`: bring up a small instance with
/// admission control pinned to half the offered concurrency, release
/// all clients at once, and show the plane shedding the excess with
/// typed errors while every admitted query completes normally.
fn overload_demo(clients: Option<usize>) -> ! {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;
    use tiptoe_net::ServeError;

    let clients = clients.unwrap_or(8).max(2);
    let capacity = (clients / 2).max(1);
    let docs = 500;
    println!("tiptoe: indexing {docs} synthetic documents ...");
    let corpus = generate(&CorpusConfig::small(docs, 7), 0);
    let mut config = TiptoeConfig::test_small(docs, 7);
    config.admission.enabled = true;
    config.admission.max_inflight = capacity;
    config.admission.queue_depth = 0;
    config.admission.deadline = std::time::Duration::from_secs(30);
    config.validate();
    let embedder = TextEmbedder::new(config.d_embed, 7, 0);
    let instance = TiptoeInstance::build(&config, embedder, &corpus);
    let plane = instance.serving_plane();
    let ctrl = plane.admission().expect("admission enabled");
    println!(
        "tiptoe: admission capacity {} (queue depth {}), {clients} concurrent clients\n",
        ctrl.capacity(),
        ctrl.policy().queue_depth
    );

    let queries = ["museum history archive", "health doctor symptoms", "travel island beach"];
    let barrier = Barrier::new(clients);
    let admitted = AtomicUsize::new(0);
    let shed = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for i in 0..clients {
            let (instance, plane, barrier) = (&instance, &plane, &barrier);
            let (admitted, shed) = (&admitted, &shed);
            let query = queries[i % queries.len()];
            scope.spawn(move || {
                let mut client = instance.new_client(100 + i as u64);
                barrier.wait();
                match client.try_search_served(instance, query, 5, plane) {
                    Ok(r) => {
                        admitted.fetch_add(1, Ordering::SeqCst);
                        let top = r.hits.first().map_or("(no results)", |h| h.url.as_str());
                        println!("client {i:>2}: admitted   {query:<24} -> {top}");
                    }
                    Err(e @ ServeError::Overloaded { .. }) => {
                        shed.fetch_add(1, Ordering::SeqCst);
                        println!("client {i:>2}: SHED       {query:<24} -> {e}");
                    }
                    Err(e) => println!("client {i:>2}: failed     {query:<24} -> {e}"),
                }
            });
        }
    });
    println!(
        "\ntiptoe: {} admitted, {} shed ({} total arrivals; transcript counted {})",
        admitted.load(Ordering::SeqCst),
        shed.load(Ordering::SeqCst),
        ctrl.admitted() + ctrl.sheds(),
        instance.transcript.sheds(),
    );
    println!("tiptoe: shed queries cost no token and no bytes; retry when load drops");
    std::process::exit(0);
}

/// `tiptoe serve-bench [CLIENTS]`: run the closed-loop serving sweep
/// (direct vs. coalesced through the batch-coalescing serving plane)
/// and print throughput, latency percentiles, and scan amortization.
fn serve_bench(clients: Option<usize>) -> ! {
    use tiptoe_bench::serving::{run_serving_bench, ServingBenchConfig};
    let mut cfg = ServingBenchConfig::default();
    if let Some(c) = clients {
        cfg.clients = if c == 1 { vec![1] } else { vec![1, c] };
    }
    println!(
        "tiptoe: serving sweep over {} docs, {} shards, {} queries/client ...",
        cfg.docs, cfg.shards, cfg.queries_per_client
    );
    let outcome = run_serving_bench(&cfg);
    println!(
        "{:>8}  {:>10}  {:>10}  {:>9}  {:>9}  {:>8}",
        "clients", "mode", "qps", "p50 ms", "p99 ms", "q/scan"
    );
    for row in &outcome.rows {
        let r = &row.report;
        println!(
            "{:>8}  {:>10}  {:>10.2}  {:>9.2}  {:>9.2}  {:>8.3}",
            row.clients,
            if row.coalesced { "coalesced" } else { "direct" },
            r.qps,
            r.p50.as_secs_f64() * 1e3,
            r.p99.as_secs_f64() * 1e3,
            row.queries_per_scan,
        );
    }
    if let Some(s) = outcome.scan_speedup() {
        println!("scan-bound speedup (coalesced @max clients vs direct @1): {s:.2}x");
    }
    std::process::exit(0);
}

fn load_file(path: &str) -> Corpus {
    let file = std::fs::File::open(path).unwrap_or_else(|e| {
        eprintln!("tiptoe: cannot open {path}: {e}");
        std::process::exit(1);
    });
    let mut docs = Vec::new();
    for (i, line) in std::io::BufReader::new(file).lines().enumerate() {
        let line = line.unwrap_or_default();
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (url, text) = match line.split_once('\t') {
            Some((u, t)) => (u.to_owned(), t.to_owned()),
            None => (format!("file://{path}#L{}", i + 1), line.to_owned()),
        };
        docs.push(Document { id: docs.len() as u32, url, text, topic: 0 });
    }
    if docs.is_empty() {
        eprintln!("tiptoe: {path} holds no documents");
        std::process::exit(1);
    }
    Corpus { docs, queries: Vec::new() }
}

fn run_queries<I>(instance: &TiptoeInstance<TextEmbedder>, queries: I)
where
    I: IntoIterator<Item = String>,
{
    let mut client = instance.new_client(1);
    let link = LinkModel::paper();
    for query in queries {
        let query = query.trim().to_owned();
        if query.is_empty() || query == "quit" || query == "exit" {
            if query.is_empty() {
                continue;
            }
            break;
        }
        let results = client.search(instance, &query, 10);
        println!("Q: {query}");
        if results.hits.is_empty() {
            println!("  (no results)");
        }
        for (i, hit) in results.hits.iter().enumerate() {
            println!("  {:>2}. {}  ({:.3})", i + 1, hit.url, hit.score);
        }
        let c = &results.cost;
        println!(
            "  [{} online, {} offline, ~{} perceived; the servers saw only ciphertexts]\n",
            fmt_bytes(c.online_bytes()),
            fmt_bytes(c.offline_bytes()),
            fmt_seconds(c.perceived_latency(&link).as_secs_f64()),
        );
    }
}

fn interactive(instance: &TiptoeInstance<TextEmbedder>) {
    println!("type a query (empty line or 'quit' to exit):");
    let stdin = std::io::stdin();
    let mut lines = Vec::new();
    loop {
        print!("tiptoe> ");
        std::io::stdout().flush().expect("stdout");
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim().to_owned();
        if line.is_empty() || line == "quit" || line == "exit" {
            break;
        }
        lines.push(line);
        // Run one at a time so the prompt stays responsive.
        run_queries(instance, lines.drain(..));
    }
}

fn main() {
    tiptoe_obs::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("serve-bench") {
        serve_bench(args.get(1).and_then(|a| a.parse().ok()));
    }
    if args.first().map(String::as_str) == Some("overload-demo") {
        overload_demo(args.get(1).and_then(|a| a.parse().ok()));
    }
    if args.first().map(String::as_str) == Some("top") {
        let json = args.iter().any(|a| a == "--json");
        top(args.get(1).and_then(|a| a.parse().ok()), json);
    }
    let (corpus, label) = match args.first().map(String::as_str) {
        Some("demo") => {
            let n: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(2000);
            (generate(&CorpusConfig::small(n, 7), 0), format!("{n} synthetic documents"))
        }
        Some("index") => {
            let Some(path) = args.get(1) else { usage() };
            (load_file(path), format!("documents from {path}"))
        }
        Some("search") if args.len() > 1 => {
            (generate(&CorpusConfig::small(2000, 7), 0), "2000 synthetic documents".to_owned())
        }
        _ => usage(),
    };

    println!("tiptoe: indexing {label} ...");
    let config = TiptoeConfig::test_small(corpus.docs.len(), 7);
    let embedder = TextEmbedder::new(config.d_embed, 7, 0);
    let t0 = std::time::Instant::now();
    let instance = TiptoeInstance::build(&config, embedder, &corpus);
    println!(
        "tiptoe: ready in {} ({} clusters, {} server state)\n",
        fmt_seconds(t0.elapsed().as_secs_f64()),
        instance.artifacts.meta.c,
        fmt_bytes(instance.server_storage_bytes()),
    );

    match args.first().map(String::as_str) {
        Some("index") if args.len() > 2 => {
            run_queries(&instance, args[2..].iter().cloned());
        }
        Some("search") => {
            run_queries(&instance, std::iter::once(args[1..].join(" ")));
            if let Some(path) = tiptoe_obs::trace_path() {
                println!("tiptoe: trace written to {path}");
            }
        }
        _ => interactive(&instance),
    }
}
