//! LWE parameter selection, reproducing Appendix C of the paper.
//!
//! The paper fixes two base configurations:
//!
//! - **Ranking** (`q = 2^64`): secret dimension `n = 2048`, error
//!   σ = 81 920, ternary secrets — 128-bit security for encrypted
//!   vectors of dimension up to `2^27` (Table 12).
//! - **URL retrieval** (`q = 2^32`): `n = 1408`, σ = 6.4 — 128-bit
//!   security up to dimension `2^20`; beyond that, `n = 1608` with
//!   σ = 0.5 (Table 11).
//!
//! Given the upload dimension `m` (the number of homomorphic
//! multiply-accumulate steps an output coordinate absorbs), the largest
//! usable plaintext modulus `p` follows from the correctness condition
//!
//! ```text
//!     z · σ · (p/2) · √m  <  q / (2p)        (failure ≈ 2^-40)
//! ```
//!
//! i.e. `p = √( q / (z·σ·√m) )` with `z ≈ 7.5` the Gaussian tail bound
//! for a per-coordinate failure probability of `2^-40`. This formula
//! recovers the paper's Tables 11 and 12 to within rounding (the
//! `table11_12_params` bench binary prints both side by side).

/// Gaussian tail multiplier for a 2^-40 per-coordinate failure
/// probability: `exp(-z²/2) ≈ 2^-40` gives `z ≈ 7.45`; the paper's
/// tables are consistent with a slightly conservative `7.55`.
pub const GAUSSIAN_TAIL_Z: f64 = 7.55;

/// Parameters of the inner (SimplePIR-style) LWE scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LweParams {
    /// Secret dimension `n` (lattice dimension).
    pub n: usize,
    /// log2 of the ciphertext modulus (32 or 64).
    pub log_q: u32,
    /// Plaintext modulus `p`.
    pub p: u64,
    /// Error standard deviation σ.
    pub sigma: f64,
}

impl LweParams {
    /// The paper's ranking configuration (`q = 2^64`, Appendix C) with
    /// a caller-chosen plaintext modulus.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range (see [`LweParams::validate`]).
    pub fn ranking(p: u64) -> Self {
        let params = Self { n: 2048, log_q: 64, p, sigma: 81920.0 };
        params.validate();
        params
    }

    /// The paper's text-search ranking parameters (`p = 2^17`).
    pub fn ranking_text() -> Self {
        Self::ranking(1 << 17)
    }

    /// The paper's image-search ranking parameters (`p = 2^15`).
    pub fn ranking_image() -> Self {
        Self::ranking(1 << 15)
    }

    /// The paper's URL-retrieval (PIR) configuration (`q = 2^32`,
    /// `n = 1408`, σ = 6.4) with a caller-chosen plaintext modulus.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range (see [`LweParams::validate`]).
    pub fn url(p: u64) -> Self {
        let params = Self { n: 1408, log_q: 32, p, sigma: 6.4 };
        params.validate();
        params
    }

    /// URL-retrieval parameters with `p` chosen automatically for an
    /// upload dimension `m` (Table 11).
    pub fn url_for_upload(m: usize) -> Self {
        let base = Self { n: 1408, log_q: 32, p: 4, sigma: 6.4 };
        Self::url(base.max_plaintext_modulus(m))
    }

    /// Scaled-down parameters for fast unit tests: 128-bit *structure*
    /// (not security!) with `n = 64`.
    pub fn insecure_test(log_q: u32, p: u64, sigma: f64) -> Self {
        Self { n: 64, log_q, p, sigma }
    }

    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if `log_q ∉ {32, 64}`, `p < 2`, `p ≥ 2^(log_q - 10)`
    /// (no room for noise), or `n == 0`.
    pub fn validate(&self) {
        assert!(self.log_q == 32 || self.log_q == 64, "q must be 2^32 or 2^64");
        assert!(self.n > 0, "secret dimension must be positive");
        assert!(self.p >= 2, "plaintext modulus too small");
        assert!(
            (self.p as u128) < (1u128 << (self.log_q - 10)),
            "plaintext modulus leaves no noise room"
        );
    }

    /// The ciphertext modulus as a `u128` (exact even for `q = 2^64`).
    pub fn q_u128(&self) -> u128 {
        1u128 << self.log_q
    }

    /// The scaling factor `Δ = ⌊q/p⌋`.
    pub fn delta(&self) -> u64 {
        (self.q_u128() / self.p as u128) as u64
    }

    /// Largest plaintext modulus `p` for which decryption after `m`
    /// multiply-accumulate steps fails with probability ≈ 2^-40 per
    /// coordinate (the formula behind Tables 11 and 12).
    pub fn max_plaintext_modulus(&self, m: usize) -> u64 {
        let q = self.q_u128() as f64;
        let p = (q / (GAUSSIAN_TAIL_Z * self.sigma * (m as f64).sqrt())).sqrt();
        p.round() as u64
    }

    /// High-probability bound on the absolute decryption noise
    /// `|M·e|` after applying a matrix with `m` columns and entries
    /// bounded by `p` (centered: `±p/2`).
    pub fn noise_bound(&self, m: usize) -> f64 {
        GAUSSIAN_TAIL_Z * self.sigma * (self.p as f64 / 2.0) * (m as f64).sqrt()
    }

    /// Whether decryption is reliable after `m` multiply-accumulate
    /// steps: the noise bound must stay below `Δ/2`.
    pub fn supports_upload_dim(&self, m: usize) -> bool {
        self.noise_bound(m) < self.delta() as f64 / 2.0
    }

    /// Maximum *secure* upload dimension for this `(n, q, σ)` triple,
    /// following the lattice-estimator results the paper cites
    /// (citation \[6\] in Appendix C): `(2048, 2^64, 81920) → 2^27`,
    /// `(1408, 2^32, 6.4) → 2^20`, `(1608, 2^32, 0.5) → 2^24`.
    ///
    /// Returns `None` for parameter triples the paper does not cover
    /// (including the intentionally insecure test parameters).
    pub fn max_secure_upload_dim(&self) -> Option<usize> {
        match (self.n, self.log_q) {
            (2048, 64) if self.sigma >= 81920.0 => Some(1 << 27),
            (2048, 64) if self.sigma >= 4096.0 => Some(1 << 24),
            (1408, 32) if self.sigma >= 6.4 => Some(1 << 20),
            (1608, 32) if self.sigma >= 0.5 => Some(1 << 24),
            _ => None,
        }
    }

    /// Bytes in one ciphertext word (`log_q / 8`).
    pub fn word_bytes(&self) -> usize {
        (self.log_q / 8) as usize
    }

    /// Upload size in bytes for a query of dimension `m`
    /// ("Ciphertext size before homomorphic operation: m words").
    pub fn upload_bytes(&self, m: usize) -> u64 {
        (m * self.word_bytes()) as u64
    }

    /// Download size in bytes for `ell` output coordinates *without*
    /// hint outsourcing ("after homomorphic operation: λ·√N words" —
    /// here `ell·(n+1)` words if the hint rows had to travel too).
    pub fn raw_download_bytes(&self, ell: usize) -> u64 {
        (ell * self.word_bytes()) as u64
    }
}

/// One row of the paper's Table 11 / Table 12.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParamTableRow {
    /// log2 of the upload dimension `m`.
    pub log_m: u32,
    /// Plaintext modulus from the paper.
    pub paper_p: u64,
    /// Lattice dimension `n`.
    pub n: usize,
    /// Error standard deviation σ.
    pub sigma: f64,
}

/// Table 11 of the paper: parameters for `q = 2^32` (URL retrieval).
pub const TABLE_11: [ParamTableRow; 12] = [
    ParamTableRow { log_m: 13, paper_p: 991, n: 1408, sigma: 6.4 },
    ParamTableRow { log_m: 14, paper_p: 833, n: 1408, sigma: 6.4 },
    ParamTableRow { log_m: 15, paper_p: 701, n: 1408, sigma: 6.4 },
    ParamTableRow { log_m: 16, paper_p: 589, n: 1408, sigma: 6.4 },
    ParamTableRow { log_m: 17, paper_p: 495, n: 1408, sigma: 6.4 },
    ParamTableRow { log_m: 18, paper_p: 416, n: 1408, sigma: 6.4 },
    ParamTableRow { log_m: 19, paper_p: 350, n: 1408, sigma: 6.4 },
    ParamTableRow { log_m: 20, paper_p: 294, n: 1408, sigma: 6.4 },
    ParamTableRow { log_m: 21, paper_p: 887, n: 1608, sigma: 0.5 },
    ParamTableRow { log_m: 22, paper_p: 745, n: 1608, sigma: 0.5 },
    ParamTableRow { log_m: 23, paper_p: 627, n: 1608, sigma: 0.5 },
    ParamTableRow { log_m: 24, paper_p: 527, n: 1608, sigma: 0.5 },
];

/// Table 12 of the paper: parameters for `q = 2^64` (ranking). The
/// paper reports `p` as a power of two (the fixed-precision encoding
/// wants `p | q`), i.e. the table's `p` is our formula's value rounded
/// down to a power of two.
pub const TABLE_12: [ParamTableRow; 12] = [
    ParamTableRow { log_m: 13, paper_p: 1 << 19, n: 2048, sigma: 81920.0 },
    ParamTableRow { log_m: 14, paper_p: 1 << 18, n: 2048, sigma: 81920.0 },
    ParamTableRow { log_m: 15, paper_p: 1 << 18, n: 2048, sigma: 81920.0 },
    ParamTableRow { log_m: 16, paper_p: 1 << 18, n: 2048, sigma: 81920.0 },
    ParamTableRow { log_m: 17, paper_p: 1 << 18, n: 2048, sigma: 81920.0 },
    ParamTableRow { log_m: 18, paper_p: 1 << 17, n: 2048, sigma: 81920.0 },
    ParamTableRow { log_m: 19, paper_p: 1 << 17, n: 2048, sigma: 81920.0 },
    ParamTableRow { log_m: 20, paper_p: 1 << 17, n: 2048, sigma: 81920.0 },
    ParamTableRow { log_m: 21, paper_p: 1 << 17, n: 2048, sigma: 81920.0 },
    ParamTableRow { log_m: 22, paper_p: 1 << 19, n: 2048, sigma: 4096.0 },
    ParamTableRow { log_m: 23, paper_p: 1 << 18, n: 2048, sigma: 4096.0 },
    ParamTableRow { log_m: 24, paper_p: 1 << 18, n: 2048, sigma: 4096.0 },
];

/// Computes our formula's plaintext modulus for a table row.
pub fn computed_p(row: &ParamTableRow, log_q: u32) -> u64 {
    let params = LweParams { n: row.n, log_q, p: 4, sigma: row.sigma };
    params.max_plaintext_modulus(1 << row.log_m)
}

/// Rounds down to a power of two (used to compare against Table 12,
/// which reports power-of-two moduli).
pub fn floor_pow2(x: u64) -> u64 {
    assert!(x >= 1);
    1 << (63 - x.leading_zeros())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_11_reproduced_within_rounding() {
        for row in &TABLE_11 {
            let got = computed_p(row, 32);
            let err = (got as f64 - row.paper_p as f64).abs() / row.paper_p as f64;
            assert!(
                err < 0.02,
                "m=2^{}: computed {} vs paper {}",
                row.log_m,
                got,
                row.paper_p
            );
        }
    }

    #[test]
    fn table_12_reproduced_within_one_power_of_two() {
        for row in &TABLE_12 {
            let got = floor_pow2(computed_p(row, 64));
            let ratio = got as f64 / row.paper_p as f64;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "m=2^{}: computed {} vs paper {}",
                row.log_m,
                got,
                row.paper_p
            );
        }
    }

    #[test]
    fn text_ranking_params_support_10k_clusters() {
        // Appendix C: p = 2^17 supports up to 2^21 homomorphic
        // additions, i.e. C ≈ 10K clusters of dimension d = 192
        // (192 * 10_000 ≈ 2^21).
        let params = LweParams::ranking_text();
        assert!(params.supports_upload_dim(1 << 21));
        assert!(!params.supports_upload_dim(1 << 24));
    }

    #[test]
    fn image_ranking_params_support_more_additions() {
        // Appendix C: p = 2^15 supports up to 2^27 additions.
        let params = LweParams::ranking_image();
        assert!(params.supports_upload_dim(1 << 27));
    }

    #[test]
    fn url_params_match_table_11_support() {
        // p = 991 was solved from equality at m = 2^13, so test one
        // notch inside and well outside the boundary.
        let params = LweParams::url(991);
        assert!(params.supports_upload_dim(1 << 12));
        assert!(!params.supports_upload_dim(1 << 16));
    }

    #[test]
    fn delta_is_exact_for_power_of_two_p() {
        let params = LweParams::ranking_text();
        assert_eq!(params.delta(), 1 << 47);
        let url = LweParams::url(991);
        assert_eq!(url.delta(), ((1u128 << 32) / 991) as u64);
    }

    #[test]
    fn security_limits_follow_the_paper() {
        assert_eq!(LweParams::ranking_text().max_secure_upload_dim(), Some(1 << 27));
        assert_eq!(LweParams::url(991).max_secure_upload_dim(), Some(1 << 20));
        let big = LweParams { n: 1608, log_q: 32, p: 887, sigma: 0.5 };
        assert_eq!(big.max_secure_upload_dim(), Some(1 << 24));
        assert_eq!(LweParams::insecure_test(32, 64, 6.4).max_secure_upload_dim(), None);
    }

    #[test]
    fn url_for_upload_picks_table_value() {
        let p = LweParams::url_for_upload(1 << 13).p;
        assert!((985..=997).contains(&p), "got {p}");
    }

    #[test]
    #[should_panic(expected = "noise room")]
    fn oversized_p_rejected() {
        LweParams { n: 64, log_q: 32, p: 1 << 30, sigma: 6.4 }.validate();
    }
}
