//! The public LWE matrix `A`, expanded on demand from a seed.
//!
//! `A ∈ Z_q^{m×n}` can be gigabytes for web-scale upload dimensions, so
//! neither party materializes it: both the client (during encryption)
//! and the server (during hint preprocessing) stream its rows from a
//! shared seed, exactly as SimplePIR transmits `A` as a PRG seed.

use rand::Rng;
use tiptoe_math::rng::{derive_seed, seeded_rng};
use tiptoe_math::zq::Word;

/// A seed-defined public matrix `A` with `m` rows and `n` columns over
/// `Z_{2^k}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixA {
    seed: u64,
    m: usize,
    n: usize,
}

impl MatrixA {
    /// Defines the matrix; no memory is allocated.
    pub fn new(seed: u64, m: usize, n: usize) -> Self {
        Self { seed, m, n }
    }

    /// Number of rows (`m`, the upload dimension).
    pub fn rows(&self) -> usize {
        self.m
    }

    /// Number of columns (`n`, the secret dimension).
    pub fn cols(&self) -> usize {
        self.n
    }

    /// The defining seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Expands row `k` into the provided buffer.
    ///
    /// Rows are derived independently, so callers may stream them in
    /// any order (the hint preprocessing walks `k = 0..m` once; the
    /// encryptor does the same).
    ///
    /// # Panics
    ///
    /// Panics if `k >= m` or `buf.len() != n`.
    pub fn expand_row<W: Word>(&self, k: usize, buf: &mut [W]) {
        assert!(k < self.m, "row index out of bounds");
        assert_eq!(buf.len(), self.n, "buffer length mismatch");
        let mut rng = seeded_rng(derive_seed(self.seed, k as u64));
        for slot in buf.iter_mut() {
            *slot = W::from_u64(rng.gen::<u64>());
        }
    }

    /// A sub-matrix view covering rows `[start, start+len)`, reusing
    /// the same expansion (used when the query vector is sharded
    /// across worker machines, paper §4.3).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds `m`.
    pub fn row_range(&self, start: usize, len: usize) -> MatrixARange {
        assert!(start + len <= self.m, "row range out of bounds");
        MatrixARange { base: *self, start, len }
    }
}

/// A contiguous row range of a [`MatrixA`].
#[derive(Debug, Clone, Copy)]
pub struct MatrixARange {
    base: MatrixA,
    start: usize,
    len: usize,
}

impl MatrixARange {
    /// Number of rows in the range.
    pub fn rows(&self) -> usize {
        self.len
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.base.cols()
    }

    /// Expands local row `k` (global row `start + k`).
    ///
    /// # Panics
    ///
    /// Panics if `k >= len` or `buf.len() != n`.
    pub fn expand_row<W: Word>(&self, k: usize, buf: &mut [W]) {
        assert!(k < self.len, "row index out of bounds");
        self.base.expand_row(self.start + k, buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_deterministic() {
        let a = MatrixA::new(42, 8, 16);
        let mut r1 = vec![0u64; 16];
        let mut r2 = vec![0u64; 16];
        a.expand_row(3, &mut r1);
        a.expand_row(3, &mut r2);
        assert_eq!(r1, r2);
    }

    #[test]
    fn rows_differ() {
        let a = MatrixA::new(42, 8, 16);
        let mut r1 = vec![0u64; 16];
        let mut r2 = vec![0u64; 16];
        a.expand_row(0, &mut r1);
        a.expand_row(1, &mut r2);
        assert_ne!(r1, r2);
    }

    #[test]
    fn range_matches_base() {
        let a = MatrixA::new(7, 10, 4);
        let range = a.row_range(3, 5);
        let mut from_range = vec![0u32; 4];
        let mut from_base = vec![0u32; 4];
        range.expand_row(2, &mut from_range);
        a.expand_row(5, &mut from_base);
        assert_eq!(from_range, from_base);
    }

    #[test]
    fn u32_and_u64_truncation_consistent() {
        let a = MatrixA::new(9, 2, 8);
        let mut w64 = vec![0u64; 8];
        let mut w32 = vec![0u32; 8];
        a.expand_row(0, &mut w64);
        a.expand_row(0, &mut w32);
        for (x, y) in w64.iter().zip(w32.iter()) {
            assert_eq!(*x as u32, *y);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_row_panics() {
        let a = MatrixA::new(0, 2, 2);
        let mut buf = vec![0u64; 2];
        a.expand_row(2, &mut buf);
    }
}
