//! LWE concrete-security estimation (core-SVP methodology).
//!
//! The paper selects parameters "to achieve 128-bit security" citing
//! the lattice estimator of Albrecht–Player–Scott \[6\]. This module
//! implements the standard *primal uSVP* estimate from that
//! methodology so the workspace can check its own parameters instead
//! of hardcoding claims:
//!
//! - the attacker embeds the LWE instance into a uSVP lattice of
//!   dimension `d = m + n + 1` (Bai–Galbraith for small secrets),
//! - runs BKZ with block size `b`, which succeeds when the projected
//!   secret vector is shorter than the Gaussian-heuristic length of
//!   the relevant projected sublattice (the Alkim–Ducas–Pöppelmann–
//!   Schwabe "2016 estimate"):
//!   `σ_eff·√b ≤ δ(b)^(2b−d−1) · q^(m/d)`,
//! - and costs `2^(0.292·b)` operations (classical core-SVP).
//!
//! The estimator minimizes over the attacker's sample count `m` and
//! block size `b`. It covers the primal attack only; the sample-count
//! thresholds in the paper's Tables 11–12 additionally reflect dual
//! and combinatorial attacks from \[6\], so our estimates are a *lower
//! bound on parameter health*, not a full re-run of the estimator
//! (noted in `DESIGN.md`).

use crate::params::LweParams;

/// Classical core-SVP cost exponent per BKZ block (Becker–Ducas–
/// Gama–Laarhoven sieving).
pub const CORE_SVP_CLASSICAL: f64 = 0.292;

/// The root-Hermite factor `δ` achieved by BKZ with block size `b`
/// (the standard asymptotic formula, accurate for `b ≥ 50`).
pub fn bkz_delta(b: f64) -> f64 {
    ((std::f64::consts::PI * b).powf(1.0 / b) * b / (2.0 * std::f64::consts::E
        * std::f64::consts::PI))
        .powf(1.0 / (2.0 * (b - 1.0)))
}

/// Whether BKZ-`b` with `m` samples solves the instance under the 2016
/// uSVP success condition.
fn primal_succeeds(n: f64, log2_q: f64, sigma_eff: f64, m: f64, b: f64) -> bool {
    let d = m + n + 1.0;
    if b > d {
        return true; // Full enumeration of a tiny lattice.
    }
    let delta = bkz_delta(b);
    // log2 of both sides of: σ_eff·√b ≤ δ^(2b−d−1)·q^(m/d).
    let lhs = (sigma_eff * b.sqrt()).log2();
    let rhs = (2.0 * b - d - 1.0) * delta.log2() + (m / d) * log2_q;
    lhs <= rhs
}

/// Estimated security (bits) of an LWE instance with ternary secrets
/// against the primal uSVP attack, minimized over the attacker's
/// choice of `m ≤ max_samples` and block size.
///
/// # Panics
///
/// Panics if `sigma <= 0` or `n == 0`.
pub fn primal_security_bits(n: usize, log2_q: u32, sigma: f64, max_samples: usize) -> f64 {
    assert!(sigma > 0.0, "sigma must be positive");
    assert!(n > 0, "dimension must be positive");
    // Bai-Galbraith rescaling for ternary secrets (std dev ~ sqrt(2/3))
    // relative to the error distribution: the attacker balances the
    // secret and error parts; effective sigma is the geometric mean
    // bounded below by the secret's own deviation.
    let sigma_s = (2.0f64 / 3.0).sqrt();
    let sigma_eff = sigma.max(sigma_s);

    let n_f = n as f64;
    let log2_q = log2_q as f64;
    let mut best = f64::INFINITY;
    // The attacker's optimal m is near sqrt(n·log q / log δ); scan a
    // generous grid.
    let m_cap = (max_samples as f64).min(16.0 * n_f);
    let mut b = 50.0;
    while b <= 1200.0 {
        // Find whether *any* m ≤ cap succeeds at this block size; the
        // success condition is unimodal in m, so scan coarsely.
        let mut m = n_f * 0.25;
        let mut works = false;
        while m <= m_cap {
            if primal_succeeds(n_f, log2_q, sigma_eff, m, b) {
                works = true;
                break;
            }
            m *= 1.05;
        }
        if works {
            best = best.min(CORE_SVP_CLASSICAL * b);
            break; // Larger b only costs more.
        }
        b += 5.0;
    }
    if best.is_infinite() {
        // No block size up to 1200 succeeds: beyond 350 bits.
        best = CORE_SVP_CLASSICAL * 1200.0;
    }
    best
}

/// Convenience: estimated primal security of a parameter set at a
/// given upload dimension (the attacker sees one LWE sample per
/// uploaded ciphertext word).
pub fn estimate(params: &LweParams, upload_dim: usize) -> f64 {
    primal_security_bits(params.n, params.log_q, params.sigma, upload_dim)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bkz_delta_matches_known_values() {
        // Reference points from the standard GSA formula (as used by
        // the lattice estimator): δ(BKZ-200) ≈ 1.0063, δ(BKZ-400) ≈ 1.0040.
        assert!((bkz_delta(200.0) - 1.00628).abs() < 3e-4, "{}", bkz_delta(200.0));
        assert!((bkz_delta(400.0) - 1.00398).abs() < 3e-4, "{}", bkz_delta(400.0));
        // Monotone decreasing.
        assert!(bkz_delta(100.0) > bkz_delta(300.0));
    }

    #[test]
    fn paper_ranking_parameters_exceed_128_bits() {
        // Appendix C: n = 2048, q = 2^64, σ = 81920 — "128-bit security
        // for encrypted vectors of dimension ≤ 2^27".
        let params = LweParams::ranking_text();
        let bits = estimate(&params, 1 << 27);
        assert!(bits >= 128.0, "ranking params only {bits:.0} bits");
    }

    #[test]
    fn paper_url_parameters_exceed_128_bits() {
        // Appendix C: n = 1408, q = 2^32, σ = 6.4 — 128-bit up to 2^20.
        let params = LweParams::url(991);
        let bits = estimate(&params, 1 << 20);
        assert!(bits >= 128.0, "URL params only {bits:.0} bits");
    }

    #[test]
    fn table_11_tail_parameters_hold_up() {
        // n = 1608, q = 2^32, σ = 0.5 (Table 11, m ≥ 2^21).
        let bits = primal_security_bits(1608, 32, 0.5, 1 << 24);
        assert!(bits >= 128.0, "tail params only {bits:.0} bits");
    }

    #[test]
    fn test_parameters_are_reported_insecure() {
        // The n = 64 unit-test parameters must NOT pass as secure.
        let params = LweParams::insecure_test(32, 991, 6.4);
        let bits = estimate(&params, 1 << 12);
        assert!(bits < 40.0, "test params claimed {bits:.0} bits");
    }

    #[test]
    fn security_grows_with_dimension_and_shrinks_with_modulus() {
        let small_n = primal_security_bits(512, 32, 6.4, 1 << 16);
        let large_n = primal_security_bits(1024, 32, 6.4, 1 << 16);
        assert!(large_n > small_n);
        let small_q = primal_security_bits(1024, 32, 6.4, 1 << 16);
        let large_q = primal_security_bits(1024, 64, 6.4, 1 << 16);
        assert!(small_q > large_q, "a larger modulus (same noise) must be easier");
    }
}
