//! SimplePIR-style linearly homomorphic encryption with preprocessing.
//!
//! This crate implements the inner encryption layer of Tiptoe (paper
//! §6.1, Appendix A): secret-key Regev encryption over a power-of-two
//! modulus `q ∈ {2^32, 2^64}`, where the server preprocesses the public
//! linear function `M` into a *hint* `H = M·A` so that the per-query
//! homomorphic matrix-vector product costs only `2·ℓ·m` word
//! operations — essentially the cost of the plaintext product.
//!
//! The scheme's algorithms follow Appendix A.1 of the paper:
//!
//! - [`LweSecretKey`]: ternary secret `s ∈ {-1,0,1}^n`.
//! - [`scheme::encrypt`]: `c = A·s + e + Δ·v` with `Δ = ⌊q/p⌋`.
//! - [`scheme::preproc`]: `hint = M·A` (client-independent).
//! - [`scheme::apply`]: `c' = M·c` (the 2·ℓ·m hot loop).
//! - [`scheme::decrypt`]: `round_p(c' - H·s)` recovers `M·v mod p`.
//!
//! Parameter selection ([`params`]) reproduces Tables 11 and 12 of the
//! paper's Appendix C, and [`security`] re-derives the 128-bit claims
//! with a core-SVP primal-attack estimator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod matrix_a;
pub mod params;
pub mod scheme;
pub mod security;

pub use matrix_a::MatrixA;
pub use params::LweParams;
pub use scheme::{LweCiphertext, LweSecretKey};
