//! The Regev encryption scheme with preprocessing (paper Appendix A.1).
//!
//! Algorithms, with `A` the seed-expanded public matrix, `s` a ternary
//! secret, `e` Gaussian noise, and `Δ = ⌊q/p⌋`:
//!
//! ```text
//! Enc(s, v)        c  = A·s + e + Δ·v           ∈ Z_q^m
//! Preproc(M)       H  = M·A                      ∈ Z_q^{ℓ×n}
//! Apply(M, c)      c' = M·c                      ∈ Z_q^ℓ
//! Dec(s, H, c')    v' = round_p(c' - H·s) mod p  ∈ Z_p^ℓ
//! ```
//!
//! Correctness: `c' - H·s = M·e + Δ·(M·v)`, and the rounding removes
//! `M·e` as long as it stays below `Δ/2` (enforced by the parameter
//! selection in [`crate::params`]).

use rand::Rng;
use tiptoe_math::matrix::{matvec, matvec_wide, Mat};
use tiptoe_math::nibble::NibbleMat;
use tiptoe_math::sample::{gaussian_i64, ternary_vec};
use tiptoe_math::wire::{WireError, WireReader, WireWriter};
use tiptoe_math::zq::Word;

use crate::matrix_a::{MatrixA, MatrixARange};
use crate::params::LweParams;

/// Opens a tracing span at kernel granularity (one span per `Apply`
/// or `Preproc` call, never per row) carrying the database shape.
/// Worker threads inside `par_spans_mut` open no spans of their own,
/// so the span tree is identical at any thread count.
fn kernel_span(name: &'static str, rows: usize, cols: usize) -> tiptoe_obs::Span {
    let mut s = tiptoe_obs::span(name);
    s.attr_u64("rows", rows as u64);
    s.attr_u64("cols", cols as u64);
    // Which SIMD tier served this kernel (0 = scalar, 1 = avx2,
    // 2 = avx512); constant per process but recorded per span so
    // traces from mixed fleets stay attributable.
    s.attr_u64("simd_tier", tiptoe_math::simd::tier().code());
    s
}

/// A ternary LWE secret key embedded into `Z_q`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LweSecretKey<W: Word> {
    s: Vec<W>,
}

impl<W: Word> LweSecretKey<W> {
    /// Samples a fresh ternary secret of dimension `params.n`.
    pub fn generate<R: Rng + ?Sized>(params: &LweParams, rng: &mut R) -> Self {
        let s = ternary_vec(rng, params.n).into_iter().map(W::from_i64).collect();
        Self { s }
    }

    /// Builds a key from explicit ternary entries (used by the outer
    /// scheme, which must encrypt this same vector).
    ///
    /// # Panics
    ///
    /// Panics if any entry is outside `{-1, 0, 1}` or the length
    /// differs from `params.n`.
    pub fn from_ternary(params: &LweParams, entries: &[i64]) -> Self {
        assert_eq!(entries.len(), params.n, "secret dimension mismatch");
        assert!(
            entries.iter().all(|&x| (-1..=1).contains(&x)),
            "secret entries must be ternary"
        );
        Self { s: entries.iter().map(|&x| W::from_i64(x)).collect() }
    }

    /// The secret as `Z_q` words.
    pub fn words(&self) -> &[W] {
        &self.s
    }

    /// The secret as ternary signed values.
    pub fn ternary(&self) -> Vec<i64> {
        self.s.iter().map(|w| w.to_signed()).collect()
    }

    /// Secret dimension `n`.
    pub fn dim(&self) -> usize {
        self.s.len()
    }
}

/// A fresh (pre-`Apply`) LWE ciphertext: `m` words of `Z_q`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LweCiphertext<W: Word> {
    /// The ciphertext vector `c = A·s + e + Δ·v`.
    pub c: Vec<W>,
}

impl<W: Word> LweCiphertext<W> {
    /// Wire size in bytes (1-byte width tag, 4-byte count, words).
    pub fn byte_len(&self) -> u64 {
        5 + (self.c.len() * (W::BITS as usize / 8)) as u64
    }

    /// Serializes to the wire format (`encode().len() == byte_len()`).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(self.byte_len() as usize);
        w.put_u8((W::BITS / 8) as u8);
        w.put_u32(self.c.len() as u32);
        for &x in &self.c {
            x.put_wire(&mut w);
        }
        w.finish()
    }

    /// Parses from the wire format.
    ///
    /// # Errors
    ///
    /// Fails on truncation, a width mismatch, or trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let width = r.get_u8()?;
        if width as u32 != W::BITS / 8 {
            return Err(WireError::Invalid("ciphertext word width"));
        }
        let n = r.get_u32()? as usize;
        if n > (1 << 27) {
            return Err(WireError::Invalid("ciphertext too long"));
        }
        let c = (0..n).map(|_| W::get_wire(&mut r)).collect::<Result<Vec<_>, _>>()?;
        r.finish()?;
        Ok(Self { c })
    }
}

/// Encrypts a plaintext vector `v ∈ Z_p^m` under secret `sk`.
///
/// # Panics
///
/// Panics if `v.len() != a.rows()`, `sk.dim() != a.cols()`, or any
/// plaintext entry is not reduced modulo `p`.
pub fn encrypt<W: Word, R: Rng + ?Sized>(
    params: &LweParams,
    sk: &LweSecretKey<W>,
    a: &MatrixA,
    v: &[u64],
    rng: &mut R,
) -> LweCiphertext<W> {
    assert_eq!(v.len(), a.rows(), "plaintext length must equal upload dimension");
    assert_eq!(sk.dim(), a.cols(), "secret dimension mismatch");
    assert!(v.iter().all(|&x| x < params.p), "plaintext entries must be reduced mod p");
    let delta = W::from_u64(params.delta());
    let mut row = vec![W::ZERO; a.cols()];
    let mut c = Vec::with_capacity(v.len());
    for (k, &vk) in v.iter().enumerate() {
        a.expand_row(k, &mut row);
        let mut acc = W::ZERO;
        for (&a_kj, &s_j) in row.iter().zip(sk.words().iter()) {
            acc = acc.wadd(a_kj.wmul(s_j));
        }
        let e = W::from_i64(gaussian_i64(rng, params.sigma));
        c.push(acc.wadd(e).wadd(delta.wmul(W::from_u64(vk))));
    }
    LweCiphertext { c }
}

/// Preprocesses the linear function `M` into the hint `H = M·A`
/// (paper: "the server executes λ·√N 64-bit operations for the
/// one-time preprocessing of the matrix M").
///
/// Streams rows of `A` once (k-outer loop), so `A` never materializes.
///
/// # Panics
///
/// Panics if `db.cols() != a.rows()`.
pub fn preproc<W: Word>(db: &Mat<u32>, a: &MatrixARange) -> Mat<W> {
    assert_eq!(db.cols(), a.rows(), "matrix shapes incompatible");
    let _span = kernel_span("lwe.preproc", db.rows(), db.cols());
    let ell = db.rows();
    let n = a.cols();
    let mut hint: Mat<W> = Mat::zeros(ell, n);
    let mut a_row = vec![W::ZERO; n];
    for k in 0..db.cols() {
        a.expand_row(k, &mut a_row);
        for i in 0..ell {
            let m_ik = db.get(i, k);
            if m_ik == 0 {
                continue;
            }
            W::axpy(hint.row_mut(i), W::from_u64(m_ik as u64), &a_row);
        }
    }
    hint
}

/// Pinned-scalar [`preproc`]: identical math always on the portable
/// kernel, never the SIMD tiers. This is the benchmark baseline and
/// the oracle the dispatch property tests compare against; serving
/// and build paths use [`preproc`]/[`preproc_par`].
pub fn preproc_scalar<W: Word>(db: &Mat<u32>, a: &MatrixARange) -> Mat<W> {
    assert_eq!(db.cols(), a.rows(), "matrix shapes incompatible");
    let ell = db.rows();
    let n = a.cols();
    let mut hint: Mat<W> = Mat::zeros(ell, n);
    let mut a_row = vec![W::ZERO; n];
    for k in 0..db.cols() {
        a.expand_row(k, &mut a_row);
        for i in 0..ell {
            let m_ik = db.get(i, k);
            if m_ik == 0 {
                continue;
            }
            tiptoe_math::simd::axpy_scalar(hint.row_mut(i), W::from_u64(m_ik as u64), &a_row);
        }
    }
    hint
}

/// The homomorphic matrix-vector product `c' = M·c`
/// ("2·N 64-bit additions and multiplications").
///
/// # Panics
///
/// Panics if `ct.c.len() != db.cols()`.
pub fn apply<W: Word>(db: &Mat<u32>, ct: &LweCiphertext<W>) -> Vec<W> {
    let _span = kernel_span("lwe.matvec", db.rows(), db.cols());
    matvec(db, &ct.c)
}

/// Row-parallel, cache-blocked `Apply` (`num_threads == 0` = one per
/// core); bit-identical to [`apply`].
///
/// # Panics
///
/// Panics if `ct.c.len() != db.cols()`.
pub fn apply_par<W: Word>(db: &Mat<u32>, ct: &LweCiphertext<W>, num_threads: usize) -> Vec<W> {
    let _span = kernel_span("lwe.matvec", db.rows(), db.cols());
    tiptoe_math::matrix::matvec_par(db, &ct.c, num_threads)
}

/// Batched `Apply`: answers `B` ciphertexts in one pass over the
/// database (the matrix-matrix amortization — `M` is read from DRAM
/// once instead of `B` times). Each answer is bit-identical to
/// `apply(db, &cts[b])`.
///
/// # Panics
///
/// Panics if any ciphertext's dimension differs from `db.cols()`.
pub fn apply_many<W: Word>(
    db: &Mat<u32>,
    cts: &[LweCiphertext<W>],
    num_threads: usize,
) -> Vec<Vec<W>> {
    let mut span = kernel_span("lwe.matvec_batch", db.rows(), db.cols());
    span.attr_u64("batch", cts.len() as u64);
    let vs: Vec<Vec<W>> = cts.iter().map(|ct| ct.c.clone()).collect();
    tiptoe_math::matrix::matvec_batch(db, &vs, num_threads)
}

/// Row-parallel hint preprocessing: splits the hint's ℓ rows into one
/// contiguous block per thread; **each thread re-expands the seeded
/// rows of `A` independently** (row expansion is seed-derived per row,
/// so chunks never share state and `A` still never materializes). Each
/// hint row accumulates over `k` in the same order as [`preproc`], so
/// the result is bit-identical.
///
/// The extra work is one `A`-expansion per thread (`T·m·n` PRG words
/// against `ℓ·m·n` MACs) — negligible for `ℓ ≫ T`.
///
/// # Panics
///
/// Panics if `db.cols() != a.rows()`.
pub fn preproc_par<W: Word>(db: &Mat<u32>, a: &MatrixARange, num_threads: usize) -> Mat<W> {
    assert_eq!(db.cols(), a.rows(), "matrix shapes incompatible");
    let _span = kernel_span("lwe.preproc", db.rows(), db.cols());
    let ell = db.rows();
    let n = a.cols();
    let mut hint: Mat<W> = Mat::zeros(ell, n);
    if n == 0 {
        return hint;
    }
    tiptoe_math::par::par_spans_mut(hint.data_mut(), n, num_threads, |start, span| {
        let row0 = start / n;
        let rows = span.len() / n;
        let mut a_row = vec![W::ZERO; n];
        for k in 0..db.cols() {
            a.expand_row(k, &mut a_row);
            for local in 0..rows {
                let m_ik = db.get(row0 + local, k);
                if m_ik == 0 {
                    continue;
                }
                let h_row = &mut span[local * n..(local + 1) * n];
                W::axpy(h_row, W::from_u64(m_ik as u64), &a_row);
            }
        }
    });
    hint
}

/// Hint preprocessing over a packed signed-4-bit database (see
/// [`tiptoe_math::nibble::NibbleMat`]): identical to [`preproc`] but
/// with entries sign-extended into `Z_q`. Requires a power-of-two
/// plaintext modulus so the signed embedding is congruent mod `p`.
///
/// # Panics
///
/// Panics if `db.cols() != a.rows()`.
pub fn preproc_packed<W: Word>(db: &NibbleMat, a: &MatrixARange) -> Mat<W> {
    assert_eq!(db.cols(), a.rows(), "matrix shapes incompatible");
    let _span = kernel_span("lwe.preproc", db.rows(), db.cols());
    let ell = db.rows();
    let n = a.cols();
    let mut hint: Mat<W> = Mat::zeros(ell, n);
    let mut a_row = vec![W::ZERO; n];
    for k in 0..db.cols() {
        a.expand_row(k, &mut a_row);
        for i in 0..ell {
            let m_ik = db.get(i, k);
            if m_ik == 0 {
                continue;
            }
            // Sign-extended full-width multiplier: the axpy kernels
            // handle arbitrary 64-bit `w` (3-multiply decomposition on
            // AVX2, native mullo on AVX-512DQ).
            W::axpy(hint.row_mut(i), W::from_i64(m_ik as i64), &a_row);
        }
    }
    hint
}

/// Row-parallel packed hint preprocessing; bit-identical to
/// [`preproc_packed`] (same per-thread `A` re-expansion scheme as
/// [`preproc_par`]).
///
/// # Panics
///
/// Panics if `db.cols() != a.rows()`.
pub fn preproc_packed_par<W: Word>(
    db: &NibbleMat,
    a: &MatrixARange,
    num_threads: usize,
) -> Mat<W> {
    assert_eq!(db.cols(), a.rows(), "matrix shapes incompatible");
    let _span = kernel_span("lwe.preproc", db.rows(), db.cols());
    let ell = db.rows();
    let n = a.cols();
    let mut hint: Mat<W> = Mat::zeros(ell, n);
    if n == 0 {
        return hint;
    }
    tiptoe_math::par::par_spans_mut(hint.data_mut(), n, num_threads, |start, span| {
        let row0 = start / n;
        let rows = span.len() / n;
        let mut a_row = vec![W::ZERO; n];
        for k in 0..db.cols() {
            a.expand_row(k, &mut a_row);
            for local in 0..rows {
                let m_ik = db.get(row0 + local, k);
                if m_ik == 0 {
                    continue;
                }
                let h_row = &mut span[local * n..(local + 1) * n];
                W::axpy(h_row, W::from_i64(m_ik as i64), &a_row);
            }
        }
    });
    hint
}

/// The homomorphic product over a packed database.
///
/// # Panics
///
/// Panics if `ct.c.len() != db.cols()`.
pub fn apply_packed<W: Word>(db: &NibbleMat, ct: &LweCiphertext<W>) -> Vec<W> {
    let _span = kernel_span("lwe.matvec", db.rows(), db.cols());
    db.matvec(&ct.c)
}

/// Batched homomorphic product over a packed database: one scan
/// answers all ciphertexts; bit-identical per answer to
/// [`apply_packed`].
///
/// # Panics
///
/// Panics if any ciphertext's dimension differs from `db.cols()`.
pub fn apply_packed_many<W: Word>(
    db: &NibbleMat,
    cts: &[LweCiphertext<W>],
    num_threads: usize,
) -> Vec<Vec<W>> {
    let mut span = kernel_span("lwe.matvec_batch", db.rows(), db.cols());
    span.attr_u64("batch", cts.len() as u64);
    let vs: Vec<Vec<W>> = cts.iter().map(|ct| ct.c.clone()).collect();
    db.matvec_batch(&vs, num_threads)
}

/// Computes `H·s`, the linear part of decryption. This is exactly the
/// computation the underhood layer outsources to the server under a
/// second encryption scheme (paper §6.2).
///
/// # Panics
///
/// Panics if `sk.dim() != hint.cols()`.
pub fn hint_times_secret<W: Word>(hint: &Mat<W>, sk: &LweSecretKey<W>) -> Vec<W> {
    matvec_wide(hint, sk.words())
}

/// Final (non-linear) decryption step: rounds `c' - H·s` to recover
/// `M·v mod p`.
///
/// # Panics
///
/// Panics if the two slices differ in length.
pub fn decrypt_from_parts<W: Word>(params: &LweParams, hs: &[W], applied: &[W]) -> Vec<u64> {
    assert_eq!(hs.len(), applied.len(), "length mismatch");
    let q = params.q_u128();
    let p = params.p as u128;
    applied
        .iter()
        .zip(hs.iter())
        .map(|(&cp, &h)| {
            let y = cp.wsub(h).to_u64() as u128;
            // v = round(y * p / q) mod p.
            (((y * p + q / 2) >> params.log_q) % p) as u64
        })
        .collect()
}

/// Full decryption `Dec(s, H, c') = round_p(c' - H·s) mod p`.
///
/// # Panics
///
/// Panics on dimension mismatches.
pub fn decrypt<W: Word>(
    params: &LweParams,
    sk: &LweSecretKey<W>,
    hint: &Mat<W>,
    applied: &[W],
) -> Vec<u64> {
    let hs = hint_times_secret(hint, sk);
    decrypt_from_parts(params, &hs, applied)
}

/// Measured decryption noise `|c' - H·s - Δ·(M·v)|` given the true
/// plaintext result; used by tests and the noise-budget analysis.
///
/// # Panics
///
/// Panics on dimension mismatches.
pub fn decryption_noise<W: Word>(
    params: &LweParams,
    sk: &LweSecretKey<W>,
    hint: &Mat<W>,
    applied: &[W],
    truth_mod_p: &[u64],
) -> Vec<i64> {
    assert_eq!(applied.len(), truth_mod_p.len(), "length mismatch");
    let hs = hint_times_secret(hint, sk);
    let delta = W::from_u64(params.delta());
    applied
        .iter()
        .zip(hs.iter())
        .zip(truth_mod_p.iter())
        .map(|((&cp, &h), &t)| {
            let y = cp.wsub(h);
            let noise = y.wsub(delta.wmul(W::from_u64(t % params.p)));
            noise.to_signed()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiptoe_math::rng::seeded_rng;

    fn random_db(rng: &mut impl Rng, rows: usize, cols: usize, p: u64) -> Mat<u32> {
        Mat::from_fn(rows, cols, |_, _| rng.gen_range(0..p) as u32)
    }

    /// Reference plaintext computation `M·v mod p`.
    fn matvec_mod_p(db: &Mat<u32>, v: &[u64], p: u64) -> Vec<u64> {
        (0..db.rows())
            .map(|i| {
                let mut acc: u128 = 0;
                for (j, &m) in db.row(i).iter().enumerate() {
                    acc = (acc + m as u128 * v[j] as u128) % p as u128;
                }
                acc as u64
            })
            .collect()
    }

    fn roundtrip<W: Word>(params: &LweParams, rows: usize, cols: usize, seed: u64) {
        let mut rng = seeded_rng(seed);
        let db = random_db(&mut rng, rows, cols, params.p.min(16));
        let a = MatrixA::new(99, cols, params.n);
        let sk = LweSecretKey::<W>::generate(params, &mut rng);
        // A PIR-style selection vector: avoids mod-p wraparound so the
        // test is exact for non-power-of-two p too.
        let mut v = vec![0u64; cols];
        v[cols / 2] = 1;
        let ct = encrypt(params, &sk, &a, &v, &mut rng);
        let hint = preproc::<W>(&db, &a.row_range(0, cols));
        let applied = apply(&db, &ct);
        let got = decrypt(params, &sk, &hint, &applied);
        let want = matvec_mod_p(&db, &v, params.p);
        assert_eq!(got, want);
    }

    #[test]
    fn roundtrip_q32() {
        let params = LweParams::insecure_test(32, 991, 6.4);
        roundtrip::<u32>(&params, 8, 32, 1);
    }

    #[test]
    fn roundtrip_q64() {
        let params = LweParams::insecure_test(64, 1 << 17, 81920.0);
        roundtrip::<u64>(&params, 8, 32, 2);
    }

    #[test]
    fn roundtrip_power_of_two_p_with_wraparound() {
        // With p | q, results that wrap mod p are still decrypted
        // exactly (this is what the ranking step relies on).
        let params = LweParams::insecure_test(64, 1 << 17, 81920.0);
        let mut rng = seeded_rng(3);
        let cols = 64;
        let db = random_db(&mut rng, 4, cols, params.p);
        let a = MatrixA::new(5, cols, params.n);
        let sk = LweSecretKey::<u64>::generate(&params, &mut rng);
        let v: Vec<u64> = (0..cols).map(|_| rng.gen_range(0..params.p)).collect();
        let ct = encrypt(&params, &sk, &a, &v, &mut rng);
        let hint = preproc::<u64>(&db, &a.row_range(0, cols));
        let applied = apply(&db, &ct);
        let got = decrypt(&params, &sk, &hint, &applied);
        let want = matvec_mod_p(&db, &v, params.p);
        assert_eq!(got, want);
    }

    #[test]
    fn paper_parameters_roundtrip() {
        // Full-size secrets (n = 2048) on a small database.
        let params = LweParams::ranking_text();
        let mut rng = seeded_rng(4);
        let cols = 96;
        let db = random_db(&mut rng, 6, cols, params.p);
        let a = MatrixA::new(11, cols, params.n);
        let sk = LweSecretKey::<u64>::generate(&params, &mut rng);
        let v: Vec<u64> = (0..cols).map(|_| rng.gen_range(0..16)).collect();
        let ct = encrypt(&params, &sk, &a, &v, &mut rng);
        let hint = preproc::<u64>(&db, &a.row_range(0, cols));
        let applied = apply(&db, &ct);
        let got = decrypt(&params, &sk, &hint, &applied);
        assert_eq!(got, matvec_mod_p(&db, &v, params.p));
    }

    #[test]
    fn wrong_key_garbles_decryption() {
        let params = LweParams::insecure_test(64, 1 << 17, 81920.0);
        let mut rng = seeded_rng(5);
        let cols = 32;
        let db = random_db(&mut rng, 8, cols, 16);
        let a = MatrixA::new(17, cols, params.n);
        let sk = LweSecretKey::<u64>::generate(&params, &mut rng);
        let other = LweSecretKey::<u64>::generate(&params, &mut rng);
        let mut v = vec![0u64; cols];
        v[3] = 1;
        let ct = encrypt(&params, &sk, &a, &v, &mut rng);
        let hint = preproc::<u64>(&db, &a.row_range(0, cols));
        let applied = apply(&db, &ct);
        let right = decrypt(&params, &sk, &hint, &applied);
        let wrong = decrypt(&params, &other, &hint, &applied);
        assert_ne!(right, wrong);
    }

    #[test]
    fn measured_noise_is_within_parameter_bound() {
        let params = LweParams::insecure_test(64, 1 << 17, 81920.0);
        let mut rng = seeded_rng(6);
        let cols = 256;
        let db = random_db(&mut rng, 8, cols, params.p);
        let a = MatrixA::new(23, cols, params.n);
        let sk = LweSecretKey::<u64>::generate(&params, &mut rng);
        let v: Vec<u64> = (0..cols).map(|_| rng.gen_range(0..params.p)).collect();
        let ct = encrypt(&params, &sk, &a, &v, &mut rng);
        let hint = preproc::<u64>(&db, &a.row_range(0, cols));
        let applied = apply(&db, &ct);
        let truth = matvec_mod_p(&db, &v, params.p);
        let noise = decryption_noise(&params, &sk, &hint, &applied, &truth);
        let bound = params.noise_bound(cols);
        for e in noise {
            assert!((e.unsigned_abs() as f64) < bound, "noise {e} exceeds bound {bound}");
        }
    }

    #[test]
    fn ternary_key_roundtrips_through_words() {
        let params = LweParams::insecure_test(32, 64, 6.4);
        let mut rng = seeded_rng(7);
        let sk = LweSecretKey::<u32>::generate(&params, &mut rng);
        let t = sk.ternary();
        let rebuilt = LweSecretKey::<u32>::from_ternary(&params, &t);
        assert_eq!(sk, rebuilt);
    }

    #[test]
    fn sharded_preproc_sums_to_full_hint() {
        // Vertical sharding (paper §4.3): hint of the full matrix ==
        // sum of the shards' hints.
        let params = LweParams::insecure_test(64, 1 << 10, 10.0);
        let mut rng = seeded_rng(8);
        let cols = 40;
        let db = random_db(&mut rng, 6, cols, 16);
        let a = MatrixA::new(31, cols, params.n);
        let full = preproc::<u64>(&db, &a.row_range(0, cols));
        let left = preproc::<u64>(&db.column_slice(0, 24), &a.row_range(0, 24));
        let right = preproc::<u64>(&db.column_slice(24, cols), &a.row_range(24, 16));
        for i in 0..6 {
            for j in 0..params.n {
                assert_eq!(full.get(i, j), left.get(i, j).wrapping_add(right.get(i, j)));
            }
        }
    }

    #[test]
    fn packed_database_decrypts_identically() {
        // Power-of-two p: signed-embedded packed entries and mod-p
        // residue entries give the same decrypted results.
        let params = LweParams::insecure_test(64, 1 << 17, 81920.0);
        let mut rng = seeded_rng(31);
        let cols = 40;
        let signed: Vec<i8> = (0..8 * cols).map(|_| rng.gen_range(-8i8..=7)).collect();
        let packed = NibbleMat::from_signed(8, cols, &signed);
        let plain = Mat::from_fn(8, cols, |r, c| {
            tiptoe_math::zq::reduce_signed(signed[r * cols + c] as i64, params.p) as u32
        });
        let a = MatrixA::new(71, cols, params.n);
        let sk = LweSecretKey::<u64>::generate(&params, &mut rng);
        let v: Vec<u64> = (0..cols).map(|_| rng.gen_range(0..16)).collect();
        let ct = encrypt(&params, &sk, &a, &v, &mut rng);

        let plain_hint = preproc::<u64>(&plain, &a.row_range(0, cols));
        let plain_out = decrypt(&params, &sk, &plain_hint, &apply(&plain, &ct));

        let packed_hint = preproc_packed::<u64>(&packed, &a.row_range(0, cols));
        let packed_out = decrypt(&params, &sk, &packed_hint, &apply_packed(&packed, &ct));
        assert_eq!(plain_out, packed_out);
    }

    #[test]
    fn parallel_preproc_is_bit_identical() {
        let params = LweParams::insecure_test(64, 1 << 10, 10.0);
        let mut rng = seeded_rng(12);
        let cols = 50;
        let db = random_db(&mut rng, 23, cols, 16);
        let a = MatrixA::new(77, cols, params.n);
        let range = a.row_range(0, cols);
        let want = preproc::<u64>(&db, &range);
        assert_eq!(preproc_scalar::<u64>(&db, &range), want, "dispatched == pinned scalar");
        for threads in [0usize, 1, 2, 3, 8] {
            assert_eq!(preproc_par::<u64>(&db, &range, threads), want, "threads={threads}");
        }
        // u32 width too.
        let want32 = preproc::<u32>(&db, &range);
        assert_eq!(preproc_scalar::<u32>(&db, &range), want32);
        assert_eq!(preproc_par::<u32>(&db, &range, 3), want32);
    }

    #[test]
    fn parallel_packed_preproc_is_bit_identical() {
        let params = LweParams::insecure_test(64, 1 << 17, 81920.0);
        let mut rng = seeded_rng(13);
        let cols = 41;
        let signed: Vec<i8> = (0..17 * cols).map(|_| rng.gen_range(-8i8..=7)).collect();
        let packed = NibbleMat::from_signed(17, cols, &signed);
        let a = MatrixA::new(78, cols, params.n);
        let range = a.row_range(0, cols);
        let want = preproc_packed::<u64>(&packed, &range);
        for threads in [1usize, 2, 5] {
            assert_eq!(
                preproc_packed_par::<u64>(&packed, &range, threads),
                want,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn batched_apply_matches_per_ciphertext_apply() {
        let params = LweParams::insecure_test(64, 1 << 17, 81920.0);
        let mut rng = seeded_rng(14);
        let cols = 48;
        let db = random_db(&mut rng, 9, cols, params.p);
        let a = MatrixA::new(79, cols, params.n);
        let sk = LweSecretKey::<u64>::generate(&params, &mut rng);
        let cts: Vec<LweCiphertext<u64>> = (0..4)
            .map(|_| {
                let v: Vec<u64> = (0..cols).map(|_| rng.gen_range(0..16)).collect();
                encrypt(&params, &sk, &a, &v, &mut rng)
            })
            .collect();
        let batched = apply_many(&db, &cts, 2);
        for (b, ct) in cts.iter().enumerate() {
            assert_eq!(batched[b], apply(&db, ct), "ciphertext {b}");
            assert_eq!(apply_par(&db, ct, 3), apply(&db, ct));
        }
    }

    #[test]
    fn ciphertext_wire_roundtrip() {
        let params = LweParams::insecure_test(64, 16, 1.0);
        let mut rng = seeded_rng(11);
        let a = MatrixA::new(2, 8, params.n);
        let sk = LweSecretKey::<u64>::generate(&params, &mut rng);
        let ct = encrypt(&params, &sk, &a, &[1u64; 8], &mut rng);
        let bytes = ct.encode();
        assert_eq!(bytes.len() as u64, ct.byte_len());
        let back = LweCiphertext::<u64>::decode(&bytes).expect("decodes");
        assert_eq!(back, ct);
        // Width confusion is rejected.
        assert!(LweCiphertext::<u32>::decode(&bytes).is_err());
        // Truncation is rejected.
        assert!(LweCiphertext::<u64>::decode(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    #[should_panic(expected = "reduced mod p")]
    fn unreduced_plaintext_rejected() {
        let params = LweParams::insecure_test(32, 16, 1.0);
        let mut rng = seeded_rng(9);
        let a = MatrixA::new(1, 4, params.n);
        let sk = LweSecretKey::<u32>::generate(&params, &mut rng);
        let _ = encrypt(&params, &sk, &a, &[99, 0, 0, 0], &mut rng);
    }
}
