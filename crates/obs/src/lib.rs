//! Unified observability for the Tiptoe workspace: a thread-safe
//! **span tree** tracer plus a **metrics registry** (counters, gauges,
//! log-scaled histograms) and exporters for Chrome `trace_event` JSON,
//! flamegraph-foldable stacks, and a flat `metrics.json` snapshot.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when off.** Tracing defaults to disabled; a disabled
//!    [`span`] call is one relaxed atomic load and returns an inert
//!    guard. The hot kernels (`tiptoe-lwe`'s matvec, the PIR scan) are
//!    instrumented at kernel granularity, never per row, so tier-1
//!    throughput does not move.
//! 2. **Deterministic shape.** Spans are only opened from sequential
//!    protocol code (the per-shard fan-out in `tiptoe-net` executes
//!    shards one at a time); worker threads inside
//!    `tiptoe_math::par::par_spans_mut` never open spans. The span
//!    tree for a query is therefore identical at any `TIPTOE_THREADS`
//!    setting — only thread ids and durations vary.
//! 3. **No dependencies.** Everything is `std`; JSON is hand-rolled
//!    like the workspace's bench emitters.
//!
//! Enablement: [`init_from_env`] reads `TIPTOE_TRACE=path`; the
//! `TiptoeConfig::trace_path` knob calls [`enable_with_path`]. Each
//! query then overwrites `path` (Chrome trace), `path` with a
//! `.metrics.json` extension (metrics snapshot), and a `.folded`
//! sibling (flamegraph stacks).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod metrics;
pub mod recorder;
pub mod slo;

pub use metrics::{
    metrics, Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry,
};

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Global tracing switch. Metrics are always live (they are a handful
/// of atomic ops per query); only span recording is gated.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Span-tree sampling rate: trace 1-in-N queries (`1` = every query).
/// [`begin_query`] rolls the sample; between queries the outcome is
/// latched in [`SAMPLED`] so [`enabled`] stays one atomic load.
static SAMPLE_EVERY: AtomicU64 = AtomicU64::new(1);

/// Queries seen by [`begin_query`] since the sampling rate was set.
static QUERY_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Whether the current query was sampled (true outside any query so
/// ad-hoc spans still record when tracing is on).
static SAMPLED: AtomicBool = AtomicBool::new(true);

/// Monotonic query-id mint ([`query_scope`]); 0 means "no query".
static NEXT_QUERY: AtomicU64 = AtomicU64::new(1);

/// Queries currently inside a [`query_scope`] across all threads.
/// Guards the per-query span-buffer clear: with concurrent clients,
/// clearing on every boundary would erase in-flight neighbours.
static ACTIVE_QUERIES: AtomicU64 = AtomicU64::new(0);

/// One recorded span: a node of the per-query span tree.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Unique id (monotonic within the process).
    pub id: u64,
    /// Parent span id, `None` for roots.
    pub parent: Option<u64>,
    /// Static span name (e.g. `"client.embed"`).
    pub name: &'static str,
    /// Optional dynamic label (e.g. a shard index).
    pub label: Option<String>,
    /// Start offset from the tracer epoch, microseconds.
    pub start_us: u64,
    /// Measured wall-clock duration, microseconds.
    pub dur_us: u64,
    /// Optional virtual-time duration (the fault dispatcher's
    /// simulated clock), microseconds.
    pub virtual_us: Option<u64>,
    /// Recording thread (small dense id, not the OS tid).
    pub tid: u64,
    /// Numeric attributes (`rows`, `cols`, `bytes`, ...).
    pub attrs: Vec<(&'static str, u64)>,
    /// Ids of spans this span *follows from*: causal, non-parental
    /// links. A coalesced flush span follows from every batched
    /// member's submission span, so each member's query tree reaches
    /// the shared flush even though only one tree parents it.
    pub follows: Vec<u64>,
}

impl SpanRecord {
    /// `name` or `name[label]` — the display name used by exporters.
    pub fn display_name(&self) -> String {
        match &self.label {
            Some(l) => format!("{}[{}]", self.name, l),
            None => self.name.to_string(),
        }
    }
}

struct TraceState {
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
    next_span: AtomicU64,
    next_tid: AtomicU64,
    trace_path: Mutex<Option<String>>,
}

fn state() -> &'static TraceState {
    static S: OnceLock<TraceState> = OnceLock::new();
    S.get_or_init(|| TraceState {
        epoch: Instant::now(),
        spans: Mutex::new(Vec::new()),
        next_span: AtomicU64::new(1),
        next_tid: AtomicU64::new(1),
        trace_path: Mutex::new(None),
    })
}

thread_local! {
    /// Stack of open span ids on this thread (for implicit parentage).
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// Small dense per-thread id, assigned on first span.
    static TID: RefCell<Option<u64>> = const { RefCell::new(None) };
    /// The query id owning this thread (0 = outside any query scope).
    static CURRENT_QUERY: Cell<u64> = const { Cell::new(0) };
}

fn thread_tid() -> u64 {
    TID.with(|t| {
        let mut t = t.borrow_mut();
        *t.get_or_insert_with(|| state().next_tid.fetch_add(1, Ordering::Relaxed))
    })
}

/// Whether span recording is on *for the current query* (the master
/// switch gated by the per-query sampling decision).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed) && SAMPLED.load(Ordering::Relaxed)
}

/// Sets the span-sampling rate: trace 1-in-`every` queries. `every`
/// below 1 is clamped to 1 (every query). Resets the query counter so
/// the next [`begin_query`] is sampled — deterministic for tests and
/// benchmarks.
pub fn set_span_sample(every: u64) {
    SAMPLE_EVERY.store(every.max(1), Ordering::Relaxed);
    QUERY_COUNTER.store(0, Ordering::Relaxed);
    SAMPLED.store(true, Ordering::Relaxed);
}

/// The current span-sampling rate (1 = every query).
pub fn span_sample() -> u64 {
    SAMPLE_EVERY.load(Ordering::Relaxed).max(1)
}

/// Turns span recording on (without configuring an export path).
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns span recording off again (tests use this to restore the
/// default).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Sets (or clears) the per-query trace export path.
pub fn set_trace_path(path: Option<String>) {
    *state().trace_path.lock().expect("trace path lock") = path;
}

/// The configured trace export path, if any.
pub fn trace_path() -> Option<String> {
    state().trace_path.lock().expect("trace path lock").clone()
}

/// Enables tracing with an export path (the `Config` knob entry
/// point).
pub fn enable_with_path(path: impl Into<String>) {
    set_trace_path(Some(path.into()));
    enable();
}

/// Reads `TIPTOE_TRACE` (a non-empty value enables tracing and sets
/// the export path) and `TIPTOE_TRACE_SAMPLE` (a positive integer
/// sets the 1-in-N span-sampling rate). Idempotent.
pub fn init_from_env() {
    if let Ok(p) = std::env::var("TIPTOE_TRACE") {
        if !p.is_empty() {
            enable_with_path(p);
        }
    }
    if let Ok(s) = std::env::var("TIPTOE_TRACE_SAMPLE") {
        if let Ok(every) = s.trim().parse::<u64>() {
            if every >= 1 {
                set_span_sample(every);
            }
        }
    }
}

/// Drops every recorded span (the per-query trace boundary).
pub fn clear_spans() {
    state().spans.lock().expect("span lock").clear();
}

/// Marks the start of a query: rolls the 1-in-N sampling decision for
/// this query and, when it is sampled (and tracing is enabled), clears
/// the span buffer so the exported trace holds exactly one query.
/// Unsampled queries record no spans at all — [`enabled`] reports
/// false until the next sampled query begins.
pub fn begin_query() {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    roll_sample(true);
}

/// Rolls the 1-in-N sampling decision for one query. The span buffer
/// is cleared only when the caller is the sole active query —
/// concurrent clients share the buffer, and clearing it mid-cohort
/// would erase their in-flight spans.
fn roll_sample(sole_query: bool) {
    let every = SAMPLE_EVERY.load(Ordering::Relaxed).max(1);
    let i = QUERY_COUNTER.fetch_add(1, Ordering::Relaxed);
    let sampled = i.is_multiple_of(every);
    SAMPLED.store(sampled, Ordering::Relaxed);
    if sampled && sole_query {
        clear_spans();
    }
}

/// The query id owning the calling thread (0 outside any
/// [`query_scope`]). Query ids are minted even when tracing is
/// disabled or the query is sampled out — the flight recorder
/// ([`recorder`]) keys its always-on timelines by them.
pub fn current_query() -> u64 {
    CURRENT_QUERY.with(Cell::get)
}

/// RAII guard for one query boundary; see [`query_scope`].
pub struct QueryScope {
    fresh: bool,
}

impl QueryScope {
    /// The query id in effect inside this scope.
    pub fn id(&self) -> u64 {
        current_query()
    }
}

impl Drop for QueryScope {
    fn drop(&mut self) {
        if self.fresh {
            CURRENT_QUERY.with(|q| q.set(0));
            ACTIVE_QUERIES.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// Enters a query boundary on this thread: mints a process-unique
/// query id (the flight-recorder key and [`TraceCtx::trace_id`]) and,
/// when tracing is enabled, rolls the span-sampling decision like
/// [`begin_query`]. Unlike `begin_query`, the span buffer is cleared
/// only when no other query is active, so concurrent clients'
/// in-flight spans survive each other's boundaries and a post-cohort
/// snapshot holds every query's tree. Nested calls on the same thread
/// adopt the existing scope (the guard is then inert).
pub fn query_scope() -> QueryScope {
    if current_query() != 0 {
        return QueryScope { fresh: false };
    }
    CURRENT_QUERY.with(|q| q.set(NEXT_QUERY.fetch_add(1, Ordering::Relaxed)));
    let active = ACTIVE_QUERIES.fetch_add(1, Ordering::Relaxed) + 1;
    if ENABLED.load(Ordering::Relaxed) {
        roll_sample(active == 1);
    }
    QueryScope { fresh: true }
}

/// A copy of every span recorded since the last [`clear_spans`].
pub fn spans_snapshot() -> Vec<SpanRecord> {
    state().spans.lock().expect("span lock").clone()
}

/// An opaque span identity, used to attach children across threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(u64);

/// The innermost open span on this thread, if tracing is enabled.
pub fn current_span() -> Option<SpanId> {
    if !enabled() {
        return None;
    }
    STACK.with(|s| s.borrow().last().copied().map(SpanId))
}

/// An explicit trace context: the query id minted at the query
/// boundary plus the innermost open span at capture time.
///
/// Capture one with [`TraceCtx::current`] *before* handing work to
/// another thread (a coalescer submission, a pool job, a wire
/// envelope) and use it on the far side for explicit parenting
/// ([`span_under`]) and [`Span::follow_from`] links — implicit
/// thread-local parentage attaches cross-thread work to whatever the
/// executing thread happens to have open, which is the wrong query
/// under delegated flushes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// The originating query id (0 outside any [`query_scope`]).
    /// Always minted, even when tracing is disabled or the query is
    /// sampled out, so the flight recorder can attribute events.
    pub trace_id: u64,
    /// The innermost open span at capture time (`None` when tracing
    /// is off or the query was sampled out).
    pub span_id: Option<SpanId>,
}

impl TraceCtx {
    /// Captures the calling thread's context.
    pub fn current() -> Self {
        Self { trace_id: current_query(), span_id: current_span() }
    }

    /// The empty context (no query, no span).
    pub fn none() -> Self {
        Self { trace_id: 0, span_id: None }
    }
}

impl Default for TraceCtx {
    fn default() -> Self {
        Self::none()
    }
}

struct Pending {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    label: Option<String>,
    start: Instant,
    start_us: u64,
    virtual_us: Option<u64>,
    attrs: Vec<(&'static str, u64)>,
    follows: Vec<u64>,
}

/// RAII guard for one span: records wall time from construction to
/// drop. Inert (all methods no-ops) when tracing is disabled.
pub struct Span {
    pending: Option<Pending>,
}

/// Opens a span named `name`, parented to the innermost open span on
/// this thread.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { pending: None };
    }
    let parent = STACK.with(|s| s.borrow().last().copied());
    open_span(name, parent)
}

/// Opens a span with an explicit parent — the fan-out form: capture
/// [`current_span`] before handing work to another thread, then
/// parent the worker's spans to it.
#[inline]
pub fn span_under(name: &'static str, parent: Option<SpanId>) -> Span {
    if !enabled() {
        return Span { pending: None };
    }
    open_span(name, parent.map(|p| p.0))
}

fn open_span(name: &'static str, parent: Option<u64>) -> Span {
    let st = state();
    let id = st.next_span.fetch_add(1, Ordering::Relaxed);
    let start = Instant::now();
    let start_us = start.duration_since(st.epoch).as_micros() as u64;
    STACK.with(|s| s.borrow_mut().push(id));
    Span {
        pending: Some(Pending {
            id,
            parent,
            name,
            label: None,
            start,
            start_us,
            virtual_us: None,
            attrs: Vec::new(),
            follows: Vec::new(),
        }),
    }
}

impl Span {
    /// This span's id (for explicit child parenting), when recording.
    pub fn id(&self) -> Option<SpanId> {
        self.pending.as_ref().map(|p| SpanId(p.id))
    }

    /// Attaches a numeric attribute (no-op when disabled — callers
    /// pay no formatting cost).
    pub fn attr_u64(&mut self, key: &'static str, value: u64) {
        if let Some(p) = self.pending.as_mut() {
            p.attrs.push((key, value));
        }
    }

    /// Attaches a dynamic label, rendered as `name[label]`.
    pub fn set_label(&mut self, label: impl Into<String>) {
        if let Some(p) = self.pending.as_mut() {
            p.label = Some(label.into());
        }
    }

    /// Records a virtual-time duration alongside the measured one
    /// (the fault dispatcher's simulated clock).
    pub fn set_virtual(&mut self, d: Duration) {
        if let Some(p) = self.pending.as_mut() {
            p.virtual_us = Some(d.as_micros() as u64);
        }
    }

    /// Records a *follow-from* link to `src`: this span is causally
    /// downstream of `src` without being its child. The coalesced
    /// flush span follows from every batched member's submission
    /// span, so each member's tree reaches the shared flush.
    pub fn follow_from(&mut self, src: SpanId) {
        if let Some(p) = self.pending.as_mut() {
            if !p.follows.contains(&src.0) {
                p.follows.push(src.0);
            }
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(p) = self.pending.take() else { return };
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if stack.last() == Some(&p.id) {
                stack.pop();
            } else {
                // Out-of-order drop (guards held across each other):
                // remove by value so the stack stays consistent.
                stack.retain(|&x| x != p.id);
            }
        });
        let rec = SpanRecord {
            id: p.id,
            parent: p.parent,
            name: p.name,
            label: p.label,
            start_us: p.start_us,
            dur_us: p.start.elapsed().as_micros() as u64,
            virtual_us: p.virtual_us,
            tid: thread_tid(),
            attrs: p.attrs,
            follows: p.follows,
        };
        state().spans.lock().expect("span lock").push(rec);
    }
}

/// Runs `f` inside a span and returns its result plus the measured
/// wall-clock duration — the drop-in replacement for raw
/// `Instant::now` pairs, so benchmarks and the tracer cannot disagree
/// about phase boundaries. The duration is measured whether or not
/// tracing is enabled.
pub fn timed_span<R>(name: &'static str, f: impl FnOnce() -> R) -> (R, Duration) {
    let _span = span(name);
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that toggle the global tracer.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = guard();
        disable();
        clear_spans();
        {
            let mut s = span("nothing");
            s.attr_u64("rows", 5);
        }
        assert!(spans_snapshot().is_empty());
        assert!(current_span().is_none());
    }

    #[test]
    fn span_tree_parentage_is_nested() {
        let _g = guard();
        enable();
        clear_spans();
        {
            let root = span("root");
            let root_id = root.id().expect("recording");
            {
                let _child = span("child");
                let _grand = span("grand");
            }
            let _sibling = span_under("sibling", Some(root_id));
        }
        disable();
        let spans = spans_snapshot();
        assert_eq!(spans.len(), 4);
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).expect("span");
        assert_eq!(by_name("root").parent, None);
        assert_eq!(by_name("child").parent, Some(by_name("root").id));
        assert_eq!(by_name("grand").parent, Some(by_name("child").id));
        assert_eq!(by_name("sibling").parent, Some(by_name("root").id));
    }

    #[test]
    fn attrs_labels_and_virtual_time_are_recorded() {
        let _g = guard();
        enable();
        clear_spans();
        {
            let mut s = span("net.shard");
            s.set_label("3");
            s.attr_u64("bytes", 128);
            s.set_virtual(Duration::from_millis(7));
        }
        disable();
        let spans = spans_snapshot();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].display_name(), "net.shard[3]");
        assert_eq!(spans[0].attrs, vec![("bytes", 128)]);
        assert_eq!(spans[0].virtual_us, Some(7000));
    }

    #[test]
    fn spans_from_scoped_threads_attach_to_the_captured_parent() {
        let _g = guard();
        enable();
        clear_spans();
        {
            let root = span("fanout");
            let parent = root.id();
            std::thread::scope(|scope| {
                for _ in 0..3 {
                    scope.spawn(move || {
                        let _s = span_under("worker", parent.map(|_| parent.unwrap()));
                    });
                }
            });
        }
        disable();
        let spans = spans_snapshot();
        let root_id = spans.iter().find(|s| s.name == "fanout").expect("root").id;
        let workers: Vec<_> = spans.iter().filter(|s| s.name == "worker").collect();
        assert_eq!(workers.len(), 3);
        for w in workers {
            assert_eq!(w.parent, Some(root_id));
        }
    }

    #[test]
    fn span_sampling_traces_one_in_n_queries() {
        let _g = guard();
        enable();
        set_span_sample(3);
        let mut recorded = Vec::new();
        for _ in 0..6 {
            begin_query();
            let sampled = enabled();
            {
                let _s = span("q");
            }
            recorded.push(sampled);
        }
        // 1-in-3, starting sampled: queries 0 and 3.
        assert_eq!(recorded, vec![true, false, false, true, false, false]);
        // The last sampled query's spans are in the buffer (unsampled
        // queries recorded nothing on top).
        assert_eq!(spans_snapshot().len(), 1);
        set_span_sample(1);
        disable();
        assert_eq!(span_sample(), 1);
    }

    #[test]
    fn timed_span_measures_and_returns() {
        let _g = guard();
        let (v, d) = timed_span("t", || 41 + 1);
        assert_eq!(v, 42);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn query_scopes_mint_ids_and_nest() {
        let _g = guard();
        disable();
        assert_eq!(current_query(), 0);
        let outer = query_scope();
        let id = outer.id();
        assert_ne!(id, 0);
        {
            let inner = query_scope();
            assert_eq!(inner.id(), id, "nested scopes adopt the outer id");
        }
        assert_eq!(current_query(), id, "inner drop keeps the outer scope");
        drop(outer);
        assert_eq!(current_query(), 0);
        // With tracing off the query id is still minted (the flight
        // recorder keys on it) while the span side stays empty.
        let scope = query_scope();
        let ctx = TraceCtx::current();
        assert_eq!(ctx.trace_id, scope.id());
        assert!(ctx.span_id.is_none());
        drop(scope);
        assert_eq!(TraceCtx::current(), TraceCtx::none());
    }

    #[test]
    fn concurrent_scopes_preserve_each_others_spans() {
        let _g = guard();
        enable();
        set_span_sample(1);
        clear_spans();
        let a = query_scope();
        {
            let _s = span("a.one");
        }
        // A second query begins while `a` is active: its boundary must
        // not clear a's spans out of the shared buffer.
        std::thread::scope(|sc| {
            sc.spawn(|| {
                let _b = query_scope();
                let _s = span("b.one");
            });
        });
        {
            let _s = span("a.two");
        }
        drop(a);
        disable();
        let names: Vec<_> = spans_snapshot().iter().map(|s| s.name).collect();
        for want in ["a.one", "b.one", "a.two"] {
            assert!(names.contains(&want), "missing {want} in {names:?}");
        }
    }

    #[test]
    fn follow_from_links_are_recorded_and_deduplicated() {
        let _g = guard();
        enable();
        clear_spans();
        {
            let member = span("member");
            let src = member.id().expect("recording");
            let mut flush = span_under("flush", None);
            flush.follow_from(src);
            flush.follow_from(src);
        }
        disable();
        let spans = spans_snapshot();
        let member = spans.iter().find(|s| s.name == "member").expect("member");
        let flush = spans.iter().find(|s| s.name == "flush").expect("flush");
        assert_eq!(flush.follows, vec![member.id]);
        assert_eq!(flush.parent, None, "explicit parent overrides the open stack");
    }
}
