//! Exporters: Chrome `trace_event` JSON (load in `chrome://tracing`
//! or Perfetto), flamegraph-foldable stacks (feed to
//! `flamegraph.pl` / `inferno-flamegraph`), and the flat
//! `metrics.json` registry snapshot.

use crate::{metrics, SpanRecord};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders spans as a Chrome `trace_event` JSON document: one
/// complete event (`"ph": "X"`) per span, timestamps and durations in
/// microseconds, span attributes (and virtual time, when set) in
/// `args`.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n{{\"name\":\"{}\",\"cat\":\"tiptoe\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}",
            esc(&s.display_name()),
            s.start_us,
            s.dur_us,
            s.tid
        );
        out.push_str(",\"args\":{");
        let mut first = true;
        for (k, v) in &s.attrs {
            let sep = if first { "" } else { "," };
            let _ = write!(out, "{sep}\"{}\":{v}", esc(k));
            first = false;
        }
        if let Some(vu) = s.virtual_us {
            let sep = if first { "" } else { "," };
            let _ = write!(out, "{sep}\"virtual_us\":{vu}");
            first = false;
        }
        if !s.follows.is_empty() {
            let sep = if first { "" } else { "," };
            let ids: Vec<String> = s.follows.iter().map(u64::to_string).collect();
            let _ = write!(out, "{sep}\"follows\":[{}]", ids.join(","));
        }
        out.push_str("}}");
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Renders spans as flamegraph-foldable stacks: one
/// `root;child;leaf value` line per unique path, where the value is
/// aggregated **self time** in microseconds (total time minus the
/// time covered by children), so the flamegraph's widths sum
/// correctly.
pub fn folded_stacks(spans: &[SpanRecord]) -> String {
    let by_id: BTreeMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    let mut child_time: BTreeMap<u64, u64> = BTreeMap::new();
    for s in spans {
        if let Some(p) = s.parent {
            *child_time.entry(p).or_insert(0) += s.dur_us;
        }
    }
    let mut agg: BTreeMap<String, u64> = BTreeMap::new();
    for s in spans {
        // Walk the parent chain to build the stack path.
        let mut path = vec![s.display_name()];
        let mut cur = s.parent;
        while let Some(pid) = cur {
            match by_id.get(&pid) {
                Some(p) => {
                    path.push(p.display_name());
                    cur = p.parent;
                }
                None => break,
            }
        }
        path.reverse();
        let self_us = s.dur_us.saturating_sub(child_time.get(&s.id).copied().unwrap_or(0));
        *agg.entry(path.join(";")).or_insert(0) += self_us;
    }
    let mut out = String::new();
    for (path, us) in agg {
        let _ = writeln!(out, "{path} {us}");
    }
    out
}

/// Derives the sibling artifact path: `trace.json` →
/// `trace.metrics.json` / `trace.folded`.
fn sibling(path: &Path, ext: &str) -> std::path::PathBuf {
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
    path.with_file_name(format!("{stem}.{ext}"))
}

/// Writes the five artifacts for the given spans: the Chrome trace
/// at `path`, the metrics snapshot at `<stem>.metrics.json` (and as
/// OpenMetrics text at `<stem>.metrics.prom`, scrapeable by any
/// Prometheus-compatible collector), the folded stacks at
/// `<stem>.folded`, and the flight-recorder ring dump at
/// `<stem>.recorder.json` (per-query event timelines — populated even
/// for queries the span sampler traced out).
pub fn write_artifacts(path: &Path, spans: &[SpanRecord]) -> std::io::Result<()> {
    let snapshot = metrics().snapshot();
    std::fs::write(path, chrome_trace_json(spans))?;
    std::fs::write(sibling(path, "metrics.json"), snapshot.to_json())?;
    std::fs::write(sibling(path, "metrics.prom"), snapshot.to_openmetrics())?;
    std::fs::write(sibling(path, "folded"), folded_stacks(spans))?;
    std::fs::write(sibling(path, "recorder.json"), crate::recorder::ring_json())?;
    Ok(())
}

/// Best-effort per-query export: when tracing is enabled and a path
/// is configured, writes the current span buffer and metrics
/// snapshot. Errors are reported to stderr, never propagated — a
/// full disk must not fail a query.
pub fn export_query_artifacts() {
    if !crate::enabled() {
        return;
    }
    let Some(path) = crate::trace_path() else { return };
    let spans = crate::spans_snapshot();
    if let Err(e) = write_artifacts(Path::new(&path), &spans) {
        eprintln!("tiptoe-obs: failed to write trace artifacts to {path}: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spans() -> Vec<SpanRecord> {
        vec![
            SpanRecord {
                id: 1,
                parent: None,
                name: "client.query",
                label: None,
                start_us: 0,
                dur_us: 100,
                virtual_us: None,
                tid: 1,
                attrs: vec![],
                follows: vec![],
            },
            SpanRecord {
                id: 2,
                parent: Some(1),
                name: "rank.shard",
                label: Some("0".into()),
                start_us: 10,
                dur_us: 40,
                virtual_us: Some(250_000),
                tid: 1,
                attrs: vec![("rows", 512), ("cols", 64)],
                follows: vec![1],
            },
        ]
    }

    #[test]
    fn chrome_trace_has_events_and_args() {
        let json = chrome_trace_json(&sample_spans());
        assert!(json.contains("\"traceEvents\":["), "{json}");
        assert!(json.contains("\"name\":\"client.query\""), "{json}");
        assert!(json.contains("\"name\":\"rank.shard[0]\""), "{json}");
        assert!(json.contains("\"rows\":512"), "{json}");
        assert!(json.contains("\"virtual_us\":250000"), "{json}");
        assert!(json.contains("\"follows\":[1]"), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
    }

    #[test]
    fn folded_stacks_use_self_time() {
        let out = folded_stacks(&sample_spans());
        // Root's self time = 100 - 40 = 60; child keeps its 40.
        assert!(out.contains("client.query 60"), "{out}");
        assert!(out.contains("client.query;rank.shard[0] 40"), "{out}");
    }

    #[test]
    fn write_artifacts_emits_five_files() {
        // Keep test artifacts inside the workspace's target directory.
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target")
            .join(format!("tiptoe-obs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("trace.json");
        write_artifacts(&path, &sample_spans()).expect("write");
        assert!(path.exists());
        assert!(dir.join("trace.metrics.json").exists());
        assert!(dir.join("trace.folded").exists());
        let prom = std::fs::read_to_string(dir.join("trace.metrics.prom")).expect("prom");
        assert!(prom.ends_with("# EOF\n"), "{prom}");
        let rec = std::fs::read_to_string(dir.join("trace.recorder.json")).expect("recorder");
        assert!(rec.contains("\"queries\""), "{rec}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
