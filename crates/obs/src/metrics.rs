//! Metrics registry: monotonic counters, gauges, and log-scaled
//! histograms, keyed by a static metric name plus an optional dynamic
//! label (typically a shard).
//!
//! Metrics are **always on** — unlike spans they are a handful of
//! atomic operations per protocol message, so there is no enablement
//! gate. Handles are `Arc`-shared: look one up once (e.g. per query or
//! per dispatch) and update it with lock-free atomic ops afterwards.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Key type: static metric name + optional label.
type Key = (&'static str, Option<String>);

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `v` to the counter.
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge holding an `f64`.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of histogram buckets: values 0..16 get exact buckets, then
/// 4 sub-buckets per power of two up to `u64::MAX` (HDR-lite).
const BUCKETS: usize = 256;

#[derive(Debug)]
struct HistInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A log-scaled histogram of non-negative integer samples
/// (microseconds, bytes, ...). Relative quantile error is bounded by
/// the sub-bucket width: ≤ 25% anywhere, exact below 16.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistInner>);

/// Maps a sample to its bucket: exact for v < 16, then
/// `16 + (log2(v) - 4) * 4 + sub` where `sub` is the top two bits
/// below the leading one.
fn bucket_index(v: u64) -> usize {
    if v < 16 {
        return v as usize;
    }
    let m = 63 - v.leading_zeros() as usize; // floor(log2 v), >= 4
    let sub = ((v >> (m - 2)) & 3) as usize;
    (16 + (m - 4) * 4 + sub).min(BUCKETS - 1)
}

/// Upper edge of bucket `i` — the value reported for quantiles that
/// land in it (conservative: never under-reports a latency).
fn bucket_value(i: usize) -> u64 {
    if i < 16 {
        return i as u64;
    }
    let rel = i - 16;
    let m = rel / 4 + 4;
    let sub = (rel % 4) as u64;
    // Bucket spans [base + sub*step, base + (sub+1)*step) where
    // base = 2^m and step = 2^(m-2).
    let base = 1u64 << m;
    let step = 1u64 << (m - 2);
    base + (sub + 1) * step - 1
}

impl Histogram {
    fn new() -> Self {
        Self(Arc::new(HistInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        let h = &self.0;
        h.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(v, Ordering::Relaxed);
        h.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as a bucket upper edge,
    /// clamped to the exact max. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                return bucket_value(i).min(self.max());
            }
        }
        self.max()
    }
}

/// Point-in-time summary of one histogram.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// `name` or `name[label]`.
    pub name: String,
    /// Sample count.
    pub count: u64,
    /// Sample sum.
    pub sum: u64,
    /// Exact maximum.
    pub max: u64,
    /// Median (bucket upper edge).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

/// Point-in-time summary of the whole registry.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter values keyed by display name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values keyed by display name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Hand-rolled JSON rendering (the workspace has no serde).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
        }
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {v}", esc(k));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {v}", esc(k));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                esc(&h.name),
                h.count,
                h.sum,
                h.max,
                h.p50,
                h.p95,
                h.p99
            );
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// OpenMetrics text rendering (the Prometheus exposition format):
    /// counters become `_total` samples, gauges stay gauges, and
    /// histograms export as summaries (`quantile` labels plus
    /// `_count`/`_sum`). Display keys like `net.bytes_up[ranking]`
    /// map to `net_bytes_up_total{label="ranking"}`. Ends with the
    /// mandatory `# EOF` terminator.
    pub fn to_openmetrics(&self) -> String {
        use std::fmt::Write as _;
        /// Metric names allow `[a-zA-Z0-9_:]`; everything else
        /// (dots, dashes) becomes `_`.
        fn metric_name(s: &str) -> String {
            s.chars().map(|c| if c.is_ascii_alphanumeric() || c == ':' { c } else { '_' }).collect()
        }
        /// Escapes a label value per the OpenMetrics exposition
        /// format: `\` → `\\`, `"` → `\"`, newline → `\n`. Without
        /// the newline rule a label containing `\n` splits the
        /// sample across lines and the whole document is invalid.
        fn esc_label(v: &str) -> String {
            v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
        }
        /// Splits a display key `name[label]` into the sanitized
        /// metric name and an optional `{label="..."}` selector.
        fn split_key(key: &str, extra: Option<(&str, &str)>) -> (String, String) {
            let (name, label) = match key.split_once('[') {
                Some((name, rest)) => (name, rest.strip_suffix(']')),
                None => (key, None),
            };
            let mut pairs = Vec::new();
            if let Some(l) = label {
                pairs.push(format!("label=\"{}\"", esc_label(l)));
            }
            if let Some((k, v)) = extra {
                pairs.push(format!("{k}=\"{}\"", esc_label(v)));
            }
            let selector =
                if pairs.is_empty() { String::new() } else { format!("{{{}}}", pairs.join(",")) };
            (metric_name(name), selector)
        }
        let mut out = String::new();
        let mut typed: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        for (key, v) in &self.counters {
            let (name, selector) = split_key(key, None);
            if typed.insert(name.clone()) {
                let _ = writeln!(out, "# TYPE {name} counter");
            }
            let _ = writeln!(out, "{name}_total{selector} {v}");
        }
        for (key, v) in &self.gauges {
            let (name, selector) = split_key(key, None);
            if typed.insert(name.clone()) {
                let _ = writeln!(out, "# TYPE {name} gauge");
            }
            let _ = writeln!(out, "{name}{selector} {v}");
        }
        for h in &self.histograms {
            let (name, _) = split_key(&h.name, None);
            if typed.insert(name.clone()) {
                let _ = writeln!(out, "# TYPE {name} summary");
            }
            for (q, v) in [("0.5", h.p50), ("0.95", h.p95), ("0.99", h.p99)] {
                let (_, selector) = split_key(&h.name, Some(("quantile", q)));
                let _ = writeln!(out, "{name}{selector} {v}");
            }
            let (_, selector) = split_key(&h.name, None);
            let _ = writeln!(out, "{name}_count{selector} {}", h.count);
            let _ = writeln!(out, "{name}_sum{selector} {}", h.sum);
        }
        out.push_str("# EOF\n");
        out
    }

    /// The change since `earlier`: counters and histogram
    /// `count`/`sum` are subtracted (saturating, so a registry
    /// `reset` between snapshots yields zeros rather than wrapping);
    /// gauges keep this snapshot's value (they are levels, not
    /// totals); histogram `max` and quantiles also keep this
    /// snapshot's values and remain **cumulative** — the bucket
    /// counts needed for interval quantiles are not retained in a
    /// snapshot. Series absent from `earlier` diff against zero;
    /// series absent from `self` are dropped.
    ///
    /// Benchmarks use this to report per-rep numbers from the
    /// process-global registry without cross-rep contamination.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let base_counters: BTreeMap<&str, u64> =
            earlier.counters.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        let base_hists: BTreeMap<&str, (u64, u64)> =
            earlier.histograms.iter().map(|h| (h.name.as_str(), (h.count, h.sum))).collect();
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| {
                    (k.clone(), v.saturating_sub(base_counters.get(k.as_str()).copied().unwrap_or(0)))
                })
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|h| {
                    let (c0, s0) = base_hists.get(h.name.as_str()).copied().unwrap_or((0, 0));
                    HistogramSnapshot {
                        name: h.name.clone(),
                        count: h.count.saturating_sub(c0),
                        sum: h.sum.saturating_sub(s0),
                        ..h.clone()
                    }
                })
                .collect(),
        }
    }

    /// The counter value under display key `name`, or 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(k, _)| k == name).map_or(0, |(_, v)| *v)
    }
}

fn display_key(key: &Key) -> String {
    match &key.1 {
        Some(l) => format!("{}[{}]", key.0, l),
        None => key.0.to_string(),
    }
}

/// The process-wide metrics registry.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<Key, Counter>>,
    gauges: Mutex<BTreeMap<Key, Gauge>>,
    histograms: Mutex<BTreeMap<Key, Histogram>>,
}

impl Registry {
    /// The counter registered under `name` (no label), created on
    /// first use.
    pub fn counter(&self, name: &'static str) -> Counter {
        self.counter_with(name, None)
    }

    /// The counter registered under `name[label]`.
    pub fn counter_with(&self, name: &'static str, label: Option<String>) -> Counter {
        self.counters
            .lock()
            .expect("counter lock")
            .entry((name, label))
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// The gauge registered under `name` (no label).
    pub fn gauge(&self, name: &'static str) -> Gauge {
        self.gauge_with(name, None)
    }

    /// The gauge registered under `name[label]`.
    pub fn gauge_with(&self, name: &'static str, label: Option<String>) -> Gauge {
        self.gauges
            .lock()
            .expect("gauge lock")
            .entry((name, label))
            .or_insert_with(|| Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))))
            .clone()
    }

    /// The histogram registered under `name` (no label).
    pub fn histogram(&self, name: &'static str) -> Histogram {
        self.histogram_with(name, None)
    }

    /// The histogram registered under `name[label]`.
    pub fn histogram_with(&self, name: &'static str, label: Option<String>) -> Histogram {
        self.histograms
            .lock()
            .expect("histogram lock")
            .entry((name, label))
            .or_insert_with(Histogram::new)
            .clone()
    }

    /// Drops every metric (tests use this to isolate assertions; old
    /// handles keep working but are no longer reachable by name).
    pub fn reset(&self) {
        self.counters.lock().expect("counter lock").clear();
        self.gauges.lock().expect("gauge lock").clear();
        self.histograms.lock().expect("histogram lock").clear();
    }

    /// A point-in-time snapshot of every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("counter lock")
            .iter()
            .map(|(k, c)| (display_key(k), c.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("gauge lock")
            .iter()
            .map(|(k, g)| (display_key(k), g.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("histogram lock")
            .iter()
            .map(|(k, h)| HistogramSnapshot {
                name: display_key(k),
                count: h.count(),
                sum: h.sum(),
                max: h.max(),
                p50: h.quantile(0.50),
                p95: h.quantile(0.95),
                p99: h.quantile(0.99),
            })
            .collect();
        MetricsSnapshot { counters, gauges, histograms }
    }
}

/// The process-wide registry.
pub fn metrics() -> &'static Registry {
    static R: OnceLock<Registry> = OnceLock::new();
    R.get_or_init(Registry::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share() {
        let r = Registry::default();
        let a = r.counter("test.bytes");
        let b = r.counter("test.bytes");
        a.add(10);
        b.add(5);
        assert_eq!(r.counter("test.bytes").get(), 15);
        r.counter_with("test.bytes", Some("shard0".into())).add(3);
        assert_eq!(r.counter("test.bytes").get(), 15, "labels are distinct series");
    }

    #[test]
    fn gauges_hold_last_value() {
        let r = Registry::default();
        let g = r.gauge("test.noise");
        g.set(12.5);
        g.set(-3.25);
        assert_eq!(r.gauge("test.noise").get(), -3.25);
    }

    #[test]
    fn bucket_roundtrip_is_monotone_and_conservative() {
        for v in [0u64, 1, 7, 15, 16, 17, 100, 1000, 65_535, 1 << 30, u64::MAX / 2] {
            let i = bucket_index(v);
            assert!(bucket_value(i) >= v, "upper edge {} < sample {v}", bucket_value(i));
            if i > 0 {
                assert!(bucket_value(i - 1) < v, "sample {v} fits an earlier bucket");
            }
        }
    }

    #[test]
    fn histogram_quantiles_are_close() {
        let r = Registry::default();
        let h = r.histogram("test.lat");
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert_eq!(h.max(), 1000);
        let p50 = h.quantile(0.50);
        let p95 = h.quantile(0.95);
        let p99 = h.quantile(0.99);
        // Bucket upper edges: within 25% above the exact quantile.
        assert!((500..=640).contains(&p50), "p50 = {p50}");
        assert!((950..=1000).contains(&p95), "p95 = {p95}");
        assert!((990..=1000).contains(&p99), "p99 = {p99}");
        assert!(h.quantile(1.0) <= 1000);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let r = Registry::default();
        let h = r.histogram("test.empty");
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn snapshot_renders_json() {
        let r = Registry::default();
        r.counter("a.count").add(2);
        r.gauge_with("b.gauge", Some("s1".into())).set(1.5);
        r.histogram("c.hist").record(42);
        let snap = r.snapshot();
        assert_eq!(snap.counters, vec![("a.count".to_string(), 2)]);
        assert_eq!(snap.gauges.len(), 1);
        assert_eq!(snap.gauges[0].0, "b.gauge[s1]");
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].count, 1);
        let json = snap.to_json();
        assert!(json.contains("\"a.count\": 2"), "{json}");
        assert!(json.contains("\"b.gauge[s1]\": 1.5"), "{json}");
        assert!(json.contains("\"c.hist\""), "{json}");
    }

    #[test]
    fn snapshot_renders_openmetrics() {
        let r = Registry::default();
        r.counter_with("net.bytes_up", Some("ranking".into())).add(7);
        r.counter("net.bytes_up").add(9);
        r.gauge("lwe.noise_budget").set(12.5);
        r.histogram("net.coalesce.batch_size").record(4);
        let text = r.snapshot().to_openmetrics();
        assert!(text.contains("# TYPE net_bytes_up counter"), "{text}");
        assert!(text.contains("net_bytes_up_total 9"), "{text}");
        assert!(text.contains("net_bytes_up_total{label=\"ranking\"} 7"), "{text}");
        assert!(text.contains("# TYPE lwe_noise_budget gauge"), "{text}");
        assert!(text.contains("lwe_noise_budget 12.5"), "{text}");
        assert!(text.contains("# TYPE net_coalesce_batch_size summary"), "{text}");
        assert!(text.contains("net_coalesce_batch_size{quantile=\"0.5\"} 4"), "{text}");
        assert!(text.contains("net_coalesce_batch_size_count 1"), "{text}");
        assert!(text.contains("net_coalesce_batch_size_sum 4"), "{text}");
        assert!(text.ends_with("# EOF\n"), "{text}");
        // One TYPE line per metric family, even with many series.
        assert_eq!(text.matches("# TYPE net_bytes_up counter").count(), 1);
    }

    #[test]
    fn openmetrics_escapes_label_values() {
        let r = Registry::default();
        r.counter_with("esc.test", Some("has \"quotes\" and \\slash\\\nand newline".into()))
            .add(1);
        let text = r.snapshot().to_openmetrics();
        // Escaped form: every `\` doubled, `"` backslashed, newline
        // as the two characters `\n` — and exactly one sample line.
        assert!(
            text.contains(
                "esc_test_total{label=\"has \\\"quotes\\\" and \\\\slash\\\\\\nand newline\"} 1"
            ),
            "{text}"
        );
        let sample_lines: Vec<&str> =
            text.lines().filter(|l| l.starts_with("esc_test_total")).collect();
        assert_eq!(sample_lines.len(), 1, "label newline split the sample: {text}");
        // Round-trip: unescaping the rendered label restores the raw value.
        let line = sample_lines[0];
        let rendered = &line[line.find("label=\"").unwrap() + 7..line.rfind('"').unwrap()];
        let mut unescaped = String::new();
        let mut chars = rendered.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('n') => unescaped.push('\n'),
                    Some(other) => unescaped.push(other),
                    None => unescaped.push('\\'),
                }
            } else {
                unescaped.push(c);
            }
        }
        assert_eq!(unescaped, "has \"quotes\" and \\slash\\\nand newline");
    }

    #[test]
    fn json_escapes_newlines_in_keys() {
        let r = Registry::default();
        r.counter_with("nl.test", Some("line1\nline2".into())).add(3);
        let json = r.snapshot().to_json();
        assert!(json.contains("nl.test[line1\\nline2]"), "{json}");
        assert!(!json.contains("line1\nline2"), "raw newline leaked into JSON: {json}");
    }

    #[test]
    fn delta_subtracts_counters_and_histogram_totals() {
        let r = Registry::default();
        r.counter("d.count").add(10);
        r.gauge("d.gauge").set(1.0);
        r.histogram("d.hist").record(100);
        let before = r.snapshot();
        r.counter("d.count").add(7);
        r.counter("d.new").add(2);
        r.gauge("d.gauge").set(9.0);
        r.histogram("d.hist").record(50);
        let delta = r.snapshot().delta(&before);
        assert_eq!(delta.counter("d.count"), 7);
        assert_eq!(delta.counter("d.new"), 2);
        assert_eq!(delta.counter("d.absent"), 0);
        assert_eq!(delta.gauges.iter().find(|(k, _)| k == "d.gauge").unwrap().1, 9.0);
        let h = delta.histograms.iter().find(|h| h.name == "d.hist").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 50);
        assert_eq!(h.max, 100, "max stays cumulative by design");
        // Saturating: a reset between snapshots must not wrap.
        let empty = MetricsSnapshot::default().delta(&before);
        assert!(empty.counters.is_empty());
        let wrapped = before.delta(&r.snapshot());
        assert_eq!(wrapped.counter("d.count"), 0);
    }

    #[test]
    fn reset_clears_names() {
        let r = Registry::default();
        r.counter("x").add(1);
        r.reset();
        assert_eq!(r.counter("x").get(), 0);
    }
}
