//! The query flight recorder: a fixed-size, lock-free ring buffer of
//! per-query event timelines.
//!
//! Spans answer "where did the time go" for *sampled* queries; the
//! recorder answers "what happened to **this** query" for *every*
//! query, always on, even when `TIPTOE_TRACE_SAMPLE` sampled the span
//! tree out. Each event is a fixed-width record of `(query id,
//! timestamp, kind, four numeric arguments)` — **content-free by
//! construction**: kinds are a closed enum, arguments are occupancy
//! counts, lane ids, durations, and typed result codes. No
//! query-derived data (embeddings, cluster indices, ciphertexts,
//! URLs) can enter the ring, so the recorder adds no privacy surface
//! beyond what the metrics registry already exposes.
//!
//! Concurrency: writers claim a slot with one `fetch_add` and publish
//! it under a per-slot seqlock (odd version = write in progress, even
//! version = generation tag), all plain atomics — no locks, no
//! `unsafe`. Readers retry torn slots a bounded number of times and
//! otherwise skip them; under a wrapping ring the oldest events are
//! overwritten first. The ring holds [`CAPACITY`] events (~a few
//! hundred queries of history at the serving plane's event rate).
//!
//! On any typed `ServeError` the owning query's timeline is dumped to
//! stderr automatically (rate-limited to [`AUTO_DUMP_LIMIT`] dumps
//! per process so an overload storm cannot flood the console);
//! [`timeline`], [`render_timeline`], and [`timeline_json`] serve the
//! on-demand paths.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Ring capacity in events (power of two; the slot index is
/// `seq & (CAPACITY - 1)`).
pub const CAPACITY: usize = 4096;

/// Automatic `ServeError` dumps emitted per process before the
/// recorder goes quiet (the data stays in the ring for on-demand
/// dumps; only the unsolicited stderr output is rate-limited).
pub const AUTO_DUMP_LIMIT: u64 = 8;

/// What happened. Kinds form a closed vocabulary; every argument is a
/// count, id, duration, or code — never query content.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// Admission control admitted the query. `a` = inflight after
    /// admit, `b` = capacity.
    Admitted = 1,
    /// Admission control shed the query. `a` = inflight at the
    /// verdict, `b` = capacity.
    Shed = 2,
    /// The query joined a coalescer lane's queue. `a` = lane id,
    /// `b` = queue depth after enqueue.
    LaneEnqueued = 3,
    /// The query's batch flushed. `a` = lane id, `b` = batch size,
    /// `c` = flush reason code (see [`flush_reason`]), `d` =
    /// queue-wait in microseconds for *this* query.
    LaneFlushed = 4,
    /// The query withdrew from a lane queue (deadline budget spent
    /// before the flush). `a` = lane id, `b` = waited microseconds.
    LaneWithdrawn = 5,
    /// The query's lane crashed while serving it. `a` = lane id,
    /// `b` = lane crash count so far.
    LaneCrashed = 6,
    /// One shard's dispatch outcome. `a` = shard id, `b` = flags
    /// (bit 0 = ok, bit 1 = hedged, bit 2 = breaker half-open probe),
    /// `c` = attempts, `d` = per-shard wall in microseconds.
    ShardOutcome = 7,
    /// A shard was skipped by its open circuit breaker. `a` = shard
    /// id, `b` = breaker state code (see [`breaker_state`]).
    ShardSkipped = 8,
    /// Wall time charged to the query's deadline budget. `a` =
    /// charged microseconds, `b` = total spent after the charge,
    /// `c` = budget in microseconds.
    BudgetCharged = 9,
    /// The query finished with a typed result. `a` = result code
    /// (see [`result_code`]); for deadline failures `b` = budget µs
    /// and `c` = spent µs, for sheds `b` = inflight and `c` =
    /// capacity, for lane failures `b` = crash count.
    Finished = 10,
}

impl EventKind {
    fn from_u64(v: u64) -> Option<Self> {
        Some(match v {
            1 => Self::Admitted,
            2 => Self::Shed,
            3 => Self::LaneEnqueued,
            4 => Self::LaneFlushed,
            5 => Self::LaneWithdrawn,
            6 => Self::LaneCrashed,
            7 => Self::ShardOutcome,
            8 => Self::ShardSkipped,
            9 => Self::BudgetCharged,
            10 => Self::Finished,
            _ => return None,
        })
    }

    /// Stable display name (used by dumps and the JSON exporter).
    pub fn name(self) -> &'static str {
        match self {
            Self::Admitted => "admitted",
            Self::Shed => "shed",
            Self::LaneEnqueued => "lane-enqueued",
            Self::LaneFlushed => "lane-flushed",
            Self::LaneWithdrawn => "lane-withdrawn",
            Self::LaneCrashed => "lane-crashed",
            Self::ShardOutcome => "shard-outcome",
            Self::ShardSkipped => "shard-skipped",
            Self::BudgetCharged => "budget-charged",
            Self::Finished => "finished",
        }
    }
}

/// Typed result codes for [`EventKind::Finished`] events.
/// `tiptoe-net`'s `ServeError` maps onto these (the mapping lives
/// here so dumps can name codes without depending on `tiptoe-net`).
pub mod result_code {
    /// The query succeeded.
    pub const OK: u64 = 0;
    /// `ServeError::Overloaded` — shed by admission control.
    pub const OVERLOADED: u64 = 1;
    /// `ServeError::DeadlineExceeded` — deadline budget spent.
    pub const DEADLINE_EXCEEDED: u64 = 2;
    /// `ServeError::LaneFailed` — a coalescer lane crashed for good.
    pub const LANE_FAILED: u64 = 3;
    /// `ServeError::InvalidPolicy` — rejected configuration.
    pub const INVALID_POLICY: u64 = 4;

    /// Display name for a result code.
    pub fn name(code: u64) -> &'static str {
        match code {
            OK => "ok",
            OVERLOADED => "overloaded",
            DEADLINE_EXCEEDED => "deadline-exceeded",
            LANE_FAILED => "lane-failed",
            INVALID_POLICY => "invalid-policy",
            _ => "unknown",
        }
    }
}

/// Flush reason codes for [`EventKind::LaneFlushed`] events, matching
/// the coalescer's flush-reason vocabulary.
pub mod flush_reason {
    /// The batch reached `max_batch`.
    pub const FULL: u64 = 0;
    /// The lane deadline fired.
    pub const DEADLINE: u64 = 1;
    /// Backpressure overflow forced the flush.
    pub const OVERFLOW: u64 = 2;
    /// A lone submitter flushed without waiting.
    pub const SOLO: u64 = 3;
    /// The reactor was down; a waiter self-flushed.
    pub const FALLBACK: u64 = 4;

    /// Display name for a flush reason code.
    pub fn name(code: u64) -> &'static str {
        match code {
            FULL => "full",
            DEADLINE => "deadline",
            OVERFLOW => "overflow",
            SOLO => "solo",
            FALLBACK => "fallback",
            _ => "unknown",
        }
    }
}

/// Breaker state codes for [`EventKind::ShardSkipped`] events.
pub mod breaker_state {
    /// The breaker was closed (normal serving).
    pub const CLOSED: u64 = 0;
    /// The breaker was open (shard skipped).
    pub const OPEN: u64 = 1;
    /// The breaker was half-open (probe traffic only).
    pub const HALF_OPEN: u64 = 2;

    /// Display name for a breaker state code.
    pub fn name(code: u64) -> &'static str {
        match code {
            CLOSED => "closed",
            OPEN => "open",
            HALF_OPEN => "half-open",
            _ => "unknown",
        }
    }
}

/// One decoded flight-recorder event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number (total order across all queries).
    pub seq: u64,
    /// Owning query id (0 = outside any query scope).
    pub query: u64,
    /// Microseconds since the recorder epoch.
    pub at_us: u64,
    /// What happened.
    pub kind: EventKind,
    /// First argument (meaning depends on `kind`).
    pub a: u64,
    /// Second argument.
    pub b: u64,
    /// Third argument.
    pub c: u64,
    /// Fourth argument.
    pub d: u64,
}

impl Event {
    /// Named arguments for display, in `key=value` order. Arguments
    /// that are meaningless for the kind are omitted.
    pub fn describe(&self) -> Vec<(&'static str, String)> {
        let n = |v: u64| v.to_string();
        match self.kind {
            EventKind::Admitted => {
                vec![("inflight", n(self.a)), ("capacity", n(self.b))]
            }
            EventKind::Shed => vec![("inflight", n(self.a)), ("capacity", n(self.b))],
            EventKind::LaneEnqueued => vec![("lane", n(self.a)), ("depth", n(self.b))],
            EventKind::LaneFlushed => vec![
                ("lane", n(self.a)),
                ("batch", n(self.b)),
                ("reason", flush_reason::name(self.c).to_string()),
                ("wait_us", n(self.d)),
            ],
            EventKind::LaneWithdrawn => vec![("lane", n(self.a)), ("waited_us", n(self.b))],
            EventKind::LaneCrashed => vec![("lane", n(self.a)), ("crashes", n(self.b))],
            EventKind::ShardOutcome => vec![
                ("shard", n(self.a)),
                ("ok", n(self.b & 1)),
                ("hedged", n((self.b >> 1) & 1)),
                ("probe", n((self.b >> 2) & 1)),
                ("attempts", n(self.c)),
                ("wall_us", n(self.d)),
            ],
            EventKind::ShardSkipped => vec![
                ("shard", n(self.a)),
                ("breaker", breaker_state::name(self.b).to_string()),
            ],
            EventKind::BudgetCharged => vec![
                ("charged_us", n(self.a)),
                ("spent_us", n(self.b)),
                ("budget_us", n(self.c)),
            ],
            EventKind::Finished => {
                let mut args = vec![("result", result_code::name(self.a).to_string())];
                if self.b != 0 || self.c != 0 {
                    args.push(("detail_b", n(self.b)));
                    args.push(("detail_c", n(self.c)));
                }
                args
            }
        }
    }
}

/// One ring slot: a seqlock version plus the event's seven words.
struct Slot {
    /// 0 = never written; odd = write in progress; even `2·seq + 2` =
    /// complete record of generation `seq`.
    version: AtomicU64,
    words: [AtomicU64; 7],
}

impl Slot {
    fn empty() -> Self {
        Self { version: AtomicU64::new(0), words: std::array::from_fn(|_| AtomicU64::new(0)) }
    }

    /// Reads the slot under the seqlock; `None` on empty, torn, or
    /// undecodable slots.
    fn read(&self) -> Option<Event> {
        for _ in 0..4 {
            let v1 = self.version.load(Ordering::Acquire);
            if v1 == 0 {
                return None;
            }
            if v1 % 2 == 1 {
                continue; // write in progress; retry
            }
            let w: Vec<u64> = self.words.iter().map(|x| x.load(Ordering::Relaxed)).collect();
            if self.version.load(Ordering::Acquire) != v1 {
                continue; // torn by a wrapping writer; retry
            }
            let kind = EventKind::from_u64(w[2])?;
            return Some(Event {
                seq: (v1 - 2) / 2,
                query: w[0],
                at_us: w[1],
                kind,
                a: w[3],
                b: w[4],
                c: w[5],
                d: w[6],
            });
        }
        None
    }
}

struct Ring {
    epoch: Instant,
    head: AtomicU64,
    auto_dumps: AtomicU64,
    slots: Vec<Slot>,
}

fn ring() -> &'static Ring {
    static R: OnceLock<Ring> = OnceLock::new();
    R.get_or_init(|| Ring {
        epoch: Instant::now(),
        head: AtomicU64::new(0),
        auto_dumps: AtomicU64::new(0),
        slots: (0..CAPACITY).map(|_| Slot::empty()).collect(),
    })
}

/// Records one event for `query`. Lock-free: one `fetch_add` plus
/// nine relaxed stores. Use this form when the owning query is not
/// the calling thread's (e.g. a lane flush recording on behalf of
/// every batched member); use [`record`] for same-thread events.
pub fn record_for(query: u64, kind: EventKind, a: u64, b: u64, c: u64, d: u64) {
    let r = ring();
    let seq = r.head.fetch_add(1, Ordering::Relaxed);
    let slot = &r.slots[(seq as usize) & (CAPACITY - 1)];
    let at_us = r.epoch.elapsed().as_micros() as u64;
    slot.version.store(seq * 2 + 1, Ordering::Release);
    let words = [query, at_us, kind as u64, a, b, c, d];
    for (w, v) in slot.words.iter().zip(words) {
        w.store(v, Ordering::Relaxed);
    }
    slot.version.store(seq * 2 + 2, Ordering::Release);
}

/// Records one event for the calling thread's current query (query 0,
/// "unattributed", outside any query scope).
pub fn record(kind: EventKind, a: u64, b: u64, c: u64, d: u64) {
    record_for(crate::current_query(), kind, a, b, c, d);
}

/// A snapshot of every decodable event in the ring, in sequence
/// order. Slots being overwritten concurrently are skipped.
pub fn events() -> Vec<Event> {
    let r = ring();
    let mut out: Vec<Event> = r.slots.iter().filter_map(Slot::read).collect();
    out.sort_by_key(|e| e.seq);
    out
}

/// The timeline of one query: every ring event with its id, in order.
pub fn timeline(query: u64) -> Vec<Event> {
    events().into_iter().filter(|e| e.query == query).collect()
}

/// Renders a query's timeline as human-readable text (one event per
/// line, timestamps relative to the first event).
pub fn render_timeline(query: u64) -> String {
    use std::fmt::Write as _;
    let events = timeline(query);
    let mut out = format!("query {query}: {} recorded events\n", events.len());
    let t0 = events.first().map_or(0, |e| e.at_us);
    for e in &events {
        let _ = write!(out, "  +{:>8}us {:<16}", e.at_us - t0, e.kind.name());
        for (k, v) in e.describe() {
            let _ = write!(out, " {k}={v}");
        }
        out.push('\n');
    }
    out
}

/// Renders a query's timeline as a JSON array (hand-rolled, like
/// every exporter in the workspace).
pub fn timeline_json(query: u64) -> String {
    use std::fmt::Write as _;
    let events = timeline(query);
    let mut out = String::from("[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n  {{\"seq\": {}, \"query\": {}, \"at_us\": {}, \"kind\": \"{}\"",
            e.seq,
            e.query,
            e.at_us,
            e.kind.name()
        );
        for (k, v) in e.describe() {
            let quoted = v.parse::<u64>().is_err();
            if quoted {
                let _ = write!(out, ", \"{k}\": \"{v}\"");
            } else {
                let _ = write!(out, ", \"{k}\": {v}");
            }
        }
        out.push('}');
    }
    out.push_str("\n]\n");
    out
}

/// Renders the whole ring as one JSON document grouped by query —
/// the flight-recorder dump artifact CI uploads next to the trace.
/// Queries appear in order of their first recorded event; query 0
/// (unattributed events) is included last when present.
pub fn ring_json() -> String {
    use std::fmt::Write as _;
    let events = events();
    let mut queries: Vec<u64> = Vec::new();
    for e in &events {
        if !queries.contains(&e.query) {
            queries.push(e.query);
        }
    }
    if let Some(pos) = queries.iter().position(|&q| q == 0) {
        let zero = queries.remove(pos);
        queries.push(zero);
    }
    let mut out = String::from("{\n\"queries\": [");
    for (i, q) in queries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n{{\"query\": {q}, \"events\": {}}}", timeline_json(*q).trim_end());
    }
    let _ = write!(out, "\n],\n\"events\": {}\n}}\n", events.len());
    out
}

/// Dumps a query's timeline to stderr, rate-limited to
/// [`AUTO_DUMP_LIMIT`] unsolicited dumps per process. The serve path
/// calls this automatically on every typed `ServeError`; the timeline
/// stays available via [`timeline`] regardless of the limit.
pub fn dump_on_error(query: u64, context: &str) {
    let n = ring().auto_dumps.fetch_add(1, Ordering::Relaxed);
    if n >= AUTO_DUMP_LIMIT {
        if n == AUTO_DUMP_LIMIT {
            eprintln!(
                "tiptoe-obs: flight-recorder auto-dump limit ({AUTO_DUMP_LIMIT}) reached; \
                 further timelines stay in the ring (use the on-demand dump)"
            );
        }
        return;
    }
    eprintln!("tiptoe-obs: flight recorder [{context}]\n{}", render_timeline(query));
}

/// Clears the ring and the auto-dump budget (tests only — concurrent
/// writers may interleave with the wipe).
pub fn reset() {
    let r = ring();
    for s in &r.slots {
        s.version.store(0, Ordering::Release);
    }
    r.head.store(0, Ordering::Release);
    r.auto_dumps.store(0, Ordering::Release);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that reset the global ring.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn events_record_and_filter_by_query() {
        let _g = guard();
        reset();
        record_for(7, EventKind::Admitted, 1, 8, 0, 0);
        record_for(9, EventKind::Shed, 8, 8, 0, 0);
        record_for(7, EventKind::LaneFlushed, 2, 5, flush_reason::DEADLINE, 123);
        record_for(7, EventKind::Finished, result_code::OK, 0, 0, 0);
        let t7 = timeline(7);
        assert_eq!(t7.len(), 3);
        assert_eq!(t7[0].kind, EventKind::Admitted);
        assert_eq!(t7[1].kind, EventKind::LaneFlushed);
        assert_eq!(t7[1].b, 5);
        assert_eq!(t7[2].kind, EventKind::Finished);
        assert_eq!(timeline(9).len(), 1);
        assert!(t7.windows(2).all(|w| w[0].seq < w[1].seq), "sequence-ordered");
    }

    #[test]
    fn ring_wraps_without_losing_recent_events() {
        let _g = guard();
        reset();
        for i in 0..(CAPACITY as u64 + 100) {
            record_for(i, EventKind::Admitted, i, 0, 0, 0);
        }
        let all = events();
        assert_eq!(all.len(), CAPACITY);
        // The newest events survive; the oldest were overwritten.
        assert!(all.iter().any(|e| e.query == CAPACITY as u64 + 99));
        assert!(all.iter().all(|e| e.query >= 100));
    }

    #[test]
    fn concurrent_writers_never_produce_torn_reads() {
        let _g = guard();
        reset();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || {
                    for i in 0..2000u64 {
                        // Every writer marks all four args with its
                        // own tag, so a torn slot would mix tags.
                        record_for(t + 1, EventKind::BudgetCharged, t, t, t, 0);
                        let _ = i;
                    }
                });
            }
        });
        for e in events() {
            assert_eq!(e.query, e.a + 1, "query/tag mismatch: torn slot {e:?}");
            assert_eq!(e.a, e.b);
            assert_eq!(e.b, e.c);
        }
    }

    #[test]
    fn rendering_names_kinds_and_codes() {
        let _g = guard();
        reset();
        record_for(42, EventKind::LaneFlushed, 1, 3, flush_reason::SOLO, 17);
        record_for(42, EventKind::ShardSkipped, 2, breaker_state::OPEN, 0, 0);
        record_for(42, EventKind::Finished, result_code::DEADLINE_EXCEEDED, 500, 900, 0);
        let text = render_timeline(42);
        assert!(text.contains("lane-flushed"), "{text}");
        assert!(text.contains("reason=solo"), "{text}");
        assert!(text.contains("breaker=open"), "{text}");
        assert!(text.contains("result=deadline-exceeded"), "{text}");
        let json = timeline_json(42);
        assert!(json.contains("\"kind\": \"shard-skipped\""), "{json}");
        assert!(json.contains("\"reason\": \"solo\""), "{json}");
        assert!(json.starts_with('[') && json.trim_end().ends_with(']'), "{json}");
    }

    #[test]
    fn ring_json_groups_by_query_with_unattributed_last() {
        let _g = guard();
        reset();
        record_for(0, EventKind::BudgetCharged, 1, 0, 0, 0);
        record_for(5, EventKind::Admitted, 1, 8, 0, 0);
        record_for(5, EventKind::Finished, result_code::OK, 0, 0, 0);
        record_for(6, EventKind::Shed, 8, 8, 0, 0);
        let json = ring_json();
        let q5 = json.find("\"query\": 5").expect("query 5 present");
        let q6 = json.find("\"query\": 6").expect("query 6 present");
        let q0 = json.find("\"query\": 0").expect("query 0 present");
        assert!(q5 < q6 && q6 < q0, "unattributed events must sort last: {json}");
        assert!(json.contains("\"events\": 4"), "{json}");
    }
}
