//! SLO burn-rate counters: deadline-miss and shed rates over short
//! and long sliding windows.
//!
//! Plain counters answer "how many sheds ever"; operating a fleet
//! needs "how fast are we burning error budget *right now*" — the
//! multiwindow burn-rate alert shape. Each [`BurnWindow`] is a ring
//! of per-second buckets (stamp + count), written lock-free with
//! plain atomics: a recorder CAS-claims the current second's slot,
//! zeroing it if the stamp is stale, then increments the count.
//! Readers sum the slots whose stamps fall inside the queried window.
//!
//! The two canonical windows are [`SHORT_WINDOW`] (fast burn —
//! page-worthy) and [`LONG_WINDOW`] (slow burn — ticket-worthy).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Fast-burn window: a spike visible here means active overload.
pub const SHORT_WINDOW: Duration = Duration::from_secs(10);
/// Slow-burn window: sustained elevation here means capacity debt.
pub const LONG_WINDOW: Duration = Duration::from_secs(60);

/// Per-second slots retained; must exceed `LONG_WINDOW` seconds so a
/// long-window read never wraps onto live data.
const SLOTS: usize = 128;

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// A lock-free sliding-window event counter with one-second buckets.
pub struct BurnWindow {
    /// Second-since-epoch stamp for each slot (`u64::MAX` = empty).
    stamps: [AtomicU64; SLOTS],
    /// Event count within the stamped second.
    counts: [AtomicU64; SLOTS],
    /// All-time event total.
    total: AtomicU64,
}

impl Default for BurnWindow {
    fn default() -> Self {
        Self::new()
    }
}

impl BurnWindow {
    /// An empty window.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const EMPTY: AtomicU64 = AtomicU64::new(u64::MAX);
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self { stamps: [EMPTY; SLOTS], counts: [ZERO; SLOTS], total: ZERO }
    }

    /// Counts one event at "now".
    pub fn record(&self) {
        self.record_at(epoch().elapsed());
    }

    /// Counts one event at an explicit offset from the process epoch
    /// (tests use this to exercise window edges without sleeping).
    pub fn record_at(&self, since_epoch: Duration) {
        let sec = since_epoch.as_secs();
        let slot = (sec as usize) % SLOTS;
        let stamp = &self.stamps[slot];
        let prev = stamp.load(Ordering::Acquire);
        if prev != sec {
            // Claim the slot for this second; the single winner zeroes
            // the stale count. Losers see `prev == sec` on reload (or
            // a racing newer second, in which case their event lands
            // in a slot that is already being reused — acceptable
            // smear for a rate estimator).
            if stamp.compare_exchange(prev, sec, Ordering::AcqRel, Ordering::Acquire).is_ok() {
                self.counts[slot].store(0, Ordering::Release);
            }
        }
        self.counts[slot].fetch_add(1, Ordering::AcqRel);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Events recorded within the trailing `window` from "now".
    pub fn count_over(&self, window: Duration) -> u64 {
        self.count_over_at(window, epoch().elapsed())
    }

    /// Events within the trailing `window` ending at `now` (an offset
    /// from the process epoch).
    pub fn count_over_at(&self, window: Duration, now: Duration) -> u64 {
        let now_sec = now.as_secs();
        let span = window.as_secs().min(SLOTS as u64 - 1);
        let oldest = now_sec.saturating_sub(span);
        let mut sum = 0;
        for i in 0..SLOTS {
            let stamp = self.stamps[i].load(Ordering::Acquire);
            if stamp != u64::MAX && stamp >= oldest && stamp <= now_sec {
                sum += self.counts[i].load(Ordering::Acquire);
            }
        }
        sum
    }

    /// Events per second over the trailing `window`.
    pub fn rate_over(&self, window: Duration) -> f64 {
        self.count_over(window) as f64 / window.as_secs_f64().max(1e-9)
    }

    /// All-time event total.
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }
}

/// The serving plane's SLO counters.
pub struct Slo {
    /// Queries that exhausted their deadline budget.
    pub deadline_miss: BurnWindow,
    /// Queries shed by admission control.
    pub shed: BurnWindow,
}

/// The process-global SLO counters.
pub fn slo() -> &'static Slo {
    static S: OnceLock<Slo> = OnceLock::new();
    S.get_or_init(|| Slo { deadline_miss: BurnWindow::new(), shed: BurnWindow::new() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_sums_only_recent_seconds() {
        let w = BurnWindow::new();
        let t = |s| Duration::from_secs(s);
        w.record_at(t(100));
        w.record_at(t(100));
        w.record_at(t(105));
        w.record_at(t(150));
        assert_eq!(w.count_over_at(Duration::from_secs(10), t(107)), 3);
        assert_eq!(w.count_over_at(Duration::from_secs(10), t(155)), 1);
        assert_eq!(w.count_over_at(Duration::from_secs(60), t(155)), 4);
        assert_eq!(w.count_over_at(Duration::from_secs(60), t(170)), 1);
        assert_eq!(w.total(), 4);
    }

    #[test]
    fn stale_slots_are_zeroed_on_reuse() {
        let w = BurnWindow::new();
        let t = |s| Duration::from_secs(s);
        // Second 5 and second 5 + SLOTS share a slot.
        w.record_at(t(5));
        w.record_at(t(5));
        w.record_at(t(5 + SLOTS as u64));
        assert_eq!(w.count_over_at(Duration::from_secs(10), t(7 + SLOTS as u64)), 1);
        assert_eq!(w.total(), 3);
    }

    #[test]
    fn concurrent_records_are_all_counted_within_one_second() {
        let w = BurnWindow::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..500 {
                        w.record_at(Duration::from_secs(33));
                    }
                });
            }
        });
        assert_eq!(w.count_over_at(Duration::from_secs(10), Duration::from_secs(34)), 2000);
        assert_eq!(w.total(), 2000);
    }

    #[test]
    fn global_slo_counters_exist_and_rate_is_finite() {
        slo().shed.record();
        slo().deadline_miss.record();
        assert!(slo().shed.total() >= 1);
        assert!(slo().shed.rate_over(SHORT_WINDOW).is_finite());
        assert!(LONG_WINDOW.as_secs() < SLOTS as u64);
    }
}
