//! Corpus substrate: synthetic web corpora, URL metadata, and the
//! compression pipeline behind Tiptoe's URL service (paper §5, §8.1).
//!
//! The paper evaluates on the C4 crawl (364M pages) and LAION-400M;
//! neither is available here, so [`synth`] generates topic-structured
//! corpora with URLs and MS-MARCO-like query/answer pairs (see
//! `DESIGN.md` §2 for why this preserves the evaluation's shape).
//!
//! [`tzip`] is a self-contained LZ77 + canonical-Huffman codec standing
//! in for zlib: the URL service compresses ~880 URLs at a time so that
//! each URL costs ~22 bytes (paper §5). [`batch`] implements that
//! grouping: URLs ordered by content (cluster), batched under both a
//! count and a compressed-size cap (≤ 40 KiB per PIR record), with
//! over-long URLs dropped.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod synth;
pub mod tzip;
