//! A self-contained LZ77 + canonical-Huffman codec ("tzip").
//!
//! Stands in for zlib in the URL-batch compression of the paper's §5
//! ("we assemble URLs into batches and compress roughly 880 of them at
//! a time using zlib"). The format is DEFLATE-shaped but simpler:
//!
//! - greedy LZ77 over a 32 KiB window with hash-chain match finding,
//! - DEFLATE's length/distance bucket tables with extra bits,
//! - two canonical Huffman alphabets (literal/length and distance)
//!   whose code lengths travel in an RLE-compressed header,
//! - a bit-level tree-walking decoder (no code-length limit needed).

/// Window size for back-references.
const WINDOW: usize = 32 * 1024;
/// Minimum and maximum match lengths.
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 258;
/// Maximum hash-chain probes per position.
const MAX_CHAIN: usize = 64;
/// End-of-block symbol in the literal/length alphabet.
const EOB: usize = 256;
/// Literal/length alphabet size (256 literals + EOB + 29 length codes).
const NUM_LITLEN: usize = 286;
/// Distance alphabet size.
const NUM_DIST: usize = 30;

/// DEFLATE length-code base values (symbol 257 + i encodes lengths
/// starting at `LEN_BASE[i]` with `LEN_EXTRA[i]` extra bits).
const LEN_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115,
    131, 163, 195, 227, 258,
];
const LEN_EXTRA: [u8; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12,
    13, 13,
];

/// Decompression failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TzipError {
    /// The input ended before the stream was complete.
    Truncated,
    /// The header or bitstream is malformed.
    Corrupt(&'static str),
}

impl std::fmt::Display for TzipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TzipError::Truncated => write!(f, "tzip stream truncated"),
            TzipError::Corrupt(what) => write!(f, "tzip stream corrupt: {what}"),
        }
    }
}

impl std::error::Error for TzipError {}

// ---------------------------------------------------------------------
// LZ77
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Token {
    Literal(u8),
    Match { len: u16, dist: u16 },
}

fn hash3(data: &[u8], i: usize) -> usize {
    let h = (data[i] as u32)
        .wrapping_mul(0x9e37)
        .wrapping_add((data[i + 1] as u32).wrapping_mul(0x79b9))
        .wrapping_add((data[i + 2] as u32).wrapping_mul(0x7f4a));
    (h as usize) & 0xffff
}

/// Greedy LZ77 with hash chains.
fn lz77(data: &[u8]) -> Vec<Token> {
    let mut tokens = Vec::new();
    if data.is_empty() {
        return tokens;
    }
    let mut head = vec![usize::MAX; 1 << 16];
    let mut prev = vec![usize::MAX; data.len()];
    let mut i = 0usize;
    while i < data.len() {
        if i + MIN_MATCH > data.len() {
            tokens.push(Token::Literal(data[i]));
            i += 1;
            continue;
        }
        let h = hash3(data, i);
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        let mut cand = head[h];
        let mut probes = 0;
        while cand != usize::MAX && probes < MAX_CHAIN && i - cand <= WINDOW {
            let max_here = (data.len() - i).min(MAX_MATCH);
            let mut l = 0usize;
            while l < max_here && data[cand + l] == data[i + l] {
                l += 1;
            }
            if l > best_len {
                best_len = l;
                best_dist = i - cand;
                if l == max_here {
                    break;
                }
            }
            cand = prev[cand];
            probes += 1;
        }
        if best_len >= MIN_MATCH {
            tokens.push(Token::Match { len: best_len as u16, dist: best_dist as u16 });
            // Insert hash entries for every covered position.
            let end = (i + best_len).min(data.len().saturating_sub(MIN_MATCH - 1));
            for (j, slot) in prev.iter_mut().enumerate().take(end).skip(i) {
                let hj = hash3(data, j);
                *slot = head[hj];
                head[hj] = j;
            }
            i += best_len;
        } else {
            tokens.push(Token::Literal(data[i]));
            prev[i] = head[h];
            head[h] = i;
            i += 1;
        }
    }
    tokens
}

/// Maps a match length to (symbol offset in 0..29, extra bits value).
fn length_code(len: u16) -> (usize, u32, u8) {
    debug_assert!((MIN_MATCH as u16..=MAX_MATCH as u16).contains(&len));
    let mut idx = LEN_BASE.partition_point(|&b| b <= len) - 1;
    // Length 258 must use the dedicated code 28 rather than 227+extra.
    if len == 258 {
        idx = 28;
    }
    (idx, (len - LEN_BASE[idx]) as u32, LEN_EXTRA[idx])
}

fn dist_code(dist: u16) -> (usize, u32, u8) {
    debug_assert!(dist >= 1);
    let idx = DIST_BASE.partition_point(|&b| b <= dist) - 1;
    (idx, (dist - DIST_BASE[idx]) as u32, DIST_EXTRA[idx])
}

// ---------------------------------------------------------------------
// Canonical Huffman
// ---------------------------------------------------------------------

/// Computes Huffman code lengths from symbol frequencies (0 for unused
/// symbols). Uses the standard two-queue construction; no length limit
/// is imposed (the decoder walks a tree bit by bit).
fn huffman_lengths(freqs: &[u64]) -> Vec<u8> {
    let n = freqs.len();
    let used: Vec<usize> = (0..n).filter(|&s| freqs[s] > 0).collect();
    let mut lengths = vec![0u8; n];
    match used.len() {
        0 => return lengths,
        1 => {
            lengths[used[0]] = 1;
            return lengths;
        }
        _ => {}
    }
    // Heap of (freq, node). Leaves are 0..n, internal nodes follow.
    #[derive(PartialEq, Eq)]
    struct Node(u64, usize);
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            other.0.cmp(&self.0).then(other.1.cmp(&self.1))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    let mut heap = std::collections::BinaryHeap::new();
    let mut parents: Vec<usize> = vec![usize::MAX; n];
    for &s in &used {
        heap.push(Node(freqs[s], s));
    }
    while heap.len() > 1 {
        let a = heap.pop().expect("len > 1");
        let b = heap.pop().expect("len > 1");
        let id = parents.len();
        parents.push(usize::MAX);
        parents[a.1] = id;
        parents[b.1] = id;
        heap.push(Node(a.0 + b.0, id));
    }
    for &s in &used {
        let mut depth = 0u8;
        let mut node = s;
        while parents[node] != usize::MAX {
            node = parents[node];
            depth += 1;
        }
        lengths[s] = depth;
    }
    lengths
}

/// Assigns canonical codes from code lengths: codes are ordered by
/// (length, symbol), MSB-first. Arithmetic is 64-bit so that hostile
/// headers (lengths up to 255 before validation) cannot overflow.
fn canonical_codes(lengths: &[u8]) -> Vec<u64> {
    let max_len = lengths.iter().copied().max().unwrap_or(0) as usize;
    let mut bl_count = vec![0u64; max_len + 1];
    for &l in lengths {
        if l > 0 {
            bl_count[l as usize] += 1;
        }
    }
    let mut next_code = vec![0u64; max_len + 2];
    let mut code = 0u64;
    for bits in 1..=max_len {
        code = (code + bl_count[bits - 1]).wrapping_shl(1);
        next_code[bits] = code;
    }
    lengths
        .iter()
        .map(|&l| {
            if l == 0 {
                0
            } else {
                let c = next_code[l as usize];
                next_code[l as usize] += 1;
                c
            }
        })
        .collect()
}

/// A binary decoding tree for one alphabet.
struct DecodeTree {
    /// `nodes[i] = (left, right)`; leaves are encoded as `symbol + LEAF`.
    nodes: Vec<(u32, u32)>,
}

const LEAF: u32 = 1 << 30;
const EMPTY: u32 = u32::MAX;

/// Upper bound on accepted code lengths: our own encoder never exceeds
/// ~40 bits even on pathological inputs, and the tree-walk decoder
/// needs lengths to fit a u64 code.
const MAX_CODE_LEN: u8 = 58;

impl DecodeTree {
    fn build(lengths: &[u8]) -> Result<Self, TzipError> {
        if lengths.iter().any(|&l| l > MAX_CODE_LEN) {
            return Err(TzipError::Corrupt("code length out of range"));
        }
        let codes = canonical_codes(lengths);
        let mut nodes = vec![(EMPTY, EMPTY)];
        for (sym, (&len, &code)) in lengths.iter().zip(codes.iter()).enumerate() {
            if len == 0 {
                continue;
            }
            let mut node = 0usize;
            for bit_idx in (0..len).rev() {
                let bit = (code >> bit_idx) & 1;
                let slot = if bit == 0 { nodes[node].0 } else { nodes[node].1 };
                let next = if bit_idx == 0 {
                    // Leaf.
                    if slot != EMPTY {
                        return Err(TzipError::Corrupt("overlapping codes"));
                    }
                    sym as u32 + LEAF
                } else if slot == EMPTY {
                    nodes.push((EMPTY, EMPTY));
                    (nodes.len() - 1) as u32
                } else if slot >= LEAF {
                    return Err(TzipError::Corrupt("code under a leaf"));
                } else {
                    slot
                };
                if bit == 0 {
                    nodes[node].0 = next;
                } else {
                    nodes[node].1 = next;
                }
                if bit_idx > 0 {
                    node = next as usize;
                }
            }
        }
        Ok(Self { nodes })
    }

    fn decode(&self, reader: &mut BitReader<'_>) -> Result<usize, TzipError> {
        let mut node = 0usize;
        loop {
            let bit = reader.read_bit()?;
            let next = if bit == 0 { self.nodes[node].0 } else { self.nodes[node].1 };
            if next == EMPTY {
                return Err(TzipError::Corrupt("invalid code path"));
            }
            if next >= LEAF {
                return Ok((next - LEAF) as usize);
            }
            node = next as usize;
        }
    }
}

// ---------------------------------------------------------------------
// Bit I/O (MSB-first)
// ---------------------------------------------------------------------

struct BitWriter {
    bytes: Vec<u8>,
    bit_pos: u8,
}

impl BitWriter {
    fn new() -> Self {
        Self { bytes: Vec::new(), bit_pos: 0 }
    }

    fn write_bits(&mut self, value: u64, count: u8) {
        for i in (0..count).rev() {
            let bit = (value >> i) & 1;
            if self.bit_pos == 0 {
                self.bytes.push(0);
            }
            let last = self.bytes.len() - 1;
            self.bytes[last] |= (bit as u8) << (7 - self.bit_pos);
            self.bit_pos = (self.bit_pos + 1) % 8;
        }
    }

    fn finish(self) -> Vec<u8> {
        self.bytes
    }
}

struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn read_bit(&mut self) -> Result<u32, TzipError> {
        let byte = self.pos / 8;
        if byte >= self.bytes.len() {
            return Err(TzipError::Truncated);
        }
        let bit = (self.bytes[byte] >> (7 - (self.pos % 8))) & 1;
        self.pos += 1;
        Ok(bit as u32)
    }

    fn read_bits(&mut self, count: u8) -> Result<u32, TzipError> {
        let mut v = 0u32;
        for _ in 0..count {
            v = (v << 1) | self.read_bit()?;
        }
        Ok(v)
    }
}

// ---------------------------------------------------------------------
// Header: RLE-coded code lengths
// ---------------------------------------------------------------------

fn write_lengths(out: &mut Vec<u8>, lengths: &[u8]) {
    // Runs of zeros as (0, run-1); other lengths verbatim.
    let mut i = 0;
    while i < lengths.len() {
        if lengths[i] == 0 {
            let mut run = 1usize;
            while i + run < lengths.len() && lengths[i + run] == 0 && run < 256 {
                run += 1;
            }
            out.push(0);
            out.push((run - 1) as u8);
            i += run;
        } else {
            out.push(lengths[i]);
            i += 1;
        }
    }
}

fn read_lengths(data: &[u8], pos: &mut usize, n: usize) -> Result<Vec<u8>, TzipError> {
    let mut lengths = Vec::with_capacity(n);
    while lengths.len() < n {
        let b = *data.get(*pos).ok_or(TzipError::Truncated)?;
        *pos += 1;
        if b == 0 {
            let run = *data.get(*pos).ok_or(TzipError::Truncated)? as usize + 1;
            *pos += 1;
            if lengths.len() + run > n {
                return Err(TzipError::Corrupt("zero run overflows alphabet"));
            }
            lengths.extend(std::iter::repeat_n(0, run));
        } else {
            lengths.push(b);
        }
    }
    Ok(lengths)
}

// ---------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------

/// Compresses a byte blob.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let tokens = lz77(data);

    // Frequency counts.
    let mut litlen_freq = vec![0u64; NUM_LITLEN];
    let mut dist_freq = vec![0u64; NUM_DIST];
    for t in &tokens {
        match *t {
            Token::Literal(b) => litlen_freq[b as usize] += 1,
            Token::Match { len, dist } => {
                litlen_freq[257 + length_code(len).0] += 1;
                dist_freq[dist_code(dist).0] += 1;
            }
        }
    }
    litlen_freq[EOB] += 1;

    let litlen_lengths = huffman_lengths(&litlen_freq);
    let dist_lengths = huffman_lengths(&dist_freq);
    let litlen_codes = canonical_codes(&litlen_lengths);
    let dist_codes = canonical_codes(&dist_lengths);

    let mut out = Vec::new();
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    write_lengths(&mut out, &litlen_lengths);
    write_lengths(&mut out, &dist_lengths);

    let mut writer = BitWriter::new();
    for t in &tokens {
        match *t {
            Token::Literal(b) => {
                writer.write_bits(litlen_codes[b as usize], litlen_lengths[b as usize]);
            }
            Token::Match { len, dist } => {
                let (li, lextra, lbits) = length_code(len);
                writer.write_bits(litlen_codes[257 + li], litlen_lengths[257 + li]);
                writer.write_bits(lextra as u64, lbits);
                let (di, dextra, dbits) = dist_code(dist);
                writer.write_bits(dist_codes[di], dist_lengths[di]);
                writer.write_bits(dextra as u64, dbits);
            }
        }
    }
    writer.write_bits(litlen_codes[EOB], litlen_lengths[EOB]);
    out.extend_from_slice(&writer.finish());
    out
}

/// Decompresses a tzip blob.
///
/// # Errors
///
/// Returns [`TzipError`] if the stream is truncated or malformed.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, TzipError> {
    if data.len() < 4 {
        return Err(TzipError::Truncated);
    }
    let expected_len =
        u32::from_le_bytes(data[..4].try_into().expect("4 bytes checked")) as usize;
    // The 4-byte header is attacker-controlled: bound the declared
    // size (URL batches are ≤ ~40 KiB; 64 MiB is generous for every
    // caller) and never pre-reserve more than the *compressed* input
    // could plausibly expand to, so a hostile header cannot force a
    // multi-gigabyte allocation before the first decoded byte.
    const MAX_DECLARED_LEN: usize = 1 << 26;
    if expected_len > MAX_DECLARED_LEN {
        return Err(TzipError::Corrupt("declared size exceeds the decoder limit"));
    }
    let mut pos = 4usize;
    let litlen_lengths = read_lengths(data, &mut pos, NUM_LITLEN)?;
    let dist_lengths = read_lengths(data, &mut pos, NUM_DIST)?;
    let litlen_tree = DecodeTree::build(&litlen_lengths)?;
    let dist_tree = DecodeTree::build(&dist_lengths)?;

    let mut reader = BitReader::new(&data[pos..]);
    let mut out = Vec::with_capacity(expected_len.min(data.len().saturating_mul(256).max(1 << 12)));
    loop {
        let sym = litlen_tree.decode(&mut reader)?;
        if sym == EOB {
            break;
        }
        if sym < 256 {
            out.push(sym as u8);
        } else {
            let li = sym - 257;
            if li >= 29 {
                return Err(TzipError::Corrupt("bad length symbol"));
            }
            let len = LEN_BASE[li] as usize + reader.read_bits(LEN_EXTRA[li])? as usize;
            let di = dist_tree.decode(&mut reader)?;
            if di >= 30 {
                return Err(TzipError::Corrupt("bad distance symbol"));
            }
            let dist = DIST_BASE[di] as usize + reader.read_bits(DIST_EXTRA[di])? as usize;
            if dist == 0 || dist > out.len() {
                return Err(TzipError::Corrupt("distance beyond output"));
            }
            let start = out.len() - dist;
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        }
        if out.len() > expected_len {
            return Err(TzipError::Corrupt("output exceeds declared size"));
        }
    }
    if out.len() != expected_len {
        return Err(TzipError::Corrupt("output shorter than declared size"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use tiptoe_math::rng::seeded_rng;

    #[test]
    fn roundtrip_simple_strings() {
        for s in [
            &b""[..],
            b"a",
            b"aaaaaaaaaaaaaaaaaaaaaaaaaaa",
            b"hello world hello world hello world",
            b"abcabcabcabcabcabcabcabcabcabc",
        ] {
            let c = compress(s);
            assert_eq!(decompress(&c).expect("valid stream"), s);
        }
    }

    #[test]
    fn roundtrip_random_bytes() {
        let mut rng = seeded_rng(1);
        for len in [1usize, 7, 100, 1000, 5000] {
            let data: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            let c = compress(&data);
            assert_eq!(decompress(&c).expect("valid stream"), data, "len {len}");
        }
    }

    #[test]
    fn roundtrip_long_repetitive_data() {
        // Exercises long matches (len 258) and large distances.
        let mut data = Vec::new();
        for i in 0..2000u32 {
            data.extend_from_slice(format!("https://example-{}.com/page/", i % 37).as_bytes());
        }
        let c = compress(&data);
        assert_eq!(decompress(&c).expect("valid stream"), data);
        assert!(c.len() < data.len() / 4, "repetitive data should compress 4x+");
    }

    #[test]
    fn urls_compress_to_tens_of_bytes_each() {
        // The paper's §5 claim: batching ~880 URLs gets ~22 bytes/URL.
        let mut rng = seeded_rng(2);
        let domains = ["example.com", "news.site.org", "shop.example.net", "blog.platform.io"];
        let mut blob = Vec::new();
        let n = 880;
        for _ in 0..n {
            let d = domains[rng.gen_range(0..domains.len())];
            let url = format!(
                "https://www.{}/articles/{}/section-{}/page-{}.html\n",
                d,
                rng.gen_range(1000..9999),
                rng.gen_range(0..50),
                rng.gen_range(0..1000),
            );
            blob.extend_from_slice(url.as_bytes());
        }
        let c = compress(&blob);
        let per_url = c.len() as f64 / n as f64;
        assert!(per_url < 35.0, "got {per_url:.1} bytes/URL");
        assert_eq!(decompress(&c).expect("valid stream"), blob);
    }

    #[test]
    fn truncated_stream_is_detected() {
        let c = compress(b"some reasonably long input string for compression");
        for cut in [0, 3, c.len() / 2, c.len() - 1] {
            assert!(decompress(&c[..cut]).is_err(), "cut at {cut} not detected");
        }
    }

    #[test]
    fn corrupt_declared_length_is_detected() {
        let mut c = compress(b"hello hello hello");
        c[0] ^= 0xff; // Mangle the declared size.
        assert!(decompress(&c).is_err());
    }

    #[test]
    fn length_code_table_is_consistent() {
        for len in MIN_MATCH as u16..=MAX_MATCH as u16 {
            let (idx, extra, bits) = length_code(len);
            assert!(idx < 29);
            assert_eq!(LEN_BASE[idx] + (extra as u16), len);
            assert!(extra < (1 << bits) || bits == 0 && extra == 0, "len {len}");
        }
    }

    #[test]
    fn dist_code_table_is_consistent() {
        for dist in 1..=32768u32 {
            let (idx, extra, bits) = dist_code(dist as u16);
            assert!(idx < 30);
            assert_eq!(DIST_BASE[idx] as u32 + extra, dist);
            assert!(bits == 0 && extra == 0 || extra < (1 << bits), "dist {dist}");
        }
    }

    #[test]
    fn single_symbol_alphabet_roundtrips() {
        let data = vec![b'x'; 500];
        let c = compress(&data);
        assert_eq!(decompress(&c).expect("valid stream"), data);
    }
}
