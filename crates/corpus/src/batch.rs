//! URL batching for the PIR database (paper §5).
//!
//! URLs are grouped **by content** (documents of the same cluster stay
//! together) so that when a client fetches the batch containing its
//! best-matching document, the other top matches are likely in the same
//! batch. Each batch holds up to ~880 URLs, is compressed with
//! [`crate::tzip`], must not exceed the PIR record budget (≤ 40 KiB,
//! Appendix C), and drops URLs longer than 500 characters.

use crate::tzip;

/// Batching limits (paper values).
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Maximum URLs per batch (≈880 in §5).
    pub max_urls: usize,
    /// Maximum compressed bytes per batch (40 KiB in Appendix C).
    pub max_compressed_bytes: usize,
    /// URLs longer than this are dropped (500 in §5).
    pub max_url_len: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self { max_urls: 880, max_compressed_bytes: 40 << 10, max_url_len: 500 }
    }
}

/// One compressed URL batch.
#[derive(Debug, Clone)]
pub struct UrlBatch {
    /// Compressed payload (the PIR record).
    pub compressed: Vec<u8>,
    /// Document IDs covered, in order.
    pub doc_ids: Vec<u32>,
}

impl UrlBatch {
    /// Decompresses into `(doc_id, url)` pairs.
    ///
    /// # Errors
    ///
    /// Returns an error if the payload is corrupt.
    pub fn decode(&self) -> Result<Vec<(u32, String)>, tzip::TzipError> {
        let raw = tzip::decompress(&self.compressed)?;
        let text = String::from_utf8_lossy(&raw);
        Ok(self
            .doc_ids
            .iter()
            .zip(text.split('\n'))
            .map(|(&id, url)| (id, url.to_owned()))
            .collect())
    }
}

/// The output of batching: batches plus a doc → batch index.
#[derive(Debug, Clone)]
pub struct BatchedUrls {
    /// All batches, in content order.
    pub batches: Vec<UrlBatch>,
    /// `doc_to_batch[doc] = Some(batch index)`, or `None` if the URL
    /// was dropped (over-long).
    pub doc_to_batch: Vec<Option<u32>>,
}

impl BatchedUrls {
    /// Builds batches from `(doc_id, url)` pairs already ordered by
    /// content (e.g. cluster-major order).
    ///
    /// # Panics
    ///
    /// Panics if `num_docs` is smaller than the largest doc ID + 1.
    pub fn build(ordered: &[(u32, &str)], num_docs: usize, config: &BatchConfig) -> Self {
        let mut doc_to_batch = vec![None; num_docs];
        let mut batches: Vec<UrlBatch> = Vec::new();
        let mut pending: Vec<(u32, &str)> = Vec::new();

        let flush = |pending: &mut Vec<(u32, &str)>,
                     batches: &mut Vec<UrlBatch>,
                     doc_to_batch: &mut Vec<Option<u32>>| {
            if pending.is_empty() {
                return;
            }
            let blob: String =
                pending.iter().map(|(_, u)| *u).collect::<Vec<_>>().join("\n");
            let compressed = tzip::compress(blob.as_bytes());
            let idx = batches.len() as u32;
            for &(doc, _) in pending.iter() {
                assert!((doc as usize) < doc_to_batch.len(), "doc id out of range");
                doc_to_batch[doc as usize] = Some(idx);
            }
            batches.push(UrlBatch {
                compressed,
                doc_ids: pending.iter().map(|&(d, _)| d).collect(),
            });
            pending.clear();
        };

        // Conservative per-URL compressed estimate to avoid a trial
        // compression per URL: assume ~45% ratio, then verify at flush.
        for &(doc, url) in ordered {
            if url.len() > config.max_url_len {
                continue; // Dropped, per §5.
            }
            pending.push((doc, url));
            let est: usize = pending.iter().map(|(_, u)| u.len() * 45 / 100 + 2).sum();
            if pending.len() >= config.max_urls || est >= config.max_compressed_bytes {
                flush(&mut pending, &mut batches, &mut doc_to_batch);
            }
        }
        flush(&mut pending, &mut batches, &mut doc_to_batch);

        // Verify the hard cap; split any violating batch in half.
        let mut i = 0;
        while i < batches.len() {
            if batches[i].compressed.len() > config.max_compressed_bytes
                && batches[i].doc_ids.len() > 1
            {
                let batch = batches.remove(i);
                let decoded = batch.decode().expect("self-produced batch decodes");
                let mid = decoded.len() / 2;
                for (offset, half) in [&decoded[..mid], &decoded[mid..]].iter().enumerate() {
                    let blob: String =
                        half.iter().map(|(_, u)| u.as_str()).collect::<Vec<_>>().join("\n");
                    let idx = (i + offset) as u32;
                    for (d, _) in half.iter() {
                        doc_to_batch[*d as usize] = Some(idx);
                    }
                    batches.insert(
                        i + offset,
                        UrlBatch {
                            compressed: tzip::compress(blob.as_bytes()),
                            doc_ids: half.iter().map(|(d, _)| *d).collect(),
                        },
                    );
                }
                // Re-index everything after the split.
                for (bi, b) in batches.iter().enumerate().skip(i + 2) {
                    for &d in &b.doc_ids {
                        doc_to_batch[d as usize] = Some(bi as u32);
                    }
                }
            } else {
                i += 1;
            }
        }

        Self { batches, doc_to_batch }
    }

    /// The PIR records (compressed payloads).
    pub fn records(&self) -> Vec<Vec<u8>> {
        self.batches.iter().map(|b| b.compressed.clone()).collect()
    }

    /// Mean compressed bytes per (kept) URL — the §5 "22 bytes to
    /// represent on average" statistic.
    pub fn bytes_per_url(&self) -> f64 {
        let urls: usize = self.batches.iter().map(|b| b.doc_ids.len()).sum();
        if urls == 0 {
            return 0.0;
        }
        let bytes: usize = self.batches.iter().map(|b| b.compressed.len()).sum();
        bytes as f64 / urls as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn urls(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| {
                format!(
                    "https://www.site-{}.example.org/section/{}/article-{}",
                    i % 20,
                    i % 7,
                    i
                )
            })
            .collect()
    }

    #[test]
    fn batches_respect_count_cap() {
        let u = urls(250);
        let pairs: Vec<(u32, &str)> = u.iter().enumerate().map(|(i, s)| (i as u32, s.as_str())).collect();
        let cfg = BatchConfig { max_urls: 100, ..Default::default() };
        let batched = BatchedUrls::build(&pairs, 250, &cfg);
        assert!(batched.batches.len() >= 3);
        for b in &batched.batches {
            assert!(b.doc_ids.len() <= 100);
        }
    }

    #[test]
    fn every_kept_url_is_recoverable() {
        let u = urls(120);
        let pairs: Vec<(u32, &str)> = u.iter().enumerate().map(|(i, s)| (i as u32, s.as_str())).collect();
        let batched = BatchedUrls::build(&pairs, 120, &BatchConfig::default());
        for (doc, url) in &pairs {
            let batch_idx = batched.doc_to_batch[*doc as usize].expect("kept") as usize;
            let decoded = batched.batches[batch_idx].decode().expect("decodes");
            let found = decoded.iter().find(|(d, _)| d == doc).expect("doc in batch");
            assert_eq!(found.1, *url);
        }
    }

    #[test]
    fn overlong_urls_are_dropped() {
        let long = "https://example.com/".to_owned() + &"x".repeat(600);
        let short = "https://example.com/ok".to_owned();
        let pairs = vec![(0u32, long.as_str()), (1u32, short.as_str())];
        let batched = BatchedUrls::build(&pairs, 2, &BatchConfig::default());
        assert!(batched.doc_to_batch[0].is_none());
        assert!(batched.doc_to_batch[1].is_some());
    }

    #[test]
    fn compressed_size_cap_is_enforced() {
        // Incompressible-ish URLs force the size-based flush.
        let u: Vec<String> = (0..4000)
            .map(|i| format!("https://r{:x}.example.net/{:x}{:x}", i * 2654435761u64 % 997, i * 40503 % 104729, i))
            .collect();
        let pairs: Vec<(u32, &str)> = u.iter().enumerate().map(|(i, s)| (i as u32, s.as_str())).collect();
        let cfg = BatchConfig { max_urls: 100_000, max_compressed_bytes: 4096, max_url_len: 500 };
        let batched = BatchedUrls::build(&pairs, 4000, &cfg);
        assert!(batched.batches.len() > 1);
        for b in &batched.batches {
            assert!(b.compressed.len() <= 4096, "batch of {} bytes", b.compressed.len());
        }
    }

    #[test]
    fn bytes_per_url_is_small_for_batched_urls() {
        let u = urls(880);
        let pairs: Vec<(u32, &str)> = u.iter().enumerate().map(|(i, s)| (i as u32, s.as_str())).collect();
        let batched = BatchedUrls::build(&pairs, 880, &BatchConfig::default());
        let per_url = batched.bytes_per_url();
        assert!(per_url < 30.0, "got {per_url:.1} bytes/URL");
    }

    #[test]
    fn empty_input_produces_no_batches() {
        let batched = BatchedUrls::build(&[], 0, &BatchConfig::default());
        assert!(batched.batches.is_empty());
        assert_eq!(batched.bytes_per_url(), 0.0);
    }
}
