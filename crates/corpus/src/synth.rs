//! Synthetic web-corpus and benchmark generation (stands in for C4 and
//! MS MARCO; see `DESIGN.md` §2).
//!
//! Documents come from a topic model: a Zipf-distributed vocabulary, a
//! set of topics each boosting its own word subset, documents drawn
//! from one or two topics with power-law lengths, and a generated URL.
//! Benchmark queries are built MS-MARCO-style: a held-out query is a
//! short, noisy extract of a specific document's salient words, and
//! that document is the query's human-chosen answer.

use rand::seq::SliceRandom;
use rand::Rng;
use tiptoe_math::rng::{derive_seed, seeded_rng};

/// Corpus generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct CorpusConfig {
    /// Number of documents.
    pub num_docs: usize,
    /// Number of topics.
    pub num_topics: usize,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Words per topic's boosted subset.
    pub topic_vocab: usize,
    /// Document length bounds (tokens).
    pub min_len: usize,
    /// Maximum document length (tokens).
    pub max_len: usize,
    /// Fraction of query tokens replaced by other words from the
    /// answer document's topic ("paraphrase" noise). Real MS MARCO
    /// queries rephrase rather than quote their answers; lexical
    /// retrievers degrade with this noise while embedding retrievers
    /// (topic-sensitive) largely keep up.
    pub paraphrase_frac: f64,
    /// RNG seed.
    pub seed: u64,
}

impl CorpusConfig {
    /// A small default suitable for tests and examples.
    pub fn small(num_docs: usize, seed: u64) -> Self {
        Self {
            num_docs,
            num_topics: (num_docs / 40).clamp(4, 400),
            vocab_size: 8000,
            topic_vocab: 60,
            min_len: 30,
            max_len: 160,
            paraphrase_frac: 0.35,
            seed,
        }
    }

    /// A variant whose queries are literal extracts (no paraphrasing).
    pub fn literal(num_docs: usize, seed: u64) -> Self {
        Self { paraphrase_frac: 0.0, ..Self::small(num_docs, seed) }
    }
}

/// A synthetic web document.
#[derive(Debug, Clone)]
pub struct Document {
    /// Document identifier (index in the corpus).
    pub id: u32,
    /// The page URL (the metadata Tiptoe's URL service serves).
    pub url: String,
    /// Page text.
    pub text: String,
    /// Ground-truth topic (used only by diagnostics, never by search).
    pub topic: u32,
}

/// A benchmark query with its human-chosen answer document.
#[derive(Debug, Clone)]
pub struct BenchmarkQuery {
    /// The query string.
    pub text: String,
    /// The relevant (answer) document ID.
    pub relevant: u32,
}

/// A generated corpus plus its query benchmark.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// All documents.
    pub docs: Vec<Document>,
    /// Held-out benchmark queries.
    pub queries: Vec<BenchmarkQuery>,
}

impl Corpus {
    /// Total bytes of document text (for cost reporting).
    pub fn text_bytes(&self) -> u64 {
        self.docs.iter().map(|d| d.text.len() as u64).sum()
    }

    /// Document texts as a slice-friendly vector.
    pub fn texts(&self) -> Vec<&str> {
        self.docs.iter().map(|d| d.text.as_str()).collect()
    }

    /// Document URLs.
    pub fn urls(&self) -> Vec<&str> {
        self.docs.iter().map(|d| d.url.as_str()).collect()
    }
}

/// Deterministic word list: `w<k>` tokens plus a few readable stems so
/// sampled text looks web-like.
fn word(vocab_size: usize, k: usize) -> String {
    const STEMS: [&str; 24] = [
        "health", "market", "travel", "recipe", "engine", "school", "museum", "climate",
        "finance", "garden", "soccer", "galaxy", "doctor", "camera", "island", "theater",
        "history", "coding", "music", "forest", "planet", "archive", "kitchen", "bridge",
    ];
    if k < STEMS.len() {
        STEMS[k].to_owned()
    } else {
        format!("w{}", k % vocab_size)
    }
}

/// Generates a corpus and benchmark from a configuration.
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero docs/topics/vocab).
pub fn generate(config: &CorpusConfig, num_queries: usize) -> Corpus {
    assert!(config.num_docs > 0 && config.num_topics > 0 && config.vocab_size > 0);
    assert!(config.min_len >= 3 && config.max_len >= config.min_len);
    let mut rng = seeded_rng(derive_seed(config.seed, 0xc0_1d));

    // Zipf weights over the global vocabulary.
    let zipf: Vec<f64> = (0..config.vocab_size).map(|k| 1.0 / (k as f64 + 1.0)).collect();
    let zipf_total: f64 = zipf.iter().sum();

    // Each topic boosts a random word subset.
    let topics: Vec<Vec<usize>> = (0..config.num_topics)
        .map(|_| {
            let mut words: Vec<usize> = (0..config.vocab_size).collect();
            words.shuffle(&mut rng);
            words.truncate(config.topic_vocab);
            words
        })
        .collect();

    let domains = [
        "example.com", "wikihow.net", "newsdaily.org", "stackhelp.io", "medinfo.health",
        "travelog.net", "opencourse.edu", "recipes.kitchen", "cityguide.org", "devdocs.dev",
    ];

    let sample_global = |rng: &mut rand::rngs::StdRng| -> usize {
        let mut t = rng.gen_range(0.0..zipf_total);
        for (k, &w) in zipf.iter().enumerate() {
            if t < w {
                return k;
            }
            t -= w;
        }
        config.vocab_size - 1
    };

    let mut docs = Vec::with_capacity(config.num_docs);
    for id in 0..config.num_docs {
        let topic = rng.gen_range(0..config.num_topics);
        let second_topic =
            if rng.gen_bool(0.3) { Some(rng.gen_range(0..config.num_topics)) } else { None };
        // Power-law length.
        let u: f64 = rng.gen_range(0.0..1.0);
        let len = config.min_len
            + ((config.max_len - config.min_len) as f64 * u * u) as usize;
        let mut tokens = Vec::with_capacity(len);
        for _ in 0..len {
            let r: f64 = rng.gen_range(0.0..1.0);
            let k = if r < 0.55 {
                topics[topic][rng.gen_range(0..config.topic_vocab)]
            } else if r < 0.65 {
                if let Some(t2) = second_topic {
                    topics[t2][rng.gen_range(0..config.topic_vocab)]
                } else {
                    sample_global(&mut rng)
                }
            } else {
                sample_global(&mut rng)
            };
            tokens.push(word(config.vocab_size, k));
        }
        let text = tokens.join(" ");
        let slug: Vec<&str> = tokens.iter().take(4).map(String::as_str).collect();
        let url = format!(
            "https://www.{}/{}/{}-{}",
            domains[id % domains.len()],
            topic,
            slug.join("-"),
            id
        );
        docs.push(Document { id: id as u32, url, text, topic: topic as u32 });
    }

    // Benchmark queries: salient extracts of random documents with noise.
    let mut qrng = seeded_rng(derive_seed(config.seed, 0x9e_e1));
    let mut queries = Vec::with_capacity(num_queries);
    for _ in 0..num_queries {
        let doc = &docs[qrng.gen_range(0..docs.len())];
        let tokens: Vec<&str> = doc.text.split(' ').collect();
        let q_len = qrng.gen_range(2..=5).min(tokens.len());
        let start = qrng.gen_range(0..=tokens.len() - q_len);
        let mut q_tokens: Vec<String> =
            tokens[start..start + q_len].iter().map(|s| (*s).to_owned()).collect();
        // Paraphrase noise: swap tokens for same-topic words.
        let topic_words = &topics[doc.topic as usize];
        for t in q_tokens.iter_mut() {
            if qrng.gen_bool(config.paraphrase_frac) {
                *t = word(config.vocab_size, topic_words[qrng.gen_range(0..config.topic_vocab)]);
            }
        }
        if qrng.gen_bool(0.3) {
            // Lexical noise: a random global word, as real queries carry
            // terms absent from the answer.
            q_tokens.push(word(config.vocab_size, sample_global(&mut qrng)));
        }
        queries.push(BenchmarkQuery { text: q_tokens.join(" "), relevant: doc.id });
    }

    Corpus { docs, queries }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Corpus {
        generate(&CorpusConfig::small(200, 42), 50)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.docs.len(), b.docs.len());
        assert_eq!(a.docs[7].text, b.docs[7].text);
        assert_eq!(a.queries[3].text, b.queries[3].text);
    }

    #[test]
    fn documents_have_plausible_shape() {
        let c = small();
        assert_eq!(c.docs.len(), 200);
        for d in &c.docs {
            let tokens = d.text.split(' ').count();
            assert!((30..=160).contains(&tokens), "doc {} has {} tokens", d.id, tokens);
            assert!(d.url.starts_with("https://"), "bad url {}", d.url);
        }
        // URLs are unique.
        let mut urls: Vec<&str> = c.docs.iter().map(|d| d.url.as_str()).collect();
        urls.sort_unstable();
        urls.dedup();
        assert_eq!(urls.len(), c.docs.len());
    }

    #[test]
    fn queries_reference_existing_docs() {
        let c = small();
        assert_eq!(c.queries.len(), 50);
        for q in &c.queries {
            assert!((q.relevant as usize) < c.docs.len());
            assert!(!q.text.is_empty());
        }
    }

    #[test]
    fn query_terms_mostly_appear_in_answer() {
        // With paraphrase_frac = 0.35 and a 30% chance of one lexical
        // noise token, the generator's mean per-query overlap sits
        // near 0.77; assert with margin on a sample large enough that
        // seed-to-seed variance cannot flip the verdict.
        let c = generate(&CorpusConfig::small(200, 42), 500);
        let mut overlap_total = 0.0;
        for q in &c.queries {
            let doc = &c.docs[q.relevant as usize];
            let q_terms: Vec<&str> = q.text.split(' ').collect();
            let hits = q_terms.iter().filter(|t| doc.text.contains(*t)).count();
            overlap_total += hits as f64 / q_terms.len() as f64;
        }
        let mean_overlap = overlap_total / c.queries.len() as f64;
        assert!(mean_overlap > 0.7, "queries too noisy: {mean_overlap}");
        assert!(mean_overlap < 0.95, "queries carry no noise: {mean_overlap}");
    }

    #[test]
    fn same_topic_docs_share_vocabulary() {
        let c = generate(&CorpusConfig::small(400, 7), 0);
        // Find two docs of the same topic and one of a different topic;
        // same-topic overlap (set intersection of tokens) should exceed
        // cross-topic overlap on average.
        let mut same = 0.0;
        let mut cross = 0.0;
        let mut same_n = 0;
        let mut cross_n = 0;
        for i in 0..60 {
            for j in (i + 1)..60 {
                let a: std::collections::HashSet<&str> = c.docs[i].text.split(' ').collect();
                let b: std::collections::HashSet<&str> = c.docs[j].text.split(' ').collect();
                let inter = a.intersection(&b).count() as f64 / a.len().min(b.len()) as f64;
                if c.docs[i].topic == c.docs[j].topic {
                    same += inter;
                    same_n += 1;
                } else {
                    cross += inter;
                    cross_n += 1;
                }
            }
        }
        if same_n > 0 && cross_n > 0 {
            assert!(
                same / same_n as f64 > cross / cross_n as f64,
                "topic structure missing: same {same}/{same_n}, cross {cross}/{cross_n}"
            );
        }
    }
}
