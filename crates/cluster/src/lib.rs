//! The clustering pipeline of Tiptoe's batch jobs (paper §3.2, §7).
//!
//! Documents with nearby embeddings are grouped into clusters of
//! roughly equal size; the cluster *centroids* are the only per-corpus
//! state a client must hold (plus the embedding model), and the
//! private nearest-neighbor protocol retrieves scores for exactly one
//! cluster.
//!
//! Following §7, the pipeline:
//!
//! 1. runs k-means (with k-means++ seeding) over a **subsample** of
//!    the corpus to obtain initial centroids,
//! 2. assigns every document to its nearest centroid,
//! 3. **recursively splits** clusters that exceed the target size to
//!    keep the matrix padding waste bounded, and
//! 4. assigns the 20% of documents nearest a second centroid to **two
//!    clusters** (boundary dual-assignment, a ~1.2× index overhead
//!    that buys +0.015 MRR@100 in the paper's Figure 9 ➎).
//!
//! The module also implements the client-side centroid download in a
//! compressed (8-bit quantized) format, matching §3.2's "fetching this
//! data (in a compressed format)".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::seq::SliceRandom;
use rand::Rng;
use tiptoe_embed::vector::{dist2, dot, normalize};
use tiptoe_math::rng::{derive_seed, seeded_rng};

/// Configuration for the clustering pipeline.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Target documents per cluster (the paper uses ~50 000 at
    /// 360M docs; scaled deployments use ~√N).
    pub target_size: usize,
    /// Clusters larger than `split_factor × target_size` are split.
    pub split_factor: f32,
    /// Fraction of documents assigned to a second cluster (0.2 in §7).
    pub dual_assign_frac: f32,
    /// Subsample size for the initial k-means (§7 uses ~10M of 360M).
    pub kmeans_sample: usize,
    /// Lloyd iterations.
    pub kmeans_iters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ClusterConfig {
    /// A deployment-shaped default for a corpus of `n` documents:
    /// cluster size ≈ √n (paper §4.2: "Tiptoe sets the cluster size
    /// proportionally to the square-root of the corpus size").
    pub fn for_corpus(n: usize, seed: u64) -> Self {
        let target = ((n as f64).sqrt().round() as usize).max(4);
        Self {
            target_size: target,
            split_factor: 1.5,
            dual_assign_frac: 0.2,
            kmeans_sample: (n / 4).clamp(64.min(n), 20_000),
            kmeans_iters: 12,
            seed,
        }
    }
}

/// The output of the clustering pipeline.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// Cluster centroids (unit-normalized).
    pub centroids: Vec<Vec<f32>>,
    /// Per-cluster document IDs; a document may appear in up to two
    /// clusters (dual assignment).
    pub members: Vec<Vec<u32>>,
    /// Each document's primary cluster.
    pub primary: Vec<u32>,
}

impl Clustering {
    /// Number of clusters `C`.
    pub fn num_clusters(&self) -> usize {
        self.centroids.len()
    }

    /// Size of the largest cluster (the ranking matrix pads every
    /// cluster column to this height).
    pub fn max_cluster_size(&self) -> usize {
        self.members.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Total member slots across clusters (≥ N because of dual
    /// assignment; the paper reports the ratio as ≈1.2×).
    pub fn total_assignments(&self) -> usize {
        self.members.iter().map(Vec::len).sum()
    }

    /// Index of the centroid nearest (by inner product) to `query` —
    /// the client-local cluster-selection step.
    ///
    /// # Panics
    ///
    /// Panics if there are no clusters.
    pub fn nearest_centroid(&self, query: &[f32]) -> usize {
        assert!(!self.centroids.is_empty(), "no clusters");
        let mut best = 0;
        let mut best_score = f32::NEG_INFINITY;
        for (i, c) in self.centroids.iter().enumerate() {
            let s = dot(c, query);
            if s > best_score {
                best_score = s;
                best = i;
            }
        }
        best
    }

    /// The `k` nearest centroids (descending inner product), for
    /// multi-probe variants.
    pub fn nearest_centroids(&self, query: &[f32], k: usize) -> Vec<usize> {
        let mut scored: Vec<(f32, usize)> =
            self.centroids.iter().enumerate().map(|(i, c)| (dot(c, query), i)).collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("no NaN scores"));
        scored.into_iter().take(k).map(|(_, i)| i).collect()
    }
}

/// Runs the full pipeline over document embeddings.
///
/// # Panics
///
/// Panics if `embeddings` is empty or dimensions are inconsistent.
pub fn cluster_documents(embeddings: &[Vec<f32>], config: &ClusterConfig) -> Clustering {
    assert!(!embeddings.is_empty(), "no documents to cluster");
    let d = embeddings[0].len();
    assert!(embeddings.iter().all(|e| e.len() == d), "inconsistent embedding dimensions");
    let n = embeddings.len();
    let k = n.div_ceil(config.target_size).max(1);

    // 1. k-means over a subsample.
    let mut rng = seeded_rng(derive_seed(config.seed, 0xc1u64));
    let mut sample_ids: Vec<usize> = (0..n).collect();
    sample_ids.shuffle(&mut rng);
    sample_ids.truncate(config.kmeans_sample.max(k).min(n));
    let sample: Vec<&[f32]> = sample_ids.iter().map(|&i| embeddings[i].as_slice()).collect();
    let mut centroids = kmeans(&sample, k, config.kmeans_iters, &mut rng);

    // 2. Assign every document to its nearest centroid.
    let mut primary = assign_all(embeddings, &centroids);

    // 3. Recursively split oversized clusters.
    let max_allowed = ((config.target_size as f32) * config.split_factor).ceil() as usize;
    loop {
        let mut sizes = vec![0usize; centroids.len()];
        for &c in &primary {
            sizes[c as usize] += 1;
        }
        let Some(big) = sizes.iter().position(|&s| s > max_allowed.max(2)) else {
            break;
        };
        // Split cluster `big` into two via 2-means on its members.
        let members: Vec<usize> =
            primary.iter().enumerate().filter(|(_, &c)| c as usize == big).map(|(i, _)| i).collect();
        let member_vecs: Vec<&[f32]> = members.iter().map(|&i| embeddings[i].as_slice()).collect();
        let two = kmeans(&member_vecs, 2, config.kmeans_iters, &mut rng);
        if two.len() < 2 {
            break; // Degenerate (identical points); give up splitting.
        }
        let new_id = centroids.len() as u32;
        centroids[big] = two[0].clone();
        centroids.push(two[1].clone());
        let mut moved = 0usize;
        for &i in &members {
            let e = &embeddings[i];
            if dist2(e, &two[1]) < dist2(e, &two[0]) {
                primary[i] = new_id;
                moved += 1;
            }
        }
        if moved == 0 || moved == members.len() {
            break; // No progress possible.
        }
    }

    // 4. Boundary dual-assignment.
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); centroids.len()];
    for (i, &c) in primary.iter().enumerate() {
        members[c as usize].push(i as u32);
    }
    if centroids.len() > 1 && config.dual_assign_frac > 0.0 {
        // Rank documents by how close their second-best centroid is.
        let mut margins: Vec<(f32, usize, u32)> = embeddings
            .iter()
            .enumerate()
            .map(|(i, e)| {
                let (first, second) = two_nearest(e, &centroids);
                let margin = dist2(e, &centroids[second]) - dist2(e, &centroids[first]);
                (margin, i, second as u32)
            })
            .collect();
        margins.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN margins"));
        let dual_count = ((n as f32) * config.dual_assign_frac) as usize;
        for &(_, i, second) in margins.iter().take(dual_count) {
            members[second as usize].push(i as u32);
        }
    }

    Clustering { centroids, members, primary }
}

/// k-means with k-means++ seeding over borrowed vectors; returns at
/// most `k` (deduplicated) unit-normalized centroids.
fn kmeans<R: Rng + ?Sized>(points: &[&[f32]], k: usize, iters: usize, rng: &mut R) -> Vec<Vec<f32>> {
    let k = k.min(points.len()).max(1);
    let d = points[0].len();

    // k-means++ seeding.
    let mut centroids: Vec<Vec<f32>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].to_vec());
    let mut d2: Vec<f32> = points.iter().map(|p| dist2(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f32 = d2.iter().sum();
        let next = if total <= f32::EPSILON {
            points[rng.gen_range(0..points.len())].to_vec()
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = points.len() - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    chosen = i;
                    break;
                }
                target -= w;
            }
            points[chosen].to_vec()
        };
        for (i, p) in points.iter().enumerate() {
            d2[i] = d2[i].min(dist2(p, &next));
        }
        centroids.push(next);
    }

    // Lloyd iterations.
    for _ in 0..iters {
        let mut sums = vec![vec![0.0f32; d]; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for p in points {
            let c = nearest(p, &centroids);
            counts[c] += 1;
            for (s, &x) in sums[c].iter_mut().zip(p.iter()) {
                *s += x;
            }
        }
        for (c, (sum, &count)) in sums.iter_mut().zip(counts.iter()).enumerate() {
            if count > 0 {
                for x in sum.iter_mut() {
                    *x /= count as f32;
                }
                centroids[c] = sum.clone();
            }
        }
    }
    for c in centroids.iter_mut() {
        normalize(c);
    }
    centroids.dedup_by(|a, b| a == b);
    centroids
}

fn nearest(p: &[f32], centroids: &[Vec<f32>]) -> usize {
    let mut best = 0;
    let mut best_d = f32::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = dist2(p, c);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

fn two_nearest(p: &[f32], centroids: &[Vec<f32>]) -> (usize, usize) {
    let mut best = (f32::INFINITY, 0usize);
    let mut second = (f32::INFINITY, 0usize);
    for (i, c) in centroids.iter().enumerate() {
        let d = dist2(p, c);
        if d < best.0 {
            second = best;
            best = (d, i);
        } else if d < second.0 {
            second = (d, i);
        }
    }
    (best.1, second.1)
}

fn assign_all(embeddings: &[Vec<f32>], centroids: &[Vec<f32>]) -> Vec<u32> {
    embeddings.iter().map(|e| nearest(e, centroids) as u32).collect()
}

/// Orders a cluster's members so that semantically similar documents
/// are adjacent (the paper's §5 "grouping URLs by content"): documents
/// are sorted by similarity to an anchor member (the member farthest
/// from the centroid, which maximizes spread along the chosen axis).
/// This is a cheap `O(k·d)` 1-D proxy for a full similarity layout;
/// chunking the resulting order keeps near-duplicates in one batch.
///
/// # Panics
///
/// Panics if any member index is out of range.
pub fn semantic_order(members: &[u32], embeddings: &[Vec<f32>], centroid: &[f32]) -> Vec<u32> {
    if members.len() <= 2 {
        return members.to_vec();
    }
    let anchor = members
        .iter()
        .copied()
        .max_by(|&a, &b| {
            let da = dist2(&embeddings[a as usize], centroid);
            let db = dist2(&embeddings[b as usize], centroid);
            da.partial_cmp(&db).expect("no NaN distances")
        })
        .expect("nonempty");
    let anchor_vec = &embeddings[anchor as usize];
    let mut keyed: Vec<(f32, u32)> = members
        .iter()
        .map(|&m| (dot(&embeddings[m as usize], anchor_vec), m))
        .collect();
    keyed.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("no NaN scores"));
    keyed.into_iter().map(|(_, m)| m).collect()
}

/// 8-bit-quantized centroid bundle: what the client actually downloads
/// and caches (§3.2: "at most 18.7 MiB ... in a compressed format" for
/// the 360M-document corpus).
#[derive(Debug, Clone)]
pub struct CompressedCentroids {
    /// Per-centroid scale factors.
    scales: Vec<f32>,
    /// Row-major quantized values.
    data: Vec<i8>,
    dim: usize,
}

impl CompressedCentroids {
    /// Compresses a centroid set.
    ///
    /// # Panics
    ///
    /// Panics if `centroids` is empty.
    pub fn compress(centroids: &[Vec<f32>]) -> Self {
        assert!(!centroids.is_empty(), "no centroids");
        let dim = centroids[0].len();
        let mut scales = Vec::with_capacity(centroids.len());
        let mut data = Vec::with_capacity(centroids.len() * dim);
        for c in centroids {
            let max = c.iter().fold(0.0f32, |m, &x| m.max(x.abs())).max(1e-12);
            scales.push(max);
            for &x in c {
                data.push(((x / max) * 127.0).round() as i8);
            }
        }
        Self { scales, data, dim }
    }

    /// Decompresses back to `f32` centroids.
    pub fn decompress(&self) -> Vec<Vec<f32>> {
        self.scales
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                self.data[i * self.dim..(i + 1) * self.dim]
                    .iter()
                    .map(|&q| q as f32 / 127.0 * s)
                    .collect()
            })
            .collect()
    }

    /// Download size in bytes (1 byte/dim + 4 bytes/centroid scale).
    pub fn byte_len(&self) -> u64 {
        (self.data.len() + 4 * self.scales.len()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Gaussian blobs around `k` well-separated unit anchors.
    fn blobs(n: usize, k: usize, d: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = seeded_rng(seed);
        let anchors: Vec<Vec<f32>> = (0..k)
            .map(|_| {
                let mut a: Vec<f32> = (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                normalize(&mut a);
                a
            })
            .collect();
        let mut points = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % k;
            let mut p = anchors[c].clone();
            for x in p.iter_mut() {
                *x += rng.gen_range(-0.1f32..0.1);
            }
            normalize(&mut p);
            points.push(p);
            labels.push(c);
        }
        (points, labels)
    }

    fn config(target: usize) -> ClusterConfig {
        ClusterConfig {
            target_size: target,
            split_factor: 1.5,
            dual_assign_frac: 0.2,
            kmeans_sample: 4000,
            kmeans_iters: 10,
            seed: 11,
        }
    }

    #[test]
    fn blobs_recover_ground_truth_clusters() {
        let (points, labels) = blobs(600, 4, 16, 1);
        let clustering = cluster_documents(&points, &config(150));
        // Same-blob points should mostly share a primary cluster.
        let mut agree = 0usize;
        let mut total = 0usize;
        for i in 0..points.len() {
            for j in (i + 1)..points.len().min(i + 40) {
                if labels[i] == labels[j] {
                    total += 1;
                    if clustering.primary[i] == clustering.primary[j] {
                        agree += 1;
                    }
                }
            }
        }
        let frac = agree as f64 / total as f64;
        assert!(frac > 0.9, "same-blob agreement only {frac}");
    }

    #[test]
    fn clusters_are_roughly_balanced() {
        let (points, _) = blobs(1000, 5, 12, 2);
        let cfg = config(100);
        let clustering = cluster_documents(&points, &cfg);
        let max = clustering.max_cluster_size();
        // Primary sizes bounded by split_factor * target (+ dual extras).
        assert!(
            max <= (cfg.target_size as f32 * cfg.split_factor * 1.3) as usize,
            "largest cluster {max}"
        );
        assert!(clustering.num_clusters() >= 8, "got {}", clustering.num_clusters());
    }

    #[test]
    fn dual_assignment_adds_about_twenty_percent() {
        let (points, _) = blobs(800, 4, 12, 3);
        let clustering = cluster_documents(&points, &config(100));
        let overhead = clustering.total_assignments() as f64 / points.len() as f64;
        assert!((1.15..=1.25).contains(&overhead), "overhead {overhead}");
    }

    #[test]
    fn every_document_is_in_its_primary_cluster() {
        let (points, _) = blobs(300, 3, 8, 4);
        let clustering = cluster_documents(&points, &config(80));
        for (i, &c) in clustering.primary.iter().enumerate() {
            assert!(
                clustering.members[c as usize].contains(&(i as u32)),
                "doc {i} missing from its primary cluster {c}"
            );
        }
    }

    #[test]
    fn nearest_centroid_finds_own_blob() {
        let (points, _) = blobs(400, 4, 16, 5);
        let clustering = cluster_documents(&points, &config(100));
        let mut hits = 0;
        for (i, p) in points.iter().enumerate().take(100) {
            if clustering.nearest_centroid(p) == clustering.primary[i] as usize {
                hits += 1;
            }
        }
        assert!(hits >= 95, "only {hits}/100 docs select their own cluster");
    }

    #[test]
    fn nearest_centroids_returns_sorted_prefix() {
        let (points, _) = blobs(200, 4, 8, 6);
        let clustering = cluster_documents(&points, &config(60));
        let top = clustering.nearest_centroids(&points[0], 3);
        assert_eq!(top.len(), 3.min(clustering.num_clusters()));
        assert_eq!(top[0], clustering.nearest_centroid(&points[0]));
    }

    #[test]
    fn compressed_centroids_roundtrip_accurately() {
        let (points, _) = blobs(200, 3, 16, 7);
        let clustering = cluster_documents(&points, &config(80));
        let compressed = CompressedCentroids::compress(&clustering.centroids);
        let restored = compressed.decompress();
        for (orig, rest) in clustering.centroids.iter().zip(restored.iter()) {
            for (&a, &b) in orig.iter().zip(rest.iter()) {
                assert!((a - b).abs() < 0.02, "quantization error too high: {a} vs {b}");
            }
        }
        // ~4x smaller than f32.
        let raw = (clustering.num_clusters() * 16 * 4) as u64;
        assert!(compressed.byte_len() < raw / 3);
    }

    #[test]
    fn single_cluster_corpus_works() {
        let points = vec![vec![1.0f32, 0.0]; 10];
        let cfg = ClusterConfig {
            target_size: 100,
            split_factor: 1.5,
            dual_assign_frac: 0.2,
            kmeans_sample: 10,
            kmeans_iters: 3,
            seed: 8,
        };
        let clustering = cluster_documents(&points, &cfg);
        assert_eq!(clustering.num_clusters(), 1);
        assert_eq!(clustering.members[0].len(), 10);
    }

    #[test]
    fn for_corpus_targets_sqrt_n() {
        let cfg = ClusterConfig::for_corpus(10_000, 1);
        assert_eq!(cfg.target_size, 100);
    }
}
