//! Overload safety: deadline budgets, admission control, and
//! per-shard circuit breakers for the typed service plane.
//!
//! Tiptoe's server work is scan-bound — every query costs a full
//! database scan — so a burst past capacity cannot be absorbed, only
//! shed or deadlined (Wally reaches the million-user regime by
//! scheduling load against explicit capacity budgets). This module
//! holds the three cooperating mechanisms:
//!
//! - [`DeadlineBudget`] — a per-query wall-clock allowance carried
//!   from `search_served` through [`crate::dispatch`] into coalescer
//!   lanes and the fault-aware fan-out. A query that cannot finish in
//!   budget fails early with a typed [`ServeError::DeadlineExceeded`]
//!   instead of queueing forever.
//! - [`AdmissionController`] — a bounded admission queue over a
//!   capacity model derived from the observed batched-scan latency
//!   histogram (`net.coalesce.flush_us`). Queries past
//!   `capacity + queue_depth` inflight are shed deterministically (by
//!   arrival order) with [`ServeError::Overloaded`].
//! - [`BreakerBank`] — per-shard circuit breakers layered on
//!   [`crate::FaultPolicy`]: a shard whose responses degrade past a
//!   failure or straggler-latency threshold is *opened* (its traffic
//!   skipped, queries degrade to survivor-subset decryption over the
//!   remaining shards) and half-open probed for recovery.
//!
//! Everything here is mechanism; policy lives in the corresponding
//! `*Policy` structs, validated into [`ConfigError`] rather than
//! panicking so misconfiguration surfaces through config loading.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// A policy knob failed validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigError {
    /// The knob that failed.
    pub field: &'static str,
    /// Why it is invalid.
    pub reason: &'static str,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid {}: {}", self.field, self.reason)
    }
}

impl std::error::Error for ConfigError {}

/// Why a query was rejected by the overload-safe serving path.
///
/// These are *typed, expected* outcomes under overload — never
/// panics. A shed or deadlined query costs the client a retry, not a
/// privacy or correctness loss: admission happens before any token is
/// consumed, and a deadline abort never returns a partial answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control shed the query: `inflight` queries were
    /// already running or queued against a plane sized for `capacity`.
    Overloaded {
        /// Inflight queries observed at the shed decision.
        inflight: usize,
        /// The plane's derived concurrent-query capacity.
        capacity: usize,
    },
    /// The query's deadline budget ran out before it completed.
    DeadlineExceeded {
        /// The query's total budget.
        budget: Duration,
        /// Wall-clock already charged when the budget was exceeded.
        spent: Duration,
    },
    /// A coalescer lane crashed repeatedly; the request was retried
    /// `crashes` times and abandoned.
    LaneFailed {
        /// Crashed flush attempts observed by this request.
        crashes: u32,
    },
    /// A fault/coalesce policy failed validation at dispatch time.
    InvalidPolicy(ConfigError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { inflight, capacity } => {
                write!(f, "overloaded: {inflight} inflight against capacity {capacity}")
            }
            ServeError::DeadlineExceeded { budget, spent } => {
                write!(f, "deadline exceeded: spent {spent:?} of {budget:?}")
            }
            ServeError::LaneFailed { crashes } => {
                write!(f, "coalescer lane failed after {crashes} crashed flushes")
            }
            ServeError::InvalidPolicy(e) => write!(f, "invalid policy: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl ServeError {
    /// Flight-recorder result code plus detail words for a
    /// [`tiptoe_obs::recorder::EventKind::Finished`] event: numeric
    /// occupancy/budget facts only — never query content.
    pub fn recorder_code(&self) -> (u64, u64, u64) {
        use tiptoe_obs::recorder::result_code as rc;
        match *self {
            ServeError::Overloaded { inflight, capacity } => {
                (rc::OVERLOADED, inflight as u64, capacity as u64)
            }
            ServeError::DeadlineExceeded { budget, spent } => {
                (rc::DEADLINE_EXCEEDED, budget.as_micros() as u64, spent.as_micros() as u64)
            }
            ServeError::LaneFailed { crashes } => (rc::LANE_FAILED, u64::from(crashes), 0),
            ServeError::InvalidPolicy(_) => (rc::INVALID_POLICY, 0, 0),
        }
    }
}

impl From<ConfigError> for ServeError {
    fn from(e: ConfigError) -> Self {
        ServeError::InvalidPolicy(e)
    }
}

/// A per-query wall-clock allowance, charged as the query moves
/// through dispatch phases (ranking, then URL retrieval).
///
/// The budget is shared by reference across phases; charging is
/// atomic so a query whose phases overlap lanes on other threads
/// still accounts exactly once per phase.
#[derive(Debug)]
pub struct DeadlineBudget {
    total: Duration,
    spent_ns: AtomicU64,
}

impl DeadlineBudget {
    /// A fresh budget of `total` wall-clock time.
    pub fn new(total: Duration) -> Self {
        Self { total, spent_ns: AtomicU64::new(0) }
    }

    /// The total allowance.
    pub fn total(&self) -> Duration {
        self.total
    }

    /// Wall-clock charged so far.
    pub fn spent(&self) -> Duration {
        Duration::from_nanos(self.spent_ns.load(Ordering::Relaxed))
    }

    /// Time left, saturating at zero.
    pub fn remaining(&self) -> Duration {
        self.total.saturating_sub(self.spent())
    }

    /// Returns the remaining allowance, or a typed error if the
    /// budget is already exhausted.
    ///
    /// # Errors
    ///
    /// [`ServeError::DeadlineExceeded`] when nothing remains.
    pub fn check(&self) -> Result<Duration, ServeError> {
        let spent = self.spent();
        if spent >= self.total {
            return Err(ServeError::DeadlineExceeded { budget: self.total, spent });
        }
        Ok(self.total - spent)
    }

    /// Charges `elapsed` against the budget.
    ///
    /// # Errors
    ///
    /// [`ServeError::DeadlineExceeded`] if the charge overdraws the
    /// budget — the work already happened, but the query fails typed
    /// rather than returning late past its promise.
    pub fn charge(&self, elapsed: Duration) -> Result<(), ServeError> {
        let add = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let prev = self.spent_ns.fetch_add(add, Ordering::Relaxed);
        let spent = Duration::from_nanos(prev.saturating_add(add));
        tiptoe_obs::recorder::record(
            tiptoe_obs::recorder::EventKind::BudgetCharged,
            elapsed.as_micros() as u64,
            spent.as_micros() as u64,
            self.total.as_micros() as u64,
            0,
        );
        if spent > self.total {
            // The charge that *crosses* the budget is the miss; later
            // checks against an already-overdrawn budget re-report the
            // same failure and must not double-count the SLO.
            if Duration::from_nanos(prev) <= self.total {
                tiptoe_obs::slo::slo().deadline_miss.record();
            }
            return Err(ServeError::DeadlineExceeded { budget: self.total, spent });
        }
        Ok(())
    }
}

/// Admission-control knobs for a serving plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionPolicy {
    /// Master switch; disabled planes admit everything.
    pub enabled: bool,
    /// Concurrent queries served at once. `0` derives capacity from
    /// the observed batched-scan latency histogram (see
    /// [`AdmissionPolicy::capacity_from_flush_histogram`]).
    pub max_inflight: usize,
    /// Queries allowed to queue beyond capacity before shedding.
    pub queue_depth: usize,
    /// Per-admitted-query deadline budget.
    pub deadline: Duration,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        Self {
            enabled: false,
            max_inflight: 0,
            queue_depth: 16,
            deadline: Duration::from_secs(2),
        }
    }
}

impl AdmissionPolicy {
    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] on a zero deadline.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.deadline == Duration::ZERO {
            return Err(ConfigError {
                field: "admission.deadline",
                reason: "deadline budget must be positive",
            });
        }
        Ok(())
    }

    /// The capacity model: how many queries this plane can run
    /// concurrently and still finish each within `deadline`.
    ///
    /// With `max_inflight > 0` the operator's number wins. Otherwise
    /// capacity is derived from the observed batched-scan latency
    /// (the `net.coalesce.flush_us` histogram): a deadline admits
    /// `deadline / p95(scan)` sequential scans, each serving up to
    /// `max_batch` coalesced queries. An empty histogram (cold plane)
    /// falls back to two batches.
    pub fn capacity_from_flush_histogram(
        &self,
        flush_us: &tiptoe_obs::Histogram,
        max_batch: usize,
    ) -> usize {
        if self.max_inflight > 0 {
            return self.max_inflight;
        }
        let batch = max_batch.max(1);
        if flush_us.count() == 0 {
            return 2 * batch;
        }
        let p95 = flush_us.quantile(0.95).max(1);
        let deadline_us = u64::try_from(self.deadline.as_micros()).unwrap_or(u64::MAX).max(1);
        let scans = (deadline_us / p95).clamp(1, 64) as usize;
        (scans * batch).min(4096)
    }
}

/// Bounded admission over a fixed capacity: deterministic shed
/// decisions (a query is shed iff `capacity + queue_depth` queries
/// were already admitted and unfinished when it arrived), an RAII
/// permit per admitted query, and an arrival-ordered shed log.
#[derive(Debug)]
pub struct AdmissionController {
    policy: AdmissionPolicy,
    capacity: usize,
    inflight: AtomicUsize,
    arrivals: AtomicU64,
    admitted: AtomicU64,
    shed: AtomicU64,
    shed_log: Mutex<Vec<u64>>,
}

impl AdmissionController {
    /// A controller admitting up to `capacity + policy.queue_depth`
    /// concurrent queries.
    pub fn new(policy: AdmissionPolicy, capacity: usize) -> Self {
        Self {
            policy,
            capacity: capacity.max(1),
            inflight: AtomicUsize::new(0),
            arrivals: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            shed_log: Mutex::new(Vec::new()),
        }
    }

    /// The policy this controller runs under.
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// The derived concurrent-query capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Queries currently admitted and unfinished.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::SeqCst)
    }

    /// Admits one query or sheds it.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when `capacity + queue_depth`
    /// queries are already inflight; the arrival is appended to the
    /// shed log and the `net.shed` counter.
    pub fn try_admit(&self) -> Result<AdmissionPermit<'_>, ServeError> {
        let seq = self.arrivals.fetch_add(1, Ordering::SeqCst);
        let bound = self.capacity + self.policy.queue_depth;
        loop {
            let cur = self.inflight.load(Ordering::SeqCst);
            if cur >= bound {
                self.shed.fetch_add(1, Ordering::SeqCst);
                self.shed_log.lock().expect("shed log lock").push(seq);
                tiptoe_obs::metrics().counter("net.shed").inc();
                tiptoe_obs::recorder::record(
                    tiptoe_obs::recorder::EventKind::Shed,
                    cur as u64,
                    self.capacity as u64,
                    0,
                    0,
                );
                tiptoe_obs::slo::slo().shed.record();
                return Err(ServeError::Overloaded { inflight: cur, capacity: self.capacity });
            }
            if self
                .inflight
                .compare_exchange(cur, cur + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                self.admitted.fetch_add(1, Ordering::SeqCst);
                tiptoe_obs::metrics().counter("net.admitted").inc();
                tiptoe_obs::recorder::record(
                    tiptoe_obs::recorder::EventKind::Admitted,
                    (cur + 1) as u64,
                    self.capacity as u64,
                    0,
                    0,
                );
                return Ok(AdmissionPermit { ctrl: self });
            }
        }
    }

    /// Total queries admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::SeqCst)
    }

    /// Total queries shed so far.
    pub fn sheds(&self) -> u64 {
        self.shed.load(Ordering::SeqCst)
    }

    /// Arrival sequence numbers of every shed query, in shed order —
    /// the deterministic record the robustness tests replay.
    pub fn shed_log(&self) -> Vec<u64> {
        self.shed_log.lock().expect("shed log lock").clone()
    }
}

/// RAII admission permit: dropping it releases the inflight slot.
#[derive(Debug)]
#[must_use = "dropping the permit releases the admission slot"]
pub struct AdmissionPermit<'a> {
    ctrl: &'a AdmissionController,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.ctrl.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Circuit-breaker knobs, shared by every shard in a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerPolicy {
    /// Master switch; a disabled bank gates everything `Serve`.
    pub enabled: bool,
    /// Consecutive degraded outcomes that open a closed breaker.
    pub failure_threshold: u32,
    /// A *successful* response slower than this still counts as
    /// degraded (straggler-aware: a limping shard is rerouted before
    /// it times whole queries out).
    pub latency_threshold: Duration,
    /// Skipped dispatches an open breaker waits before half-open
    /// probing the shard.
    pub open_cooldown: u32,
    /// Consecutive healthy probes that close a half-open breaker.
    pub close_after: u32,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        Self {
            enabled: false,
            failure_threshold: 3,
            latency_threshold: Duration::from_millis(150),
            open_cooldown: 8,
            close_after: 2,
        }
    }
}

impl BreakerPolicy {
    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] on zero thresholds or cooldowns.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.failure_threshold == 0 {
            return Err(ConfigError {
                field: "breaker.failure_threshold",
                reason: "must tolerate at least one failure before opening",
            });
        }
        if self.latency_threshold == Duration::ZERO {
            return Err(ConfigError {
                field: "breaker.latency_threshold",
                reason: "straggler threshold must be positive",
            });
        }
        if self.open_cooldown == 0 {
            return Err(ConfigError {
                field: "breaker.open_cooldown",
                reason: "an open breaker must cool down before probing",
            });
        }
        if self.close_after == 0 {
            return Err(ConfigError {
                field: "breaker.close_after",
                reason: "closing must require at least one healthy probe",
            });
        }
        Ok(())
    }
}

/// Breaker state machine: `Closed` → (failures) → `Open` →
/// (cooldown) → `HalfOpen` → (healthy probes) `Closed` / (degraded
/// probe) back to `Open`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: traffic flows.
    Closed,
    /// Tripped: traffic skips the shard (degraded-mode serving).
    Open,
    /// Probing: traffic flows, watched for recovery.
    HalfOpen,
}

impl BreakerState {
    /// Flight-recorder code (the `breaker_state` vocabulary in
    /// `tiptoe_obs::recorder`).
    pub fn recorder_code(self) -> u64 {
        use tiptoe_obs::recorder::breaker_state as bs;
        match self {
            BreakerState::Closed => bs::CLOSED,
            BreakerState::Open => bs::OPEN,
            BreakerState::HalfOpen => bs::HALF_OPEN,
        }
    }

    /// Stable display name (introspection snapshots).
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// Per-dispatch verdict for one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardGate {
    /// Dispatch normally.
    Serve,
    /// Dispatch normally, but this is a recovery probe.
    Probe,
    /// Skip the shard; the query degrades to the survivor subset.
    Skip,
}

#[derive(Debug)]
struct BreakerCore {
    state: BreakerState,
    /// Consecutive degraded outcomes while `Closed`.
    failures: u32,
    /// Consecutive healthy probes while `HalfOpen`.
    successes: u32,
    /// Skipped dispatches left before an `Open` breaker half-opens.
    cooldown: u32,
}

/// One circuit breaker per shard in a plan's address space (ranking
/// shards `0..W`, the URL server at `W`).
///
/// Gating and recording are driven by [`crate::dispatch`] on the
/// fault-aware path only: healthy-path dispatches neither consult nor
/// train the bank, so a fault-free deployment pays nothing.
#[derive(Debug)]
pub struct BreakerBank {
    policy: BreakerPolicy,
    shards: Vec<Mutex<BreakerCore>>,
}

impl BreakerBank {
    /// A bank of `num_shards` closed breakers.
    pub fn new(policy: BreakerPolicy, num_shards: usize) -> Self {
        let shards = (0..num_shards)
            .map(|_| {
                Mutex::new(BreakerCore {
                    state: BreakerState::Closed,
                    failures: 0,
                    successes: 0,
                    cooldown: 0,
                })
            })
            .collect();
        Self { policy, shards }
    }

    /// The policy this bank runs under.
    pub fn policy(&self) -> BreakerPolicy {
        self.policy
    }

    /// Number of breakers in the bank.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the bank is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Gates one dispatch to `shard` (plan address space). An open
    /// breaker counts the skip against its cooldown and half-opens
    /// when it reaches zero. Unknown shards are served.
    pub fn gate(&self, shard: usize) -> ShardGate {
        if !self.policy.enabled {
            return ShardGate::Serve;
        }
        let Some(slot) = self.shards.get(shard) else {
            return ShardGate::Serve;
        };
        let mut core = slot.lock().expect("breaker lock");
        match core.state {
            BreakerState::Closed => ShardGate::Serve,
            BreakerState::Open => {
                core.cooldown = core.cooldown.saturating_sub(1);
                if core.cooldown == 0 {
                    core.state = BreakerState::HalfOpen;
                    core.successes = 0;
                    ShardGate::Probe
                } else {
                    ShardGate::Skip
                }
            }
            BreakerState::HalfOpen => ShardGate::Probe,
        }
    }

    /// Trains the breaker with one served (non-skipped) outcome:
    /// `ok` is whether the shard delivered a verified answer, `wall`
    /// its response latency. A slow success past the straggler
    /// threshold counts as degraded.
    pub fn record(&self, shard: usize, ok: bool, wall: Duration) {
        if !self.policy.enabled {
            return;
        }
        let Some(slot) = self.shards.get(shard) else {
            return;
        };
        let degraded = !ok || wall > self.policy.latency_threshold;
        let mut core = slot.lock().expect("breaker lock");
        match core.state {
            BreakerState::Closed => {
                if degraded {
                    core.failures += 1;
                    if core.failures >= self.policy.failure_threshold {
                        core.state = BreakerState::Open;
                        core.cooldown = self.policy.open_cooldown;
                        core.failures = 0;
                        tiptoe_obs::metrics().counter("net.breaker.opened").inc();
                    }
                } else {
                    core.failures = 0;
                }
            }
            BreakerState::HalfOpen => {
                if degraded {
                    core.state = BreakerState::Open;
                    core.cooldown = self.policy.open_cooldown;
                    core.successes = 0;
                    tiptoe_obs::metrics().counter("net.breaker.reopened").inc();
                } else {
                    core.successes += 1;
                    if core.successes >= self.policy.close_after {
                        core.state = BreakerState::Closed;
                        core.failures = 0;
                        tiptoe_obs::metrics().counter("net.breaker.closed").inc();
                    }
                }
            }
            // A recorded outcome for an `Open` breaker can only be a
            // dispatch that was gated before the breaker tripped;
            // the open state already distrusts the shard, so ignore.
            BreakerState::Open => {}
        }
    }

    /// The current state of `shard`'s breaker (`Closed` for unknown
    /// shards).
    pub fn state(&self, shard: usize) -> BreakerState {
        self.shards
            .get(shard)
            .map_or(BreakerState::Closed, |s| s.lock().expect("breaker lock").state)
    }

    /// Shards whose breakers are currently not closed.
    pub fn degraded_shards(&self) -> Vec<usize> {
        (0..self.shards.len()).filter(|&w| self.state(w) != BreakerState::Closed).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FAST: Duration = Duration::from_millis(1);
    const SLOW: Duration = Duration::from_millis(500);

    fn enabled_breakers() -> BreakerPolicy {
        BreakerPolicy { enabled: true, ..BreakerPolicy::default() }
    }

    #[test]
    fn budget_charges_and_rejects_when_exhausted() {
        let b = DeadlineBudget::new(Duration::from_millis(10));
        assert_eq!(b.check().expect("fresh budget"), Duration::from_millis(10));
        b.charge(Duration::from_millis(4)).expect("within budget");
        assert_eq!(b.remaining(), Duration::from_millis(6));
        assert!(matches!(
            b.charge(Duration::from_millis(9)),
            Err(ServeError::DeadlineExceeded { .. })
        ));
        assert!(b.check().is_err(), "exhausted budget rejects further phases");
    }

    #[test]
    fn admission_sheds_past_capacity_plus_queue() {
        let policy = AdmissionPolicy {
            enabled: true,
            max_inflight: 2,
            queue_depth: 1,
            deadline: Duration::from_secs(1),
        };
        let ctrl = AdmissionController::new(policy, 2);
        let p1 = ctrl.try_admit().expect("slot 1");
        let p2 = ctrl.try_admit().expect("slot 2");
        let p3 = ctrl.try_admit().expect("queue slot");
        let shed = ctrl.try_admit();
        assert!(matches!(shed, Err(ServeError::Overloaded { inflight: 3, capacity: 2 })));
        assert_eq!(ctrl.sheds(), 1);
        assert_eq!(ctrl.shed_log(), vec![3], "fourth arrival (seq 3) was shed");
        drop(p1);
        let p4 = ctrl.try_admit().expect("freed slot readmits");
        drop((p2, p3, p4));
        assert_eq!(ctrl.inflight(), 0, "permits release their slots");
        assert_eq!(ctrl.admitted(), 4);
    }

    #[test]
    fn capacity_model_scales_with_observed_scan_latency() {
        let policy = AdmissionPolicy {
            enabled: true,
            max_inflight: 0,
            queue_depth: 0,
            deadline: Duration::from_millis(100),
        };
        let h = tiptoe_obs::metrics().histogram("test.overload.flush_us");
        assert_eq!(policy.capacity_from_flush_histogram(&h, 8), 16, "cold plane: two batches");
        for _ in 0..100 {
            h.record(10_000); // 10 ms scans -> ~10 scans per 100 ms deadline
        }
        let cap = policy.capacity_from_flush_histogram(&h, 8);
        // The histogram's conservative quantile rounds the p95 up, so
        // the derived scan count may land just under 10.
        assert!((4 * 8..=10 * 8).contains(&cap), "{cap}");
        let pinned = AdmissionPolicy { max_inflight: 3, ..policy };
        assert_eq!(pinned.capacity_from_flush_histogram(&h, 8), 3, "operator override wins");
    }

    #[test]
    fn breaker_opens_after_consecutive_failures_and_recovers() {
        let policy = enabled_breakers();
        let bank = BreakerBank::new(policy, 2);
        assert_eq!(bank.state(0), BreakerState::Closed);
        // Two failures + one fast success: the streak resets.
        bank.record(0, false, FAST);
        bank.record(0, false, FAST);
        bank.record(0, true, FAST);
        assert_eq!(bank.state(0), BreakerState::Closed);
        // Three consecutive failures: open.
        for _ in 0..policy.failure_threshold {
            bank.record(0, false, FAST);
        }
        assert_eq!(bank.state(0), BreakerState::Open);
        assert_eq!(bank.degraded_shards(), vec![0]);
        // Open: skipped for `open_cooldown` dispatches, then probed.
        for _ in 1..policy.open_cooldown {
            assert_eq!(bank.gate(0), ShardGate::Skip);
        }
        assert_eq!(bank.gate(0), ShardGate::Probe, "cooldown elapsed: half-open probe");
        assert_eq!(bank.state(0), BreakerState::HalfOpen);
        // Healthy probes close it again.
        for _ in 0..policy.close_after {
            assert_eq!(bank.gate(0), ShardGate::Probe);
            bank.record(0, true, FAST);
        }
        assert_eq!(bank.state(0), BreakerState::Closed);
        assert_eq!(bank.gate(0), ShardGate::Serve);
        // The neighbor shard never moved.
        assert_eq!(bank.state(1), BreakerState::Closed);
    }

    #[test]
    fn stragglers_and_failed_probes_reopen() {
        let policy = BreakerPolicy { failure_threshold: 2, open_cooldown: 1, ..enabled_breakers() };
        let bank = BreakerBank::new(policy, 1);
        // Successful but slow responses count as degraded.
        bank.record(0, true, SLOW);
        bank.record(0, true, SLOW);
        assert_eq!(bank.state(0), BreakerState::Open, "stragglers open the breaker");
        assert_eq!(bank.gate(0), ShardGate::Probe, "cooldown of 1: first gate probes");
        // The probe fails: straight back to open.
        bank.record(0, false, FAST);
        assert_eq!(bank.state(0), BreakerState::Open);
    }

    #[test]
    fn disabled_bank_gates_everything_through() {
        let bank = BreakerBank::new(BreakerPolicy::default(), 1);
        for _ in 0..10 {
            bank.record(0, false, SLOW);
        }
        assert_eq!(bank.gate(0), ShardGate::Serve);
        assert_eq!(bank.state(0), BreakerState::Closed);
    }

    #[test]
    fn policies_validate_into_typed_errors() {
        assert!(AdmissionPolicy::default().validate().is_ok());
        assert!(BreakerPolicy::default().validate().is_ok());
        let bad = AdmissionPolicy { deadline: Duration::ZERO, ..AdmissionPolicy::default() };
        let err = bad.validate().expect_err("zero deadline");
        assert_eq!(err.field, "admission.deadline");
        for bad in [
            BreakerPolicy { failure_threshold: 0, ..BreakerPolicy::default() },
            BreakerPolicy { latency_threshold: Duration::ZERO, ..BreakerPolicy::default() },
            BreakerPolicy { open_cooldown: 0, ..BreakerPolicy::default() },
            BreakerPolicy { close_after: 0, ..BreakerPolicy::default() },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
        let serve_err: ServeError = ConfigError { field: "x", reason: "y" }.into();
        assert!(format!("{serve_err}").contains("invalid x: y"));
    }
}
