//! A message-passing worker pool: the deployment shape of the paper's
//! coordinator/worker fan-out (§4.3), with real threads and channels.
//!
//! [`crate::simulate_parallel`] measures shards sequentially so that
//! single-core timing stays undistorted; this pool is the *structural*
//! counterpart — requests travel over channels to long-lived worker
//! threads exactly as ciphertext chunks travel to worker machines, and
//! responses are collected by the caller (the coordinator). Services
//! use it for the multi-client throughput driver, where concurrency is
//! the point rather than a measurement hazard.
//!
//! Workers are **panic-safe**: a handler panic is caught inside the
//! worker loop, reported as a poisoned (`None`) response, and counted
//! in `net.pool.poisoned` — the thread survives to serve the next
//! request, so one bad request cannot wedge every later fan-out
//! behind a dead worker.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Sender};
use std::thread::JoinHandle;

/// One in-flight request: the payload plus a reply channel. A `None`
/// response means the handler panicked on this request.
struct Job<Req, Resp> {
    request: Req,
    reply: Sender<(usize, Option<Resp>)>,
}

/// A pool of worker threads, one per shard.
pub struct WorkerPool<Req: Send + 'static, Resp: Send + 'static> {
    senders: Vec<Sender<Job<Req, Resp>>>,
    handles: Vec<JoinHandle<()>>,
}

impl<Req: Send + 'static, Resp: Send + 'static> WorkerPool<Req, Resp> {
    /// Spawns `workers` threads; worker `i` serves every request sent
    /// to index `i` with `handler(i, request)`.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn spawn<F>(workers: usize, handler: F) -> Self
    where
        F: Fn(usize, Req) -> Resp + Send + Sync + Clone + 'static,
    {
        assert!(workers > 0, "need at least one worker");
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for idx in 0..workers {
            let (tx, rx) = channel::<Job<Req, Resp>>();
            let handler = handler.clone();
            let handle = std::thread::Builder::new()
                .name(format!("tiptoe-worker-{idx}"))
                .spawn(move || {
                    // The worker loop ends when every sender is dropped.
                    while let Ok(job) = rx.recv() {
                        let Job { request, reply } = job;
                        let outcome =
                            catch_unwind(AssertUnwindSafe(|| handler(idx, request)));
                        if outcome.is_err() {
                            tiptoe_obs::metrics().counter("net.pool.poisoned").inc();
                        }
                        // A dropped reply receiver just means the
                        // coordinator gave up on this fan-out.
                        let _ = reply.send((idx, outcome.ok()));
                    }
                })
                .expect("spawning a worker thread");
            senders.push(tx);
            handles.push(handle);
        }
        Self { senders, handles }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.senders.len()
    }

    /// Coordinator fan-out: sends request `i` to worker `i` and waits
    /// for all responses, returned in worker order.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len() != workers()`, or if a handler
    /// panicked (use [`WorkerPool::try_scatter_gather`] to survive
    /// poisoned workers).
    pub fn scatter_gather(&self, requests: Vec<Req>) -> Vec<Resp> {
        self.try_scatter_gather(requests)
            .into_iter()
            .map(|r| r.expect("worker handler must not panic"))
            .collect()
    }

    /// Panic-tolerant fan-out: like [`WorkerPool::scatter_gather`],
    /// but a worker whose handler panicked yields `None` instead of
    /// propagating the panic — the chaos-safe entry point for callers
    /// that can degrade (the worker thread itself survives and keeps
    /// serving later rounds).
    ///
    /// # Panics
    ///
    /// Panics if `requests.len() != workers()`.
    pub fn try_scatter_gather(&self, requests: Vec<Req>) -> Vec<Option<Resp>> {
        assert_eq!(requests.len(), self.workers(), "one request per worker");
        let (reply_tx, reply_rx) = channel();
        for (sender, request) in self.senders.iter().zip(requests) {
            sender
                .send(Job { request, reply: reply_tx.clone() })
                .expect("worker thread alive");
        }
        drop(reply_tx);
        let mut responses: Vec<Option<Resp>> = (0..self.workers()).map(|_| None).collect();
        for _ in 0..self.workers() {
            let (idx, resp) = reply_rx.recv().expect("worker thread alive");
            responses[idx] = resp;
        }
        responses
    }

    /// Sends one request to a specific worker and waits for the reply.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range or the handler panicked on
    /// this request.
    pub fn call(&self, worker: usize, request: Req) -> Resp {
        assert!(worker < self.workers(), "worker index out of range");
        let (reply_tx, reply_rx) = channel();
        self.senders[worker]
            .send(Job { request, reply: reply_tx })
            .expect("worker thread alive");
        reply_rx.recv().expect("worker thread alive").1.expect("worker handler must not panic")
    }

    /// Shuts the pool down, joining every worker.
    pub fn shutdown(self) {
        drop(self.senders);
        for handle in self.handles {
            handle.join().expect("worker thread exits cleanly");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn scatter_gather_preserves_worker_order() {
        let pool: WorkerPool<u64, u64> = WorkerPool::spawn(4, |idx, x| x * 10 + idx as u64);
        let out = pool.scatter_gather(vec![1, 2, 3, 4]);
        assert_eq!(out, vec![10, 21, 32, 43]);
        pool.shutdown();
    }

    #[test]
    fn call_routes_to_the_right_worker() {
        let pool: WorkerPool<(), usize> = WorkerPool::spawn(3, |idx, ()| idx);
        assert_eq!(pool.call(2, ()), 2);
        assert_eq!(pool.call(0, ()), 0);
        pool.shutdown();
    }

    #[test]
    fn workers_process_many_requests() {
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        let pool: WorkerPool<usize, usize> = WorkerPool::spawn(2, move |_, x| {
            c.fetch_add(1, Ordering::SeqCst);
            x + 1
        });
        for round in 0..50 {
            let out = pool.scatter_gather(vec![round, round * 2]);
            assert_eq!(out, vec![round + 1, round * 2 + 1]);
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let pool: WorkerPool<u8, u8> = WorkerPool::spawn(2, |_, x| x);
        pool.shutdown(); // Must not hang or panic.
    }

    #[test]
    fn poisoned_workers_survive_and_keep_serving() {
        // Requests of 13 poison their worker; everything else echoes.
        let pool: WorkerPool<u64, u64> = WorkerPool::spawn(3, |_, x| {
            assert_ne!(x, 13, "injected handler panic");
            x
        });
        let before = tiptoe_obs::metrics().counter("net.pool.poisoned").get();
        let out = pool.try_scatter_gather(vec![1, 13, 3]);
        assert_eq!(out, vec![Some(1), None, Some(3)], "only the poisoned slot degrades");
        assert!(tiptoe_obs::metrics().counter("net.pool.poisoned").get() > before);
        // The poisoned worker's thread survived: the next healthy
        // round gets full answers, and shutdown joins cleanly.
        let out = pool.try_scatter_gather(vec![4, 5, 6]);
        assert_eq!(out, vec![Some(4), Some(5), Some(6)]);
        assert_eq!(pool.call(1, 99), 99);
        pool.shutdown();
    }
}
