//! Deterministic fault injection and fault-aware coordinator dispatch.
//!
//! The paper's threat model (§2) disclaims availability under
//! *malicious* servers, but its 45-machine deployment (§8) still has
//! to survive the honest-but-failing cluster: crashed workers, tail
//! stragglers, and corrupted or truncated responses. This module adds
//! that robustness layer to the simulated cluster:
//!
//! - [`FaultPlan`]: a seeded, fully deterministic schedule of injected
//!   faults, addressed by `(shard, attempt)`. Forced faults (a shard
//!   that always crashes, a flaky shard that recovers after `k`
//!   failures) compose with seeded per-attempt fault *rates*.
//! - [`FaultPolicy`]: the coordinator's recovery knobs — per-attempt
//!   timeout, bounded retry with exponential backoff, an optional
//!   hedged backup request, and an overall per-shard deadline.
//! - [`seal`]/[`open`]: a checksummed response envelope so corrupted
//!   or truncated payloads are *detected* (and fail into the retry
//!   path as [`WireError`]s) instead of being decoded as garbage.
//! - [`dispatch_faulty`]: the fault-aware replacement for
//!   [`crate::simulate_parallel`] on the query path. It executes
//!   shards sequentially but accounts for them in **virtual time**:
//!   a crashed worker costs one attempt timeout of wall-clock and no
//!   CPU; a straggler's virtual latency is `measured · factor +
//!   extra`; retries add backoff; hedged requests launch at
//!   `hedge_after`. The resulting [`FaultReport`] feeds the same
//!   [`ParallelTiming`] accounting the healthy path uses, so injected
//!   faults are visible in latency numbers.
//!
//! Determinism: every fault decision derives from the plan seed and
//! the `(shard, attempt)` address, never from wall-clock time. The
//! `Straggle::factor` knob scales *measured* compute (and is therefore
//! machine-dependent), while `Straggle::extra` adds a fixed virtual
//! delay — tests that must be deterministic use `extra` delays large
//! enough to dominate any plausible measured time.

use std::time::Duration;

use tiptoe_math::wire::{WireError, WireReader, WireWriter};

use crate::overload::{ConfigError, ServeError, ShardGate};
use crate::{timed, ParallelTiming};

/// Hard cap on an envelope payload (bounds allocation from hostile
/// length fields).
pub const MAX_ENVELOPE_PAYLOAD: usize = 1 << 30;

/// Bytes added by [`seal`]: magic, length, checksum.
pub const ENVELOPE_OVERHEAD: usize = 16;

/// Bytes added by [`seal_traced`]: magic, length, trace id, checksum.
pub const TRACED_ENVELOPE_OVERHEAD: usize = 24;

const ENVELOPE_MAGIC: u32 = 0x5450_5431; // "TPT1"
const TRACED_ENVELOPE_MAGIC: u32 = 0x5450_5432; // "TPT2"

/// Attempt-number namespace bit for hedged backup requests, so a
/// hedge draws its own deterministic fault decision.
const HEDGE_FLAG: u32 = 1 << 16;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a 64-bit checksum (cheap, deterministic, and plenty to detect
/// the random corruption this harness injects; not cryptographic).
pub fn checksum(bytes: &[u8]) -> u64 {
    fnv1a(FNV_OFFSET, bytes)
}

/// Checksum of a traced envelope: covers the trace id *and* the
/// payload, so a flipped header bit is detected exactly like a
/// flipped payload bit.
fn traced_checksum(trace_id: u64, payload: &[u8]) -> u64 {
    fnv1a(fnv1a(FNV_OFFSET, &trace_id.to_le_bytes()), payload)
}

/// Wraps a shard response payload in the checksummed wire envelope.
///
/// # Panics
///
/// Panics if the payload exceeds [`MAX_ENVELOPE_PAYLOAD`].
pub fn seal(payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_ENVELOPE_PAYLOAD, "envelope payload too large");
    let mut w = WireWriter::with_capacity(payload.len() + ENVELOPE_OVERHEAD);
    w.put_u32(ENVELOPE_MAGIC);
    w.put_u32(payload.len() as u32);
    w.put_u64(checksum(payload));
    w.put_bytes(payload);
    w.finish()
}

/// Verifies and unwraps a sealed response.
///
/// # Errors
///
/// Fails on truncation, a bad magic, an oversize declared length,
/// trailing bytes, or a checksum mismatch — every corruption mode the
/// fault plan can inject maps onto one of these.
pub fn open(bytes: &[u8]) -> Result<&[u8], WireError> {
    let mut r = WireReader::new(bytes);
    if r.get_u32()? != ENVELOPE_MAGIC {
        return Err(WireError::Invalid("bad envelope magic"));
    }
    let len = r.get_u32()? as usize;
    if len > MAX_ENVELOPE_PAYLOAD {
        return Err(WireError::Invalid("envelope payload too large"));
    }
    let sum = r.get_u64()?;
    let payload = r.get_bytes(len)?;
    if r.remaining() != 0 {
        return Err(WireError::Invalid("trailing bytes after envelope"));
    }
    if checksum(payload) != sum {
        return Err(WireError::Invalid("envelope checksum mismatch"));
    }
    Ok(payload)
}

/// Wraps a shard response in the TPT2 envelope, which additionally
/// carries the originating query's trace id — metadata, not content:
/// the id is a process-local sequence number minted at `client.query`,
/// independent of what is being searched. The fixed 24-byte overhead
/// is identical for every query, so the wire footprint stays
/// outcome-independent (the Tiptoe privacy argument is untouched).
///
/// # Panics
///
/// Panics if the payload exceeds [`MAX_ENVELOPE_PAYLOAD`].
pub fn seal_traced(payload: &[u8], trace_id: u64) -> Vec<u8> {
    assert!(payload.len() <= MAX_ENVELOPE_PAYLOAD, "envelope payload too large");
    let mut w = WireWriter::with_capacity(payload.len() + TRACED_ENVELOPE_OVERHEAD);
    w.put_u32(TRACED_ENVELOPE_MAGIC);
    w.put_u32(payload.len() as u32);
    w.put_u64(trace_id);
    w.put_u64(traced_checksum(trace_id, payload));
    w.put_bytes(payload);
    w.finish()
}

/// Verifies and unwraps a [`seal_traced`] envelope, returning the
/// carried trace id alongside the payload.
///
/// # Errors
///
/// Fails on the same corruption modes as [`open`]; the checksum
/// covers the trace id, so header flips are caught too.
pub fn open_traced(bytes: &[u8]) -> Result<(u64, &[u8]), WireError> {
    let mut r = WireReader::new(bytes);
    if r.get_u32()? != TRACED_ENVELOPE_MAGIC {
        return Err(WireError::Invalid("bad traced-envelope magic"));
    }
    let len = r.get_u32()? as usize;
    if len > MAX_ENVELOPE_PAYLOAD {
        return Err(WireError::Invalid("envelope payload too large"));
    }
    let trace_id = r.get_u64()?;
    let sum = r.get_u64()?;
    let payload = r.get_bytes(len)?;
    if r.remaining() != 0 {
        return Err(WireError::Invalid("trailing bytes after envelope"));
    }
    if traced_checksum(trace_id, payload) != sum {
        return Err(WireError::Invalid("envelope checksum mismatch"));
    }
    Ok((trace_id, payload))
}

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The worker never answers; the coordinator waits out the attempt
    /// timeout.
    Crash,
    /// The worker answers correctly but slowly: its virtual latency is
    /// `measured · factor + extra`. `factor` scales measured compute
    /// (machine-dependent); `extra` is a fixed, fully deterministic
    /// virtual delay.
    Straggle {
        /// Multiplier on the measured per-attempt compute time.
        factor: f64,
        /// Fixed additional virtual delay.
        extra: Duration,
    },
    /// The response arrives with flipped bits (caught by the envelope
    /// checksum).
    Corrupt,
    /// The response is cut off mid-stream.
    Truncate,
}

/// Seeded per-attempt fault probabilities (each attempt of each shard
/// draws independently and deterministically from the plan seed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Probability of a [`FaultKind::Crash`].
    pub crash: f64,
    /// Probability of a [`FaultKind::Straggle`].
    pub straggle: f64,
    /// Probability of a [`FaultKind::Corrupt`].
    pub corrupt: f64,
    /// Probability of a [`FaultKind::Truncate`].
    pub truncate: f64,
    /// Compute multiplier applied by rate-drawn stragglers.
    pub straggle_factor: f64,
    /// Fixed virtual delay added by rate-drawn stragglers.
    pub straggle_extra: Duration,
}

impl Default for FaultRates {
    fn default() -> Self {
        Self {
            crash: 0.0,
            straggle: 0.0,
            corrupt: 0.0,
            truncate: 0.0,
            straggle_factor: 10.0,
            straggle_extra: Duration::ZERO,
        }
    }
}

impl FaultRates {
    /// Splits a single aggregate fault rate across the four kinds
    /// (40% crash, 30% straggle, 20% corrupt, 10% truncate) — the
    /// mix used by the `bench_faults` sweep.
    pub fn mixed(rate: f64) -> Self {
        Self {
            crash: rate * 0.4,
            straggle: rate * 0.3,
            corrupt: rate * 0.2,
            truncate: rate * 0.1,
            ..Self::default()
        }
    }
}

/// A deterministic, seeded schedule of injected faults.
///
/// Lookup order for `(shard, attempt)`: one-shot forced faults, then
/// sticky per-shard faults, then the seeded rates. The default plan
/// injects nothing.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    rates: Option<FaultRates>,
    /// Faults applied on every attempt of a shard.
    sticky: Vec<(usize, FaultKind)>,
    /// Faults applied at one specific `(shard, attempt)` address.
    once: Vec<(usize, u32, FaultKind)>,
    /// AZ-correlated crash groups: every member of a group crashed
    /// together (members also appear in `sticky`).
    correlated: Vec<Vec<usize>>,
}

impl FaultPlan {
    /// A plan that injects no faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan drawing faults from seeded per-attempt rates.
    pub fn from_rates(seed: u64, rates: FaultRates) -> Self {
        Self { seed, rates: Some(rates), ..Self::default() }
    }

    /// Forces `kind` at one specific `(shard, attempt)`.
    pub fn with_fault(mut self, shard: usize, attempt: u32, kind: FaultKind) -> Self {
        self.once.push((shard, attempt, kind));
        self
    }

    /// Forces `kind` on every attempt of `shard`.
    pub fn with_shard_fault(mut self, shard: usize, kind: FaultKind) -> Self {
        self.sticky.push((shard, kind));
        self
    }

    /// A shard that never answers (hard crash).
    pub fn crash_shard(self, shard: usize) -> Self {
        self.with_shard_fault(shard, FaultKind::Crash)
    }

    /// A persistent straggler.
    pub fn straggle_shard(self, shard: usize, factor: f64, extra: Duration) -> Self {
        self.with_shard_fault(shard, FaultKind::Straggle { factor, extra })
    }

    /// A flaky shard: crashes on its first `failures` attempts, then
    /// recovers.
    pub fn flaky_then_recover(mut self, shard: usize, failures: u32) -> Self {
        for attempt in 0..failures {
            self.once.push((shard, attempt, FaultKind::Crash));
        }
        self
    }

    /// An AZ-correlated crash: every shard in `group` shares a fate —
    /// one availability-zone failure takes all of them down at once
    /// (the cloud failure mode independent per-shard rates cannot
    /// model). Members crash on every attempt, and the group is
    /// recorded for [`FaultPlan::correlated_groups`].
    pub fn correlated_crash(mut self, group: &[usize]) -> Self {
        for &shard in group {
            self.sticky.push((shard, FaultKind::Crash));
        }
        self.correlated.push(group.to_vec());
        self
    }

    /// The AZ-correlated crash groups injected into this plan.
    pub fn correlated_groups(&self) -> &[Vec<usize>] {
        &self.correlated
    }

    /// Whether this plan can never inject a fault.
    pub fn is_benign(&self) -> bool {
        self.sticky.is_empty()
            && self.once.is_empty()
            && self.rates.is_none_or(|r| {
                r.crash <= 0.0 && r.straggle <= 0.0 && r.corrupt <= 0.0 && r.truncate <= 0.0
            })
    }

    /// The fault injected at `(shard, attempt)`, if any. Deterministic
    /// in the plan alone.
    pub fn fault_for(&self, shard: usize, attempt: u32) -> Option<FaultKind> {
        if let Some(&(_, _, kind)) =
            self.once.iter().find(|&&(s, a, _)| s == shard && a == attempt)
        {
            return Some(kind);
        }
        if let Some(&(_, kind)) = self.sticky.iter().find(|&&(s, _)| s == shard) {
            return Some(kind);
        }
        let rates = self.rates?;
        let u = unit_draw(self.seed, shard as u64, attempt as u64);
        let mut bar = rates.crash;
        if u < bar {
            return Some(FaultKind::Crash);
        }
        bar += rates.straggle;
        if u < bar {
            return Some(FaultKind::Straggle {
                factor: rates.straggle_factor,
                extra: rates.straggle_extra,
            });
        }
        bar += rates.corrupt;
        if u < bar {
            return Some(FaultKind::Corrupt);
        }
        bar += rates.truncate;
        if u < bar {
            return Some(FaultKind::Truncate);
        }
        None
    }

    /// The plan seed (drives deterministic corruption positions).
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// SplitMix64-style mix of the plan seed and an attempt address into
/// a uniform draw in `[0, 1)`.
fn unit_draw(seed: u64, shard: u64, attempt: u64) -> f64 {
    let mut x = seed
        .wrapping_add(shard.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(attempt.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// The coordinator's recovery policy.
///
/// Disabled by default: with `enabled == false` the query path uses
/// the raw [`crate::simulate_parallel`] fan-out and is bit-identical
/// to the pre-fault-tolerance behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPolicy {
    /// Whether the fault-aware dispatch (and the per-shard token path
    /// it requires) is active.
    pub enabled: bool,
    /// Per-attempt, per-shard timeout: a worker that has not delivered
    /// a verifiable response by then is abandoned.
    pub attempt_timeout: Duration,
    /// Additional attempts after the first (so a shard is tried at
    /// most `max_retries + 1` times).
    pub max_retries: u32,
    /// Base backoff before retry `i` (waits `backoff · 2^(i-1)`).
    pub backoff: Duration,
    /// If set, a backup request is hedged at this offset whenever the
    /// primary has not succeeded by then; the shard completes at the
    /// earlier of the two arrivals.
    pub hedge_after: Option<Duration>,
    /// Per-shard budget across all attempts and backoffs; once spent,
    /// the shard is declared failed and the query degrades.
    pub deadline: Duration,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        Self {
            enabled: false,
            attempt_timeout: Duration::from_millis(250),
            max_retries: 2,
            backoff: Duration::from_millis(5),
            hedge_after: Some(Duration::from_millis(100)),
            deadline: Duration::from_secs(2),
        }
    }
}

impl FaultPolicy {
    /// The default recovery knobs with fault tolerance switched on.
    pub fn tolerant() -> Self {
        Self { enabled: true, ..Self::default() }
    }

    /// Tunes the hedge delay from an observed response-time histogram
    /// (the ROADMAP follow-up: hedging auto-tuned from observed tail
    /// latencies). The hedge launches at the observed p95 in
    /// microseconds, so roughly 5% of requests hedge — instead of
    /// every straggler waiting out the fixed default, which was set
    /// for wide-area latencies and overshoots the simulated cluster's
    /// sub-millisecond shards by orders of magnitude. The result is
    /// clamped to `[100 µs, attempt_timeout − 1 ms]` so it always
    /// passes [`FaultPolicy::validate`]; an empty histogram leaves
    /// the policy unchanged.
    pub fn hedge_from_histogram(mut self, hist: &tiptoe_obs::Histogram) -> Self {
        if hist.count() == 0 {
            return self;
        }
        let p95 = Duration::from_micros(hist.quantile(0.95));
        let ceiling = self.attempt_timeout.saturating_sub(Duration::from_millis(1));
        let floor = Duration::from_micros(100).min(ceiling);
        self.hedge_after = Some(p95.clamp(floor, ceiling));
        self
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] if the timeout is zero or exceeds the
    /// deadline, or a hedge would launch after the attempt already
    /// timed out.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.attempt_timeout == Duration::ZERO {
            return Err(ConfigError {
                field: "fault_policy.attempt_timeout",
                reason: "attempt timeout must be positive",
            });
        }
        if self.attempt_timeout > self.deadline {
            return Err(ConfigError {
                field: "fault_policy.deadline",
                reason: "deadline shorter than one attempt",
            });
        }
        if let Some(h) = self.hedge_after {
            if h >= self.attempt_timeout {
                return Err(ConfigError {
                    field: "fault_policy.hedge_after",
                    reason: "hedge must launch before the attempt times out",
                });
            }
        }
        Ok(())
    }
}

/// Per-shard outcome of a fault-aware dispatch.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Whether the shard delivered a verified answer in time.
    pub ok: bool,
    /// Attempts launched (excluding hedges).
    pub attempts: u32,
    /// Whether a hedged backup request was launched.
    pub hedged: bool,
    /// Virtual wall-clock from dispatch to answer (or to giving up),
    /// including timeouts and backoff waits.
    pub wall: Duration,
}

/// Aggregate outcome of one fault-aware fan-out.
#[derive(Debug, Clone, Default)]
pub struct FaultReport {
    /// Per-shard outcomes, in shard order.
    pub shards: Vec<ShardReport>,
    /// Retries launched beyond each shard's first attempt.
    pub retries: u32,
    /// Attempts abandoned at the timeout (crashes and slow stragglers).
    pub timeouts: u32,
    /// Responses rejected by the envelope or the payload parser.
    pub corrupted: u32,
    /// Hedged backup requests launched.
    pub hedges: u32,
    /// Bytes of rejected responses (re-downloaded on retry; feeds the
    /// transcript's retry accounting).
    pub wasted_response_bytes: u64,
    /// Virtual timing: `wall` = slowest shard including its waits,
    /// `cpu` = every executed attempt (wasted work included).
    pub timing: ParallelTiming,
}

impl FaultReport {
    /// Indices of shards that never delivered.
    pub fn failed_shards(&self) -> Vec<usize> {
        self.shards.iter().enumerate().filter(|(_, s)| !s.ok).map(|(i, _)| i).collect()
    }

    /// Whether every shard answered.
    pub fn all_ok(&self) -> bool {
        self.shards.iter().all(|s| s.ok)
    }
}

/// The observed response-time histogram (microseconds of virtual
/// wall-clock per successful delivery) for plan shard address
/// `plan_shard` — i.e. `shard_base + idx` as seen by
/// [`dispatch_faulty`]. Feed it to [`FaultPolicy::hedge_from_histogram`]
/// to auto-tune the hedge delay; the unlabeled
/// `net.shard_response_us` series aggregates all shards.
pub fn shard_response_histogram(plan_shard: usize) -> tiptoe_obs::Histogram {
    tiptoe_obs::metrics()
        .histogram_with("net.shard_response_us", Some(format!("shard{plan_shard}")))
}

/// How one attempt resolved, in virtual time relative to its launch.
enum Delivery<R> {
    /// A verified answer arrived at `at`.
    Ok { value: R, at: Duration },
    /// Nothing verifiable arrived by the attempt timeout.
    TimedOut,
    /// A response arrived at `at` but failed the envelope or parser.
    Bad { at: Duration, bytes: u64 },
}

/// Fault-aware coordinator fan-out: the drop-in replacement for
/// [`crate::simulate_parallel`] on the query path.
///
/// `serve` produces shard `idx`'s raw response payload (the worker
/// compute) or fails typed (e.g. a coalescer lane refused the request
/// within the query's deadline budget — a serve error aborts the
/// whole dispatch, since the query can no longer finish in budget);
/// the dispatcher seals the payload in the checksummed envelope,
/// injects any planned fault, verifies the envelope, and hands it to
/// `parse`. A shard whose attempts are exhausted (or whose deadline
/// is spent) yields `None` and the caller degrades.
///
/// `shard_base` offsets the plan's shard address space, so several
/// services can share one plan (the ranking shards take `0..W`, the
/// URL server `W`).
///
/// Timing is virtual (see the module docs) and deterministic in the
/// plan wherever fault delays are expressed as fixed `extra` delays.
///
/// # Errors
///
/// [`ServeError::InvalidPolicy`] on an invalid policy; any
/// [`ServeError`] from `serve` is propagated.
pub fn dispatch_faulty<T, R>(
    shards: &[T],
    shard_base: usize,
    plan: &FaultPlan,
    policy: &FaultPolicy,
    serve: impl FnMut(usize, &T) -> Result<Vec<u8>, ServeError>,
    parse: impl FnMut(usize, &[u8]) -> Result<R, WireError>,
) -> Result<(Vec<Option<R>>, FaultReport), ServeError> {
    dispatch_faulty_gated(shards, shard_base, plan, policy, None, serve, parse)
}

/// [`dispatch_faulty`] with per-shard circuit-breaker gates: a shard
/// gated [`ShardGate::Skip`] is not dispatched at all — it is
/// reported as failed with zero attempts and zero wall (the breaker
/// already knows it is down; waiting out its timeouts again would
/// just burn the query's deadline budget), and the query degrades to
/// survivor-subset decryption over the remaining shards.
/// [`ShardGate::Serve`] and [`ShardGate::Probe`] dispatch normally.
///
/// # Errors
///
/// As [`dispatch_faulty`].
///
/// # Panics
///
/// Panics if `gates` is provided with a length other than
/// `shards.len()`.
pub fn dispatch_faulty_gated<T, R>(
    shards: &[T],
    shard_base: usize,
    plan: &FaultPlan,
    policy: &FaultPolicy,
    gates: Option<&[ShardGate]>,
    mut serve: impl FnMut(usize, &T) -> Result<Vec<u8>, ServeError>,
    mut parse: impl FnMut(usize, &[u8]) -> Result<R, WireError>,
) -> Result<(Vec<Option<R>>, FaultReport), ServeError> {
    policy.validate()?;
    if let Some(g) = gates {
        assert_eq!(g.len(), shards.len(), "one gate per shard");
    }
    let mut report = FaultReport::default();
    let mut results: Vec<Option<R>> = Vec::with_capacity(shards.len());
    let mut cpu_total = Duration::ZERO;
    let mut wall_max = Duration::ZERO;

    for (idx, shard) in shards.iter().enumerate() {
        let gate = gates.map_or(ShardGate::Serve, |g| g[idx]);
        let mut span = tiptoe_obs::span("net.shard");
        if tiptoe_obs::enabled() {
            span.set_label(format!("{}", shard_base + idx));
        }
        if gate == ShardGate::Skip {
            span.attr_u64("attempts", 0);
            span.attr_u64("skipped", 1);
            span.attr_u64("ok", 0);
            drop(span);
            tiptoe_obs::recorder::record(
                tiptoe_obs::recorder::EventKind::ShardSkipped,
                (shard_base + idx) as u64,
                // Skip gates only come from open breakers.
                tiptoe_obs::recorder::breaker_state::OPEN,
                0,
                0,
            );
            report.shards.push(ShardReport {
                ok: false,
                attempts: 0,
                hedged: false,
                wall: Duration::ZERO,
            });
            results.push(None);
            continue;
        }
        let mut shard_wall = Duration::ZERO;
        let mut shard_cpu = Duration::ZERO;
        let mut attempts = 0u32;
        let mut hedged = false;
        let mut value: Option<R> = None;

        while attempts <= policy.max_retries {
            if attempts > 0 {
                report.retries += 1;
                shard_wall += policy.backoff.saturating_mul(1u32 << (attempts - 1).min(10));
            }
            if shard_wall >= policy.deadline {
                break;
            }

            // Primary attempt.
            let (primary, cpu) =
                run_attempt(idx, shard, attempts, shard_base, plan, policy, &mut serve, &mut parse)?;
            shard_cpu += cpu;
            let primary_fail_at = match &primary {
                Delivery::Ok { .. } => None,
                Delivery::TimedOut => Some(policy.attempt_timeout),
                Delivery::Bad { at, .. } => Some(*at),
            };
            let mut best: Option<(R, Duration)> = None;
            match primary {
                Delivery::Ok { value: v, at } => best = Some((v, at)),
                Delivery::TimedOut => report.timeouts += 1,
                Delivery::Bad { bytes, .. } => {
                    report.corrupted += 1;
                    report.wasted_response_bytes += bytes;
                }
            }

            // Hedged backup: launches at `hedge_after` if the primary
            // has not succeeded by then.
            let mut hedge_fail_at: Option<Duration> = None;
            if let Some(h) = policy.hedge_after {
                let primary_ok_by_h = matches!(&best, Some((_, at)) if *at <= h);
                if !primary_ok_by_h {
                    report.hedges += 1;
                    hedged = true;
                    let (backup, hcpu) = run_attempt(
                        idx,
                        shard,
                        attempts | HEDGE_FLAG,
                        shard_base,
                        plan,
                        policy,
                        &mut serve,
                        &mut parse,
                    )?;
                    shard_cpu += hcpu;
                    match backup {
                        Delivery::Ok { value: v, at } => {
                            let arrival = h + at;
                            if best.as_ref().is_none_or(|(_, p)| arrival < *p) {
                                best = Some((v, arrival));
                            }
                        }
                        Delivery::TimedOut => {
                            report.timeouts += 1;
                            hedge_fail_at = Some(h + policy.attempt_timeout);
                        }
                        Delivery::Bad { at, bytes } => {
                            report.corrupted += 1;
                            report.wasted_response_bytes += bytes;
                            hedge_fail_at = Some(h + at);
                        }
                    }
                }
            }

            attempts += 1;
            match best {
                Some((v, at)) => {
                    shard_wall += at;
                    value = Some(v);
                    break;
                }
                None => {
                    // Both primary and any hedge failed; the
                    // coordinator notices at the later failure.
                    let p = primary_fail_at.unwrap_or(policy.attempt_timeout);
                    shard_wall += hedge_fail_at.map_or(p, |hf| p.max(hf));
                }
            }
        }

        let ok = value.is_some();
        if ok {
            // Successful deliveries feed the tail-latency histograms
            // that drive hedge auto-tuning.
            let us = shard_wall.as_micros() as u64;
            shard_response_histogram(shard_base + idx).record(us);
            tiptoe_obs::metrics().histogram("net.shard_response_us").record(us);
        }
        span.attr_u64("attempts", attempts as u64);
        span.attr_u64("hedged", hedged as u64);
        span.attr_u64("ok", ok as u64);
        span.set_virtual(shard_wall);
        drop(span);
        tiptoe_obs::recorder::record(
            tiptoe_obs::recorder::EventKind::ShardOutcome,
            (shard_base + idx) as u64,
            u64::from(ok) | (u64::from(hedged) << 1) | (u64::from(gate == ShardGate::Probe) << 2),
            attempts as u64,
            shard_wall.as_micros() as u64,
        );
        report.shards.push(ShardReport { ok, attempts, hedged, wall: shard_wall });
        results.push(value);
        cpu_total += shard_cpu;
        wall_max = wall_max.max(shard_wall);
    }

    report.timing = ParallelTiming { wall: wall_max, cpu: cpu_total };
    mirror_report_metrics(&report);
    Ok((results, report))
}

/// Folds one dispatch's [`FaultReport`] counters into the global
/// metrics registry, so `metrics.json` carries cumulative
/// retry/timeout/corruption/hedge totals without a second accounting
/// path ([`FaultReport`] stays the per-dispatch view).
fn mirror_report_metrics(report: &FaultReport) {
    let m = tiptoe_obs::metrics();
    m.counter("net.dispatches").inc();
    m.counter("net.retries").add(report.retries as u64);
    m.counter("net.timeouts").add(report.timeouts as u64);
    m.counter("net.corrupted").add(report.corrupted as u64);
    m.counter("net.hedges").add(report.hedges as u64);
    m.counter("net.wasted_response_bytes").add(report.wasted_response_bytes);
    m.counter("net.failed_shards").add(report.shards.iter().filter(|s| !s.ok).count() as u64);
}

/// Dynamic view of the caller's payload parser, passed down to the
/// delivery closure.
type ParseFn<'a, R> = &'a mut dyn FnMut(usize, &[u8]) -> Result<R, WireError>;

/// Executes one attempt (identified by its plan address) in virtual
/// time; returns the delivery outcome and the real CPU spent, or
/// propagates a typed serve failure (which aborts the dispatch).
#[allow(clippy::too_many_arguments)]
fn run_attempt<T, R>(
    idx: usize,
    shard: &T,
    attempt_no: u32,
    shard_base: usize,
    plan: &FaultPlan,
    policy: &FaultPolicy,
    serve: &mut impl FnMut(usize, &T) -> Result<Vec<u8>, ServeError>,
    parse: &mut impl FnMut(usize, &[u8]) -> Result<R, WireError>,
) -> Result<(Delivery<R>, Duration), ServeError> {
    let plan_shard = shard_base + idx;
    // `run_attempt` executes on the query's own dispatching thread,
    // so the thread-local query id *is* the originating query: the
    // TPT2 envelope carries it to (and back from) the shard, which is
    // how per-shard work stays attributable after the response hops
    // threads.
    let trace_id = tiptoe_obs::current_query();
    let deliver = |payload: Vec<u8>, at: Duration, parse: ParseFn<'_, R>| {
        let sealed = seal_traced(&payload, trace_id);
        let bytes = sealed.len() as u64;
        match open_traced(&sealed).and_then(|(_, p)| parse(idx, p)) {
            Ok(value) => Delivery::Ok { value, at },
            Err(_) => Delivery::Bad { at, bytes },
        }
    };
    match plan.fault_for(plan_shard, attempt_no) {
        Some(FaultKind::Crash) => Ok((Delivery::TimedOut, Duration::ZERO)),
        Some(FaultKind::Straggle { factor, extra }) => {
            let (payload, t) = timed(|| serve(idx, shard));
            let payload = payload?;
            let virtual_t = t.mul_f64(factor.max(0.0)) + extra;
            if virtual_t > policy.attempt_timeout {
                Ok((Delivery::TimedOut, t))
            } else {
                Ok((deliver(payload, virtual_t, parse), t))
            }
        }
        Some(FaultKind::Corrupt) => {
            let (payload, t) = timed(|| serve(idx, shard));
            let mut sealed = seal_traced(&payload?, trace_id);
            corrupt_in_place(&mut sealed, TRACED_ENVELOPE_OVERHEAD, plan.seed(), plan_shard, attempt_no);
            let bytes = sealed.len() as u64;
            let outcome = match open_traced(&sealed).and_then(|(_, p)| parse(idx, p)) {
                Ok(value) => Delivery::Ok { value, at: t },
                Err(_) => Delivery::Bad { at: t, bytes },
            };
            Ok((outcome, t))
        }
        Some(FaultKind::Truncate) => {
            let (payload, t) = timed(|| serve(idx, shard));
            let sealed = seal_traced(&payload?, trace_id);
            let cut = &sealed[..sealed.len() / 2];
            let bytes = cut.len() as u64;
            let outcome = match open_traced(cut).and_then(|(_, p)| parse(idx, p)) {
                Ok(value) => Delivery::Ok { value, at: t },
                Err(_) => Delivery::Bad { at: t, bytes },
            };
            Ok((outcome, t))
        }
        None => {
            let (payload, t) = timed(|| serve(idx, shard));
            let payload = payload?;
            if t > policy.attempt_timeout {
                Ok((Delivery::TimedOut, t))
            } else {
                Ok((deliver(payload, t, parse), t))
            }
        }
    }
}

/// Deterministically flips one payload byte of a sealed response (the
/// envelope checksum is guaranteed to catch a single-byte change).
/// `overhead` is the sealing format's header size
/// ([`ENVELOPE_OVERHEAD`] or [`TRACED_ENVELOPE_OVERHEAD`]).
fn corrupt_in_place(sealed: &mut [u8], overhead: usize, seed: u64, shard: usize, attempt: u32) {
    let draw = unit_draw(seed ^ 0xc0de, shard as u64, attempt as u64);
    if sealed.len() > overhead {
        let span = sealed.len() - overhead;
        let pos = overhead + ((draw * span as f64) as usize).min(span - 1);
        sealed[pos] ^= 0xa5;
    } else if let Some(b) = sealed.last_mut() {
        *b ^= 0xa5;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_shards(n: usize) -> Vec<u64> {
        (0..n as u64).collect()
    }

    fn serve_ok(_: usize, s: &u64) -> Result<Vec<u8>, ServeError> {
        let mut w = WireWriter::new();
        w.put_u64(*s * 10);
        Ok(w.finish())
    }

    fn parse_ok(_: usize, p: &[u8]) -> Result<u64, WireError> {
        let mut r = WireReader::new(p);
        let v = r.get_u64()?;
        r.finish()?;
        Ok(v)
    }

    #[test]
    fn envelope_roundtrips_and_detects_tampering() {
        let payload = b"ranking shard answer".to_vec();
        let sealed = seal(&payload);
        assert_eq!(sealed.len(), payload.len() + ENVELOPE_OVERHEAD);
        assert_eq!(open(&sealed).expect("opens"), &payload[..]);
        // Any single-byte flip in the payload is detected.
        for pos in ENVELOPE_OVERHEAD..sealed.len() {
            let mut bad = sealed.clone();
            bad[pos] ^= 0x01;
            assert!(open(&bad).is_err(), "flip at {pos} not detected");
        }
        // Truncation at every length is detected.
        for cut in 0..sealed.len() {
            assert!(open(&sealed[..cut]).is_err(), "cut at {cut} not detected");
        }
        // Oversize declared length is rejected without allocating.
        let mut w = WireWriter::new();
        w.put_u32(ENVELOPE_MAGIC);
        w.put_u32(u32::MAX);
        w.put_u64(0);
        assert!(open(&w.finish()).is_err());
    }

    #[test]
    fn traced_envelope_roundtrips_and_covers_the_trace_id() {
        let payload = b"ranking shard answer".to_vec();
        let trace_id = 0xfeed_beef_u64;
        let sealed = seal_traced(&payload, trace_id);
        assert_eq!(sealed.len(), payload.len() + TRACED_ENVELOPE_OVERHEAD);
        let (id, opened) = open_traced(&sealed).expect("opens");
        assert_eq!(id, trace_id);
        assert_eq!(opened, &payload[..]);
        // Any single-byte flip — header (incl. trace id) or payload —
        // is detected.
        for pos in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[pos] ^= 0x01;
            assert!(open_traced(&bad).is_err(), "flip at {pos} not detected");
        }
        // Truncation at every length is detected.
        for cut in 0..sealed.len() {
            assert!(open_traced(&sealed[..cut]).is_err(), "cut at {cut} not detected");
        }
        // The two formats never cross-open.
        assert!(open(&sealed).is_err(), "TPT1 opener must reject TPT2");
        assert!(open_traced(&seal(&payload)).is_err(), "TPT2 opener must reject TPT1");
        // Query id 0 (outside any scope) round-trips too.
        let (id0, _) = open_traced(&seal_traced(&payload, 0)).expect("opens");
        assert_eq!(id0, 0);
    }

    #[test]
    fn benign_plan_dispatch_answers_every_shard() {
        let shards = echo_shards(4);
        let (results, report) = dispatch_faulty(
            &shards,
            0,
            &FaultPlan::none(),
            &FaultPolicy::tolerant(),
            serve_ok,
            parse_ok,
        )
        .expect("dispatch");
        assert_eq!(results, vec![Some(0), Some(10), Some(20), Some(30)]);
        assert!(report.all_ok());
        assert_eq!(report.retries, 0);
        assert_eq!(report.timeouts, 0);
        assert_eq!(report.corrupted, 0);
        assert!(report.timing.cpu >= report.timing.wall);
    }

    #[test]
    fn crashed_shard_fails_with_timeout_accounting() {
        let shards = echo_shards(3);
        let plan = FaultPlan::none().crash_shard(1);
        let mut policy = FaultPolicy::tolerant();
        policy.hedge_after = None;
        let (results, report) = dispatch_faulty(&shards, 0, &plan, &policy, serve_ok, parse_ok).expect("dispatch");
        assert_eq!(results[0], Some(0));
        assert_eq!(results[1], None);
        assert_eq!(results[2], Some(20));
        assert_eq!(report.failed_shards(), vec![1]);
        // 3 attempts, each waiting out the full timeout, plus backoff.
        let s = &report.shards[1];
        assert_eq!(s.attempts, policy.max_retries + 1);
        assert!(s.wall >= policy.attempt_timeout.saturating_mul(policy.max_retries + 1));
        assert_eq!(report.timeouts, policy.max_retries + 1);
        assert!(report.timing.wall >= s.wall);
    }

    #[test]
    fn flaky_shard_recovers_after_retries() {
        let shards = echo_shards(2);
        let plan = FaultPlan::none().flaky_then_recover(0, 2);
        let mut policy = FaultPolicy::tolerant();
        policy.hedge_after = None;
        let (results, report) = dispatch_faulty(&shards, 0, &plan, &policy, serve_ok, parse_ok).expect("dispatch");
        assert_eq!(results, vec![Some(0), Some(10)]);
        assert!(report.all_ok());
        assert_eq!(report.retries, 2);
        assert_eq!(report.shards[0].attempts, 3);
        // Two timeouts plus exponential backoff are on the shard wall.
        let floor = policy.attempt_timeout.saturating_mul(2) + policy.backoff.saturating_mul(3);
        assert!(report.shards[0].wall >= floor, "{:?} < {floor:?}", report.shards[0].wall);
    }

    #[test]
    fn corrupt_and_truncated_responses_fail_into_retry() {
        let shards = echo_shards(2);
        for kind in [FaultKind::Corrupt, FaultKind::Truncate] {
            let plan = FaultPlan::none().with_fault(1, 0, kind);
            let mut policy = FaultPolicy::tolerant();
            policy.hedge_after = None;
            let (results, report) =
                dispatch_faulty(&shards, 0, &plan, &policy, serve_ok, parse_ok).expect("dispatch");
            assert_eq!(results, vec![Some(0), Some(10)], "{kind:?}");
            assert_eq!(report.corrupted, 1, "{kind:?}");
            assert_eq!(report.retries, 1, "{kind:?}");
            assert!(report.wasted_response_bytes > 0, "{kind:?}");
        }
    }

    #[test]
    fn hedge_beats_deterministic_straggler() {
        let shards = echo_shards(3);
        // Shard 2 straggles by a fixed 10 s — far beyond the timeout —
        // so the primary is abandoned and the hedge (healthy) wins.
        let plan = FaultPlan::none().straggle_shard(2, 1.0, Duration::from_secs(10));
        let policy = FaultPolicy::tolerant();
        let (results, report) = dispatch_faulty(&shards, 0, &plan, &policy, serve_ok, parse_ok).expect("dispatch");
        // The sticky straggler also delays the hedge, which still
        // arrives... no: sticky applies to every attempt, so the hedge
        // straggles too and the shard exhausts its attempts.
        assert_eq!(results[2], None);
        assert!(report.hedges >= 1);
        assert!(report.shards[2].hedged);

        // A one-shot straggler instead: the hedge is healthy and the
        // shard completes near hedge_after, well under the deadline.
        let plan = FaultPlan::none().with_fault(
            2,
            0,
            FaultKind::Straggle { factor: 10.0, extra: Duration::from_secs(10) },
        );
        let (results, report) =
            dispatch_faulty(&shards, 0, &plan, &policy, serve_ok, parse_ok).expect("dispatch");
        assert_eq!(results[2], Some(20));
        assert!(report.shards[2].ok);
        assert_eq!(report.shards[2].attempts, 1, "hedge consumed no retry");
        assert!(report.hedges >= 1);
        let h = policy.hedge_after.expect("hedging on");
        assert!(report.shards[2].wall >= h);
        assert!(report.shards[2].wall < policy.attempt_timeout + h);
        assert!(report.timing.wall < policy.deadline);
    }

    #[test]
    fn slow_straggler_within_timeout_just_arrives_late() {
        let shards = echo_shards(2);
        let mut policy = FaultPolicy::tolerant();
        policy.hedge_after = None;
        // 60 ms fixed virtual delay < 250 ms timeout: arrives, verified.
        let plan = FaultPlan::none().straggle_shard(0, 1.0, Duration::from_millis(60));
        let (results, report) = dispatch_faulty(&shards, 0, &plan, &policy, serve_ok, parse_ok).expect("dispatch");
        assert_eq!(results, vec![Some(0), Some(10)]);
        assert!(report.all_ok());
        assert!(report.shards[0].wall >= Duration::from_millis(60));
        assert_eq!(report.retries, 0);
    }

    #[test]
    fn rates_are_deterministic_and_roughly_calibrated() {
        let plan = FaultPlan::from_rates(7, FaultRates::mixed(0.4));
        let a: Vec<_> = (0..64).map(|s| plan.fault_for(s, 0)).collect();
        let b: Vec<_> = (0..64).map(|s| plan.fault_for(s, 0)).collect();
        assert_eq!(a, b, "same plan, same draws");
        let faults = a.iter().filter(|f| f.is_some()).count();
        assert!((10..=40).contains(&faults), "fault count {faults} far from 40% of 64");
        // A different seed reshuffles the schedule.
        let other = FaultPlan::from_rates(8, FaultRates::mixed(0.4));
        let c: Vec<_> = (0..64).map(|s| other.fault_for(s, 0)).collect();
        assert_ne!(a, c);
        // Zero rates are benign; forced faults are not.
        assert!(FaultPlan::from_rates(7, FaultRates::mixed(0.0)).is_benign());
        assert!(!FaultPlan::none().crash_shard(0).is_benign());
    }

    #[test]
    fn shard_base_offsets_the_plan_address_space() {
        let shards = echo_shards(1);
        let plan = FaultPlan::none().crash_shard(5);
        let mut policy = FaultPolicy::tolerant();
        policy.hedge_after = None;
        let (hit, _) =
            dispatch_faulty(&shards, 5, &plan, &policy, serve_ok, parse_ok).expect("dispatch");
        assert_eq!(hit, vec![None]);
        let (miss, _) = dispatch_faulty(&shards, 0, &plan, &policy, serve_ok, parse_ok).expect("dispatch");
        assert_eq!(miss, vec![Some(0)]);
    }

    #[test]
    fn deadline_caps_retry_spending() {
        let shards = echo_shards(1);
        let plan = FaultPlan::none().crash_shard(0);
        let mut policy = FaultPolicy::tolerant();
        policy.hedge_after = None;
        policy.max_retries = 100;
        policy.deadline = Duration::from_millis(600);
        let (results, report) = dispatch_faulty(&shards, 0, &plan, &policy, serve_ok, parse_ok).expect("dispatch");
        assert_eq!(results, vec![None]);
        // 600 ms budget / 250 ms timeouts: at most 3 attempts launch.
        assert!(report.shards[0].attempts <= 3, "{}", report.shards[0].attempts);
        assert!(report.shards[0].wall < Duration::from_millis(1200));
    }

    #[test]
    fn hedge_from_histogram_beats_fixed_delay() {
        // Shard base 7000 keeps this test's histogram labels disjoint
        // from every other test sharing the global registry.
        let shards = echo_shards(4);
        let fixed = FaultPolicy::tolerant();

        // Warm-up: healthy dispatches populate the per-shard
        // response-time histograms with observed (fast) latencies.
        for _ in 0..20 {
            let (_, report) =
                dispatch_faulty(&shards, 7000, &FaultPlan::none(), &fixed, serve_ok, parse_ok)
                    .expect("dispatch");
            assert!(report.all_ok());
        }
        let observed = shard_response_histogram(7002);
        assert!(observed.count() >= 20);

        // Auto-tune: hedge at the observed p95 instead of the fixed
        // 100 ms default (set for wide-area latencies).
        let tuned = fixed.hedge_from_histogram(&observed);
        tuned.validate().expect("tuned policy stays valid");
        let tuned_hedge = tuned.hedge_after.expect("tuned hedge set");
        assert!(
            tuned_hedge < fixed.hedge_after.expect("fixed hedge set"),
            "observed p95 {tuned_hedge:?} should undercut the fixed default"
        );

        // A one-shot straggler on shard 2 (plan address 7002): the
        // hedge rescues it under both policies, but the tuned policy
        // launches its hedge at the observed p95 and finishes far
        // sooner.
        let straggler = || {
            FaultPlan::none().with_fault(
                7002,
                0,
                FaultKind::Straggle { factor: 1.0, extra: Duration::from_secs(10) },
            )
        };
        let (fixed_res, fixed_report) =
            dispatch_faulty(&shards, 7000, &straggler(), &fixed, serve_ok, parse_ok)
                .expect("dispatch");
        let (tuned_res, tuned_report) =
            dispatch_faulty(&shards, 7000, &straggler(), &tuned, serve_ok, parse_ok)
                .expect("dispatch");
        assert_eq!(fixed_res[2], Some(20));
        assert_eq!(tuned_res[2], Some(20));
        assert!(
            tuned_report.shards[2].wall < fixed_report.shards[2].wall,
            "tuned {:?} not faster than fixed {:?}",
            tuned_report.shards[2].wall,
            fixed_report.shards[2].wall
        );

        // An empty histogram leaves the policy untouched.
        let empty = shard_response_histogram(7999);
        assert_eq!(fixed.hedge_from_histogram(&empty), fixed);
    }

    #[test]
    fn policy_validation_rejects_nonsense() {
        assert!(FaultPolicy::tolerant().validate().is_ok());
        let mut p = FaultPolicy::tolerant();
        p.attempt_timeout = Duration::ZERO;
        assert_eq!(p.validate().expect_err("zero timeout").field, "fault_policy.attempt_timeout");
        let mut p = FaultPolicy::tolerant();
        p.deadline = Duration::from_millis(1);
        assert_eq!(p.validate().expect_err("tiny deadline").field, "fault_policy.deadline");
        let mut p = FaultPolicy::tolerant();
        p.hedge_after = Some(p.attempt_timeout);
        assert_eq!(p.validate().expect_err("late hedge").field, "fault_policy.hedge_after");
        // An invalid policy surfaces through dispatch as a typed
        // error, not a panic.
        let err = dispatch_faulty(&echo_shards(1), 0, &FaultPlan::none(), &p, serve_ok, parse_ok)
            .expect_err("invalid policy rejected");
        assert!(matches!(err, ServeError::InvalidPolicy(_)), "{err:?}");
    }

    #[test]
    fn correlated_crash_takes_down_the_whole_group() {
        let shards = echo_shards(4);
        let plan = FaultPlan::none().correlated_crash(&[1, 2]);
        assert!(!plan.is_benign());
        assert_eq!(plan.correlated_groups(), &[vec![1, 2]]);
        let mut policy = FaultPolicy::tolerant();
        policy.hedge_after = None;
        policy.max_retries = 0;
        let (results, report) =
            dispatch_faulty(&shards, 0, &plan, &policy, serve_ok, parse_ok).expect("dispatch");
        assert_eq!(results, vec![Some(0), None, None, Some(30)]);
        assert_eq!(report.failed_shards(), vec![1, 2], "the whole AZ fails together");
    }

    #[test]
    fn skip_gates_fail_shards_without_burning_attempts() {
        let shards = echo_shards(3);
        let gates = [ShardGate::Serve, ShardGate::Skip, ShardGate::Probe];
        let (results, report) = dispatch_faulty_gated(
            &shards,
            0,
            &FaultPlan::none(),
            &FaultPolicy::tolerant(),
            Some(&gates),
            serve_ok,
            parse_ok,
        )
        .expect("dispatch");
        assert_eq!(results, vec![Some(0), None, Some(20)]);
        let skipped = &report.shards[1];
        assert!(!skipped.ok);
        assert_eq!(skipped.attempts, 0, "skipped shards launch no attempts");
        assert_eq!(skipped.wall, Duration::ZERO, "skipping costs no deadline budget");
        assert!(report.shards[0].ok && report.shards[2].ok, "served and probed shards answer");
    }

    #[test]
    fn serve_errors_abort_the_dispatch() {
        let shards = echo_shards(2);
        let budget_err = ServeError::DeadlineExceeded {
            budget: Duration::from_millis(5),
            spent: Duration::from_millis(9),
        };
        let err = dispatch_faulty(
            &shards,
            0,
            &FaultPlan::none(),
            &FaultPolicy::tolerant(),
            |idx, s| if idx == 1 { Err(budget_err) } else { serve_ok(idx, s) },
            parse_ok,
        )
        .expect_err("serve failure propagates");
        assert_eq!(err, budget_err);
    }
}
