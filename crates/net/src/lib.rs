//! Simulated cluster runtime: sharded dispatch, exact communication
//! accounting, and the client-link latency model of the paper's
//! evaluation (§8.1: "the simulated link between the client and the
//! coordinator has 100 Mbps bandwidth with a 50 ms RTT").
//!
//! The paper runs on 45 AWS machines; this workspace runs on one. The
//! cluster is therefore *simulated with full structural fidelity*:
//! shards execute the same code a worker machine would, one at a time,
//! and [`simulate_parallel`] reports
//!
//! - `cpu`: the summed execution time (→ the paper's "core-seconds",
//!   which count every vCPU paid for), and
//! - `wall`: the maximum per-shard time (→ the latency a perfectly
//!   parallel fan-out would achieve).
//!
//! Every protocol message crosses a [`Transcript`], which records its
//! exact wire size per phase and direction; the end-to-end latency of
//! a phase is then reconstructed with [`LinkModel::phase_latency`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coalesce;
pub mod fault;
pub mod overload;
pub mod pool;
pub mod service;

pub use coalesce::{
    chaos_inject_reactor_panic, CoalescePolicy, Coalescer, LaneStatus, MAX_LANE_RETRIES,
};
pub use fault::{
    dispatch_faulty, dispatch_faulty_gated, open, open_traced, seal, seal_traced,
    shard_response_histogram, FaultKind, FaultPlan, FaultPolicy, FaultRates, FaultReport,
    ShardReport, TRACED_ENVELOPE_OVERHEAD,
};
pub use overload::{
    AdmissionController, AdmissionPermit, AdmissionPolicy, BreakerBank, BreakerPolicy,
    BreakerState, ConfigError, DeadlineBudget, ServeError, ShardGate,
};
pub use pool::WorkerPool;
pub use service::{dispatch, DispatchContext, Dispatched, Ledger, Service};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Canonical protocol phases of the transcript ledger.
///
/// Phases used to be free-form `&str`s, so `record_up("ranking")` vs
/// a `"rank"` typo silently split the ledger; the enum makes the
/// phase vocabulary a compile-time fact. [`Phase::as_str`] (and the
/// `Display`/`From` impls) keep the string form for display and JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// One-time client setup (hint download, underhood keys).
    Setup,
    /// Per-query underhood token fetch.
    Token,
    /// Ranking PIR round.
    Ranking,
    /// Extra ranking bytes spent on retried/hedged attempts.
    RankingRetries,
    /// URL PIR round.
    Url,
    /// Extra URL bytes spent on retried/hedged attempts.
    UrlRetries,
}

impl Phase {
    /// Every phase, in protocol order.
    pub const ALL: [Phase; 6] = [
        Phase::Setup,
        Phase::Token,
        Phase::Ranking,
        Phase::RankingRetries,
        Phase::Url,
        Phase::UrlRetries,
    ];

    /// The canonical display name (stable across releases; used in
    /// JSON artifacts and metric labels).
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Setup => "setup",
            Phase::Token => "token",
            Phase::Ranking => "ranking",
            Phase::RankingRetries => "ranking-retries",
            Phase::Url => "url",
            Phase::UrlRetries => "url-retries",
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<Phase> for &'static str {
    fn from(p: Phase) -> Self {
        p.as_str()
    }
}

/// Transfer direction, from the client's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Client → server.
    Upload,
    /// Server → client.
    Download,
}

/// A per-phase, per-direction ledger of exact wire bytes.
///
/// Each instance keeps its own exact entries (tests assert on them
/// per-query); every record is additionally mirrored into the global
/// [`tiptoe_obs::metrics`] registry as `net.bytes_up`/`net.bytes_down`
/// counters labeled by phase, so the metrics snapshot reproduces the
/// Table-7-style byte breakdown without a second accounting path.
#[derive(Debug, Default)]
pub struct Transcript {
    entries: Mutex<Vec<(Phase, Direction, u64)>>,
    sheds: AtomicU64,
}

impl Transcript {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a client→server message.
    pub fn record_up(&self, phase: Phase, bytes: u64) {
        self.entries.lock().expect("transcript lock").push((phase, Direction::Upload, bytes));
        tiptoe_obs::metrics().counter_with("net.bytes_up", Some(phase.as_str().into())).add(bytes);
    }

    /// Records a server→client message.
    pub fn record_down(&self, phase: Phase, bytes: u64) {
        self.entries.lock().expect("transcript lock").push((phase, Direction::Download, bytes));
        tiptoe_obs::metrics().counter_with("net.bytes_down", Some(phase.as_str().into())).add(bytes);
    }

    /// Total bytes in one direction across all phases.
    pub fn total(&self, dir: Direction) -> u64 {
        self.entries.lock().expect("transcript lock").iter().filter(|(_, d, _)| *d == dir).map(|(_, _, b)| b).sum()
    }

    /// Bytes for one phase and direction.
    pub fn phase_total(&self, phase: Phase, dir: Direction) -> u64 {
        self.entries
            .lock()
            .expect("transcript lock")
            .iter()
            .filter(|(p, d, _)| *p == phase && *d == dir)
            .map(|(_, _, b)| b)
            .sum()
    }

    /// All phases with recorded traffic, in first-appearance order.
    pub fn phases(&self) -> Vec<Phase> {
        let mut seen = Vec::new();
        for &(p, _, _) in self.entries.lock().expect("transcript lock").iter() {
            if !seen.contains(&p) {
                seen.push(p);
            }
        }
        seen
    }

    /// Total traffic in both directions.
    pub fn grand_total(&self) -> u64 {
        self.total(Direction::Upload) + self.total(Direction::Download)
    }

    /// Records a query shed by admission control before any bytes
    /// crossed the wire. A shed query has *zero* transcript entries —
    /// the fixed wire footprint only applies to admitted queries —
    /// but its rejection is accounted here and in the `net.shed`
    /// counter so overload behavior is observable.
    pub fn record_shed(&self) {
        self.sheds.fetch_add(1, Ordering::Relaxed);
    }

    /// Queries shed since the last [`Transcript::reset`].
    pub fn sheds(&self) -> u64 {
        self.sheds.load(Ordering::Relaxed)
    }

    /// Clears the ledger (e.g. between measured queries).
    pub fn reset(&self) {
        self.entries.lock().expect("transcript lock").clear();
        self.sheds.store(0, Ordering::Relaxed);
    }

    /// Attributes one recorded message's bytes across the clusters it
    /// served, into the `net.cluster_bytes_up`/`net.cluster_bytes_down`
    /// metric counters labeled `c<idx>` — a *mirror-only* attribution
    /// (the exact per-phase ledger stays the source of truth). The
    /// split is exact: `bytes/n` per cluster with the remainder going
    /// to the lowest-indexed clusters, so the per-cluster counters sum
    /// to the phase totals byte-for-byte.
    pub fn attribute_clusters(&self, dir: Direction, clusters: (usize, usize), bytes: u64) {
        let (lo, hi) = clusters;
        if hi <= lo {
            return;
        }
        let name = match dir {
            Direction::Upload => "net.cluster_bytes_up",
            Direction::Download => "net.cluster_bytes_down",
        };
        let n = (hi - lo) as u64;
        let base = bytes / n;
        let rem = bytes % n;
        for (i, c) in (lo..hi).enumerate() {
            let share = base + u64::from((i as u64) < rem);
            if share > 0 {
                tiptoe_obs::metrics().counter_with(name, Some(format!("c{c}"))).add(share);
            }
        }
    }
}

/// The client↔service network link model.
#[derive(Debug, Clone, Copy)]
pub struct LinkModel {
    /// Link bandwidth in bits per second.
    pub bandwidth_bps: f64,
    /// Round-trip time.
    pub rtt: Duration,
}

impl LinkModel {
    /// The paper's evaluation link: 100 Mbit/s, 50 ms RTT.
    pub fn paper() -> Self {
        Self { bandwidth_bps: 100e6, rtt: Duration::from_millis(50) }
    }

    /// Pure transfer time for a payload.
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        Duration::from_secs_f64(bytes as f64 * 8.0 / self.bandwidth_bps)
    }

    /// End-to-end latency of one request/response phase: one RTT plus
    /// both transfers plus the server's (parallel) compute time.
    pub fn phase_latency(&self, up_bytes: u64, down_bytes: u64, server_wall: Duration) -> Duration {
        self.rtt + self.transfer_time(up_bytes) + self.transfer_time(down_bytes) + server_wall
    }
}

/// Timing of a simulated parallel fan-out.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParallelTiming {
    /// Maximum per-shard time: the wall-clock latency of a perfectly
    /// parallel cluster.
    pub wall: Duration,
    /// Summed per-shard time: the total core-seconds paid for.
    pub cpu: Duration,
}

impl ParallelTiming {
    /// Combines two phases executed one after the other.
    pub fn then(self, next: ParallelTiming) -> ParallelTiming {
        ParallelTiming { wall: self.wall + next.wall, cpu: self.cpu + next.cpu }
    }
}

/// Runs `f` over every shard, measuring per-shard time; returns the
/// results plus [`ParallelTiming`] (`wall` = slowest shard, `cpu` =
/// sum). This models the coordinator fan-out of §4.3 on a single
/// machine without letting scheduler interleaving distort the numbers.
pub fn simulate_parallel<T, R>(shards: &[T], mut f: impl FnMut(&T) -> R) -> (Vec<R>, ParallelTiming) {
    let mut results = Vec::with_capacity(shards.len());
    let mut wall = Duration::ZERO;
    let mut cpu = Duration::ZERO;
    for shard in shards {
        let start = Instant::now();
        results.push(f(shard));
        let elapsed = start.elapsed();
        wall = wall.max(elapsed);
        cpu += elapsed;
    }
    (results, ParallelTiming { wall, cpu })
}

/// A stopwatch for single-machine (client or coordinator) steps.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transcript_accumulates_per_phase() {
        let t = Transcript::new();
        t.record_up(Phase::Token, 100);
        t.record_up(Phase::Ranking, 50);
        t.record_down(Phase::Ranking, 25);
        t.record_up(Phase::Ranking, 10);
        assert_eq!(t.total(Direction::Upload), 160);
        assert_eq!(t.total(Direction::Download), 25);
        assert_eq!(t.phase_total(Phase::Ranking, Direction::Upload), 60);
        assert_eq!(t.phases(), vec![Phase::Token, Phase::Ranking]);
        assert_eq!(t.grand_total(), 185);
        t.record_shed();
        t.record_shed();
        assert_eq!(t.sheds(), 2);
        t.reset();
        assert_eq!(t.grand_total(), 0);
        assert_eq!(t.sheds(), 0);
    }

    #[test]
    fn phase_names_are_canonical() {
        assert_eq!(Phase::ALL.len(), 6);
        for p in Phase::ALL {
            let s: &'static str = p.into();
            assert_eq!(s, p.as_str());
            assert_eq!(format!("{p}"), s);
        }
        assert_eq!(Phase::RankingRetries.as_str(), "ranking-retries");
    }

    #[test]
    fn paper_link_transfer_times() {
        let link = LinkModel::paper();
        // 12.5 MB/s -> 1 MiB in ~0.084 s.
        let t = link.transfer_time(1 << 20);
        assert!((t.as_secs_f64() - 0.0839).abs() < 0.001, "{t:?}");
        // A phase with no payload still costs one RTT.
        let lat = link.phase_latency(0, 0, Duration::ZERO);
        assert_eq!(lat, Duration::from_millis(50));
    }

    #[test]
    fn simulate_parallel_reports_max_and_sum() {
        let shards = vec![1u64, 2, 3];
        let (results, timing) = simulate_parallel(&shards, |&s| {
            // Busy-work proportional to the shard value.
            let mut acc = 0u64;
            for i in 0..s * 200_000 {
                acc = acc.wrapping_add(i);
            }
            acc
        });
        assert_eq!(results.len(), 3);
        assert!(timing.cpu >= timing.wall, "cpu {:?} < wall {:?}", timing.cpu, timing.wall);
        assert!(timing.wall > Duration::ZERO);
    }

    #[test]
    fn timing_then_composes() {
        let a = ParallelTiming { wall: Duration::from_millis(5), cpu: Duration::from_millis(20) };
        let b = ParallelTiming { wall: Duration::from_millis(3), cpu: Duration::from_millis(6) };
        let c = a.then(b);
        assert_eq!(c.wall, Duration::from_millis(8));
        assert_eq!(c.cpu, Duration::from_millis(26));
    }

    #[test]
    fn timed_measures_closure() {
        let (v, d) = timed(|| 42);
        assert_eq!(v, 42);
        assert!(d < Duration::from_secs(1));
    }
}
