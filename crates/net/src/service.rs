//! The typed service plane: one dispatch engine for every
//! request/response service in the deployment.
//!
//! The repo had grown four drifting serving paths — the healthy
//! fan-out, the fault-aware fan-out, the worker-pool cluster
//! coordinator, and the batched throughput driver — each
//! re-implementing dispatch, transcript accounting, fault handling,
//! and span instrumentation. This module collapses them into one code
//! path:
//!
//! - [`Service`] — a typed shard service: how many shards it has, how
//!   a shard serializes its answer to the wire, how the coordinator
//!   parses and combines the parts.
//! - [`Ledger`] — the transcript-accounting middleware: exact
//!   per-phase upload/download bytes (mirrored into the metrics
//!   registry by [`crate::Transcript`]) plus per-cluster byte
//!   attribution when the service maps shards onto clusters.
//! - [`dispatch`] — the engine. Policy knobs select the behavior:
//!   with `policy.enabled == false` it runs the healthy
//!   [`crate::simulate_parallel`] fan-out (per-shard spans named by
//!   the service, no envelope, bit-identical to the historical
//!   `answer` paths); with `policy.enabled == true` every response
//!   crosses the checksummed `TPT1` envelope under
//!   [`crate::dispatch_faulty`]'s timeouts, retries, and hedging.
//!
//! Batch coalescing composes *underneath* this plane: a service's
//! `serve` may route its shard computation through a
//! [`crate::Coalescer`], so concurrently dispatched requests share one
//! database scan while accounting, faults, and spans stay per-request.

use tiptoe_math::wire::WireError;

use crate::fault::dispatch_faulty_gated;
use crate::overload::{BreakerBank, DeadlineBudget, ServeError, ShardGate};
use crate::{
    simulate_parallel, Direction, FaultPlan, FaultPolicy, FaultReport, ParallelTiming, Phase,
    Transcript,
};

/// A typed, sharded request/response service.
///
/// Implementations describe *what* each shard computes and how it
/// crosses the wire; [`dispatch`] decides *how* it runs (healthy or
/// fault-aware, sequential or coalesced) and layers accounting and
/// spans around it.
pub trait Service {
    /// The per-query request (e.g. a query ciphertext).
    type Request: ?Sized;
    /// One shard's parsed partial answer.
    type Part;
    /// The combined response the coordinator returns.
    type Response;

    /// Name of the span wrapping the whole fan-out (e.g. `rank.answer`).
    fn outer_span(&self) -> &'static str;

    /// Name of the healthy per-shard span (e.g. `rank.shard`, labeled
    /// with the shard index). The fault-aware path uses `net.shard`
    /// spans from [`dispatch_faulty`] instead, which carry
    /// attempt/hedge accounting.
    fn shard_span(&self) -> &'static str;

    /// Number of worker shards.
    fn num_shards(&self) -> usize;

    /// Computes shard `idx`'s answer and serializes it as a wire
    /// payload (sealed in the checksummed envelope on the fault-aware
    /// path).
    ///
    /// # Errors
    ///
    /// Returns a [`ServeError`] when the shard cannot answer within
    /// the query's deadline budget (e.g. its coalescer lane refused
    /// the request in time) — the error aborts the whole dispatch
    /// with a typed failure rather than degrading silently.
    fn serve(&self, idx: usize, req: &Self::Request) -> Result<Vec<u8>, ServeError>;

    /// Parses and validates one shard's payload.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncated, malformed, or
    /// wrong-shaped payloads (the fault-aware path retries these).
    fn parse(&self, idx: usize, payload: &[u8]) -> Result<Self::Part, WireError>;

    /// Combines the per-shard parts into the response. Failed shards
    /// appear as `None` and must degrade gracefully (contribute
    /// nothing).
    fn combine(&self, parts: Vec<Option<Self::Part>>) -> Self::Response;

    /// The contiguous cluster range `[lo, hi)` this service covers,
    /// if its shards partition a cluster space — enables per-cluster
    /// byte attribution in the metrics mirror.
    fn cluster_range(&self) -> Option<(usize, usize)> {
        None
    }
}

/// Transcript-accounting middleware for one dispatched phase.
///
/// Upload and download sizes are *fixed by the protocol shape*, never
/// by the outcome: a degraded query must keep the same observable wire
/// footprint as a healthy one (the privacy argument extends to
/// traffic analysis), so the caller supplies both sizes up front.
#[derive(Debug)]
pub struct Ledger<'a> {
    /// The ledger to record into.
    pub transcript: &'a Transcript,
    /// Phase of the request/response pair.
    pub phase: Phase,
    /// Phase charged for wasted (retried/hedged) response bytes.
    pub retry_phase: Phase,
    /// Exact request upload bytes.
    pub up_bytes: u64,
    /// Exact response download bytes (outcome-independent).
    pub down_bytes: u64,
}

/// Outcome of one dispatched fan-out.
#[derive(Debug)]
pub struct Dispatched<R> {
    /// The combined response.
    pub response: R,
    /// `survivors[w]` is true iff shard `w` delivered a verified
    /// answer (all true on the healthy path).
    pub survivors: Vec<bool>,
    /// Virtual timing: `wall` = slowest shard, `cpu` = summed work.
    pub timing: ParallelTiming,
    /// Retry/timeout/hedge accounting; `Some` iff the fault-aware
    /// path ran (i.e. `policy.enabled`).
    pub report: Option<FaultReport>,
}

/// Everything that shapes *how* one dispatch runs: the fault plan,
/// the recovery policy, and the optional overload-safety layers — a
/// query's deadline budget and the plane's per-shard circuit
/// breakers.
///
/// Built with [`DispatchContext::new`] plus the `with_*` builders, so
/// call sites only mention the layers they use.
#[derive(Clone, Copy)]
pub struct DispatchContext<'a> {
    /// The deterministic fault schedule.
    pub plan: &'a FaultPlan,
    /// The coordinator's recovery policy.
    pub policy: &'a FaultPolicy,
    /// The query's deadline budget, if admission control issued one.
    /// Checked before the fan-out (a query that cannot fit one more
    /// attempt fails early) and charged with the fan-out's wall time
    /// after.
    pub budget: Option<&'a DeadlineBudget>,
    /// The plane's circuit breakers, if any. Consulted and trained on
    /// the fault-aware path only — a healthy-path dispatch neither
    /// gates nor records, so fault-free serving stays bit-identical
    /// and overhead-free.
    pub breakers: Option<&'a BreakerBank>,
}

impl<'a> DispatchContext<'a> {
    /// A context with no overload layers (the pre-overload behavior).
    pub fn new(plan: &'a FaultPlan, policy: &'a FaultPolicy) -> Self {
        Self { plan, policy, budget: None, breakers: None }
    }

    /// Attaches a deadline budget.
    pub fn with_budget(mut self, budget: Option<&'a DeadlineBudget>) -> Self {
        self.budget = budget;
        self
    }

    /// Attaches a circuit-breaker bank.
    pub fn with_breakers(mut self, breakers: Option<&'a BreakerBank>) -> Self {
        self.breakers = breakers;
        self
    }
}

/// Dispatches one request through a [`Service`]: accounting, spans,
/// fan-out, fault recovery, and overload safety in one place.
///
/// Middleware order (outermost first): budget check → upload
/// accounting → outer span → breaker gating → per-shard fan-out
/// (healthy or fault-aware) → breaker training → combine → download +
/// retry accounting → budget charge.
///
/// `shard_base` offsets the fault plan's (and breaker bank's) shard
/// address space so several services can share one plan (ranking
/// takes `0..W`, the URL server `W`).
///
/// Without a budget and with an infallible service, this function
/// cannot fail on a valid policy — breakers alone only *skip* shards
/// (degrading the combine), never error.
///
/// # Errors
///
/// - [`ServeError::DeadlineExceeded`] if the query's budget cannot
///   fit one more attempt, or the fan-out's wall time overdraws it.
/// - [`ServeError::InvalidPolicy`] on an invalid enabled policy.
/// - Any typed error the service's `serve` raises.
///
/// # Panics
///
/// Panics (healthy path only) if a shard's own payload fails its own
/// parser — that is a programming error, not a fault.
pub fn dispatch<S: Service>(
    svc: &S,
    req: &S::Request,
    shard_base: usize,
    ctx: DispatchContext<'_>,
    ledger: Option<&Ledger<'_>>,
) -> Result<Dispatched<S::Response>, ServeError> {
    let policy = ctx.policy;
    // Budget gate: a query that cannot fit even one more attempt in
    // its remaining budget is rejected before any bytes move.
    if let Some(b) = ctx.budget {
        let remaining = b.check()?;
        if policy.enabled && remaining < policy.attempt_timeout {
            return Err(ServeError::DeadlineExceeded { budget: b.total(), spent: b.spent() });
        }
    }
    // The remaining budget also caps the per-shard deadline, so a
    // late-phase fan-out cannot spend time the query no longer has.
    let mut eff_policy = *policy;
    if let (Some(b), true) = (ctx.budget, policy.enabled) {
        eff_policy.deadline = eff_policy.deadline.min(b.remaining().max(policy.attempt_timeout));
    }

    if let Some(l) = ledger {
        l.transcript.record_up(l.phase, l.up_bytes);
        if let Some(range) = svc.cluster_range() {
            l.transcript.attribute_clusters(Direction::Upload, range, l.up_bytes);
        }
    }

    let _outer = tiptoe_obs::span(svc.outer_span());
    let shard_ids: Vec<usize> = (0..svc.num_shards()).collect();
    let (parts, survivors, timing, report) = if policy.enabled {
        // Circuit-breaker gating (fault-aware path only): open shards
        // are skipped up front, rerouting the query to degraded-mode
        // survivor-subset serving instead of waiting out timeouts.
        let gates: Option<Vec<ShardGate>> = ctx
            .breakers
            .filter(|b| b.policy().enabled)
            .map(|b| shard_ids.iter().map(|&i| b.gate(shard_base + i)).collect());
        let (parts, report) = dispatch_faulty_gated(
            &shard_ids,
            shard_base,
            ctx.plan,
            &eff_policy,
            gates.as_deref(),
            |idx, _| svc.serve(idx, req),
            |idx, payload| svc.parse(idx, payload),
        )?;
        // Train the breakers with every *served* outcome (skipped
        // shards saw no traffic, so there is nothing to learn).
        if let Some(bank) = ctx.breakers {
            for (i, shard) in report.shards.iter().enumerate() {
                let skipped = gates.as_ref().is_some_and(|g| g[i] == ShardGate::Skip);
                if !skipped {
                    bank.record(shard_base + i, shard.ok, shard.wall);
                }
            }
        }
        let survivors: Vec<bool> = parts.iter().map(Option::is_some).collect();
        let timing = report.timing;
        (parts, survivors, timing, Some(report))
    } else {
        let (parts, timing) = simulate_parallel(&shard_ids, |&idx| {
            let mut span = tiptoe_obs::span(svc.shard_span());
            if tiptoe_obs::enabled() {
                span.set_label(format!("{idx}"));
            }
            let shard_start = std::time::Instant::now();
            let part = svc.serve(idx, req).map(|payload| {
                svc.parse(idx, &payload).expect("healthy shard payload must parse")
            });
            tiptoe_obs::recorder::record(
                tiptoe_obs::recorder::EventKind::ShardOutcome,
                (shard_base + idx) as u64,
                u64::from(part.is_ok()),
                1,
                shard_start.elapsed().as_micros() as u64,
            );
            part
        });
        let parts = parts.into_iter().collect::<Result<Vec<_>, _>>()?;
        let survivors = vec![true; parts.len()];
        (parts.into_iter().map(Some).collect(), survivors, timing, None)
    };
    let response = svc.combine(parts);

    if let Some(l) = ledger {
        l.transcript.record_down(l.phase, l.down_bytes);
        if let Some(range) = svc.cluster_range() {
            l.transcript.attribute_clusters(Direction::Download, range, l.down_bytes);
        }
        if let Some(r) = &report {
            if r.wasted_response_bytes > 0 {
                l.transcript.record_down(l.retry_phase, r.wasted_response_bytes);
            }
        }
    }

    // Charge the fan-out's (virtual) wall time. The charge can fail
    // *after* the work — the bytes above stay accounted (they did
    // cross the wire) but the caller gets a typed late failure
    // instead of a response past its deadline promise.
    if let Some(b) = ctx.budget {
        b.charge(timing.wall)?;
    }

    Ok(Dispatched { response, survivors, timing, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiptoe_math::wire::{WireReader, WireWriter};

    /// A toy service: shard `w` answers `base + w`, the coordinator
    /// sums.
    struct SumService {
        shards: usize,
        base: u64,
        clusters: Option<(usize, usize)>,
    }

    impl Service for SumService {
        type Request = u64;
        type Part = u64;
        type Response = u64;

        fn outer_span(&self) -> &'static str {
            "test.sum"
        }

        fn shard_span(&self) -> &'static str {
            "test.sum_shard"
        }

        fn num_shards(&self) -> usize {
            self.shards
        }

        fn serve(&self, idx: usize, req: &u64) -> Result<Vec<u8>, ServeError> {
            let mut w = WireWriter::new();
            w.put_u64(self.base + idx as u64 + req);
            Ok(w.finish())
        }

        fn parse(&self, _idx: usize, payload: &[u8]) -> Result<u64, WireError> {
            let mut r = WireReader::new(payload);
            let v = r.get_u64()?;
            r.finish()?;
            Ok(v)
        }

        fn combine(&self, parts: Vec<Option<u64>>) -> u64 {
            parts.into_iter().flatten().sum()
        }

        fn cluster_range(&self) -> Option<(usize, usize)> {
            self.clusters
        }
    }

    #[test]
    fn healthy_and_faulty_paths_agree_on_benign_plans() {
        let svc = SumService { shards: 4, base: 100, clusters: None };
        let plan = FaultPlan::none();
        let healthy_policy = FaultPolicy::default();
        let faulty_policy = FaultPolicy::tolerant();
        let healthy =
            dispatch(&svc, &1, 0, DispatchContext::new(&plan, &healthy_policy), None)
                .expect("healthy dispatch");
        let faulty = dispatch(&svc, &1, 0, DispatchContext::new(&plan, &faulty_policy), None)
            .expect("faulty dispatch");
        assert_eq!(healthy.response, 101 + 102 + 103 + 104);
        assert_eq!(healthy.response, faulty.response);
        assert_eq!(healthy.survivors, vec![true; 4]);
        assert_eq!(faulty.survivors, vec![true; 4]);
        assert!(healthy.report.is_none());
        assert!(faulty.report.expect("faulty path reports").all_ok());
    }

    #[test]
    fn failed_shards_degrade_the_combine_and_report() {
        let svc = SumService { shards: 3, base: 10, clusters: None };
        let plan = FaultPlan::none().crash_shard(1);
        let mut policy = FaultPolicy::tolerant();
        policy.hedge_after = None;
        let d = dispatch(&svc, &0, 0, DispatchContext::new(&plan, &policy), None)
            .expect("dispatch");
        assert_eq!(d.response, 10 + 12, "crashed shard contributes nothing");
        assert_eq!(d.survivors, vec![true, false, true]);
        let report = d.report.expect("report");
        assert_eq!(report.failed_shards(), vec![1]);
        assert!(d.timing.wall >= policy.attempt_timeout);
    }

    #[test]
    fn ledger_records_fixed_sizes_and_retry_bytes() {
        let t = Transcript::new();
        let svc = SumService { shards: 2, base: 0, clusters: None };
        let ledger = Ledger {
            transcript: &t,
            phase: Phase::Ranking,
            retry_phase: Phase::RankingRetries,
            up_bytes: 640,
            down_bytes: 320,
        };
        // A corrupt first response wastes bytes into the retry phase.
        let plan = FaultPlan::none().with_fault(0, 0, crate::FaultKind::Corrupt);
        let mut policy = FaultPolicy::tolerant();
        policy.hedge_after = None;
        let d = dispatch(&svc, &7, 0, DispatchContext::new(&plan, &policy), Some(&ledger))
            .expect("dispatch");
        assert_eq!(d.response, 7 + 8);
        assert_eq!(t.phase_total(Phase::Ranking, Direction::Upload), 640);
        assert_eq!(t.phase_total(Phase::Ranking, Direction::Download), 320);
        assert_eq!(
            t.phase_total(Phase::RankingRetries, Direction::Download),
            d.report.expect("report").wasted_response_bytes
        );
    }

    #[test]
    fn cluster_attribution_splits_bytes_exactly() {
        let t = Transcript::new();
        let svc = SumService { shards: 2, base: 0, clusters: Some((40, 43)) };
        let ledger = Ledger {
            transcript: &t,
            phase: Phase::Ranking,
            retry_phase: Phase::RankingRetries,
            up_bytes: 10,
            down_bytes: 0,
        };
        let plan = FaultPlan::none();
        let policy = FaultPolicy::default();
        dispatch(&svc, &0, 0, DispatchContext::new(&plan, &policy), Some(&ledger))
            .expect("dispatch");
        let m = tiptoe_obs::metrics();
        let per_cluster: Vec<u64> = (40..43)
            .map(|c| m.counter_with("net.cluster_bytes_up", Some(format!("c{c}"))).get())
            .collect();
        // 10 bytes over 3 clusters: 4 + 3 + 3, summing exactly.
        assert_eq!(per_cluster.iter().sum::<u64>(), 10);
        assert!(per_cluster.iter().all(|&b| b == 3 || b == 4), "{per_cluster:?}");
    }

    #[test]
    fn exhausted_budgets_reject_before_any_work() {
        use std::time::Duration;
        let svc = SumService { shards: 2, base: 0, clusters: None };
        let plan = FaultPlan::none();
        let policy = FaultPolicy::tolerant();
        let t = Transcript::new();
        let ledger = Ledger {
            transcript: &t,
            phase: Phase::Ranking,
            retry_phase: Phase::RankingRetries,
            up_bytes: 100,
            down_bytes: 100,
        };
        // Less than one attempt_timeout left: reject up front.
        let budget = DeadlineBudget::new(Duration::from_millis(300));
        budget.charge(Duration::from_millis(100)).expect("within budget");
        let ctx = DispatchContext::new(&plan, &policy).with_budget(Some(&budget));
        let err = dispatch(&svc, &1, 0, ctx, Some(&ledger)).expect_err("budget too thin");
        assert!(matches!(err, ServeError::DeadlineExceeded { .. }), "{err:?}");
        assert_eq!(t.grand_total(), 0, "rejected queries move no bytes");
    }

    #[test]
    fn dispatch_charges_its_wall_time_to_the_budget() {
        use std::time::Duration;
        let svc = SumService { shards: 2, base: 0, clusters: None };
        let plan = FaultPlan::none().straggle_shard(0, 1.0, Duration::from_millis(40));
        let mut policy = FaultPolicy::tolerant();
        policy.hedge_after = None;
        let budget = DeadlineBudget::new(Duration::from_secs(2));
        let ctx = DispatchContext::new(&plan, &policy).with_budget(Some(&budget));
        let d = dispatch(&svc, &1, 0, ctx, None).expect("within budget");
        assert_eq!(d.response, 1 + 2);
        assert!(
            budget.spent() >= Duration::from_millis(40),
            "fan-out wall {:?} charged to the budget (spent {:?})",
            d.timing.wall,
            budget.spent()
        );
    }

    #[test]
    fn open_breakers_skip_shards_and_degrade_the_combine() {
        use crate::overload::{BreakerPolicy, BreakerState};
        use std::time::Duration;
        let svc = SumService { shards: 3, base: 10, clusters: None };
        let plan = FaultPlan::none();
        let mut policy = FaultPolicy::tolerant();
        policy.hedge_after = None;
        let breakers = BreakerBank::new(
            BreakerPolicy { enabled: true, ..BreakerPolicy::default() },
            svc.num_shards(),
        );
        // Trip shard 1's breaker by hand.
        for _ in 0..3 {
            breakers.record(1, false, Duration::from_millis(1));
        }
        assert_eq!(breakers.state(1), BreakerState::Open);
        let ctx = DispatchContext::new(&plan, &policy).with_breakers(Some(&breakers));
        let d = dispatch(&svc, &0, 0, ctx, None).expect("dispatch");
        assert_eq!(d.response, 10 + 12, "open shard contributes nothing");
        assert_eq!(d.survivors, vec![true, false, true]);
        let report = d.report.expect("report");
        assert_eq!(report.shards[1].attempts, 0, "skipped, not timed out");
        assert_eq!(report.shards[1].wall, Duration::ZERO);
        // The skip was fast: no timeout burned on the known-bad shard.
        assert!(d.timing.wall < policy.attempt_timeout);
        // The healthy shards' successes trained their breakers closed.
        assert_eq!(breakers.state(0), BreakerState::Closed);
        assert_eq!(breakers.state(2), BreakerState::Closed);
    }
}
