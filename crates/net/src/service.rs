//! The typed service plane: one dispatch engine for every
//! request/response service in the deployment.
//!
//! The repo had grown four drifting serving paths — the healthy
//! fan-out, the fault-aware fan-out, the worker-pool cluster
//! coordinator, and the batched throughput driver — each
//! re-implementing dispatch, transcript accounting, fault handling,
//! and span instrumentation. This module collapses them into one code
//! path:
//!
//! - [`Service`] — a typed shard service: how many shards it has, how
//!   a shard serializes its answer to the wire, how the coordinator
//!   parses and combines the parts.
//! - [`Ledger`] — the transcript-accounting middleware: exact
//!   per-phase upload/download bytes (mirrored into the metrics
//!   registry by [`crate::Transcript`]) plus per-cluster byte
//!   attribution when the service maps shards onto clusters.
//! - [`dispatch`] — the engine. Policy knobs select the behavior:
//!   with `policy.enabled == false` it runs the healthy
//!   [`crate::simulate_parallel`] fan-out (per-shard spans named by
//!   the service, no envelope, bit-identical to the historical
//!   `answer` paths); with `policy.enabled == true` every response
//!   crosses the checksummed `TPT1` envelope under
//!   [`crate::dispatch_faulty`]'s timeouts, retries, and hedging.
//!
//! Batch coalescing composes *underneath* this plane: a service's
//! `serve` may route its shard computation through a
//! [`crate::Coalescer`], so concurrently dispatched requests share one
//! database scan while accounting, faults, and spans stay per-request.

use tiptoe_math::wire::WireError;

use crate::{
    dispatch_faulty, simulate_parallel, Direction, FaultPlan, FaultPolicy, FaultReport,
    ParallelTiming, Phase, Transcript,
};

/// A typed, sharded request/response service.
///
/// Implementations describe *what* each shard computes and how it
/// crosses the wire; [`dispatch`] decides *how* it runs (healthy or
/// fault-aware, sequential or coalesced) and layers accounting and
/// spans around it.
pub trait Service {
    /// The per-query request (e.g. a query ciphertext).
    type Request: ?Sized;
    /// One shard's parsed partial answer.
    type Part;
    /// The combined response the coordinator returns.
    type Response;

    /// Name of the span wrapping the whole fan-out (e.g. `rank.answer`).
    fn outer_span(&self) -> &'static str;

    /// Name of the healthy per-shard span (e.g. `rank.shard`, labeled
    /// with the shard index). The fault-aware path uses `net.shard`
    /// spans from [`dispatch_faulty`] instead, which carry
    /// attempt/hedge accounting.
    fn shard_span(&self) -> &'static str;

    /// Number of worker shards.
    fn num_shards(&self) -> usize;

    /// Computes shard `idx`'s answer and serializes it as a wire
    /// payload (sealed in the checksummed envelope on the fault-aware
    /// path).
    fn serve(&self, idx: usize, req: &Self::Request) -> Vec<u8>;

    /// Parses and validates one shard's payload.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncated, malformed, or
    /// wrong-shaped payloads (the fault-aware path retries these).
    fn parse(&self, idx: usize, payload: &[u8]) -> Result<Self::Part, WireError>;

    /// Combines the per-shard parts into the response. Failed shards
    /// appear as `None` and must degrade gracefully (contribute
    /// nothing).
    fn combine(&self, parts: Vec<Option<Self::Part>>) -> Self::Response;

    /// The contiguous cluster range `[lo, hi)` this service covers,
    /// if its shards partition a cluster space — enables per-cluster
    /// byte attribution in the metrics mirror.
    fn cluster_range(&self) -> Option<(usize, usize)> {
        None
    }
}

/// Transcript-accounting middleware for one dispatched phase.
///
/// Upload and download sizes are *fixed by the protocol shape*, never
/// by the outcome: a degraded query must keep the same observable wire
/// footprint as a healthy one (the privacy argument extends to
/// traffic analysis), so the caller supplies both sizes up front.
#[derive(Debug)]
pub struct Ledger<'a> {
    /// The ledger to record into.
    pub transcript: &'a Transcript,
    /// Phase of the request/response pair.
    pub phase: Phase,
    /// Phase charged for wasted (retried/hedged) response bytes.
    pub retry_phase: Phase,
    /// Exact request upload bytes.
    pub up_bytes: u64,
    /// Exact response download bytes (outcome-independent).
    pub down_bytes: u64,
}

/// Outcome of one dispatched fan-out.
#[derive(Debug)]
pub struct Dispatched<R> {
    /// The combined response.
    pub response: R,
    /// `survivors[w]` is true iff shard `w` delivered a verified
    /// answer (all true on the healthy path).
    pub survivors: Vec<bool>,
    /// Virtual timing: `wall` = slowest shard, `cpu` = summed work.
    pub timing: ParallelTiming,
    /// Retry/timeout/hedge accounting; `Some` iff the fault-aware
    /// path ran (i.e. `policy.enabled`).
    pub report: Option<FaultReport>,
}

/// Dispatches one request through a [`Service`]: accounting, spans,
/// fan-out, and fault recovery in one place.
///
/// Middleware order (outermost first): upload accounting →
/// outer span → per-shard fan-out (healthy or fault-aware) →
/// combine → download + retry accounting.
///
/// `shard_base` offsets the fault plan's shard address space so
/// several services can share one plan (ranking takes `0..W`, the URL
/// server `W`).
///
/// # Panics
///
/// Panics if an enabled policy is invalid, or (healthy path only) if
/// a shard's own payload fails its own parser — that is a programming
/// error, not a fault.
pub fn dispatch<S: Service>(
    svc: &S,
    req: &S::Request,
    shard_base: usize,
    plan: &FaultPlan,
    policy: &FaultPolicy,
    ledger: Option<&Ledger<'_>>,
) -> Dispatched<S::Response> {
    if let Some(l) = ledger {
        l.transcript.record_up(l.phase, l.up_bytes);
        if let Some(range) = svc.cluster_range() {
            l.transcript.attribute_clusters(Direction::Upload, range, l.up_bytes);
        }
    }

    let _outer = tiptoe_obs::span(svc.outer_span());
    let shard_ids: Vec<usize> = (0..svc.num_shards()).collect();
    let (parts, survivors, timing, report) = if policy.enabled {
        let (parts, report) = dispatch_faulty(
            &shard_ids,
            shard_base,
            plan,
            policy,
            |idx, _| svc.serve(idx, req),
            |idx, payload| svc.parse(idx, payload),
        );
        let survivors: Vec<bool> = parts.iter().map(Option::is_some).collect();
        let timing = report.timing;
        (parts, survivors, timing, Some(report))
    } else {
        let (parts, timing) = simulate_parallel(&shard_ids, |&idx| {
            let mut span = tiptoe_obs::span(svc.shard_span());
            if tiptoe_obs::enabled() {
                span.set_label(format!("{idx}"));
            }
            let payload = svc.serve(idx, req);
            svc.parse(idx, &payload).expect("healthy shard payload must parse")
        });
        let survivors = vec![true; parts.len()];
        (parts.into_iter().map(Some).collect(), survivors, timing, None)
    };
    let response = svc.combine(parts);

    if let Some(l) = ledger {
        l.transcript.record_down(l.phase, l.down_bytes);
        if let Some(range) = svc.cluster_range() {
            l.transcript.attribute_clusters(Direction::Download, range, l.down_bytes);
        }
        if let Some(r) = &report {
            if r.wasted_response_bytes > 0 {
                l.transcript.record_down(l.retry_phase, r.wasted_response_bytes);
            }
        }
    }

    Dispatched { response, survivors, timing, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiptoe_math::wire::{WireReader, WireWriter};

    /// A toy service: shard `w` answers `base + w`, the coordinator
    /// sums.
    struct SumService {
        shards: usize,
        base: u64,
        clusters: Option<(usize, usize)>,
    }

    impl Service for SumService {
        type Request = u64;
        type Part = u64;
        type Response = u64;

        fn outer_span(&self) -> &'static str {
            "test.sum"
        }

        fn shard_span(&self) -> &'static str {
            "test.sum_shard"
        }

        fn num_shards(&self) -> usize {
            self.shards
        }

        fn serve(&self, idx: usize, req: &u64) -> Vec<u8> {
            let mut w = WireWriter::new();
            w.put_u64(self.base + idx as u64 + req);
            w.finish()
        }

        fn parse(&self, _idx: usize, payload: &[u8]) -> Result<u64, WireError> {
            let mut r = WireReader::new(payload);
            let v = r.get_u64()?;
            r.finish()?;
            Ok(v)
        }

        fn combine(&self, parts: Vec<Option<u64>>) -> u64 {
            parts.into_iter().flatten().sum()
        }

        fn cluster_range(&self) -> Option<(usize, usize)> {
            self.clusters
        }
    }

    #[test]
    fn healthy_and_faulty_paths_agree_on_benign_plans() {
        let svc = SumService { shards: 4, base: 100, clusters: None };
        let healthy =
            dispatch(&svc, &1, 0, &FaultPlan::none(), &FaultPolicy::default(), None);
        let faulty =
            dispatch(&svc, &1, 0, &FaultPlan::none(), &FaultPolicy::tolerant(), None);
        assert_eq!(healthy.response, 101 + 102 + 103 + 104);
        assert_eq!(healthy.response, faulty.response);
        assert_eq!(healthy.survivors, vec![true; 4]);
        assert_eq!(faulty.survivors, vec![true; 4]);
        assert!(healthy.report.is_none());
        assert!(faulty.report.expect("faulty path reports").all_ok());
    }

    #[test]
    fn failed_shards_degrade_the_combine_and_report() {
        let svc = SumService { shards: 3, base: 10, clusters: None };
        let plan = FaultPlan::none().crash_shard(1);
        let mut policy = FaultPolicy::tolerant();
        policy.hedge_after = None;
        let d = dispatch(&svc, &0, 0, &plan, &policy, None);
        assert_eq!(d.response, 10 + 12, "crashed shard contributes nothing");
        assert_eq!(d.survivors, vec![true, false, true]);
        let report = d.report.expect("report");
        assert_eq!(report.failed_shards(), vec![1]);
        assert!(d.timing.wall >= policy.attempt_timeout);
    }

    #[test]
    fn ledger_records_fixed_sizes_and_retry_bytes() {
        let t = Transcript::new();
        let svc = SumService { shards: 2, base: 0, clusters: None };
        let ledger = Ledger {
            transcript: &t,
            phase: Phase::Ranking,
            retry_phase: Phase::RankingRetries,
            up_bytes: 640,
            down_bytes: 320,
        };
        // A corrupt first response wastes bytes into the retry phase.
        let plan = FaultPlan::none().with_fault(0, 0, crate::FaultKind::Corrupt);
        let mut policy = FaultPolicy::tolerant();
        policy.hedge_after = None;
        let d = dispatch(&svc, &7, 0, &plan, &policy, Some(&ledger));
        assert_eq!(d.response, 7 + 8);
        assert_eq!(t.phase_total(Phase::Ranking, Direction::Upload), 640);
        assert_eq!(t.phase_total(Phase::Ranking, Direction::Download), 320);
        assert_eq!(
            t.phase_total(Phase::RankingRetries, Direction::Download),
            d.report.expect("report").wasted_response_bytes
        );
    }

    #[test]
    fn cluster_attribution_splits_bytes_exactly() {
        let t = Transcript::new();
        let svc = SumService { shards: 2, base: 0, clusters: Some((40, 43)) };
        let ledger = Ledger {
            transcript: &t,
            phase: Phase::Ranking,
            retry_phase: Phase::RankingRetries,
            up_bytes: 10,
            down_bytes: 0,
        };
        dispatch(&svc, &0, 0, &FaultPlan::none(), &FaultPolicy::default(), Some(&ledger));
        let m = tiptoe_obs::metrics();
        let per_cluster: Vec<u64> = (40..43)
            .map(|c| m.counter_with("net.cluster_bytes_up", Some(format!("c{c}"))).get())
            .collect();
        // 10 bytes over 3 clusters: 4 + 3 + 3, summing exactly.
        assert_eq!(per_cluster.iter().sum::<u64>(), 10);
        assert!(per_cluster.iter().all(|&b| b == 3 || b == 4), "{per_cluster:?}");
    }
}
