//! Cross-client batch coalescing (paper §8.1; Wally's cross-user
//! batching): a per-shard scheduler that queues concurrently arriving
//! requests and flushes them through a batched kernel, so `N`
//! concurrent queries cost one database scan instead of `N`.
//!
//! # Event-driven lanes
//!
//! Early versions of this scheduler were *thread-cooperative*: every
//! waiter spun on a `recv_timeout(max_wait)` loop, so each parked
//! request burned a timer wakeup per `max_wait` even when nothing
//! could possibly flush, and a lone request always sat out the full
//! `max_wait` before serving itself. The scheduler is now
//! event-driven (see `DESIGN.md` §15 for the lane state machine):
//!
//! - **Waiters park unconditionally.** A submitter enqueues its
//!   request and blocks on its reply channel with no periodic
//!   wakeups; its only timeout is a coarse *fallback* (a large
//!   multiple of `max_wait`) that exists purely as a liveness net.
//! - **One reactor thread arms per-lane deadlines.** The process-wide
//!   [`reactor`] owns a deadline heap; the submitter that moves a
//!   lane's queue from empty to non-empty arms one deadline for the
//!   whole forming batch. When it expires, the reactor drains the
//!   batch and *delegates* the kernel to a member: it cannot run the
//!   flush itself (the kernel borrows the services with a non-static
//!   lifetime), so it sends the drained batch as a [`LaneMsg::Lead`]
//!   to the first member's channel, and that parked submitter — which
//!   does hold `&self` — wakes, runs the kernel, and distributes
//!   results.
//! - **Solo requests flush immediately.** If a submitter finds the
//!   queue empty and no co-submitter in flight on the lane, waiting
//!   cannot possibly batch anything: it drains itself and runs the
//!   kernel inline (reason `solo`), so a lone client pays kernel
//!   latency, not `max_wait`.
//! - **`max_wait` adapts to measured arrival rate.** With
//!   [`CoalescePolicy::adaptive`] set, the armed deadline is
//!   `min(max_wait, p50 interarrival × (max_batch − 1), p50 flush)`
//!   from the `net.coalesce.interarrival_us` / `net.coalesce.flush_us`
//!   histograms this module records: there is no point waiting longer
//!   than the batch needs to fill, nor longer than the scan the wait
//!   is trying to save. The policy's `max_wait` is a hard ceiling.
//!
//! Results are bit-identical to unbatched serving as long as the
//! flush function is (the workspace's batched kernels guarantee it),
//! because batch composition only groups independent requests — it
//! never mixes their data.
//!
//! Three failure modes are contained here rather than propagated:
//!
//! - **Lane crashes.** A panicking batched kernel must not take the
//!   whole plane down (every co-batched query would hang waiting on a
//!   reply that never comes). The flusher catches the panic, fails
//!   every request of the crashed flush, and lets each submitter
//!   re-enqueue into a fresh batch up to [`MAX_LANE_RETRIES`] times
//!   before returning a typed [`ServeError::LaneFailed`].
//! - **Reactor crashes.** The reactor wraps its loop in
//!   `catch_unwind` and survives a panicking iteration (counted in
//!   `net.coalesce.reactor_crashes`); even if it dies outright, every
//!   parked waiter's fallback timeout drains the lane (reason
//!   `fallback`), so no request is ever lost to a timer failure. A
//!   request leaves the queue exactly once, under the queue lock, and
//!   is answered exactly once by whichever thread drained it — the
//!   crash cannot duplicate work either.
//! - **Deadline overruns.** [`Coalescer::submit_within`] bounds how
//!   long a request may sit in the lane. A request still *queued*
//!   when its deadline expires withdraws itself (typed
//!   [`ServeError::DeadlineExceeded`]); one already drained into an
//!   in-flight flush waits for that imminent result — a response,
//!   once computed, is never dropped on the floor.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, Weak};
use std::time::{Duration, Instant};

use crate::overload::{ConfigError, ServeError};

/// Re-enqueue attempts a submitter makes after its flush crashed
/// before giving up with [`ServeError::LaneFailed`].
pub const MAX_LANE_RETRIES: u32 = 3;

/// Parked waiters use `max_wait × FALLBACK_FACTOR` (at least
/// [`FALLBACK_FLOOR`]) as a liveness-net timeout: far enough out that
/// a healthy reactor always wins the race, close enough that a dead
/// one delays a query by milliseconds, not forever.
const FALLBACK_FACTOR: u32 = 64;

/// Lower bound of the fallback timeout.
const FALLBACK_FLOOR: Duration = Duration::from_millis(50);

/// Knobs of one coalescing queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoalescePolicy {
    /// Requests flushed together at most (the batched kernel's `B`).
    pub max_batch: usize,
    /// Ceiling on how long a forming batch may wait for co-batched
    /// requests before the reactor flushes what is pending. With
    /// [`CoalescePolicy::adaptive`] set this is an upper bound; the
    /// armed deadline is usually shorter.
    pub max_wait: Duration,
    /// Queue-depth bound: a submitter finding this many requests
    /// pending flushes them before enqueueing (backpressure).
    pub queue_depth: usize,
    /// Derive the effective wait from the measured arrival rate and
    /// flush latency (never exceeding `max_wait`); off = always use
    /// `max_wait`.
    pub adaptive: bool,
}

impl Default for CoalescePolicy {
    /// Defaults chosen for the serving benches' shard scans (hundreds
    /// of microseconds): a 1 ms ceiling is long enough to fill an
    /// 8-batch at any arrival rate worth batching, while the solo
    /// fast path keeps an idle lane's latency at kernel cost and the
    /// adaptive deadline undercuts the ceiling once histograms warm
    /// up. (The previous cooperative scheduler defaulted to 2 ms and
    /// made lone queries wait all of it.)
    fn default() -> Self {
        Self {
            max_batch: 8,
            max_wait: Duration::from_millis(1),
            queue_depth: 64,
            adaptive: true,
        }
    }
}

impl CoalescePolicy {
    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] on a zero batch size, a zero wait, or a queue
    /// bound smaller than one batch.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.max_batch < 1 {
            return Err(ConfigError {
                field: "coalesce.max_batch",
                reason: "batch size must be positive",
            });
        }
        if self.max_wait == Duration::ZERO {
            return Err(ConfigError {
                field: "coalesce.max_wait",
                reason: "max wait must be positive",
            });
        }
        if self.queue_depth < self.max_batch {
            return Err(ConfigError {
                field: "coalesce.queue_depth",
                reason: "queue depth must hold at least one batch",
            });
        }
        Ok(())
    }
}

/// Why a batch left the queue (span attribute + counter label).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlushReason {
    /// The batch reached `max_batch`.
    Full,
    /// The reactor's armed deadline expired and delegated the flush.
    Deadline,
    /// The queue hit `queue_depth`; the submitter drained it first.
    Overflow,
    /// A lone request with no co-submitters flushed itself inline.
    Solo,
    /// A parked waiter's liveness-net timeout drained the lane (only
    /// reachable when the reactor missed a deadline, e.g. crashed).
    Fallback,
}

impl FlushReason {
    fn as_str(self) -> &'static str {
        match self {
            FlushReason::Full => "full",
            FlushReason::Deadline => "deadline",
            FlushReason::Overflow => "overflow",
            FlushReason::Solo => "solo",
            FlushReason::Fallback => "fallback",
        }
    }

    /// Flight-recorder code (the `flush_reason` vocabulary in
    /// `tiptoe_obs::recorder`).
    fn code(self) -> u64 {
        use tiptoe_obs::recorder::flush_reason as fr;
        match self {
            FlushReason::Full => fr::FULL,
            FlushReason::Deadline => fr::DEADLINE,
            FlushReason::Overflow => fr::OVERFLOW,
            FlushReason::Solo => fr::SOLO,
            FlushReason::Fallback => fr::FALLBACK,
        }
    }
}

/// Marker delivered to every member of a flush whose kernel panicked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LaneCrashed;

/// What arrives on a waiter's reply channel.
enum LaneMsg<Req, Resp> {
    /// Its response (or the crash marker of the flush it rode in).
    Done(Result<Resp, LaneCrashed>),
    /// The reactor drained this batch on deadline and delegated the
    /// kernel to this waiter (the reactor itself cannot run the
    /// non-`'static` flush closure). The receiver runs the kernel and
    /// distributes one `Done` per member — including to itself.
    Lead(Vec<Pending<Req, Resp>>),
}

/// A flushed batch member's reply channel plus its recorder query id,
/// kept after the request itself is moved into the kernel.
type Member<Req, Resp> = (mpsc::Sender<LaneMsg<Req, Resp>>, u64);

/// One queued request: its payload, the channel its response returns
/// on, a withdrawal ticket, when it arrived (for queue-wait
/// accounting), and the submitter's trace context — captured at
/// enqueue so a flush that runs on *another* thread (reactor-armed
/// `Lead` delegation, a co-submitter's full/overflow drain) can still
/// attach its span to the originating queries instead of orphaning
/// under the flushing thread's unrelated stack.
struct Pending<Req, Resp> {
    ticket: u64,
    req: Req,
    reply: mpsc::Sender<LaneMsg<Req, Resp>>,
    enqueued: Instant,
    ctx: tiptoe_obs::TraceCtx,
}

/// The `'static` core of one lane: the queue the reactor must reach
/// without borrowing the (non-`'static`) kernel closure.
struct LaneState<Req, Resp> {
    /// Process-unique lane id (flight-recorder + introspection key).
    id: u64,
    policy: CoalescePolicy,
    inner: Mutex<LaneInner<Req, Resp>>,
    /// Submitters currently inside `submit_*` on this lane (the solo
    /// fast path fires only when this is exactly 1).
    inflight: AtomicUsize,
}

/// Lane-id allocator (process-wide, so recorder timelines from
/// different planes never collide).
static NEXT_LANE_ID: AtomicU64 = AtomicU64::new(0);

struct LaneInner<Req, Resp> {
    queue: VecDeque<Pending<Req, Resp>>,
    /// Bumped every time a batch is drained; an armed reactor
    /// deadline carries the generation it was armed under and is
    /// ignored if the queue has been drained since (the batch it was
    /// watching no longer exists).
    generation: u64,
    /// Previous arrival, for the interarrival histogram.
    last_arrival: Option<Instant>,
}

impl<Req: Send + 'static, Resp: Send + 'static> LaneState<Req, Resp> {
    /// Drains up to one batch. `expected_generation` is the arm token
    /// of a reactor deadline (stale tokens drain nothing); `None`
    /// drains unconditionally (full/overflow/solo/fallback paths).
    /// Draining bumps the generation; if requests are left behind, a
    /// fresh deadline is armed for them.
    fn drain_batch(
        self: &Arc<Self>,
        expected_generation: Option<u64>,
    ) -> Vec<Pending<Req, Resp>> {
        let mut inner = self.inner.lock().expect("coalescer queue lock");
        if let Some(gen) = expected_generation {
            if gen != inner.generation {
                return Vec::new();
            }
        }
        if inner.queue.is_empty() {
            return Vec::new();
        }
        let take = inner.queue.len().min(self.policy.max_batch);
        let batch: Vec<_> = inner.queue.drain(..take).collect();
        inner.generation += 1;
        if !inner.queue.is_empty() {
            let gen = inner.generation;
            let wait = self.effective_max_wait();
            reactor::arm(
                Instant::now() + wait,
                Arc::downgrade(self) as Weak<dyn reactor::DeadlineTarget>,
                gen,
            );
        }
        batch
    }

    /// The deadline the reactor should arm for a forming batch: the
    /// policy ceiling, shortened adaptively once the lane's
    /// observability histograms have warmed up. Records the chosen
    /// wait in `net.coalesce.adaptive_wait_us`; introspection reads
    /// use [`LaneState::effective_wait_estimate`] to avoid skewing
    /// that histogram.
    fn effective_max_wait(&self) -> Duration {
        let wait = self.effective_wait_estimate();
        if self.policy.adaptive && wait != self.policy.max_wait {
            tiptoe_obs::metrics()
                .histogram("net.coalesce.adaptive_wait_us")
                .record(wait.as_micros() as u64);
        }
        wait
    }

    /// Side-effect-free computation behind
    /// [`LaneState::effective_max_wait`].
    fn effective_wait_estimate(&self) -> Duration {
        if !self.policy.adaptive {
            return self.policy.max_wait;
        }
        let m = tiptoe_obs::metrics();
        let inter = m.histogram("net.coalesce.interarrival_us");
        if inter.count() < 32 {
            // Cold start: no arrival-rate signal yet.
            return self.policy.max_wait;
        }
        // Waiting longer than it takes the batch to fill buys nothing.
        // The high quantile matters: batch releases make arrivals
        // bimodal (microsecond gaps inside a burst, the real
        // between-burst gap otherwise), and the between-burst gap is
        // the one that governs how long assembly takes.
        let fill_us =
            inter.quantile(0.9).saturating_mul(self.policy.max_batch.saturating_sub(1) as u64);
        // While a flush runs, the lane accumulates arrivals for free —
        // a wait shorter than one flush cannot improve latency, so the
        // measured flush time is a floor, not a cap.
        let flush = m.histogram("net.coalesce.flush_us");
        let floor_us = if flush.count() >= 8 { flush.quantile(0.5) } else { 0 };
        let derived = Duration::from_micros(fill_us.max(floor_us).max(1));
        derived.min(self.policy.max_wait)
    }
}

impl<Req: Send + 'static, Resp: Send + 'static> reactor::DeadlineTarget for LaneState<Req, Resp> {
    /// Reactor deadline expiry: drain the batch this deadline was
    /// armed for (a stale generation means it flushed some other way)
    /// and delegate the kernel to the first member, who is parked on
    /// its reply channel holding the `&Coalescer` the kernel needs.
    fn on_deadline(self: Arc<Self>, generation: u64) {
        let batch = self.drain_batch(Some(generation));
        if batch.is_empty() {
            return;
        }
        // The leader is a batch member, so its channel is alive unless
        // its submitter died; then promote the next member. If every
        // member is gone there is nobody to answer — and nobody
        // waiting — so dropping the batch is correct.
        let mut rest = batch;
        while !rest.is_empty() {
            let leader_reply = rest[0].reply.clone();
            match leader_reply.send(LaneMsg::Lead(rest)) {
                Ok(()) => return,
                Err(mpsc::SendError(LaneMsg::Lead(returned))) => {
                    // Leader's receiver is gone (its submitter died in
                    // a way that never reaches the queue again): skip
                    // it and promote the next member.
                    rest = returned;
                    rest.remove(0);
                }
                Err(mpsc::SendError(_)) => unreachable!("sent a Lead"),
            }
        }
    }
}

/// Instantaneous occupancy of one coalescer lane (see
/// [`Coalescer::lane_status`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneStatus {
    /// Process-unique lane id.
    pub id: u64,
    /// Requests queued in the forming batch right now.
    pub queued: usize,
    /// Submitters inside `submit_*` on this lane right now.
    pub inflight: usize,
    /// The deadline the reactor would arm for a batch forming now
    /// (equals `max_wait` unless adaptation has warmed up).
    pub effective_wait: Duration,
    /// The policy's wait ceiling.
    pub max_wait: Duration,
    /// The policy's batch size.
    pub max_batch: usize,
}

/// A batching scheduler in front of a batched kernel: concurrent
/// [`Coalescer::submit`] calls are grouped and answered by one
/// `flush` invocation per batch.
///
/// `flush` receives the batch's requests in queue order and must
/// return exactly one response per request, in the same order.
pub struct Coalescer<'a, Req, Resp> {
    lane: Arc<LaneState<Req, Resp>>,
    next_ticket: AtomicU64,
    /// Optional plane-wide in-flight gauge shared by sibling lanes
    /// (see [`Coalescer::with_cohort`]).
    cohort: Option<Arc<AtomicUsize>>,
    #[allow(clippy::type_complexity)]
    flush: Box<dyn Fn(Vec<Req>) -> Vec<Resp> + Send + Sync + 'a>,
}

impl<'a, Req: Send + 'static, Resp: Send + 'static> Coalescer<'a, Req, Resp> {
    /// Creates a coalescer over a batched kernel.
    ///
    /// # Panics
    ///
    /// Panics if the policy is invalid (validate the policy through
    /// config loading to get a typed error instead).
    pub fn new(
        policy: CoalescePolicy,
        flush: impl Fn(Vec<Req>) -> Vec<Resp> + Send + Sync + 'a,
    ) -> Self {
        policy.validate().expect("invalid coalescer policy");
        Self {
            lane: Arc::new(LaneState {
                id: NEXT_LANE_ID.fetch_add(1, Ordering::Relaxed),
                policy,
                inner: Mutex::new(LaneInner {
                    queue: VecDeque::new(),
                    generation: 0,
                    last_arrival: None,
                }),
                inflight: AtomicUsize::new(0),
            }),
            next_ticket: AtomicU64::new(0),
            cohort: None,
            flush: Box::new(flush),
        }
    }

    /// Shares a plane-wide in-flight gauge across sibling lanes. A
    /// client's query crosses several lanes (every ranking shard, the
    /// URL server, token generation) one at a time, so under
    /// concurrent load any single lane is routinely empty the moment
    /// a request arrives — but companions for its batch are right
    /// behind, parked in sibling lanes. With a cohort installed, the
    /// solo fast path only fires when this submitter is alone across
    /// the *whole cohort* (a genuinely lone client), not merely first
    /// onto this lane; otherwise it waits out the armed deadline and
    /// batches. Without a cohort the lane's own in-flight count is
    /// the only signal (correct for standalone coalescers).
    pub fn with_cohort(mut self, cohort: Arc<AtomicUsize>) -> Self {
        self.cohort = Some(cohort);
        self
    }

    /// The policy this coalescer runs under.
    pub fn policy(&self) -> CoalescePolicy {
        self.lane.policy
    }

    /// Process-unique id of this coalescer's lane (the key recorder
    /// timelines and introspection snapshots report lanes under).
    pub fn lane_id(&self) -> u64 {
        self.lane.id
    }

    /// Live occupancy snapshot of this lane (for `ServingPlane`
    /// introspection; values are instantaneous and unsynchronized).
    pub fn lane_status(&self) -> LaneStatus {
        LaneStatus {
            id: self.lane.id,
            queued: self.lane.inner.lock().expect("coalescer queue lock").queue.len(),
            inflight: self.lane.inflight.load(Ordering::SeqCst),
            effective_wait: self.lane.effective_wait_estimate(),
            max_wait: self.lane.policy.max_wait,
            max_batch: self.lane.policy.max_batch,
        }
    }

    /// Submits one request and blocks until its response arrives —
    /// either from a batch this thread flushed or from one a
    /// co-submitter flushed.
    ///
    /// # Panics
    ///
    /// Panics if the lane crashes [`MAX_LANE_RETRIES`] + 1 times in a
    /// row for this request ([`Coalescer::submit_within`] returns the
    /// typed error instead).
    pub fn submit(&self, req: Req) -> Resp
    where
        Req: Clone,
    {
        match self.submit_bounded(req, None) {
            Ok(resp) => resp,
            Err(e) => panic!("coalescer lane failed permanently: {e}"),
        }
    }

    /// Submits one request with a deadline measured from this call:
    /// the request waits in the lane at most `deadline` before
    /// withdrawing itself.
    ///
    /// # Errors
    ///
    /// - [`ServeError::DeadlineExceeded`] if the request was still
    ///   queued when the deadline expired (it is withdrawn; the
    ///   kernel never sees it).
    /// - [`ServeError::LaneFailed`] if the lane's kernel crashed
    ///   repeatedly under this request.
    pub fn submit_within(&self, req: Req, deadline: Duration) -> Result<Resp, ServeError>
    where
        Req: Clone,
    {
        self.submit_bounded(req, Some(deadline))
    }

    fn submit_bounded(&self, req: Req, deadline: Option<Duration>) -> Result<Resp, ServeError>
    where
        Req: Clone,
    {
        let start = Instant::now();
        // RAII inflight count: the solo fast path must see every
        // submitter that could still contribute to a batch, including
        // ones sleeping between crash retries.
        let _inflight = InflightGuard::enter(&self.lane.inflight);
        let _cohort = self.cohort.as_deref().map(InflightGuard::enter);
        let mut crashes = 0u32;
        loop {
            match self.submit_once(req.clone(), deadline, start)? {
                Ok(resp) => return Ok(resp),
                Err(LaneCrashed) => {
                    crashes += 1;
                    if crashes > MAX_LANE_RETRIES {
                        return Err(ServeError::LaneFailed { crashes });
                    }
                    // Re-enqueue into a fresh batch; the poisoned
                    // batch composition is gone, so a transient
                    // kernel failure gets a clean retry.
                }
            }
        }
    }

    /// One enqueue/wait round. The outer `Err` is a typed deadline
    /// failure; the inner `Err` a crashed flush (retryable).
    fn submit_once(
        &self,
        req: Req,
        deadline: Option<Duration>,
        start: Instant,
    ) -> Result<Result<Resp, LaneCrashed>, ServeError> {
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        let m = tiptoe_obs::metrics();
        let overflowing =
            self.lane.inner.lock().expect("coalescer queue lock").queue.len()
                >= self.lane.policy.queue_depth;
        if overflowing {
            m.counter("net.coalesce.backpressure").inc();
            self.flush_now(FlushReason::Overflow);
        }
        // Enqueue; then decide between the solo fast path, arming the
        // reactor (queue just became non-empty), or riding an already
        // armed deadline.
        let (len_after, arm) = {
            let mut inner = self.lane.inner.lock().expect("coalescer queue lock");
            let now = Instant::now();
            if let Some(prev) = inner.last_arrival {
                m.histogram("net.coalesce.interarrival_us")
                    .record(now.duration_since(prev).as_micros() as u64);
            }
            inner.last_arrival = Some(now);
            inner.queue.push_back(Pending {
                ticket,
                req,
                reply: tx,
                enqueued: now,
                ctx: tiptoe_obs::TraceCtx::current(),
            });
            let len = inner.queue.len();
            let arm = if len == 1 { Some(inner.generation) } else { None };
            (len, arm)
        };
        tiptoe_obs::recorder::record(
            tiptoe_obs::recorder::EventKind::LaneEnqueued,
            self.lane.id,
            len_after as u64,
            0,
            0,
        );
        if len_after >= self.lane.policy.max_batch {
            self.flush_now(FlushReason::Full);
        } else if len_after == 1 {
            if self.lane.inflight.load(Ordering::SeqCst) == 1
                && self.cohort.as_ref().is_none_or(|c| c.load(Ordering::SeqCst) == 1)
            {
                // Nobody else is in flight on this lane — or anywhere
                // in the lane's cohort — so waiting cannot batch
                // anything; serve the request now.
                self.flush_now(FlushReason::Solo);
            } else if let Some(gen) = arm {
                // The queue just became non-empty: arm one deadline
                // for the whole forming batch.
                reactor::arm(
                    Instant::now() + self.lane.effective_max_wait(),
                    Arc::downgrade(&self.lane) as Weak<dyn reactor::DeadlineTarget>,
                    gen,
                );
            }
        }
        // Park. A healthy lane wakes us with `Done` (someone flushed a
        // batch containing us) or `Lead` (the reactor delegated the
        // kernel to us); the timeout is only the liveness fallback —
        // or, under an explicit deadline, the withdrawal alarm.
        let fallback = self
            .lane
            .policy
            .max_wait
            .saturating_mul(FALLBACK_FACTOR)
            .max(FALLBACK_FLOOR);
        loop {
            if let Some(d) = deadline {
                let waited = start.elapsed();
                if waited >= d {
                    // Withdraw if still queued: the kernel never saw
                    // the request, so failing it loses nothing.
                    let withdrawn = {
                        let mut inner = self.lane.inner.lock().expect("coalescer queue lock");
                        let before = inner.queue.len();
                        inner.queue.retain(|p| p.ticket != ticket);
                        inner.queue.len() < before
                    };
                    if withdrawn {
                        m.counter("net.coalesce.abandoned").inc();
                        tiptoe_obs::recorder::record(
                            tiptoe_obs::recorder::EventKind::LaneWithdrawn,
                            self.lane.id,
                            waited.as_micros() as u64,
                            0,
                            0,
                        );
                        return Err(ServeError::DeadlineExceeded { budget: d, spent: waited });
                    }
                    // Already drained into an in-flight flush (or
                    // handed to us as leader): the result is imminent
                    // and must not be dropped — the caller charges the
                    // overrun to its budget.
                    return match rx.recv() {
                        Ok(LaneMsg::Done(outcome)) => Ok(outcome),
                        Ok(LaneMsg::Lead(batch)) => Ok(self.lead_flush(batch, ticket, &rx)),
                        Err(mpsc::RecvError) => Ok(Err(LaneCrashed)),
                    };
                }
            }
            let wait = match deadline {
                Some(d) => fallback.min(d.saturating_sub(start.elapsed())),
                None => fallback,
            };
            match rx.recv_timeout(wait.max(Duration::from_micros(1))) {
                Ok(LaneMsg::Done(outcome)) => return Ok(outcome),
                Ok(LaneMsg::Lead(batch)) => return Ok(self.lead_flush(batch, ticket, &rx)),
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    // With a healthy reactor this only fires when the
                    // caller's own deadline is about to withdraw (top
                    // of loop); otherwise the reactor missed its
                    // deadline — drain defensively.
                    if deadline.is_none_or(|d| start.elapsed() < d) {
                        self.flush_now(FlushReason::Fallback);
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    // The sender can only vanish if the flush died
                    // without delivering; treat it as a crash.
                    return Ok(Err(LaneCrashed));
                }
            }
        }
    }

    /// Drains up to one batch from the queue and runs the kernel on it
    /// inline (the full/overflow/solo/fallback paths).
    fn flush_now(&self, reason: FlushReason) {
        let batch = self.lane.drain_batch(None);
        self.run_batch(batch, reason);
    }

    /// Runs a reactor-delegated batch as its leader, then collects our
    /// own outcome (delivered, like everyone else's, through the reply
    /// channel — the batch always contains the leader's own request).
    fn lead_flush(
        &self,
        batch: Vec<Pending<Req, Resp>>,
        ticket: u64,
        rx: &mpsc::Receiver<LaneMsg<Req, Resp>>,
    ) -> Result<Resp, LaneCrashed> {
        debug_assert!(batch.iter().any(|p| p.ticket == ticket), "leader must be in its batch");
        self.run_batch(batch, FlushReason::Deadline);
        loop {
            match rx.try_recv() {
                Ok(LaneMsg::Done(outcome)) => return outcome,
                // A second Lead can race in behind our Done if another
                // deadline fired while we flushed: serve it too.
                Ok(LaneMsg::Lead(batch)) => self.run_batch(batch, FlushReason::Deadline),
                Err(_) => return Err(LaneCrashed),
            }
        }
    }

    /// Runs the batched kernel over a drained batch (outside the
    /// queue lock, so co-submitters keep enqueueing — and other
    /// batches keep flushing — concurrently), then answers every
    /// member through its channel.
    ///
    /// A kernel panic is contained: every member of the crashed batch
    /// is failed with [`LaneCrashed`] so its submitter can retry or
    /// surface a typed error — no waiter is left hanging, and no
    /// request is silently duplicated (a request leaves the queue
    /// exactly once, and the crashed batch's requests only re-enter
    /// it through their own submitters).
    fn run_batch(&self, batch: Vec<Pending<Req, Resp>>, reason: FlushReason) {
        use tiptoe_obs::recorder::{self, EventKind};
        if batch.is_empty() {
            return;
        }
        // The flush serves *the batch's* queries, not whatever the
        // flushing thread happens to be doing: parent the span
        // explicitly under the first member's submission span (under
        // `Lead` delegation or a co-submitter's drain, the implicit
        // thread-local parent would be a different query — or, on the
        // reactor's behalf, nothing at all — leaving the flush span
        // orphaned). Every other member is attached with a
        // follow-from link, so each batched query's trace reaches
        // this span.
        let mut span = tiptoe_obs::span_under("net.coalesce.flush", batch[0].ctx.span_id);
        let m = tiptoe_obs::metrics();
        let queue_wait_us =
            batch.iter().map(|p| p.enqueued.elapsed().as_micros() as u64).max().unwrap_or(0);
        if tiptoe_obs::enabled() {
            span.set_label(reason.as_str());
        }
        span.attr_u64("batch", batch.len() as u64);
        span.attr_u64("queue_wait_us", queue_wait_us);
        for p in &batch {
            if let Some(s) = p.ctx.span_id {
                span.follow_from(s);
            }
            recorder::record_for(
                p.ctx.trace_id,
                EventKind::LaneFlushed,
                self.lane.id,
                batch.len() as u64,
                reason.code(),
                p.enqueued.elapsed().as_micros() as u64,
            );
        }
        m.histogram("net.coalesce.batch_size").record(batch.len() as u64);
        m.histogram("net.coalesce.queue_wait_us").record(queue_wait_us);
        m.counter_with("net.coalesce.flushes", Some(reason.as_str().into())).inc();

        let (reqs, members): (Vec<Req>, Vec<Member<Req, Resp>>) =
            batch.into_iter().map(|p| (p.req, (p.reply, p.ctx.trace_id))).unzip();
        let n = reqs.len();
        let kernel_start = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let resps = (self.flush)(reqs);
            assert_eq!(resps.len(), n, "batched kernel must answer every request");
            resps
        }));
        match outcome {
            Ok(resps) => {
                m.histogram("net.coalesce.flush_us")
                    .record(kernel_start.elapsed().as_micros() as u64);
                for ((reply, _), resp) in members.iter().zip(resps) {
                    // A receiver can only be gone if its submitter
                    // withdrew or panicked; the rest of the batch
                    // must still be delivered.
                    let _ = reply.send(LaneMsg::Done(Ok(resp)));
                }
            }
            Err(_) => {
                let crashes = {
                    let c = m.counter("net.coalesce.lane_crashes");
                    c.inc();
                    c.get()
                };
                span.attr_u64("crashed", 1);
                for (reply, query) in &members {
                    recorder::record_for(
                        *query,
                        EventKind::LaneCrashed,
                        self.lane.id,
                        crashes,
                        0,
                        0,
                    );
                    let _ = reply.send(LaneMsg::Done(Err(LaneCrashed)));
                }
            }
        }
    }
}

/// RAII counter of submitters inside `submit_*` on one lane.
struct InflightGuard<'g> {
    counter: &'g AtomicUsize,
}

impl<'g> InflightGuard<'g> {
    fn enter(counter: &'g AtomicUsize) -> Self {
        counter.fetch_add(1, Ordering::SeqCst);
        Self { counter }
    }
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.counter.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Injects one panic into the reactor thread's next iteration,
/// between draining due deadlines and firing them — the worst moment,
/// as armed batches lose their timer. Used by the chaos suite to
/// prove the fallback path conserves queries; a no-op for production
/// code paths.
#[doc(hidden)]
pub fn chaos_inject_reactor_panic() {
    reactor::inject_panic();
}

/// The process-wide deadline reactor: one timer thread, a min-heap of
/// `(deadline, lane, generation)` entries, and a condvar so the
/// thread sleeps exactly until the earliest armed deadline (or
/// forever when idle) instead of polling.
mod reactor {
    use std::cmp::Ordering as CmpOrdering;
    use std::collections::BinaryHeap;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Condvar, Mutex, MutexGuard, OnceLock, Weak};
    use std::time::Instant;

    /// A lane the reactor can fire a deadline on. Implemented by the
    /// type-erased `LaneState`; the reactor holds only `Weak`
    /// references, so dropping a `Coalescer` unregisters its lane.
    pub(super) trait DeadlineTarget: Send + Sync {
        /// Called (off the heap lock) when the armed deadline expires.
        fn on_deadline(self: std::sync::Arc<Self>, generation: u64);
    }

    struct Entry {
        at: Instant,
        seq: u64,
        generation: u64,
        lane: Weak<dyn DeadlineTarget>,
    }

    // BinaryHeap is a max-heap: invert the comparison so the earliest
    // deadline is at the top. `seq` breaks ties deterministically.
    impl PartialEq for Entry {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at && self.seq == other.seq
        }
    }
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> CmpOrdering {
            other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
        }
    }

    struct Shared {
        heap: Mutex<BinaryHeap<Entry>>,
        cv: Condvar,
        panic_injected: AtomicBool,
        seq: std::sync::atomic::AtomicU64,
    }

    fn shared() -> &'static Shared {
        static SHARED: OnceLock<&'static Shared> = OnceLock::new();
        SHARED.get_or_init(|| {
            let s: &'static Shared = Box::leak(Box::new(Shared {
                heap: Mutex::new(BinaryHeap::new()),
                cv: Condvar::new(),
                panic_injected: AtomicBool::new(false),
                seq: std::sync::atomic::AtomicU64::new(0),
            }));
            std::thread::Builder::new()
                .name("tiptoe-coalesce-reactor".into())
                .spawn(move || run(s))
                .expect("spawn coalesce reactor");
            s
        })
    }

    /// Survives heap-lock poisoning: the reactor's own injected
    /// panics (chaos tests) must not wedge every future deadline.
    fn lock_heap(s: &'static Shared) -> MutexGuard<'static, BinaryHeap<Entry>> {
        s.heap.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Arms one deadline: at `at`, call `lane.on_deadline(generation)`
    /// unless the lane drained that generation first (stale) or was
    /// dropped (dead `Weak`).
    pub(super) fn arm(at: Instant, lane: Weak<dyn DeadlineTarget>, generation: u64) {
        let s = shared();
        let seq = s.seq.fetch_add(1, Ordering::Relaxed);
        lock_heap(s).push(Entry { at, seq, generation, lane });
        s.cv.notify_one();
    }

    /// See [`super::chaos_inject_reactor_panic`].
    pub(super) fn inject_panic() {
        let s = shared();
        s.panic_injected.store(true, Ordering::SeqCst);
        s.cv.notify_one();
    }

    fn run(s: &'static Shared) {
        loop {
            // A panicking iteration (injected by the chaos suite, or a
            // defect in a fire path) is contained and counted; armed
            // deadlines popped but not fired are lost, which waiters
            // absorb via their fallback timeout.
            let result = catch_unwind(AssertUnwindSafe(|| iterate(s)));
            if result.is_err() {
                tiptoe_obs::metrics().counter("net.coalesce.reactor_crashes").inc();
            }
        }
    }

    /// One wait-fire cycle (runs forever until a panic unwinds it).
    fn iterate(s: &'static Shared) -> ! {
        let mut heap = lock_heap(s);
        loop {
            let now = Instant::now();
            // Pop everything due, then fire outside the lock so a slow
            // `on_deadline` (it takes the lane's queue lock) never
            // blocks concurrent `arm` calls.
            let mut due = Vec::new();
            while heap.peek().is_some_and(|e| e.at <= now) {
                due.push(heap.pop().expect("peeked entry"));
            }
            if !due.is_empty() {
                drop(heap);
                if s.panic_injected.swap(false, Ordering::SeqCst) {
                    panic!("chaos: injected reactor crash mid-flush");
                }
                for entry in due {
                    if let Some(lane) = entry.lane.upgrade() {
                        // A panic in one lane's fire must not starve
                        // the rest of the due set.
                        let _ = catch_unwind(AssertUnwindSafe(|| {
                            lane.on_deadline(entry.generation);
                        }));
                    }
                }
                heap = lock_heap(s);
                continue;
            }
            // Injected crashes must also fire on idle reactors so the
            // chaos suite can kill the thread deterministically.
            if s.panic_injected.swap(false, Ordering::SeqCst) {
                drop(heap);
                panic!("chaos: injected reactor crash");
            }
            heap = match heap.peek().map(|e| e.at) {
                Some(at) => {
                    let timeout = at.saturating_duration_since(now);
                    s.cv.wait_timeout(heap, timeout)
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .0
                }
                None => s.cv.wait(heap).unwrap_or_else(|poisoned| poisoned.into_inner()),
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_submit_round_trips() {
        let c = Coalescer::new(CoalescePolicy::default(), |reqs: Vec<u64>| {
            reqs.into_iter().map(|r| r * 2).collect()
        });
        assert_eq!(c.submit(21), 42);
    }

    #[test]
    fn solo_submits_flush_immediately_not_after_max_wait() {
        // A deliberately huge max_wait: if the lone submitter waited
        // for the deadline (as the old cooperative scheduler did),
        // this test would take 200 ms; the solo fast path answers at
        // kernel latency.
        let policy = CoalescePolicy {
            max_wait: Duration::from_millis(200),
            ..CoalescePolicy::default()
        };
        let c = Coalescer::new(policy, |reqs: Vec<u64>| reqs);
        let before = solo_flushes();
        let start = Instant::now();
        assert_eq!(c.submit(9), 9);
        assert!(
            start.elapsed() < Duration::from_millis(100),
            "solo submit must not wait out max_wait (took {:?})",
            start.elapsed()
        );
        assert!(solo_flushes() > before, "flush must be accounted as solo");
    }

    fn solo_flushes() -> u64 {
        tiptoe_obs::metrics().counter_with("net.coalesce.flushes", Some("solo".into())).get()
    }

    #[test]
    fn concurrent_submits_share_flushes_and_keep_order() {
        let flushes = AtomicUsize::new(0);
        let policy = CoalescePolicy {
            max_batch: 8,
            max_wait: Duration::from_millis(50),
            queue_depth: 64,
            adaptive: false,
        };
        let c = Coalescer::new(policy, |reqs: Vec<u64>| {
            flushes.fetch_add(1, Ordering::Relaxed);
            reqs.into_iter().map(|r| r + 1000).collect()
        });
        std::thread::scope(|scope| {
            for i in 0..16u64 {
                let c = &c;
                scope.spawn(move || {
                    assert_eq!(c.submit(i), i + 1000, "response matched to its request");
                });
            }
        });
        // 16 requests, batches of up to 8: at least 2 flushes, and
        // (the point of coalescing) far fewer than 16.
        let n = flushes.load(Ordering::Relaxed);
        assert!(n >= 2, "{n} flushes");
        assert!(n <= 16, "{n} flushes");
    }

    #[test]
    fn reactor_deadline_flushes_partial_batches() {
        let policy = CoalescePolicy {
            max_batch: 8,
            max_wait: Duration::from_millis(5),
            queue_depth: 64,
            adaptive: false,
        };
        let c = Coalescer::new(policy, |reqs: Vec<u64>| reqs);
        // Simulate a second in-flight submitter so the solo fast path
        // stays closed and the request must ride the reactor's armed
        // deadline (delivered as a `Lead` delegation).
        let _other = InflightGuard::enter(&c.lane.inflight);
        let start = Instant::now();
        assert_eq!(c.submit(9), 9);
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(5),
            "partial batch must wait for the armed deadline (took {elapsed:?})"
        );
        assert!(
            elapsed < Duration::from_millis(250),
            "reactor deadline, not the fallback timeout, must flush (took {elapsed:?})"
        );
    }

    #[test]
    fn overflow_applies_backpressure_by_flushing() {
        let policy = CoalescePolicy {
            max_batch: 2,
            max_wait: Duration::from_millis(50),
            queue_depth: 2,
            adaptive: false,
        };
        let c = Coalescer::new(policy, |reqs: Vec<u64>| reqs);
        std::thread::scope(|scope| {
            for i in 0..8u64 {
                let c = &c;
                scope.spawn(move || assert_eq!(c.submit(i), i));
            }
        });
    }

    #[test]
    fn submit_within_answers_in_time_requests() {
        let c = Coalescer::new(CoalescePolicy::default(), |reqs: Vec<u64>| {
            reqs.into_iter().map(|r| r * 3).collect()
        });
        let resp = c.submit_within(5, Duration::from_secs(5)).expect("ample deadline");
        assert_eq!(resp, 15);
    }

    #[test]
    fn expired_requests_withdraw_with_a_typed_error() {
        // A policy whose max_wait exceeds the request's deadline, and
        // a simulated co-submitter holding the solo path closed: the
        // submitter's deadline fires while the request is still
        // queued, so it withdraws with a typed error.
        let policy = CoalescePolicy {
            max_batch: 8,
            max_wait: Duration::from_millis(100),
            queue_depth: 64,
            adaptive: false,
        };
        let c = Coalescer::new(policy, |reqs: Vec<u64>| reqs);
        let _other = InflightGuard::enter(&c.lane.inflight);
        let before = tiptoe_obs::metrics().counter("net.coalesce.abandoned").get();
        let err = c.submit_within(1, Duration::from_millis(5)).expect_err("deadline expires");
        assert!(matches!(err, ServeError::DeadlineExceeded { .. }), "{err:?}");
        assert!(tiptoe_obs::metrics().counter("net.coalesce.abandoned").get() > before);
        // The withdrawn request must not leak into the next batch.
        assert_eq!(c.submit(7), 7, "queue is clean after withdrawal");
    }

    #[test]
    fn crashed_lanes_fail_over_to_a_fresh_flush() {
        let crash_next = AtomicUsize::new(1);
        let c = Coalescer::new(CoalescePolicy::default(), |reqs: Vec<u64>| {
            if crash_next
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| Some(v.saturating_sub(1)))
                .expect("update")
                > 0
            {
                panic!("injected lane crash");
            }
            reqs.into_iter().map(|r| r + 1).collect()
        });
        let before = tiptoe_obs::metrics().counter("net.coalesce.lane_crashes").get();
        // First flush crashes; the submitter re-enqueues and the
        // retry flush answers correctly.
        assert_eq!(c.submit(41), 42);
        assert!(tiptoe_obs::metrics().counter("net.coalesce.lane_crashes").get() > before);
    }

    #[test]
    fn permanently_crashed_lanes_return_a_typed_error() {
        let c: Coalescer<'_, u64, u64> =
            Coalescer::new(CoalescePolicy::default(), |_reqs| panic!("kernel always crashes"));
        let err = c.submit_within(1, Duration::from_secs(10)).expect_err("lane never recovers");
        assert!(
            matches!(err, ServeError::LaneFailed { crashes } if crashes == MAX_LANE_RETRIES + 1),
            "{err:?}"
        );
    }

    #[test]
    fn adaptive_wait_never_exceeds_the_policy_ceiling() {
        let m = tiptoe_obs::metrics();
        // Warm the (process-global) histograms past the cold-start
        // thresholds with a fast arrival rate and a cheap flush.
        for _ in 0..64 {
            m.histogram("net.coalesce.interarrival_us").record(50);
            m.histogram("net.coalesce.flush_us").record(400);
        }
        let policy = CoalescePolicy { max_wait: Duration::from_millis(20), ..Default::default() };
        let c = Coalescer::new(policy, |reqs: Vec<u64>| reqs);
        let derived = c.lane.effective_max_wait();
        assert!(derived <= policy.max_wait, "{derived:?} exceeds ceiling");
        assert!(derived >= Duration::from_micros(1));
        // With adaptation off the ceiling is used verbatim.
        let fixed = CoalescePolicy { adaptive: false, ..policy };
        let c2 = Coalescer::new(fixed, |reqs: Vec<u64>| reqs);
        assert_eq!(c2.lane.effective_max_wait(), fixed.max_wait);
    }

    #[test]
    fn reactor_crash_falls_back_without_losing_queries() {
        // Kill the reactor right when it would fire our deadline: the
        // parked waiter's fallback timeout must drain the lane and the
        // query must be answered exactly once.
        let served = AtomicUsize::new(0);
        let policy = CoalescePolicy {
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            queue_depth: 64,
            adaptive: false,
        };
        let c = Coalescer::new(policy, |reqs: Vec<u64>| {
            served.fetch_add(reqs.len(), Ordering::SeqCst);
            reqs.into_iter().map(|r| r + 7).collect()
        });
        let _other = InflightGuard::enter(&c.lane.inflight);
        chaos_inject_reactor_panic();
        let start = Instant::now();
        assert_eq!(c.submit(1), 8);
        // Served exactly once, via some flush path, despite the timer
        // thread dying (the fallback is allowed to be slow).
        assert_eq!(served.load(Ordering::SeqCst), 1);
        assert!(start.elapsed() < Duration::from_secs(5));
        // The reactor recovered (or the fallback keeps covering):
        // later submits still work.
        assert_eq!(c.submit(2), 9);
        assert_eq!(served.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn invalid_policies_are_rejected() {
        for bad in [
            CoalescePolicy { max_batch: 0, ..CoalescePolicy::default() },
            CoalescePolicy { max_wait: Duration::ZERO, ..CoalescePolicy::default() },
            CoalescePolicy { max_batch: 8, queue_depth: 4, ..CoalescePolicy::default() },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
        assert!(CoalescePolicy::default().validate().is_ok());
    }
}
