//! Cross-client batch coalescing (paper §8.1; Wally's cross-user
//! batching): a per-shard scheduler that queues concurrently arriving
//! requests and flushes them through a batched kernel, so `N`
//! concurrent queries cost one database scan instead of `N`.
//!
//! The coalescer owns no threads. Submitters cooperate: whoever
//! pushes the request that fills a batch flushes it inline (reason
//! `full`); a submitter whose response has not arrived within the
//! max-wait deadline flushes whatever is pending (reason `deadline`);
//! and a submitter that finds the queue at its depth bound flushes
//! before enqueueing (reason `overflow` — backpressure is paid by the
//! overflowing submitter, not by unbounded memory). Every waiter
//! re-arms its deadline after each flush, so progress is guaranteed:
//! a request can only sit in the queue while *some* submitter is
//! waiting on it, and that submitter's deadline drains the queue.
//!
//! Results are bit-identical to unbatched serving as long as the
//! flush function is (the workspace's batched kernels guarantee it),
//! because batch composition only groups independent requests — it
//! never mixes their data.
//!
//! Two failure modes are contained here rather than propagated:
//!
//! - **Lane crashes.** A panicking batched kernel must not take the
//!   whole plane down (every co-batched query would hang waiting on a
//!   reply that never comes). [`Coalescer`] catches the panic, fails
//!   every request of the crashed flush, and lets each submitter
//!   re-enqueue into a fresh batch up to [`MAX_LANE_RETRIES`] times
//!   before returning a typed [`ServeError::LaneFailed`].
//! - **Deadline overruns.** [`Coalescer::submit_within`] bounds how
//!   long a request may sit in the lane. A request still *queued*
//!   when its deadline expires withdraws itself (typed
//!   [`ServeError::DeadlineExceeded`]); one already drained into an
//!   in-flight flush waits for that imminent result — a response,
//!   once computed, is never dropped on the floor.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::overload::{ConfigError, ServeError};

/// Re-enqueue attempts a submitter makes after its flush crashed
/// before giving up with [`ServeError::LaneFailed`].
pub const MAX_LANE_RETRIES: u32 = 3;

/// Knobs of one coalescing queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoalescePolicy {
    /// Requests flushed together at most (the batched kernel's `B`).
    pub max_batch: usize,
    /// How long a submitter waits for co-batched requests before
    /// flushing what is pending.
    pub max_wait: Duration,
    /// Queue-depth bound: a submitter finding this many requests
    /// pending flushes them before enqueueing (backpressure).
    pub queue_depth: usize,
}

impl Default for CoalescePolicy {
    fn default() -> Self {
        Self { max_batch: 8, max_wait: Duration::from_millis(2), queue_depth: 64 }
    }
}

impl CoalescePolicy {
    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] on a zero batch size, a zero wait, or a queue
    /// bound smaller than one batch.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.max_batch < 1 {
            return Err(ConfigError {
                field: "coalesce.max_batch",
                reason: "batch size must be positive",
            });
        }
        if self.max_wait == Duration::ZERO {
            return Err(ConfigError {
                field: "coalesce.max_wait",
                reason: "max wait must be positive",
            });
        }
        if self.queue_depth < self.max_batch {
            return Err(ConfigError {
                field: "coalesce.queue_depth",
                reason: "queue depth must hold at least one batch",
            });
        }
        Ok(())
    }
}

/// Why a batch left the queue (span attribute + counter label).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlushReason {
    /// The batch reached `max_batch`.
    Full,
    /// A waiter's `max_wait` deadline expired.
    Deadline,
    /// The queue hit `queue_depth`; the submitter drained it first.
    Overflow,
}

impl FlushReason {
    fn as_str(self) -> &'static str {
        match self {
            FlushReason::Full => "full",
            FlushReason::Deadline => "deadline",
            FlushReason::Overflow => "overflow",
        }
    }
}

/// Marker delivered to every member of a flush whose kernel panicked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LaneCrashed;

/// One queued request: its payload, the channel its response returns
/// on, a withdrawal ticket, and when it arrived (for queue-wait
/// accounting).
struct Pending<Req, Resp> {
    ticket: u64,
    req: Req,
    reply: mpsc::Sender<Result<Resp, LaneCrashed>>,
    enqueued: Instant,
}

/// A batching scheduler in front of a batched kernel: concurrent
/// [`Coalescer::submit`] calls are grouped and answered by one
/// `flush` invocation per batch.
///
/// `flush` receives the batch's requests in queue order and must
/// return exactly one response per request, in the same order.
pub struct Coalescer<'a, Req, Resp> {
    policy: CoalescePolicy,
    queue: Mutex<VecDeque<Pending<Req, Resp>>>,
    next_ticket: AtomicU64,
    #[allow(clippy::type_complexity)]
    flush: Box<dyn Fn(Vec<Req>) -> Vec<Resp> + Send + Sync + 'a>,
}

impl<'a, Req: Send, Resp: Send> Coalescer<'a, Req, Resp> {
    /// Creates a coalescer over a batched kernel.
    ///
    /// # Panics
    ///
    /// Panics if the policy is invalid (validate the policy through
    /// config loading to get a typed error instead).
    pub fn new(
        policy: CoalescePolicy,
        flush: impl Fn(Vec<Req>) -> Vec<Resp> + Send + Sync + 'a,
    ) -> Self {
        policy.validate().expect("invalid coalescer policy");
        Self {
            policy,
            queue: Mutex::new(VecDeque::new()),
            next_ticket: AtomicU64::new(0),
            flush: Box::new(flush),
        }
    }

    /// The policy this coalescer runs under.
    pub fn policy(&self) -> CoalescePolicy {
        self.policy
    }

    /// Submits one request and blocks until its response arrives —
    /// either from a batch this thread flushed or from one a
    /// co-submitter flushed.
    ///
    /// # Panics
    ///
    /// Panics if the lane crashes [`MAX_LANE_RETRIES`] + 1 times in a
    /// row for this request ([`Coalescer::submit_within`] returns the
    /// typed error instead).
    pub fn submit(&self, req: Req) -> Resp
    where
        Req: Clone,
    {
        match self.submit_bounded(req, None) {
            Ok(resp) => resp,
            Err(e) => panic!("coalescer lane failed permanently: {e}"),
        }
    }

    /// Submits one request with a deadline measured from this call:
    /// the request waits in the lane at most `deadline` before
    /// withdrawing itself.
    ///
    /// # Errors
    ///
    /// - [`ServeError::DeadlineExceeded`] if the request was still
    ///   queued when the deadline expired (it is withdrawn; the
    ///   kernel never sees it).
    /// - [`ServeError::LaneFailed`] if the lane's kernel crashed
    ///   repeatedly under this request.
    pub fn submit_within(&self, req: Req, deadline: Duration) -> Result<Resp, ServeError>
    where
        Req: Clone,
    {
        self.submit_bounded(req, Some(deadline))
    }

    fn submit_bounded(&self, req: Req, deadline: Option<Duration>) -> Result<Resp, ServeError>
    where
        Req: Clone,
    {
        let start = Instant::now();
        let mut crashes = 0u32;
        loop {
            match self.submit_once(req.clone(), deadline, start)? {
                Ok(resp) => return Ok(resp),
                Err(LaneCrashed) => {
                    crashes += 1;
                    if crashes > MAX_LANE_RETRIES {
                        return Err(ServeError::LaneFailed { crashes });
                    }
                    // Re-enqueue into a fresh batch; the poisoned
                    // batch composition is gone, so a transient
                    // kernel failure gets a clean retry.
                }
            }
        }
    }

    /// One enqueue/wait round. The outer `Err` is a typed deadline
    /// failure; the inner `Err` a crashed flush (retryable).
    fn submit_once(
        &self,
        req: Req,
        deadline: Option<Duration>,
        start: Instant,
    ) -> Result<Result<Resp, LaneCrashed>, ServeError> {
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        let overflowing =
            self.queue.lock().expect("coalescer queue lock").len() >= self.policy.queue_depth;
        if overflowing {
            tiptoe_obs::metrics().counter("net.coalesce.backpressure").inc();
            self.flush_pending(FlushReason::Overflow);
        }
        let filled = {
            let mut q = self.queue.lock().expect("coalescer queue lock");
            q.push_back(Pending { ticket, req, reply: tx, enqueued: Instant::now() });
            q.len() >= self.policy.max_batch
        };
        if filled {
            self.flush_pending(FlushReason::Full);
        }
        loop {
            if let Some(d) = deadline {
                let waited = start.elapsed();
                if waited >= d {
                    // Withdraw if still queued: the kernel never saw
                    // the request, so failing it loses nothing.
                    let withdrawn = {
                        let mut q = self.queue.lock().expect("coalescer queue lock");
                        let before = q.len();
                        q.retain(|p| p.ticket != ticket);
                        q.len() < before
                    };
                    if withdrawn {
                        tiptoe_obs::metrics().counter("net.coalesce.abandoned").inc();
                        return Err(ServeError::DeadlineExceeded { budget: d, spent: waited });
                    }
                    // Already drained into an in-flight flush: its
                    // result is imminent and must not be dropped —
                    // the caller charges the overrun to its budget.
                    return match rx.recv() {
                        Ok(outcome) => Ok(outcome),
                        Err(mpsc::RecvError) => Ok(Err(LaneCrashed)),
                    };
                }
            }
            let wait = match deadline {
                Some(d) => self.policy.max_wait.min(d.saturating_sub(start.elapsed())),
                None => self.policy.max_wait,
            };
            match rx.recv_timeout(wait.max(Duration::from_micros(1))) {
                Ok(outcome) => return Ok(outcome),
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    // Our request (or the batch ahead of it) has waited
                    // out the max-wait: drain whatever is pending —
                    // unless our own deadline just expired, in which
                    // case the top of the loop withdraws the request
                    // instead of handing it to the kernel late.
                    if !deadline.is_some_and(|d| start.elapsed() >= d) {
                        self.flush_pending(FlushReason::Deadline);
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    // The sender can only vanish if the flush died
                    // without delivering; treat it as a crash.
                    return Ok(Err(LaneCrashed));
                }
            }
        }
    }

    /// Drains up to one batch from the queue and runs the batched
    /// kernel on it (outside the lock, so co-submitters keep
    /// enqueueing — and other batches keep flushing — concurrently).
    ///
    /// A kernel panic is contained: every member of the crashed batch
    /// is failed with [`LaneCrashed`] so its submitter can retry or
    /// surface a typed error — no waiter is left hanging, and no
    /// request is silently duplicated (the crashed batch's requests
    /// only re-enter the queue through their own submitters).
    fn flush_pending(&self, reason: FlushReason) {
        let batch: Vec<Pending<Req, Resp>> = {
            let mut q = self.queue.lock().expect("coalescer queue lock");
            let take = q.len().min(self.policy.max_batch);
            q.drain(..take).collect()
        };
        if batch.is_empty() {
            return;
        }
        let mut span = tiptoe_obs::span("net.coalesce.flush");
        let m = tiptoe_obs::metrics();
        let queue_wait_us =
            batch.iter().map(|p| p.enqueued.elapsed().as_micros() as u64).max().unwrap_or(0);
        if tiptoe_obs::enabled() {
            span.set_label(reason.as_str());
        }
        span.attr_u64("batch", batch.len() as u64);
        span.attr_u64("queue_wait_us", queue_wait_us);
        m.histogram("net.coalesce.batch_size").record(batch.len() as u64);
        m.histogram("net.coalesce.queue_wait_us").record(queue_wait_us);
        m.counter_with("net.coalesce.flushes", Some(reason.as_str().into())).inc();

        let (reqs, replies): (Vec<Req>, Vec<mpsc::Sender<Result<Resp, LaneCrashed>>>) =
            batch.into_iter().map(|p| (p.req, p.reply)).unzip();
        let n = reqs.len();
        let kernel_start = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let resps = (self.flush)(reqs);
            assert_eq!(resps.len(), n, "batched kernel must answer every request");
            resps
        }));
        match outcome {
            Ok(resps) => {
                m.histogram("net.coalesce.flush_us")
                    .record(kernel_start.elapsed().as_micros() as u64);
                for (reply, resp) in replies.iter().zip(resps) {
                    // A receiver can only be gone if its submitter
                    // withdrew or panicked; the rest of the batch
                    // must still be delivered.
                    let _ = reply.send(Ok(resp));
                }
            }
            Err(_) => {
                m.counter("net.coalesce.lane_crashes").inc();
                span.attr_u64("crashed", 1);
                for reply in &replies {
                    let _ = reply.send(Err(LaneCrashed));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_submit_round_trips() {
        let c = Coalescer::new(CoalescePolicy::default(), |reqs: Vec<u64>| {
            reqs.into_iter().map(|r| r * 2).collect()
        });
        assert_eq!(c.submit(21), 42);
    }

    #[test]
    fn concurrent_submits_share_flushes_and_keep_order() {
        let flushes = AtomicUsize::new(0);
        let policy = CoalescePolicy {
            max_batch: 8,
            max_wait: Duration::from_millis(50),
            queue_depth: 64,
        };
        let c = Coalescer::new(policy, |reqs: Vec<u64>| {
            flushes.fetch_add(1, Ordering::Relaxed);
            reqs.into_iter().map(|r| r + 1000).collect()
        });
        std::thread::scope(|scope| {
            for i in 0..16u64 {
                let c = &c;
                scope.spawn(move || {
                    assert_eq!(c.submit(i), i + 1000, "response matched to its request");
                });
            }
        });
        // 16 requests, batches of up to 8: at least 2 flushes, and
        // (the point of coalescing) far fewer than 16.
        let n = flushes.load(Ordering::Relaxed);
        assert!(n >= 2, "{n} flushes");
        assert!(n <= 16, "{n} flushes");
    }

    #[test]
    fn deadline_flushes_partial_batches() {
        let policy = CoalescePolicy {
            max_batch: 8,
            max_wait: Duration::from_millis(5),
            queue_depth: 64,
        };
        let c = Coalescer::new(policy, |reqs: Vec<u64>| reqs);
        let start = Instant::now();
        // Alone in the queue: nobody else fills the batch, so the
        // submitter's own deadline flushes it.
        assert_eq!(c.submit(9), 9);
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn overflow_applies_backpressure_by_flushing() {
        let policy =
            CoalescePolicy { max_batch: 2, max_wait: Duration::from_millis(50), queue_depth: 2 };
        let c = Coalescer::new(policy, |reqs: Vec<u64>| reqs);
        std::thread::scope(|scope| {
            for i in 0..8u64 {
                let c = &c;
                scope.spawn(move || assert_eq!(c.submit(i), i));
            }
        });
    }

    #[test]
    fn submit_within_answers_in_time_requests() {
        let c = Coalescer::new(CoalescePolicy::default(), |reqs: Vec<u64>| {
            reqs.into_iter().map(|r| r * 3).collect()
        });
        let resp = c.submit_within(5, Duration::from_secs(5)).expect("ample deadline");
        assert_eq!(resp, 15);
    }

    #[test]
    fn expired_requests_withdraw_with_a_typed_error() {
        // A kernel slower than the deadline, and a policy whose
        // max_wait exceeds it too: the submitter's deadline fires
        // while the request is still queued (nobody ever flushes).
        let policy = CoalescePolicy {
            max_batch: 8,
            max_wait: Duration::from_millis(100),
            queue_depth: 64,
        };
        let c = Coalescer::new(policy, |reqs: Vec<u64>| reqs);
        let before = tiptoe_obs::metrics().counter("net.coalesce.abandoned").get();
        let err = c.submit_within(1, Duration::from_millis(5)).expect_err("deadline expires");
        assert!(matches!(err, ServeError::DeadlineExceeded { .. }), "{err:?}");
        assert!(tiptoe_obs::metrics().counter("net.coalesce.abandoned").get() > before);
        // The withdrawn request must not leak into the next batch.
        assert_eq!(c.submit(7), 7, "queue is clean after withdrawal");
    }

    #[test]
    fn crashed_lanes_fail_over_to_a_fresh_flush() {
        let crash_next = AtomicUsize::new(1);
        let c = Coalescer::new(CoalescePolicy::default(), |reqs: Vec<u64>| {
            if crash_next.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| Some(v.saturating_sub(1)))
                .expect("update")
                > 0
            {
                panic!("injected lane crash");
            }
            reqs.into_iter().map(|r| r + 1).collect()
        });
        let before = tiptoe_obs::metrics().counter("net.coalesce.lane_crashes").get();
        // First flush crashes; the submitter re-enqueues and the
        // retry flush answers correctly.
        assert_eq!(c.submit(41), 42);
        assert!(tiptoe_obs::metrics().counter("net.coalesce.lane_crashes").get() > before);
    }

    #[test]
    fn permanently_crashed_lanes_return_a_typed_error() {
        let c: Coalescer<'_, u64, u64> =
            Coalescer::new(CoalescePolicy::default(), |_reqs| panic!("kernel always crashes"));
        let err = c.submit_within(1, Duration::from_secs(10)).expect_err("lane never recovers");
        assert!(
            matches!(err, ServeError::LaneFailed { crashes } if crashes == MAX_LANE_RETRIES + 1),
            "{err:?}"
        );
    }

    #[test]
    fn invalid_policies_are_rejected() {
        for bad in [
            CoalescePolicy { max_batch: 0, ..CoalescePolicy::default() },
            CoalescePolicy { max_wait: Duration::ZERO, ..CoalescePolicy::default() },
            CoalescePolicy { max_batch: 8, queue_depth: 4, ..CoalescePolicy::default() },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
        assert!(CoalescePolicy::default().validate().is_ok());
    }
}
