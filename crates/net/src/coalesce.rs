//! Cross-client batch coalescing (paper §8.1; Wally's cross-user
//! batching): a per-shard scheduler that queues concurrently arriving
//! requests and flushes them through a batched kernel, so `N`
//! concurrent queries cost one database scan instead of `N`.
//!
//! The coalescer owns no threads. Submitters cooperate: whoever
//! pushes the request that fills a batch flushes it inline (reason
//! `full`); a submitter whose response has not arrived within the
//! max-wait deadline flushes whatever is pending (reason `deadline`);
//! and a submitter that finds the queue at its depth bound flushes
//! before enqueueing (reason `overflow` — backpressure is paid by the
//! overflowing submitter, not by unbounded memory). Every waiter
//! re-arms its deadline after each flush, so progress is guaranteed:
//! a request can only sit in the queue while *some* submitter is
//! waiting on it, and that submitter's deadline drains the queue.
//!
//! Results are bit-identical to unbatched serving as long as the
//! flush function is (the workspace's batched kernels guarantee it),
//! because batch composition only groups independent requests — it
//! never mixes their data.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Knobs of one coalescing queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoalescePolicy {
    /// Requests flushed together at most (the batched kernel's `B`).
    pub max_batch: usize,
    /// How long a submitter waits for co-batched requests before
    /// flushing what is pending.
    pub max_wait: Duration,
    /// Queue-depth bound: a submitter finding this many requests
    /// pending flushes them before enqueueing (backpressure).
    pub queue_depth: usize,
}

impl Default for CoalescePolicy {
    fn default() -> Self {
        Self { max_batch: 8, max_wait: Duration::from_millis(2), queue_depth: 64 }
    }
}

impl CoalescePolicy {
    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on a zero batch size, a zero wait, or a queue bound
    /// smaller than one batch.
    pub fn validate(&self) {
        assert!(self.max_batch >= 1, "coalescer batch size must be positive");
        assert!(self.max_wait > Duration::ZERO, "coalescer max wait must be positive");
        assert!(self.queue_depth >= self.max_batch, "queue depth must hold at least one batch");
    }
}

/// Why a batch left the queue (span attribute + counter label).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlushReason {
    /// The batch reached `max_batch`.
    Full,
    /// A waiter's `max_wait` deadline expired.
    Deadline,
    /// The queue hit `queue_depth`; the submitter drained it first.
    Overflow,
}

impl FlushReason {
    fn as_str(self) -> &'static str {
        match self {
            FlushReason::Full => "full",
            FlushReason::Deadline => "deadline",
            FlushReason::Overflow => "overflow",
        }
    }
}

/// One queued request: its payload, the channel its response returns
/// on, and when it arrived (for queue-wait accounting).
struct Pending<Req, Resp> {
    req: Req,
    reply: mpsc::Sender<Resp>,
    enqueued: Instant,
}

/// A batching scheduler in front of a batched kernel: concurrent
/// [`Coalescer::submit`] calls are grouped and answered by one
/// `flush` invocation per batch.
///
/// `flush` receives the batch's requests in queue order and must
/// return exactly one response per request, in the same order.
pub struct Coalescer<'a, Req, Resp> {
    policy: CoalescePolicy,
    queue: Mutex<VecDeque<Pending<Req, Resp>>>,
    #[allow(clippy::type_complexity)]
    flush: Box<dyn Fn(Vec<Req>) -> Vec<Resp> + Send + Sync + 'a>,
}

impl<'a, Req: Send, Resp: Send> Coalescer<'a, Req, Resp> {
    /// Creates a coalescer over a batched kernel.
    ///
    /// # Panics
    ///
    /// Panics if the policy is invalid.
    pub fn new(
        policy: CoalescePolicy,
        flush: impl Fn(Vec<Req>) -> Vec<Resp> + Send + Sync + 'a,
    ) -> Self {
        policy.validate();
        Self { policy, queue: Mutex::new(VecDeque::new()), flush: Box::new(flush) }
    }

    /// The policy this coalescer runs under.
    pub fn policy(&self) -> CoalescePolicy {
        self.policy
    }

    /// Submits one request and blocks until its response arrives —
    /// either from a batch this thread flushed or from one a
    /// co-submitter flushed.
    pub fn submit(&self, req: Req) -> Resp {
        let (tx, rx) = mpsc::channel();
        let overflowing =
            self.queue.lock().expect("coalescer queue lock").len() >= self.policy.queue_depth;
        if overflowing {
            tiptoe_obs::metrics().counter("net.coalesce.backpressure").inc();
            self.flush_pending(FlushReason::Overflow);
        }
        let filled = {
            let mut q = self.queue.lock().expect("coalescer queue lock");
            q.push_back(Pending { req, reply: tx, enqueued: Instant::now() });
            q.len() >= self.policy.max_batch
        };
        if filled {
            self.flush_pending(FlushReason::Full);
        }
        loop {
            match rx.recv_timeout(self.policy.max_wait) {
                Ok(resp) => return resp,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    // Our request (or the batch ahead of it) has waited
                    // out the deadline: drain whatever is pending.
                    self.flush_pending(FlushReason::Deadline);
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    unreachable!("coalescer dropped a pending reply channel")
                }
            }
        }
    }

    /// Drains up to one batch from the queue and runs the batched
    /// kernel on it (outside the lock, so co-submitters keep
    /// enqueueing — and other batches keep flushing — concurrently).
    fn flush_pending(&self, reason: FlushReason) {
        let batch: Vec<Pending<Req, Resp>> = {
            let mut q = self.queue.lock().expect("coalescer queue lock");
            let take = q.len().min(self.policy.max_batch);
            q.drain(..take).collect()
        };
        if batch.is_empty() {
            return;
        }
        let mut span = tiptoe_obs::span("net.coalesce.flush");
        let m = tiptoe_obs::metrics();
        let queue_wait_us =
            batch.iter().map(|p| p.enqueued.elapsed().as_micros() as u64).max().unwrap_or(0);
        if tiptoe_obs::enabled() {
            span.set_label(reason.as_str());
        }
        span.attr_u64("batch", batch.len() as u64);
        span.attr_u64("queue_wait_us", queue_wait_us);
        m.histogram("net.coalesce.batch_size").record(batch.len() as u64);
        m.histogram("net.coalesce.queue_wait_us").record(queue_wait_us);
        m.counter_with("net.coalesce.flushes", Some(reason.as_str().into())).inc();

        let (reqs, replies): (Vec<Req>, Vec<mpsc::Sender<Resp>>) =
            batch.into_iter().map(|p| (p.req, p.reply)).unzip();
        let n = reqs.len();
        let resps = (self.flush)(reqs);
        assert_eq!(resps.len(), n, "batched kernel must answer every request");
        for (reply, resp) in replies.iter().zip(resps) {
            // A receiver can only be gone if the submitter panicked;
            // the rest of the batch must still be delivered.
            let _ = reply.send(resp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_submit_round_trips() {
        let c = Coalescer::new(CoalescePolicy::default(), |reqs: Vec<u64>| {
            reqs.into_iter().map(|r| r * 2).collect()
        });
        assert_eq!(c.submit(21), 42);
    }

    #[test]
    fn concurrent_submits_share_flushes_and_keep_order() {
        let flushes = AtomicUsize::new(0);
        let policy = CoalescePolicy {
            max_batch: 8,
            max_wait: Duration::from_millis(50),
            queue_depth: 64,
        };
        let c = Coalescer::new(policy, |reqs: Vec<u64>| {
            flushes.fetch_add(1, Ordering::Relaxed);
            reqs.into_iter().map(|r| r + 1000).collect()
        });
        std::thread::scope(|scope| {
            for i in 0..16u64 {
                let c = &c;
                scope.spawn(move || {
                    assert_eq!(c.submit(i), i + 1000, "response matched to its request");
                });
            }
        });
        // 16 requests, batches of up to 8: at least 2 flushes, and
        // (the point of coalescing) far fewer than 16.
        let n = flushes.load(Ordering::Relaxed);
        assert!(n >= 2, "{n} flushes");
        assert!(n <= 16, "{n} flushes");
    }

    #[test]
    fn deadline_flushes_partial_batches() {
        let policy = CoalescePolicy {
            max_batch: 8,
            max_wait: Duration::from_millis(5),
            queue_depth: 64,
        };
        let c = Coalescer::new(policy, |reqs: Vec<u64>| reqs);
        let start = Instant::now();
        // Alone in the queue: nobody else fills the batch, so the
        // submitter's own deadline flushes it.
        assert_eq!(c.submit(9), 9);
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn overflow_applies_backpressure_by_flushing() {
        let policy =
            CoalescePolicy { max_batch: 2, max_wait: Duration::from_millis(50), queue_depth: 2 };
        let c = Coalescer::new(policy, |reqs: Vec<u64>| reqs);
        std::thread::scope(|scope| {
            for i in 0..8u64 {
                let c = &c;
                scope.spawn(move || assert_eq!(c.submit(i), i));
            }
        });
    }

    #[test]
    fn invalid_policies_are_rejected() {
        for bad in [
            CoalescePolicy { max_batch: 0, ..CoalescePolicy::default() },
            CoalescePolicy { max_wait: Duration::ZERO, ..CoalescePolicy::default() },
            CoalescePolicy { max_batch: 8, queue_depth: 4, ..CoalescePolicy::default() },
        ] {
            assert!(std::panic::catch_unwind(move || bad.validate()).is_err(), "{bad:?}");
        }
    }
}
