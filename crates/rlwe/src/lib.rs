//! The "outer" ring-LWE encryption scheme `Enc2` (paper §6.2, App. A).
//!
//! Tiptoe compresses the large post-evaluation ciphertexts of the inner
//! (SimplePIR-style) scheme by outsourcing their decryption to the
//! server: the client encrypts the inner secret key under this second
//! scheme, and the server evaluates the linear part of inner decryption
//! (`hint · s`) homomorphically. What the outer scheme must support is
//! therefore exactly:
//!
//! - encrypting small scalars (the ternary inner secret-key entries),
//! - multiplying ciphertexts by *public* polynomials (hint columns),
//! - accumulating many such products, and
//! - compact ciphertexts after evaluation (+ modulus switching to
//!   shrink the download further).
//!
//! We implement a secret-key BFV-flavored scheme over
//! `R_Q = Z_Q[x]/(x^N + 1)` with `N = 2048`, a 62-bit NTT-friendly
//! prime `Q`, plaintext modulus `t = 2^28`, and ternary keys. Fresh
//! ciphertexts are *seeded* (the uniform `a` component travels as a PRG
//! seed), halving upload size exactly as in the paper's deployments.
//!
//! Parameter deviation from the paper's SEAL instantiation
//! (`t = 65537`, 38-bit `Q`) is documented in `DESIGN.md` §2: our
//! power-of-two `t` makes the limb recombination in `tiptoe-underhood`
//! exactly correct, which we prefer over replicating SEAL's plaintext
//! CRT packing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;

use rand::Rng;
use tiptoe_math::ntt::NttTable;
use tiptoe_math::poly::{Domain, Poly};
use tiptoe_math::rng::{derive_seed, seeded_rng};
use tiptoe_math::sample::{gaussian_i64, ternary_vec};
use tiptoe_math::wire::{WireError, WireReader, WireWriter};

/// Parameters of the outer RLWE scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RlweParams {
    /// Ring degree `N` (a power of two).
    pub degree: usize,
    /// Bit size of the NTT-friendly prime ciphertext modulus `Q`.
    pub q_bits: u32,
    /// Plaintext modulus `t` (a power of two in this workspace).
    pub t: u64,
    /// Error standard deviation.
    pub sigma: f64,
}

impl RlweParams {
    /// The production parameters used throughout the workspace:
    /// `N = 2048`, 62-bit `Q`, `t = 2^28`, σ = 3.2.
    ///
    /// `t = 2^28` is chosen so that a sum of `n ≤ 2048` products of
    /// 16-bit hint limbs with ternary secret entries
    /// (`|Σ| ≤ 2048 · (2^16 - 1) < 2^27`) never wraps modulo `t`.
    pub fn production() -> Self {
        Self { degree: 2048, q_bits: 62, t: 1 << 28, sigma: 3.2 }
    }

    /// Small parameters for fast unit tests (not secure).
    pub fn insecure_test() -> Self {
        Self { degree: 64, q_bits: 50, t: 1 << 20, sigma: 3.2 }
    }
}

/// Shared precomputed state: parameters plus NTT tables.
#[derive(Debug, Clone)]
pub struct RlweContext {
    params: RlweParams,
    table: Arc<NttTable>,
    /// `Δ = ⌊Q/t⌋`.
    delta: u64,
}

impl RlweContext {
    /// Builds the context, deriving the NTT-friendly prime modulus.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are inconsistent (`t ≥ Q/4`, degree
    /// not a power of two, …).
    pub fn new(params: RlweParams) -> Self {
        let table = Arc::new(NttTable::new(params.degree, params.q_bits));
        let q = table.modulus().value();
        assert!(params.t >= 2 && params.t < q / 4, "plaintext modulus out of range");
        let delta = q / params.t;
        Self { params, table, delta }
    }

    /// The scheme parameters.
    pub fn params(&self) -> &RlweParams {
        &self.params
    }

    /// The NTT table (shared by all polynomials of this context).
    pub fn table(&self) -> &Arc<NttTable> {
        &self.table
    }

    /// The ciphertext modulus `Q`.
    pub fn q(&self) -> u64 {
        self.table.modulus().value()
    }

    /// The plaintext scale `Δ = ⌊Q/t⌋`.
    pub fn delta(&self) -> u64 {
        self.delta
    }

    /// Encodes a signed plaintext value as `round(m·Q/t) mod Q`.
    ///
    /// The exact rational scaling (rather than `Δ·(m mod t)`) keeps the
    /// encoding error below `1/2` even for negative `m`, which matters
    /// because homomorphic plaintext multiplication amplifies any
    /// encoding error by `‖h‖`.
    pub fn encode_plain(&self, m: i64) -> u64 {
        let q = self.q() as i128;
        let t = self.params.t as i128;
        let num = m as i128 * q;
        let rounded = (num + (t >> 1)).div_euclid(t);
        rounded.rem_euclid(q) as u64
    }

    /// Smallest safe modulus-switch target: the switch adds a rounding
    /// noise of about `z·0.5·√(2N/3)` (ternary key, half-unit rounding
    /// errors), which must stay below the switched scale `Q'/(2t)`;
    /// `log2(t) + 12` leaves a ≥8x margin at `N = 2048`.
    pub fn min_switch_log_q2(&self) -> u32 {
        let t_bits = 63 - self.params.t.leading_zeros();
        t_bits + 12
    }

    /// Prepares a public plaintext polynomial (given as unsigned values
    /// `< 2^16`, e.g. hint limbs) in NTT form for repeated
    /// multiplication.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != N`.
    pub fn plaintext_ntt(&self, coeffs: &[u64]) -> Poly {
        assert_eq!(coeffs.len(), self.params.degree, "degree mismatch");
        let m = self.table.modulus();
        let reduced: Vec<u64> = coeffs.iter().map(|&c| m.reduce(c)).collect();
        let mut p = Poly::from_coeffs(Arc::clone(&self.table), reduced);
        p.to_ntt();
        p
    }

    /// Prepares a public plaintext polynomial in Shoup-precomputed NTT
    /// form, for the token-generation hot loop (the hint polynomials
    /// are fixed across queries, so the precomputation amortizes).
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != N`.
    pub fn plaintext_shoup(&self, coeffs: &[u64]) -> tiptoe_math::ntt::ShoupPoly {
        let p = self.plaintext_ntt(coeffs);
        self.table.prepare_shoup(p.data())
    }
}

/// A ternary RLWE secret key.
#[derive(Debug, Clone)]
pub struct RlweSecretKey {
    /// Ternary coefficients (kept for modulus-switched decryption).
    ternary: Vec<i64>,
    /// NTT-domain form (for fast standard decryption).
    s_ntt: Poly,
}

impl RlweSecretKey {
    /// Samples a fresh ternary key.
    pub fn generate<R: Rng + ?Sized>(ctx: &RlweContext, rng: &mut R) -> Self {
        let ternary = ternary_vec(rng, ctx.params.degree);
        let mut s_ntt = Poly::from_signed(Arc::clone(&ctx.table), &ternary);
        s_ntt.to_ntt();
        Self { ternary, s_ntt }
    }

    /// The key's ternary coefficients.
    pub fn ternary(&self) -> &[i64] {
        &self.ternary
    }
}

/// A fresh, *seeded* ciphertext: the uniform component `a` travels as a
/// PRG seed (the SimplePIR/SEAL trick that halves upload size).
#[derive(Debug, Clone)]
pub struct SeededRlweCiphertext {
    /// Seed from which the `a` polynomial expands.
    pub a_seed: u64,
    /// The `b = a·s + e + Δ·m` polynomial, in coefficient domain.
    pub b_coeffs: Vec<u64>,
}

impl SeededRlweCiphertext {
    /// Wire size in bytes: seed + count prefix + `N` 8-byte
    /// coefficients.
    pub fn byte_len(&self) -> u64 {
        12 + 8 * self.b_coeffs.len() as u64
    }

    /// Serializes to the wire format.
    pub fn encode_into(&self, w: &mut WireWriter) {
        w.put_u64(self.a_seed);
        w.put_u64_slice(&self.b_coeffs);
    }

    /// Serializes to a standalone message.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(self.byte_len() as usize);
        self.encode_into(&mut w);
        w.finish()
    }

    /// Parses one ciphertext from a reader.
    ///
    /// # Errors
    ///
    /// Fails on truncation.
    pub fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self { a_seed: r.get_u64()?, b_coeffs: r.get_u64_slice()? })
    }
}

/// An expanded (or evaluated) ciphertext with both components in NTT
/// domain, ready for homomorphic operations.
#[derive(Debug, Clone)]
pub struct RlweCiphertext {
    /// The `a` component (NTT domain).
    pub a: Poly,
    /// The `b` component (NTT domain).
    pub b: Poly,
}

impl RlweCiphertext {
    /// An encryption-of-zero accumulator (both components zero).
    pub fn zero(ctx: &RlweContext) -> Self {
        let mut a = Poly::zero(Arc::clone(&ctx.table));
        let mut b = Poly::zero(Arc::clone(&ctx.table));
        a.to_ntt();
        b.to_ntt();
        Self { a, b }
    }

    /// Wire size in bytes: two polynomials of `N` 8-byte words.
    pub fn byte_len(&self) -> u64 {
        16 * self.a.data().len() as u64
    }
}

/// Expands the uniform `a` polynomial from a seed (coefficient domain).
fn expand_a(ctx: &RlweContext, seed: u64) -> Poly {
    let q = ctx.q();
    let mut rng = seeded_rng(derive_seed(seed, 0x524c_5745));
    let coeffs: Vec<u64> = (0..ctx.params.degree).map(|_| rng.gen_range(0..q)).collect();
    Poly::from_coeffs(Arc::clone(&ctx.table), coeffs)
}

/// Encrypts a plaintext polynomial given by signed coefficients
/// (interpreted modulo `t`): `b = a·s + e + Δ·m`.
///
/// # Panics
///
/// Panics if `m_signed.len() != N`.
pub fn encrypt<R: Rng + ?Sized>(
    ctx: &RlweContext,
    sk: &RlweSecretKey,
    m_signed: &[i64],
    a_seed: u64,
    rng: &mut R,
) -> SeededRlweCiphertext {
    assert_eq!(m_signed.len(), ctx.params.degree, "degree mismatch");
    let modulus = *ctx.table.modulus();
    let mut a = expand_a(ctx, a_seed);
    a.to_ntt();
    let mut b = a.mul_ntt(&sk.s_ntt);
    b.to_coeff();
    let b_coeffs: Vec<u64> = b
        .coeffs()
        .iter()
        .zip(m_signed.iter())
        .map(|(&as_c, &m)| {
            let e = gaussian_i64(rng, ctx.params.sigma);
            let noise_and_msg = modulus.add(modulus.reduce_signed(e), ctx.encode_plain(m));
            modulus.add(as_c, noise_and_msg)
        })
        .collect();
    SeededRlweCiphertext { a_seed, b_coeffs }
}

/// Encrypts the constant polynomial `c` (the shape used for the inner
/// secret-key entries `z_i = Enc2(s_i)`).
pub fn encrypt_scalar<R: Rng + ?Sized>(
    ctx: &RlweContext,
    sk: &RlweSecretKey,
    c: i64,
    a_seed: u64,
    rng: &mut R,
) -> SeededRlweCiphertext {
    let mut m = vec![0i64; ctx.params.degree];
    m[0] = c;
    encrypt(ctx, sk, &m, a_seed, rng)
}

/// Expands a seeded ciphertext into NTT form for evaluation.
pub fn expand(ctx: &RlweContext, ct: &SeededRlweCiphertext) -> RlweCiphertext {
    let mut a = expand_a(ctx, ct.a_seed);
    a.to_ntt();
    let mut b = Poly::from_coeffs(Arc::clone(&ctx.table), ct.b_coeffs.clone());
    b.to_ntt();
    RlweCiphertext { a, b }
}

/// Homomorphic multiply-accumulate by a public polynomial:
/// `acc += h · z`, all operands in NTT domain.
///
/// # Panics
///
/// Panics if `h` is not in NTT domain.
pub fn mul_plain_acc(acc: &mut RlweCiphertext, h_ntt: &Poly, z: &RlweCiphertext) {
    assert_eq!(h_ntt.domain(), Domain::Ntt, "plaintext must be in NTT domain");
    acc.a.mul_acc_ntt(h_ntt, &z.a);
    acc.b.mul_acc_ntt(h_ntt, &z.b);
}

/// Homomorphic addition: `acc += z`.
pub fn add_assign(acc: &mut RlweCiphertext, z: &RlweCiphertext) {
    acc.a.add_assign(&z.a);
    acc.b.add_assign(&z.b);
}

/// Decrypts to centered (signed) plaintext coefficients modulo `t`.
pub fn decrypt(ctx: &RlweContext, sk: &RlweSecretKey, ct: &RlweCiphertext) -> Vec<i64> {
    let mut y = ct.b.clone();
    let a_s = ct.a.mul_ntt(&sk.s_ntt);
    y.sub_assign(&a_s);
    y.to_coeff();
    let q = ctx.q() as u128;
    let t = ctx.params.t as u128;
    y.coeffs()
        .iter()
        .map(|&c| {
            let v = ((c as u128 * t + q / 2) / q) as u64 % ctx.params.t;
            tiptoe_math::zq::center(v, ctx.params.t)
        })
        .collect()
}

/// Measures the remaining noise budget (bits) of a ciphertext whose
/// plaintext is known. Returns `log2(Δ/2) - log2(max |noise|)`;
/// negative values mean decryption already failed.
pub fn noise_budget_bits(
    ctx: &RlweContext,
    sk: &RlweSecretKey,
    ct: &RlweCiphertext,
    expected_signed: &[i64],
) -> f64 {
    let modulus = *ctx.table.modulus();
    let mut y = ct.b.clone();
    let a_s = ct.a.mul_ntt(&sk.s_ntt);
    y.sub_assign(&a_s);
    y.to_coeff();
    let mut max_noise = 0u64;
    for (&c, &m) in y.coeffs().iter().zip(expected_signed.iter()) {
        let expected = ctx.encode_plain(m);
        let noise = modulus.center(modulus.sub(c, expected)).unsigned_abs();
        max_noise = max_noise.max(noise);
    }
    let budget = (ctx.delta / 2) as f64;
    (budget.log2()) - (max_noise.max(1) as f64).log2()
}

/// A modulus-switched ciphertext over `Z_{2^log_q2}`, in coefficient
/// domain — this is the compact form that travels to the client.
#[derive(Debug, Clone)]
pub struct SwitchedCiphertext {
    /// `a` coefficients modulo `2^log_q2`.
    pub a: Vec<u64>,
    /// `b` coefficients modulo `2^log_q2`.
    pub b: Vec<u64>,
    /// log2 of the switched modulus.
    pub log_q2: u32,
}

impl SwitchedCiphertext {
    /// Wire size in bytes: a width byte plus two bit-packed
    /// coefficient vectors of `log_q2` bits per value.
    pub fn byte_len(&self) -> u64 {
        let packed = |n: u64| 5 + (n * self.log_q2 as u64).div_ceil(8);
        1 + packed(self.a.len() as u64) + packed(self.b.len() as u64)
    }

    /// Serializes to the wire format.
    pub fn encode_into(&self, w: &mut WireWriter) {
        w.put_u8(self.log_q2 as u8);
        w.put_packed_u64(&self.a, self.log_q2);
        w.put_packed_u64(&self.b, self.log_q2);
    }

    /// Serializes to a standalone message.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(self.byte_len() as usize);
        self.encode_into(&mut w);
        w.finish()
    }

    /// Parses one switched ciphertext from a reader.
    ///
    /// # Errors
    ///
    /// Fails on truncation or an invalid modulus width.
    pub fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let log_q2 = r.get_u8()? as u32;
        if !(2..=63).contains(&log_q2) {
            return Err(WireError::Invalid("switched modulus width"));
        }
        let a = r.get_packed_u64()?;
        let b = r.get_packed_u64()?;
        Ok(Self { a, b, log_q2 })
    }
}

/// Switches a ciphertext from modulus `Q` down to `2^log_q2`
/// (`c' = round(c · 2^log_q2 / Q)`), shrinking the download at the cost
/// of a small additive rounding noise.
///
/// # Panics
///
/// Panics if `log_q2` is not in `(log2 t + 2, 63]`.
pub fn mod_switch(ctx: &RlweContext, ct: &RlweCiphertext, log_q2: u32) -> SwitchedCiphertext {
    let t_bits = 63 - ctx.params.t.leading_zeros();
    assert!(log_q2 > t_bits + 2 && log_q2 <= 63, "switched modulus out of range");
    let q = ctx.q() as u128;
    let q2 = 1u128 << log_q2;
    let mask = (q2 - 1) as u64;
    let switch = |poly: &Poly| -> Vec<u64> {
        let mut p = poly.clone();
        p.to_coeff();
        p.coeffs()
            .iter()
            .map(|&c| (((c as u128 * q2 + q / 2) / q) as u64) & mask)
            .collect()
    };
    SwitchedCiphertext { a: switch(&ct.a), b: switch(&ct.b), log_q2 }
}

/// Decrypts a modulus-switched ciphertext. The negacyclic product
/// `a·s` is computed schoolbook over `Z_{2^log_q2}` (client-side cost:
/// `N²` word operations, a few milliseconds at `N = 2048`).
pub fn decrypt_switched(
    ctx: &RlweContext,
    sk: &RlweSecretKey,
    ct: &SwitchedCiphertext,
) -> Vec<i64> {
    let n = ctx.params.degree;
    assert_eq!(ct.a.len(), n, "degree mismatch");
    let mask = if ct.log_q2 == 63 { (1u64 << 63) - 1 } else { (1u64 << ct.log_q2) - 1 };
    // Negacyclic a·s with ternary s: coefficient k of a·s is
    // sum_{i+j=k} a_i s_j - sum_{i+j=k+n} a_i s_j.
    let mut a_s = vec![0u64; n];
    for (j, &s_j) in sk.ternary.iter().enumerate() {
        if s_j == 0 {
            continue;
        }
        if s_j == 1 {
            for i in 0..n - j {
                a_s[i + j] = a_s[i + j].wrapping_add(ct.a[i]);
            }
            for i in n - j..n {
                a_s[i + j - n] = a_s[i + j - n].wrapping_sub(ct.a[i]);
            }
        } else {
            for i in 0..n - j {
                a_s[i + j] = a_s[i + j].wrapping_sub(ct.a[i]);
            }
            for i in n - j..n {
                a_s[i + j - n] = a_s[i + j - n].wrapping_add(ct.a[i]);
            }
        }
    }
    let q2 = 1u128 << ct.log_q2;
    let t = ctx.params.t as u128;
    ct.b
        .iter()
        .zip(a_s.iter())
        .map(|(&b, &as_c)| {
            let y = (b.wrapping_sub(as_c) & mask) as u128;
            let v = ((y * t + q2 / 2) >> ct.log_q2) as u64 % ctx.params.t;
            tiptoe_math::zq::center(v, ctx.params.t)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiptoe_math::rng::seeded_rng;

    fn ctx() -> RlweContext {
        RlweContext::new(RlweParams::insecure_test())
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let ctx = ctx();
        let mut rng = seeded_rng(1);
        let sk = RlweSecretKey::generate(&ctx, &mut rng);
        let m: Vec<i64> = (0..ctx.params().degree).map(|i| (i as i64 % 37) - 18).collect();
        let ct = encrypt(&ctx, &sk, &m, 7, &mut rng);
        let got = decrypt(&ctx, &sk, &expand(&ctx, &ct));
        assert_eq!(got, m);
    }

    #[test]
    fn scalar_encryption_puts_value_in_constant_term() {
        let ctx = ctx();
        let mut rng = seeded_rng(2);
        let sk = RlweSecretKey::generate(&ctx, &mut rng);
        for c in [-1i64, 0, 1, 5] {
            let ct = encrypt_scalar(&ctx, &sk, c, 13, &mut rng);
            let got = decrypt(&ctx, &sk, &expand(&ctx, &ct));
            assert_eq!(got[0], c);
            assert!(got[1..].iter().all(|&x| x == 0));
        }
    }

    #[test]
    fn homomorphic_plain_mul_matches_plaintext_product() {
        // Enc(s_i) * h(x) decrypts to s_i * h(x).
        let ctx = ctx();
        let mut rng = seeded_rng(3);
        let sk = RlweSecretKey::generate(&ctx, &mut rng);
        let n = ctx.params().degree;
        let h_coeffs: Vec<u64> = (0..n as u64).map(|i| (i * 31 + 5) % 1000).collect();
        let h = ctx.plaintext_ntt(&h_coeffs);

        let z = expand(&ctx, &encrypt_scalar(&ctx, &sk, -1, 21, &mut rng));
        let mut acc = RlweCiphertext::zero(&ctx);
        mul_plain_acc(&mut acc, &h, &z);
        let got = decrypt(&ctx, &sk, &acc);
        let want: Vec<i64> = h_coeffs.iter().map(|&c| -(c as i64)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn accumulated_products_match_linear_combination() {
        // sum_i s_i * h_i(x): the exact computation underhood performs.
        let ctx = ctx();
        let mut rng = seeded_rng(4);
        let sk = RlweSecretKey::generate(&ctx, &mut rng);
        let n = ctx.params().degree;
        let k = 32;
        let secrets: Vec<i64> = (0..k).map(|_| tiptoe_math::sample::ternary_i64(&mut rng)).collect();
        let columns: Vec<Vec<u64>> = (0..k)
            .map(|c| (0..n).map(|r| ((r * 13 + c * 7 + 1) % 60000) as u64).collect())
            .collect();

        let mut acc = RlweCiphertext::zero(&ctx);
        for (i, col) in columns.iter().enumerate() {
            let z = expand(&ctx, &encrypt_scalar(&ctx, &sk, secrets[i], 100 + i as u64, &mut rng));
            let h = ctx.plaintext_ntt(col);
            mul_plain_acc(&mut acc, &h, &z);
        }
        let got = decrypt(&ctx, &sk, &acc);
        let want: Vec<i64> = (0..n)
            .map(|r| secrets.iter().zip(columns.iter()).map(|(&s, col)| s * col[r] as i64).sum())
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn noise_budget_positive_after_accumulation() {
        let ctx = RlweContext::new(RlweParams::production());
        let mut rng = seeded_rng(5);
        let sk = RlweSecretKey::generate(&ctx, &mut rng);
        let n = ctx.params().degree;
        let k = 64; // Scaled-down accumulation depth (full depth tested in underhood).
        let mut acc = RlweCiphertext::zero(&ctx);
        let mut want = vec![0i64; n];
        for i in 0..k {
            let s_i = tiptoe_math::sample::ternary_i64(&mut rng);
            let col: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1u64 << 16)).collect();
            let z = expand(&ctx, &encrypt_scalar(&ctx, &sk, s_i, i as u64, &mut rng));
            let h = ctx.plaintext_ntt(&col);
            mul_plain_acc(&mut acc, &h, &z);
            for (w, &c) in want.iter_mut().zip(col.iter()) {
                *w += s_i * c as i64;
            }
        }
        let budget = noise_budget_bits(&ctx, &sk, &acc, &want);
        assert!(budget > 4.0, "noise budget too low: {budget}");
        assert_eq!(decrypt(&ctx, &sk, &acc), want);
    }

    #[test]
    fn mod_switch_preserves_plaintext() {
        let ctx = RlweContext::new(RlweParams::production());
        let mut rng = seeded_rng(6);
        let sk = RlweSecretKey::generate(&ctx, &mut rng);
        let n = ctx.params().degree;
        let m: Vec<i64> = (0..n).map(|i| ((i as i64 * 7919) % (1 << 27)) - (1 << 26)).collect();
        let ct = expand(&ctx, &encrypt(&ctx, &sk, &m, 3, &mut rng));
        let switched = mod_switch(&ctx, &ct, 44);
        let got = decrypt_switched(&ctx, &sk, &switched);
        assert_eq!(got, m);
        assert!(switched.byte_len() < ct.byte_len(), "switching should shrink the wire size");
    }

    #[test]
    fn mod_switch_after_accumulation_still_decrypts() {
        let ctx = RlweContext::new(RlweParams::production());
        let mut rng = seeded_rng(7);
        let sk = RlweSecretKey::generate(&ctx, &mut rng);
        let n = ctx.params().degree;
        let mut acc = RlweCiphertext::zero(&ctx);
        let mut want = vec![0i64; n];
        for i in 0..32 {
            let s_i = tiptoe_math::sample::ternary_i64(&mut rng);
            let col: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1u64 << 16)).collect();
            let z = expand(&ctx, &encrypt_scalar(&ctx, &sk, s_i, 50 + i, &mut rng));
            let h = ctx.plaintext_ntt(&col);
            mul_plain_acc(&mut acc, &h, &z);
            for (w, &c) in want.iter_mut().zip(col.iter()) {
                *w += s_i * c as i64;
            }
        }
        let switched = mod_switch(&ctx, &acc, 44);
        assert_eq!(decrypt_switched(&ctx, &sk, &switched), want);
    }

    #[test]
    fn seeded_ciphertext_halves_upload() {
        let ctx = ctx();
        let mut rng = seeded_rng(8);
        let sk = RlweSecretKey::generate(&ctx, &mut rng);
        let ct = encrypt_scalar(&ctx, &sk, 1, 9, &mut rng);
        let expanded = expand(&ctx, &ct);
        // Seed + framing vs two full polynomials.
        assert!(ct.byte_len() <= expanded.byte_len() / 2 + 16);
    }

    #[test]
    fn seeded_ciphertext_wire_roundtrip() {
        let ctx = ctx();
        let mut rng = seeded_rng(20);
        let sk = RlweSecretKey::generate(&ctx, &mut rng);
        let ct = encrypt_scalar(&ctx, &sk, -1, 5, &mut rng);
        let bytes = ct.encode();
        assert_eq!(bytes.len() as u64, ct.byte_len());
        let mut r = tiptoe_math::wire::WireReader::new(&bytes);
        let back = SeededRlweCiphertext::decode_from(&mut r).expect("decodes");
        r.finish().expect("consumed");
        assert_eq!(back.a_seed, ct.a_seed);
        assert_eq!(back.b_coeffs, ct.b_coeffs);
    }

    #[test]
    fn switched_ciphertext_wire_roundtrip() {
        let ctx = RlweContext::new(RlweParams::production());
        let mut rng = seeded_rng(21);
        let sk = RlweSecretKey::generate(&ctx, &mut rng);
        let m = vec![3i64; ctx.params().degree];
        let ct = expand(&ctx, &encrypt(&ctx, &sk, &m, 6, &mut rng));
        let switched = mod_switch(&ctx, &ct, 44);
        let bytes = switched.encode();
        assert_eq!(bytes.len() as u64, switched.byte_len());
        let mut r = tiptoe_math::wire::WireReader::new(&bytes);
        let back = SwitchedCiphertext::decode_from(&mut r).expect("decodes");
        r.finish().expect("consumed");
        assert_eq!(back.a, switched.a);
        assert_eq!(back.b, switched.b);
        assert_eq!(decrypt_switched(&ctx, &sk, &back), m);
    }

    #[test]
    fn wrong_key_fails_to_decrypt() {
        let ctx = ctx();
        let mut rng = seeded_rng(9);
        let sk = RlweSecretKey::generate(&ctx, &mut rng);
        let other = RlweSecretKey::generate(&ctx, &mut rng);
        let m: Vec<i64> = (0..ctx.params().degree).map(|i| i as i64 % 100).collect();
        let ct = expand(&ctx, &encrypt(&ctx, &sk, &m, 10, &mut rng));
        assert_ne!(decrypt(&ctx, &other, &ct), m);
    }
}
