//! The data-loading batch jobs (paper §3.2: *Embed*, *Cluster*,
//! *Preprocess cryptographic operations*; §7 for the concrete
//! pipeline).
//!
//! Given a corpus and an embedding model, this module produces every
//! artifact the two services and the client need:
//!
//! 1. **Embed** every document (the paper runs a GPU cluster; we run
//!    the synthetic model) and L2-normalize.
//! 2. **Fit PCA** on a subsample and project all embeddings down
//!    (768 → 192 for text).
//! 3. **Cluster** the reduced embeddings (balanced k-means with 20%
//!    dual assignment).
//! 4. **Lay out the ranking matrix** (Figure 3): one column block of
//!    `d` integers per cluster, one row per member slot, padded to the
//!    largest cluster.
//! 5. **Batch and compress URLs** in cluster-major member order so
//!    that the matrix row index of a document directly addresses its
//!    URL batch (`batch = batch_start[cluster] + row / urls_per_batch`)
//!    — this keeps the client's metadata `O(C)` instead of `O(N)`.
//!
//! Cryptographic preprocessing (hints and their NTT-ready limb form)
//! happens service-side in [`crate::ranking`] and [`crate::url`].

use std::time::{Duration, Instant};

use tiptoe_cluster::{cluster_documents, Clustering, CompressedCentroids};
use tiptoe_corpus::synth::Corpus;
use tiptoe_corpus::tzip;
use tiptoe_embed::pca::Pca;
use tiptoe_embed::Embedder;
use tiptoe_math::matrix::Mat;

use crate::config::TiptoeConfig;

/// Everything the client must download and cache before its first
/// query (§3.2: the embedding model, the cluster centroids, associated
/// metadata, and the PCA projection).
#[derive(Debug, Clone)]
pub struct ClientMetadata {
    /// Reduced-dimension cluster centroids (after decompression).
    pub centroids: Vec<Vec<f32>>,
    /// Wire size of the compressed centroid bundle.
    pub centroid_bytes: u64,
    /// Member count per cluster (including dual-assigned copies).
    pub cluster_sizes: Vec<u32>,
    /// First URL-batch index per cluster.
    pub batch_start: Vec<u32>,
    /// URLs per batch (fixed, so batch lookup is arithmetic).
    pub urls_per_batch: u32,
    /// PCA projection download size.
    pub pca_bytes: u64,
    /// Embedding-model download size.
    pub model_bytes: u64,
    /// Padded rows of the ranking matrix (= scores downloaded/query).
    pub rows: usize,
    /// Reduced embedding dimension `d`.
    pub d: usize,
    /// Number of clusters `C`.
    pub c: usize,
    /// Total number of URL batches (PIR records).
    pub num_batches: usize,
}

impl ClientMetadata {
    /// Total one-time client download (model + centroids + PCA),
    /// excluding per-query traffic.
    pub fn setup_download_bytes(&self) -> u64 {
        self.model_bytes + self.centroid_bytes + self.pca_bytes
    }

    /// The ranking upload dimension `m = d·C`.
    pub fn ranking_upload_dim(&self) -> usize {
        self.d * self.c
    }

    /// Batch index holding the URL of the document at `row` within
    /// `cluster`.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range or `row` exceeds the
    /// cluster's member count.
    pub fn batch_of(&self, cluster: usize, row: usize) -> usize {
        assert!(cluster < self.c, "cluster out of range");
        assert!(
            row < self.cluster_sizes[cluster] as usize,
            "row {row} beyond cluster size {}",
            self.cluster_sizes[cluster]
        );
        self.batch_start[cluster] as usize + row / self.urls_per_batch as usize
    }
}

/// One compressed URL batch (a PIR record) plus its members.
///
/// The payload carries `"<doc_id> <url>"` lines so a client that
/// retrieves the record privately can attribute each URL to its
/// document (the paper's metadata "could potentially also include
/// web-page titles, summaries, or image captions", §5).
#[derive(Debug, Clone)]
pub struct CompressedUrlBatch {
    /// tzip-compressed newline-joined `"<doc_id> <url>"` lines.
    pub compressed: Vec<u8>,
    /// Document IDs, in row order (server-side convenience copy).
    pub doc_ids: Vec<u32>,
}

impl CompressedUrlBatch {
    /// Builds a batch from `(doc_id, url)` pairs.
    pub fn build(entries: &[(u32, &str)]) -> Self {
        let blob: String = entries
            .iter()
            .map(|(d, u)| format!("{d} {u}"))
            .collect::<Vec<_>>()
            .join("\n");
        Self {
            compressed: tzip::compress(blob.as_bytes()),
            doc_ids: entries.iter().map(|(d, _)| *d).collect(),
        }
    }

    /// Decodes a (possibly zero-padded) payload into `(doc_id, url)`
    /// pairs. This is the exact routine a client runs on a PIR-fetched
    /// record.
    ///
    /// # Errors
    ///
    /// Fails if the payload is corrupt.
    pub fn decode_payload(payload: &[u8]) -> Result<Vec<(u32, String)>, tzip::TzipError> {
        let raw = tzip::decompress(payload)?;
        let text = String::from_utf8_lossy(&raw);
        Ok(text
            .split('\n')
            .filter_map(|line| {
                let (id, url) = line.split_once(' ')?;
                Some((id.parse().ok()?, url.to_owned()))
            })
            .collect())
    }

    /// Decodes this batch's own payload.
    ///
    /// # Errors
    ///
    /// Fails if the payload is corrupt.
    pub fn decode(&self) -> Result<Vec<(u32, String)>, tzip::TzipError> {
        Self::decode_payload(&self.compressed)
    }
}

/// Per-stage timings of the batch jobs (the rows of Table 7's "Index
/// preprocessing" block, minus the crypto stage measured separately).
#[derive(Debug, Clone, Default)]
pub struct IndexingReport {
    /// Document embedding time.
    pub embed: Duration,
    /// PCA fit + projection time.
    pub pca: Duration,
    /// Clustering time.
    pub cluster: Duration,
    /// Quantization + matrix layout time.
    pub layout: Duration,
    /// URL batching + compression time.
    pub urls: Duration,
    /// Cryptographic preprocessing (filled in by the services).
    pub crypto: Duration,
}

impl IndexingReport {
    /// Total batch time.
    pub fn total(&self) -> Duration {
        self.embed + self.pca + self.cluster + self.layout + self.urls + self.crypto
    }

    /// Core-seconds per document (paper: "0.01–0.02 core-seconds per
    /// document").
    pub fn core_seconds_per_doc(&self, num_docs: usize) -> f64 {
        self.total().as_secs_f64() / num_docs.max(1) as f64
    }
}

/// The output of the batch jobs.
pub struct IndexArtifacts {
    /// Fitted PCA (the client downloads its projection).
    pub pca: Pca,
    /// The clustering.
    pub clustering: Clustering,
    /// Expanded member list in cluster-major order (dual-assigned
    /// documents appear once per cluster).
    pub order: Vec<u32>,
    /// Start offset of each cluster within `order`.
    pub cluster_offsets: Vec<u32>,
    /// The ranking matrix (Figure 3): `rows × d·C` entries of `Z_p`.
    pub rank_matrix: Mat<u32>,
    /// Compressed URL batches in cluster-major order.
    pub url_batches: Vec<CompressedUrlBatch>,
    /// Client-side metadata bundle.
    pub meta: ClientMetadata,
    /// Reduced, normalized document embeddings (kept for baselines and
    /// the encrypted-corpus extension; a production server would drop
    /// them after layout).
    pub reduced_embeddings: Vec<Vec<f32>>,
    /// Stage timings.
    pub report: IndexingReport,
}

/// Runs the batch pipeline.
///
/// # Panics
///
/// Panics if the corpus is empty or the configuration is inconsistent.
pub fn run_batch_jobs<E: Embedder>(
    config: &TiptoeConfig,
    embedder: &E,
    corpus: &Corpus,
) -> IndexArtifacts {
    assert_eq!(embedder.dim(), config.d_embed, "embedder dimension mismatch");
    let t0 = Instant::now();
    let raw: Vec<Vec<f32>> = corpus.docs.iter().map(|d| embedder.embed_text(&d.text)).collect();
    let embed_time = t0.elapsed();
    run_batch_jobs_from_embeddings(config, raw, embed_time, corpus, embedder.model_bytes())
}

/// Runs the batch pipeline over precomputed document embeddings.
///
/// This is the entry point for media whose server-side embeddings do
/// not come from the client's query tower — e.g. text-to-image search,
/// where the index holds CLIP image latents while clients embed text
/// (§7). `model_bytes` is the size of the query-side model the client
/// must download.
///
/// # Panics
///
/// Panics if the corpus is empty or the configuration is inconsistent.
pub fn run_batch_jobs_from_embeddings(
    config: &TiptoeConfig,
    raw: Vec<Vec<f32>>,
    embed_time: Duration,
    corpus: &Corpus,
    model_bytes: u64,
) -> IndexArtifacts {
    config.validate();
    assert!(!corpus.docs.is_empty(), "empty corpus");
    assert_eq!(raw.len(), corpus.docs.len(), "one embedding per document");
    assert!(raw.iter().all(|e| e.len() == config.d_embed), "embedding dimension mismatch");
    let mut report = IndexingReport { embed: embed_time, ..Default::default() };

    // 2. PCA (fit on a subsample, project everything, re-normalize).
    let t0 = Instant::now();
    let sample: Vec<Vec<f32>> = raw.iter().take(config.pca_sample).cloned().collect();
    let pca = Pca::fit(&sample, config.d_reduced, config.seed ^ 0x9ca);
    let mut reduced: Vec<Vec<f32>> = raw.iter().map(|e| pca.project(e)).collect();
    for e in reduced.iter_mut() {
        tiptoe_embed::vector::normalize(e);
    }
    report.pca = t0.elapsed();

    // 3. Cluster, then order each cluster's members semantically so
    //    that chunked URL batches group related documents (§5).
    let t0 = Instant::now();
    let mut clustering = cluster_documents(&reduced, &config.cluster);
    for (ci, members) in clustering.members.iter_mut().enumerate() {
        *members =
            tiptoe_cluster::semantic_order(members, &reduced, &clustering.centroids[ci]);
    }
    report.cluster = t0.elapsed();

    // 4. Quantize + matrix layout (Figure 3).
    let t0 = Instant::now();
    let quant = config.quantizer();
    let c = clustering.num_clusters();
    let d = config.d_reduced;
    let rows = clustering.max_cluster_size();
    let mut order: Vec<u32> = Vec::with_capacity(clustering.total_assignments());
    let mut cluster_offsets = Vec::with_capacity(c);
    let mut rank_matrix: Mat<u32> = Mat::zeros(rows, d * c);
    for (ci, members) in clustering.members.iter().enumerate() {
        cluster_offsets.push(order.len() as u32);
        for (row, &doc) in members.iter().enumerate() {
            order.push(doc);
            let q = quant.to_zp(&reduced[doc as usize]);
            rank_matrix.row_mut(row)[ci * d..ci * d + d].copy_from_slice(&q);
        }
    }
    report.layout = t0.elapsed();

    // 5. URL batching, cluster-major with a fixed batch arity so the
    //    client's row→batch lookup is arithmetic.
    let t0 = Instant::now();
    let mut url_batches = Vec::new();
    let mut batch_start = Vec::with_capacity(c);
    for members in &clustering.members {
        batch_start.push(url_batches.len() as u32);
        for chunk in members.chunks(config.urls_per_batch.max(1)) {
            let entries: Vec<(u32, &str)> = chunk
                .iter()
                .map(|&doc| (doc, corpus.docs[doc as usize].url.as_str()))
                .collect();
            url_batches.push(CompressedUrlBatch::build(&entries));
        }
    }
    report.urls = t0.elapsed();

    let compressed = CompressedCentroids::compress(&clustering.centroids);
    let meta = ClientMetadata {
        centroids: compressed.decompress(),
        centroid_bytes: compressed.byte_len(),
        cluster_sizes: clustering.members.iter().map(|m| m.len() as u32).collect(),
        batch_start,
        urls_per_batch: config.urls_per_batch as u32,
        pca_bytes: pca.projection_bytes(),
        model_bytes,
        rows,
        d,
        c,
        num_batches: url_batches.len(),
    };

    IndexArtifacts {
        pca,
        clustering,
        order,
        cluster_offsets: cluster_offsets.clone(),
        rank_matrix,
        url_batches,
        meta,
        reduced_embeddings: reduced,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiptoe_corpus::synth::{generate, CorpusConfig};
    use tiptoe_embed::text::TextEmbedder;

    fn artifacts() -> (IndexArtifacts, Corpus) {
        let corpus = generate(&CorpusConfig::small(300, 5), 0);
        let config = TiptoeConfig::test_small(300, 5);
        let embedder = TextEmbedder::new(config.d_embed, 5, 0);
        (run_batch_jobs(&config, &embedder, &corpus), corpus)
    }

    #[test]
    fn matrix_shape_matches_figure_3() {
        let (a, _) = artifacts();
        let c = a.clustering.num_clusters();
        assert_eq!(a.rank_matrix.cols(), a.meta.d * c);
        assert_eq!(a.rank_matrix.rows(), a.meta.rows);
        assert_eq!(a.meta.rows, a.clustering.max_cluster_size());
    }

    #[test]
    fn matrix_columns_hold_quantized_members() {
        let (a, corpus) = artifacts();
        let config = TiptoeConfig::test_small(300, 5);
        let quant = config.quantizer();
        let d = a.meta.d;
        // Spot-check the first member of each cluster.
        for (ci, members) in a.clustering.members.iter().enumerate() {
            let Some(&doc) = members.first() else { continue };
            let expected = quant.to_zp(&a.reduced_embeddings[doc as usize]);
            assert_eq!(&a.rank_matrix.row(0)[ci * d..ci * d + d], &expected[..]);
        }
        drop(corpus);
    }

    #[test]
    fn padding_rows_are_zero() {
        let (a, _) = artifacts();
        let d = a.meta.d;
        for (ci, members) in a.clustering.members.iter().enumerate() {
            if members.len() < a.meta.rows {
                let row = members.len(); // First padding row.
                assert!(
                    a.rank_matrix.row(row)[ci * d..ci * d + d].iter().all(|&x| x == 0),
                    "cluster {ci} padding not zero"
                );
            }
        }
    }

    #[test]
    fn url_batches_align_with_member_order() {
        let (a, corpus) = artifacts();
        for (ci, members) in a.clustering.members.iter().enumerate() {
            for (row, &doc) in members.iter().enumerate() {
                let batch_idx = a.meta.batch_of(ci, row);
                let decoded = a.url_batches[batch_idx].decode().expect("decodes");
                let pos_in_batch = row % a.meta.urls_per_batch as usize;
                let (got_doc, got_url) = &decoded[pos_in_batch];
                assert_eq!(*got_doc, doc);
                assert_eq!(*got_url, corpus.docs[doc as usize].url);
            }
        }
    }

    #[test]
    fn metadata_is_compact() {
        let (a, _) = artifacts();
        // O(C) metadata: sizes + batch starts are one u32 per cluster.
        assert_eq!(a.meta.cluster_sizes.len(), a.meta.c);
        assert_eq!(a.meta.batch_start.len(), a.meta.c);
        assert!(a.meta.centroid_bytes < (a.meta.c * a.meta.d * 4) as u64);
    }

    #[test]
    fn dual_assignment_expands_order() {
        let (a, corpus) = artifacts();
        assert!(a.order.len() > corpus.docs.len());
        assert!(a.order.len() <= corpus.docs.len() * 6 / 5 + 1);
    }

    #[test]
    fn report_has_nonzero_stages() {
        let (a, _) = artifacts();
        assert!(a.report.embed > Duration::ZERO);
        assert!(a.report.total() > Duration::ZERO);
        assert!(a.report.core_seconds_per_doc(300) > 0.0);
    }
}
