//! Analytic cost models behind the paper's comparisons: Coeus
//! query-scoring (Table 6), client-side search indexes (Table 6), the
//! web-scale extrapolation (Figure 8, §8.5), the optimization ablation
//! cost axes (Figure 9), and the non-colluding two-server estimate
//! (§9).
//!
//! Every constant cites where in the paper it comes from.

/// The paper's corpus sizes.
pub const C4_DOCS: u64 = 364_000_000;
/// LAION-400M image count.
pub const LAION_DOCS: u64 = 400_000_000;
/// Wikipedia article count in Coeus's evaluation.
pub const WIKIPEDIA_DOCS: u64 = 5_000_000;

/// AWS list prices used in Table 6.
pub mod aws {
    /// r5.xlarge (4 vCPU): $0.252/hour.
    pub const R5_XLARGE_HOURLY: f64 = 0.252;
    /// r5.8xlarge (32 vCPU): $2.016/hour.
    pub const R5_8XLARGE_HOURLY: f64 = 2.016;
    /// Egress bandwidth: $0.09/GiB.
    pub const EGRESS_PER_GIB: f64 = 0.09;
    /// Per-core-hour rate implied by Table 6's Coeus row
    /// ($0.059/query at 12 900 core-s): Coeus's reported costs come
    /// from its own deployment, not r5 list prices.
    pub const COEUS_PER_CORE_HOUR: f64 = 0.059 * 3600.0 / 12_900.0;

    /// Dollar cost of `core_seconds` of compute (r5 family pricing is
    /// uniform per vCPU-hour) plus `egress_bytes` of download.
    pub fn query_cost(core_seconds: f64, egress_bytes: u64) -> f64 {
        let per_core_hour = R5_XLARGE_HOURLY / 4.0;
        core_seconds / 3600.0 * per_core_hour
            + egress_bytes as f64 / (1u64 << 30) as f64 * EGRESS_PER_GIB
    }
}

/// Coeus query-scoring cost model (§8.4).
///
/// "We estimate that, searching over N documents, Coeus's
/// query-scoring requires 10.66·N bytes of communication" and, scaling
/// the reported 12 900 core-seconds on 5M Wikipedia articles linearly,
/// `12 900 · N / 5M` core-seconds.
#[derive(Debug, Clone, Copy)]
pub struct CoeusModel;

impl CoeusModel {
    /// Per-query communication in bytes.
    pub fn comm_bytes(n_docs: u64) -> u64 {
        (10.66 * n_docs as f64) as u64
    }

    /// Per-query server compute in core-seconds.
    pub fn core_seconds(n_docs: u64) -> f64 {
        12_900.0 * n_docs as f64 / WIKIPEDIA_DOCS as f64
    }

    /// Per-query AWS cost in dollars, at the per-core rate implied by
    /// Coeus's own reported numbers (Table 6).
    pub fn aws_cost(n_docs: u64) -> f64 {
        Self::core_seconds(n_docs) / 3600.0 * aws::COEUS_PER_CORE_HOUR
            + Self::comm_bytes(n_docs) as f64 / (1u64 << 30) as f64 * aws::EGRESS_PER_GIB
    }
}

/// Client-side-index baselines (Table 6 and §8.3).
#[derive(Debug, Clone, Copy)]
pub struct ClientIndexModel;

impl ClientIndexModel {
    /// Bytes to store Tiptoe's own index locally: quantized embeddings
    /// (d × 4 bits) plus compressed URLs (~22 B each). The paper
    /// reports 48 GiB for text (364M docs, d = 192) and 98 GiB for
    /// images (400M docs, d = 384).
    pub fn tiptoe_index_bytes(n_docs: u64, d: usize) -> u64 {
        let embeddings = n_docs * (d as u64) / 2; // 4 bits per dimension
        let urls = n_docs * 22;
        let per_doc_overhead = n_docs * 8; // ids + cluster bookkeeping
        embeddings + urls + per_doc_overhead
    }

    /// BM25 index estimate: the paper scales the Anserini MS MARCO
    /// index to 4.6 TiB at C4 size (≈13.5 KiB/doc).
    pub fn bm25_index_bytes(n_docs: u64) -> u64 {
        (n_docs as f64 * (4.6 * (1u64 << 40) as f64 / C4_DOCS as f64)) as u64
    }

    /// ColBERT index estimate: 6.4 TiB at C4 size (≈18.9 KiB/doc);
    /// PLAID compresses this to ≈0.9 TiB.
    pub fn colbert_index_bytes(n_docs: u64) -> u64 {
        (n_docs as f64 * (6.4 * (1u64 << 40) as f64 / C4_DOCS as f64)) as u64
    }

    /// Compressed-URL-only lower bound: 7.4 GiB at C4 size.
    pub fn url_only_bytes(n_docs: u64) -> u64 {
        (n_docs as f64 * (7.4 * (1u64 << 30) as f64 / C4_DOCS as f64)) as u64
    }
}

/// The Figure 8 / §8.5 scaling model for Tiptoe itself.
///
/// Shapes (paper §4.2, §6): with `N` documents, embedding dimension
/// `d`, and `C ≈ √(N·d)/d` clusters chosen to balance the matrix,
///
/// - server ranking compute ≈ `2·N·d·1.2` word operations (dual
///   assignment costs 1.2×), plus the URL-service scan ≈ `22·N` bytes
///   touched;
/// - online communication ≈ upload `d·C` + download `N·1.2/C` words
///   (+ the PIR query/answer);
/// - token communication ≈ `n` outer ciphertexts up plus
///   `O(rows)` down.
#[derive(Debug, Clone, Copy)]
pub struct ScalingModel {
    /// Reduced embedding dimension.
    pub d: usize,
    /// Word ops per core-second, calibrated from a measured run
    /// (defaults to 2·10⁹, this machine's measured MAC throughput).
    pub ops_per_core_second: f64,
    /// Compressed bytes per URL.
    pub url_bytes: f64,
    /// Inner secret dimension (ranking).
    pub n_lwe: usize,
}

impl ScalingModel {
    /// The paper's text configuration.
    pub fn text() -> Self {
        Self { d: 192, ops_per_core_second: 2e9, url_bytes: 22.0, n_lwe: 2048 }
    }

    /// The paper's image configuration.
    pub fn image() -> Self {
        Self { d: 384, ops_per_core_second: 2e9, url_bytes: 22.0, n_lwe: 2048 }
    }

    /// Cluster count `C ≈ √(N/d)·(1/1)` — the paper's "if the
    /// dimension d grows large, we can take C ≈ √(N/d)" (§4.2).
    pub fn clusters(&self, n_docs: u64) -> u64 {
        ((n_docs as f64 / self.d as f64).sqrt().ceil() as u64).max(1)
    }

    /// Padded documents per cluster (with the 1.2× dual assignment).
    pub fn rows(&self, n_docs: u64) -> u64 {
        (n_docs as f64 * 1.2 / self.clusters(n_docs) as f64).ceil() as u64
    }

    /// Ranking upload dimension `m = d·C`.
    pub fn upload_dim(&self, n_docs: u64) -> u64 {
        self.d as u64 * self.clusters(n_docs)
    }

    /// Per-query server compute in core-seconds (ranking scan + URL
    /// scan + per-query token work).
    pub fn core_seconds(&self, n_docs: u64) -> f64 {
        let ranking_ops = 2.0 * n_docs as f64 * self.d as f64 * 1.2;
        let url_ops = n_docs as f64 * self.url_bytes; // byte-ops over packed URLs
        let token_ops = {
            // Hint rows × n × limbs × 2 polys of NTT mults.
            let rows = self.rows(n_docs) as f64;
            rows * self.n_lwe as f64 * 2.0 * 2.0
        };
        (ranking_ops + url_ops + token_ops) / self.ops_per_core_second
    }

    /// Pre-query (token) communication in bytes: `n` seeded outer
    /// ciphertexts of `8·2048` bytes up; down, two switched
    /// ciphertexts per 2048 hint rows per limb for ranking + URL.
    pub fn token_bytes(&self, n_docs: u64) -> u64 {
        let up = (self.n_lwe as u64) * (8 * 2048 + 8);
        let rank_rows = self.rows(n_docs);
        let url_rows = (n_docs as f64 * self.url_bytes / self.clusters(n_docs) as f64 * 10.0)
            .sqrt() as u64; // unbalanced PIR matrix height
        let down_per_row = 2 * 2 * 6; // 2 limbs × (a,b) × ~44-bit words
        up + (rank_rows + url_rows) * down_per_row
    }

    /// Online (ranking + URL) communication in bytes.
    pub fn online_bytes(&self, n_docs: u64) -> u64 {
        let rank_up = self.upload_dim(n_docs) * 8;
        let rank_down = self.rows(n_docs) * 8;
        let batches = (n_docs as f64 / 880.0).ceil() as u64;
        let url_up = batches * 4;
        let url_down = (40u64 << 10) * 4 / 3; // one padded record at 9 bits/entry
        rank_up + rank_down + url_up + url_down
    }

    /// Total per-query communication.
    pub fn total_bytes(&self, n_docs: u64) -> u64 {
        self.token_bytes(n_docs) + self.online_bytes(n_docs)
    }
}

/// The §9 non-colluding two-server estimate: secret-share the query
/// with a distributed point function instead of encrypting it.
/// "We estimate that the per-query communication on the C4 data set
/// would be roughly 1 MiB (instead of Tiptoe's 56.9 MiB)."
pub fn non_colluding_bytes(n_docs: u64, d: usize) -> u64 {
    let model = ScalingModel { d, ..ScalingModel::text() };
    let clusters = model.clusters(n_docs);
    // Per server: a DPF key of ~λ·log2(C) bits plus the d-dim plain
    // query share, and the plain inner-product scores down.
    let dpf_key = 16 * (64 - u64::from(clusters.leading_zeros()) + 1);
    let up_per_server = dpf_key + (d as u64) * 2;
    let down_per_server = model.rows(n_docs) * 4;
    2 * (up_per_server + down_per_server)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coeus_at_c4_scale_matches_paper_estimates() {
        // §8.4: "more than 3 GiB of traffic, 900 000 core-seconds, and
        // $4.00 in AWS cost".
        let comm = CoeusModel::comm_bytes(C4_DOCS);
        assert!(comm > 3 * (1u64 << 30), "comm {comm}");
        let core_s = CoeusModel::core_seconds(C4_DOCS);
        assert!((900_000.0..=1_000_000.0).contains(&core_s), "core-s {core_s}");
        let cost = CoeusModel::aws_cost(C4_DOCS);
        assert!((3.0..=6.0).contains(&cost), "cost {cost}");
    }

    #[test]
    fn coeus_at_wikipedia_matches_reported_numbers() {
        // Table 6's Coeus row: 50 MiB/query, 12 900 core-s.
        let comm = CoeusModel::comm_bytes(WIKIPEDIA_DOCS);
        assert!((45u64 << 20..=56u64 << 20).contains(&comm), "comm {comm}");
        assert!((CoeusModel::core_seconds(WIKIPEDIA_DOCS) - 12_900.0).abs() < 1.0);
    }

    #[test]
    fn client_index_sizes_match_table_6() {
        // 48 GiB text / 98 GiB image.
        let text = ClientIndexModel::tiptoe_index_bytes(C4_DOCS, 192);
        assert!((38u64 << 30..=56u64 << 30).contains(&text), "text {text}");
        let image = ClientIndexModel::tiptoe_index_bytes(LAION_DOCS, 384);
        assert!((75u64 << 30..=110u64 << 30).contains(&image), "image {image}");
        // 4.6 TiB BM25, 6.4 TiB ColBERT, 7.4 GiB URL floor at C4 size.
        assert_eq!(ClientIndexModel::bm25_index_bytes(C4_DOCS), (4.6 * (1u64 << 40) as f64) as u64);
        assert!(ClientIndexModel::colbert_index_bytes(C4_DOCS) > ClientIndexModel::bm25_index_bytes(C4_DOCS));
        let urls = ClientIndexModel::url_only_bytes(C4_DOCS);
        assert!((7u64 << 30..8u64 << 30).contains(&urls), "urls {urls}");
    }

    #[test]
    fn scaling_model_reproduces_figure_8_shape() {
        let model = ScalingModel::text();
        // §8.5: "on a corpus of 8 billion documents, a Tiptoe search
        // query would require roughly 1 900 core-seconds and 140 MiB of
        // communication".
        let core_s = model.core_seconds(8_000_000_000);
        assert!((1_000.0..=4_000.0).contains(&core_s), "core-s {core_s}");
        let comm = model.total_bytes(8_000_000_000);
        assert!((90u64 << 20..=200u64 << 20).contains(&comm), "comm {}", comm >> 20);
        // Compute grows linearly, communication sub-linearly.
        let c1 = model.core_seconds(1_000_000_000);
        let c10 = model.core_seconds(10_000_000_000);
        assert!((9.0..=11.0).contains(&(c10 / c1)));
        let b1 = model.total_bytes(1_000_000_000);
        let b10 = model.total_bytes(10_000_000_000);
        assert!((b10 as f64 / b1 as f64) < 5.0, "communication must scale sublinearly");
    }

    #[test]
    fn non_colluding_estimate_is_about_one_mebibyte() {
        let bytes = non_colluding_bytes(C4_DOCS, 192);
        assert!(
            ((1u64 << 19)..(4u64 << 20)).contains(&bytes),
            "got {} KiB",
            bytes >> 10
        );
    }

    #[test]
    fn aws_pricing_matches_table_6_footnote() {
        // 145 core-s + ~57 MiB ≈ $0.003 + egress ≈ $0.008 total.
        let tiptoe_text = aws::query_cost(145.0, 57 << 20);
        assert!((0.002..=0.02).contains(&tiptoe_text), "got {tiptoe_text}");
    }
}
