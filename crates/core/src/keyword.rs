//! Exact keyword search backends (paper §9, "Exact keyword search").
//!
//! Tiptoe's embedding search is weak on rare exact strings (phone
//! numbers, addresses, uncommon names). The paper's proposed fix is a
//! suite of per-type backends, each "a simple private key-value store
//! mapping each string in the corpus (e.g., each phone number) in some
//! canonical format to the IDs of documents containing that string",
//! queried with keyword PIR. This module implements that design:
//! canonicalization per key type, hashing keys into fixed buckets, and
//! retrieving a bucket privately with the same SimplePIR + token stack
//! as the URL service.

use rand::Rng;
use tiptoe_lwe::LweParams;
use tiptoe_math::rng::derive_seed;
use tiptoe_pir::{PirClient, PirDatabase, PirServer};
use tiptoe_rlwe::RlweParams;
use tiptoe_underhood::{ClientKey, EncryptedSecret, Underhood};

/// The exact-string key types the backend suite supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeyKind {
    /// Telephone numbers (digits only, country code preserved).
    PhoneNumber,
    /// Street addresses (lowercased, whitespace-collapsed).
    Address,
    /// Anything else, canonicalized as a lowercase token string.
    Generic,
}

/// Canonicalizes a raw query string for a key type (the paper:
/// "canonicalize the query string and use it to make a key-value
/// lookup").
pub fn canonicalize(kind: KeyKind, raw: &str) -> String {
    match kind {
        KeyKind::PhoneNumber => raw.chars().filter(char::is_ascii_digit).collect(),
        KeyKind::Address | KeyKind::Generic => raw
            .to_lowercase()
            .split(|c: char| !c.is_alphanumeric())
            .filter(|t| !t.is_empty())
            .collect::<Vec<_>>()
            .join(" "),
    }
}

/// Attempts to extract a typed key from a free-form query (the client
/// software "would attempt to extract a string of each supported type
/// from the query string").
pub fn extract_key(query: &str) -> Option<(KeyKind, String)> {
    let digits: String = query.chars().filter(char::is_ascii_digit).collect();
    if digits.len() >= 7 {
        return Some((KeyKind::PhoneNumber, digits));
    }
    let lower = query.to_lowercase();
    for marker in ["street", "avenue", "ave ", "st ", "road", "blvd"] {
        if lower.contains(marker) {
            // Street addresses start at the house number: drop any
            // leading words before the first digit.
            let start = query.find(|c: char| c.is_ascii_digit()).unwrap_or(0);
            return Some((KeyKind::Address, canonicalize(KeyKind::Address, &query[start..])));
        }
    }
    None
}

/// A private key-value backend for one key type.
pub struct KeywordBackend {
    kind: KeyKind,
    server: PirServer,
    num_buckets: usize,
}

/// Number of hash buckets per backend (each bucket is one PIR record).
fn bucket_of(key: &str, num_buckets: usize) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in key.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % num_buckets as u64) as usize
}

impl KeywordBackend {
    /// Builds a backend over `(key, doc_id)` pairs with production
    /// parameters.
    pub fn build(kind: KeyKind, entries: &[(String, u32)], num_buckets: usize, seed: u64) -> Self {
        let lwe = LweParams::url_for_upload(num_buckets.max(1 << 10));
        let uh = Underhood::with_outer(lwe, RlweParams::production(), 44);
        Self::build_with(kind, entries, num_buckets, seed, uh)
    }

    /// Builds a backend with explicit crypto parameters (tests).
    ///
    /// # Panics
    ///
    /// Panics if `num_buckets == 0`.
    pub fn build_with(
        kind: KeyKind,
        entries: &[(String, u32)],
        num_buckets: usize,
        seed: u64,
        uh: Underhood,
    ) -> Self {
        assert!(num_buckets > 0, "need at least one bucket");
        let mut buckets: Vec<String> = vec![String::new(); num_buckets];
        for (key, doc) in entries {
            let canonical = canonicalize(kind, key);
            let b = bucket_of(&canonical, num_buckets);
            buckets[b].push_str(&format!("{canonical}\t{doc}\n"));
        }
        let records: Vec<Vec<u8>> = buckets.into_iter().map(String::into_bytes).collect();
        // PIR records must be non-empty; pad the empty corpus case.
        let records = if records.iter().all(Vec::is_empty) {
            vec![vec![0u8]; num_buckets]
        } else {
            records
        };
        let db = PirDatabase::build_with_params(&records, *uh.lwe());
        let server = PirServer::new(db, derive_seed(seed, 0x4b65), uh);
        Self { kind, server, num_buckets }
    }

    /// The key type this backend serves.
    pub fn kind(&self) -> KeyKind {
        self.kind
    }

    /// The underlying composed-scheme parameters.
    pub fn underhood(&self) -> &Underhood {
        self.server.underhood()
    }

    /// Privately looks up a key: PIR-fetches the key's bucket and
    /// scans it locally. Returns the matching document IDs.
    ///
    /// Uses one fresh (single-use) token per lookup.
    pub fn lookup<R: Rng + ?Sized>(
        &self,
        key: &ClientKey,
        raw_query: &str,
        rng: &mut R,
    ) -> Vec<u32> {
        let canonical = canonicalize(self.kind, raw_query);
        let bucket = bucket_of(&canonical, self.num_buckets);
        let uh = self.server.underhood();
        let es = EncryptedSecret::encrypt(uh, key, rng);
        let token = self.server.generate_token(&es);
        let client = PirClient::new(uh, key);
        let mut decoded = client.decode_token(&token);
        let ct = client.query(
            &self.server.public_matrix(),
            self.server.database().num_records(),
            bucket,
            rng,
        );
        let answer = self.server.answer(&ct);
        let record = client
            .recover(self.server.database(), &mut decoded, &answer)
            .expect("in-process PIR answer has the declared length");
        let text = String::from_utf8_lossy(&record);
        text.lines()
            .filter_map(|line| {
                let (k, doc) = line.split_once('\t')?;
                (k == canonical).then(|| doc.trim_end_matches('\0').parse().ok())?
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiptoe_math::rng::seeded_rng;

    fn test_uh() -> Underhood {
        let lwe = LweParams::insecure_test(32, 991, 6.4);
        let rlwe = RlweParams { degree: 64, q_bits: 58, t: 1 << 24, sigma: 3.2 };
        Underhood::with_outer(lwe, rlwe, 44)
    }

    #[test]
    fn canonicalization_per_kind() {
        assert_eq!(canonicalize(KeyKind::PhoneNumber, "+1 (617) 253-0000"), "16172530000");
        assert_eq!(canonicalize(KeyKind::Address, "  123  Main,  Street "), "123 main street");
        assert_eq!(canonicalize(KeyKind::Generic, "Foo  BAR"), "foo bar");
    }

    #[test]
    fn extract_key_finds_phone_numbers_and_addresses() {
        assert_eq!(
            extract_key("call me at 617-253-0000 today"),
            Some((KeyKind::PhoneNumber, "6172530000".to_owned()))
        );
        let (kind, _) = extract_key("123 Main Street, New York").expect("address");
        assert_eq!(kind, KeyKind::Address);
        assert_eq!(extract_key("knee pain"), None);
    }

    #[test]
    fn private_lookup_returns_exactly_the_matching_docs() {
        let entries = vec![
            ("617-253-0000".to_owned(), 7u32),
            ("617-253-0000".to_owned(), 12),
            ("415-555-1234".to_owned(), 3),
            ("212-555-9876".to_owned(), 8),
        ];
        let backend =
            KeywordBackend::build_with(KeyKind::PhoneNumber, &entries, 16, 5, test_uh());
        let mut rng = seeded_rng(9);
        let key = ClientKey::generate(backend.underhood(), backend.underhood().lwe().n, &mut rng);

        let mut hits = backend.lookup(&key, "(617) 253 0000", &mut rng);
        hits.sort_unstable();
        assert_eq!(hits, vec![7, 12]);

        let miss = backend.lookup(&key, "999-999-9999", &mut rng);
        assert!(miss.is_empty());
    }

    #[test]
    fn different_keys_in_same_bucket_do_not_collide() {
        // Force collisions with a single bucket.
        let entries = vec![
            ("alpha".to_owned(), 1u32),
            ("beta".to_owned(), 2),
            ("gamma".to_owned(), 3),
        ];
        let backend = KeywordBackend::build_with(KeyKind::Generic, &entries, 1, 6, test_uh());
        let mut rng = seeded_rng(10);
        let key = ClientKey::generate(backend.underhood(), backend.underhood().lwe().n, &mut rng);
        assert_eq!(backend.lookup(&key, "beta", &mut rng), vec![2]);
    }
}
