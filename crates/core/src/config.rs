//! Deployment configuration: the knobs of §7, §8.1, and Appendix C.

use tiptoe_cluster::ClusterConfig;
use tiptoe_embed::quantize::Quantizer;
use tiptoe_lwe::LweParams;
use tiptoe_net::{AdmissionPolicy, BreakerPolicy, CoalescePolicy, ConfigError, FaultPolicy};
use tiptoe_rlwe::RlweParams;

/// Server-side parallelism and batching knobs.
///
/// `num_threads == 0` means "one thread per available core" (the
/// `TIPTOE_THREADS` environment variable caps the auto-detected
/// count); any other value pins the thread count exactly. All
/// parallel kernels are bit-identical to their scalar counterparts,
/// so this knob trades wall-clock time only — never results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Threads per parallel kernel (`0` = one per core).
    pub num_threads: usize,
    /// Ciphertexts answered per database pass by the batched server
    /// kernels (`apply_many`); amortizes the DB scan across
    /// concurrent queries.
    pub batch_size: usize,
}

impl Default for Parallelism {
    fn default() -> Self {
        Self { num_threads: 0, batch_size: 4 }
    }
}

/// All parameters of a Tiptoe deployment.
#[derive(Debug, Clone)]
pub struct TiptoeConfig {
    /// Raw embedding dimension (768 text / 512 image).
    pub d_embed: usize,
    /// Post-PCA dimension (192 text / 384 image, §7).
    pub d_reduced: usize,
    /// Quantization precision bits (3 = signed 4-bit, §8.6).
    pub quant_bits: u32,
    /// Inner LWE parameters for the ranking service (Appendix C).
    pub rank_lwe: LweParams,
    /// Inner LWE parameters for the URL service (Appendix C).
    pub url_lwe: LweParams,
    /// Outer RLWE parameters shared by both services (§6.2).
    pub rlwe: RlweParams,
    /// Modulus-switch target for token downloads.
    pub switch_log_q2: u32,
    /// Clustering configuration (§7).
    pub cluster: ClusterConfig,
    /// URLs per compressed batch (§5 uses ≈880).
    pub urls_per_batch: usize,
    /// Number of ranking-service worker shards (§4.3; the paper's
    /// text deployment uses 40).
    pub num_shards: usize,
    /// Documents sampled for the PCA fit.
    pub pca_sample: usize,
    /// Store ranking shards as packed signed 4-bit nibbles (8× less
    /// memory and scan bandwidth; requires a power-of-two plaintext
    /// modulus so the signed embedding stays congruent mod `p`).
    pub pack_ranking_db: bool,
    /// Server-side thread-count and query-batching knobs.
    pub parallelism: Parallelism,
    /// Coordinator fault-recovery knobs (timeouts, retries, hedging).
    /// Disabled by default: the query path then uses the raw fan-out
    /// and is bit-identical to the fault-oblivious protocol. When
    /// enabled, clients fetch per-shard ranking tokens so they can
    /// decrypt over any surviving subset of shards (degraded mode).
    pub fault_policy: FaultPolicy,
    /// Cross-client batch-coalescing knobs for the serving plane
    /// ([`crate::serving::ServingPlane`]): how many concurrent query
    /// ciphertexts a shard groups into one database scan, how long a
    /// lone request waits for co-batched traffic, and the queue-depth
    /// bound that applies backpressure. Coalesced answers are
    /// bit-identical to sequential ones at every batch size.
    pub coalesce: CoalescePolicy,
    /// Admission-control knobs for the serving plane: the bounded
    /// inflight-query window and the per-admitted-query deadline
    /// budget. Disabled by default — every query is admitted and
    /// unbudgeted, exactly the pre-overload behavior. When enabled,
    /// queries past the plane's derived capacity (plus the queue
    /// depth) are shed with a typed error before consuming a token or
    /// moving any bytes.
    pub admission: AdmissionPolicy,
    /// Per-shard circuit-breaker knobs for the serving plane. Disabled
    /// by default. When enabled, a shard whose responses fail (or
    /// straggle past the latency threshold) repeatedly is *opened*:
    /// the fault-aware dispatch skips it — queries degrade to
    /// survivor-subset decryption over the remaining shards — until a
    /// half-open probe succeeds enough to close it again.
    pub breaker: BreakerPolicy,
    /// Span-tree sampling: trace 1-in-N queries (`1` = every query,
    /// the default). Unsampled queries skip span recording entirely —
    /// only the always-on metrics registry sees them — so tracing can
    /// stay enabled in overload experiments without the span buffer
    /// dominating. The `TIPTOE_TRACE_SAMPLE` environment variable sets
    /// the ambient default; a value here above 1 overrides it.
    pub trace_sample: u64,
    /// When set, enables span tracing and exports per-query trace
    /// artifacts (Chrome trace, metrics snapshot, folded stacks) to
    /// this path — the programmatic twin of the `TIPTOE_TRACE`
    /// environment variable. `None` (the default) leaves tracing off:
    /// one atomic load per would-be span.
    pub trace_path: Option<String>,
    /// Master seed (all internal randomness derives from it).
    pub seed: u64,
}

impl TiptoeConfig {
    /// Paper-faithful text-search parameters, scaled to `num_docs`.
    ///
    /// Uses `n = 2048 / q = 2^64 / p = 2^17 / σ = 81920` for ranking
    /// and the Table 11 rule for the URL service; clusters of size
    /// ≈ √N; PCA 768 → 192.
    pub fn text(num_docs: usize, seed: u64) -> Self {
        Self {
            d_embed: 768,
            d_reduced: 192,
            quant_bits: 3,
            rank_lwe: LweParams::ranking_text(),
            url_lwe: LweParams::url(991),
            rlwe: RlweParams::production(),
            switch_log_q2: 44,
            cluster: ClusterConfig::for_corpus(num_docs, seed),
            urls_per_batch: 880,
            num_shards: 4,
            pca_sample: 2048.min(num_docs),
            pack_ranking_db: false,
            parallelism: Parallelism::default(),
            fault_policy: FaultPolicy::default(),
            coalesce: CoalescePolicy::default(),
            admission: AdmissionPolicy::default(),
            breaker: BreakerPolicy::default(),
            trace_sample: 1,
            trace_path: None,
            seed,
        }
    }

    /// Paper-faithful image-search parameters (512 → 384 dims,
    /// `p = 2^15`).
    pub fn image(num_docs: usize, seed: u64) -> Self {
        Self {
            d_embed: 512,
            d_reduced: 384,
            quant_bits: 3,
            rank_lwe: LweParams::ranking_image(),
            url_lwe: LweParams::url(991),
            rlwe: RlweParams::production(),
            switch_log_q2: 44,
            cluster: ClusterConfig::for_corpus(num_docs, seed),
            urls_per_batch: 880,
            num_shards: 8,
            pca_sample: 2048.min(num_docs),
            pack_ranking_db: false,
            parallelism: Parallelism::default(),
            fault_policy: FaultPolicy::default(),
            coalesce: CoalescePolicy::default(),
            admission: AdmissionPolicy::default(),
            breaker: BreakerPolicy::default(),
            trace_sample: 1,
            trace_path: None,
            seed,
        }
    }

    /// Fast parameters for unit tests: full protocol structure with
    /// small (insecure) lattice dimensions and small embeddings.
    pub fn test_small(num_docs: usize, seed: u64) -> Self {
        let target = ((num_docs as f64).sqrt().round() as usize).clamp(8, 64);
        Self {
            d_embed: 96,
            d_reduced: 32,
            quant_bits: 3,
            rank_lwe: LweParams::insecure_test(64, 1 << 17, 81920.0),
            url_lwe: LweParams::insecure_test(32, 991, 6.4),
            rlwe: RlweParams { degree: 64, q_bits: 58, t: 1 << 24, sigma: 3.2 },
            switch_log_q2: 44,
            cluster: ClusterConfig {
                target_size: target,
                split_factor: 1.5,
                dual_assign_frac: 0.2,
                kmeans_sample: 1024.min(num_docs),
                kmeans_iters: 8,
                seed,
            },
            urls_per_batch: 16,
            num_shards: 2,
            pca_sample: 512.min(num_docs),
            pack_ranking_db: false,
            parallelism: Parallelism::default(),
            fault_policy: FaultPolicy::default(),
            coalesce: CoalescePolicy::default(),
            admission: AdmissionPolicy::default(),
            breaker: BreakerPolicy::default(),
            trace_sample: 1,
            trace_path: None,
            seed,
        }
    }

    /// The ranking-side quantizer.
    pub fn quantizer(&self) -> Quantizer {
        Quantizer::new(self.quant_bits, self.rank_lwe.p)
    }

    /// Checks cross-parameter consistency, surfacing policy
    /// misconfiguration as a typed [`ConfigError`] instead of a panic
    /// — the entry point for config loading.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] naming the offending knob for any invalid
    /// fault, coalesce, admission, or breaker policy, or a zero
    /// `trace_sample`.
    ///
    /// # Panics
    ///
    /// Structural parameter errors (lattice dimensions, quantizer
    /// capacity, shard counts) are programming errors, not operator
    /// input, and still panic.
    pub fn try_validate(&self) -> Result<(), ConfigError> {
        self.rank_lwe.validate();
        self.url_lwe.validate();
        assert!(self.d_reduced <= self.d_embed, "PCA cannot increase dimension");
        let quant = self.quantizer();
        assert!(
            quant.encoder().max_dimension() >= self.d_reduced
                || quant.encoder().supports_normalized(self.d_reduced),
            "quantizer cannot host d = {} inner products",
            self.d_reduced
        );
        assert!(self.num_shards >= 1, "need at least one shard");
        if self.fault_policy.enabled {
            self.fault_policy.validate()?;
        }
        assert!(self.parallelism.batch_size >= 1, "need a positive query batch size");
        self.coalesce.validate()?;
        self.admission.validate()?;
        self.breaker.validate()?;
        if self.admission.enabled {
            // An admitted query crosses several coalescer lanes (token
            // fetch, ranking shards, URL retrieval), and each lane may
            // wait up to `coalesce.max_wait` before flushing — more
            // under crash retries. A wait ceiling above 1/8 of the
            // per-query deadline budget could exhaust the budget on
            // queued waits alone, deadlining queries the plane had
            // capacity to serve.
            let floor = self.admission.deadline / 8;
            if self.coalesce.max_wait > floor {
                return Err(ConfigError {
                    field: "coalesce.max_wait",
                    reason: "wait ceiling exceeds the admission deadline budget floor \
                             (deadline/8); lane waits alone could deadline admitted queries",
                });
            }
        }
        if self.trace_sample == 0 {
            return Err(ConfigError {
                field: "trace_sample",
                reason: "span sampling rate must be at least 1 (1 = trace every query)",
            });
        }
        assert!(self.urls_per_batch >= 1, "need at least one URL per batch");
        if self.pack_ranking_db {
            assert!(
                self.rank_lwe.p.is_power_of_two(),
                "packed storage needs a power-of-two ranking modulus"
            );
            assert!(self.quant_bits <= 3, "packed storage holds signed 4-bit entries");
        }
        Ok(())
    }

    /// Checks cross-parameter consistency.
    ///
    /// # Panics
    ///
    /// Panics on any inconsistency, including the policy errors
    /// [`TiptoeConfig::try_validate`] reports as typed values.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        TiptoeConfig::text(100_000, 1).validate();
        TiptoeConfig::image(100_000, 1).validate();
        TiptoeConfig::test_small(500, 1).validate();
    }

    #[test]
    fn policy_misconfiguration_surfaces_as_typed_errors() {
        let mut c = TiptoeConfig::test_small(500, 1);
        c.trace_sample = 0;
        let err = c.try_validate().expect_err("zero sampling rate");
        assert_eq!(err.field, "trace_sample");

        let mut c = TiptoeConfig::test_small(500, 1);
        c.coalesce.max_batch = 0;
        let err = c.try_validate().expect_err("zero batch");
        assert_eq!(err.field, "coalesce.max_batch");

        let mut c = TiptoeConfig::test_small(500, 1);
        c.admission.deadline = std::time::Duration::ZERO;
        let err = c.try_validate().expect_err("zero deadline");
        assert_eq!(err.field, "admission.deadline");

        // A coalescer wait ceiling that could eat the whole deadline
        // budget on queued waits is rejected when admission is on —
        // and only then (unbudgeted queries tolerate any ceiling).
        let mut c = TiptoeConfig::test_small(500, 1);
        c.admission.enabled = true;
        c.admission.deadline = std::time::Duration::from_millis(4);
        c.coalesce.max_wait = std::time::Duration::from_millis(1);
        let err = c.try_validate().expect_err("wait ceiling above deadline/8");
        assert_eq!(err.field, "coalesce.max_wait");
        c.coalesce.max_wait = std::time::Duration::from_micros(500);
        c.try_validate().expect("wait ceiling at deadline/8 is fine");
        c.admission.enabled = false;
        c.coalesce.max_wait = std::time::Duration::from_millis(1);
        c.try_validate().expect("no admission, no deadline floor");

        let mut c = TiptoeConfig::test_small(500, 1);
        c.breaker.failure_threshold = 0;
        let err = c.try_validate().expect_err("zero failure threshold");
        assert_eq!(err.field, "breaker.failure_threshold");

        let mut c = TiptoeConfig::test_small(500, 1);
        c.fault_policy = tiptoe_net::FaultPolicy::tolerant();
        c.fault_policy.attempt_timeout = std::time::Duration::ZERO;
        let err = c.try_validate().expect_err("zero attempt timeout");
        assert_eq!(err.field, "fault_policy.attempt_timeout");
    }

    #[test]
    fn text_preset_matches_paper_appendix_c() {
        let c = TiptoeConfig::text(1 << 20, 0);
        assert_eq!(c.rank_lwe.n, 2048);
        assert_eq!(c.rank_lwe.log_q, 64);
        assert_eq!(c.rank_lwe.p, 1 << 17);
        assert_eq!(c.url_lwe.n, 1408);
        assert_eq!(c.url_lwe.log_q, 32);
        assert_eq!(c.d_embed, 768);
        assert_eq!(c.d_reduced, 192);
        assert_eq!(c.urls_per_batch, 880);
    }

    #[test]
    fn image_preset_uses_wider_reduced_dimension() {
        let c = TiptoeConfig::image(1 << 20, 0);
        assert_eq!(c.d_embed, 512);
        assert_eq!(c.d_reduced, 384);
        assert_eq!(c.rank_lwe.p, 1 << 15);
    }

    #[test]
    fn cluster_target_scales_with_sqrt_n() {
        let c = TiptoeConfig::text(1 << 20, 0);
        assert_eq!(c.cluster.target_size, 1 << 10);
    }
}
