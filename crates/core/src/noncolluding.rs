//! The non-colluding two-server mode (paper §9, "Reducing
//! communication with non-colluding services").
//!
//! When the client may assume two deployments that do not collude,
//! encryption is unnecessary: the client splits its Figure 10 query
//! vector `q̃` into two DPF keys, each server expands its key into a
//! pseudorandom share `q̃_w` and runs the §4 nearest-neighbor scan *in
//! plaintext* (`a_w = M · q̃_w`), and the client adds the two answers.
//! "No server-to-server communication would be necessary, as the
//! servers only perform linear operations." URL fetching works the
//! same way with a 1-bit DPF (two-server PIR).
//!
//! Each server's view is a single pseudorandom key — independent of
//! both the query embedding and the cluster index — so query privacy
//! holds against either server alone (and fails only if they collude,
//! which is exactly the §9 trust assumption). Per-query communication
//! drops from Tiptoe's tens of MiB to ~1 MiB at C4 scale because no
//! lattice ciphertext expansion is paid.

use rand::Rng;
use tiptoe_dpf::{eval as dpf_eval, full_eval, generate as dpf_generate, DpfKey};
use tiptoe_embed::quantize::Quantizer;
use tiptoe_embed::vector::normalize;
use tiptoe_math::matrix::{matvec, Mat};
use tiptoe_math::zq::center;
use tiptoe_pir::BitPacker;

use crate::batch::IndexArtifacts;
use crate::config::TiptoeConfig;

/// One of the two (identical, replicated) plaintext servers.
pub struct TwoServerReplica {
    /// Ranking matrix: `rows × d·C_padded`, entries are signed
    /// quantized embeddings embedded in `Z_{2^32}`.
    rank: Mat<u32>,
    /// URL matrix: packed-record columns, as in the PIR database.
    urls: Mat<u32>,
    d: usize,
    clusters: usize,
    /// Padded cluster-domain size (`2^height ≥ clusters`).
    cluster_domain: u32,
    /// Padded record-domain size.
    record_domain: u32,
    record_bytes: usize,
    packer: BitPacker,
}

/// Builds the two replicas' shared state from batch artifacts.
///
/// Returns a single replica; a deployment clones it onto two
/// non-colluding providers (the state is identical by construction).
pub fn build_replica(config: &TiptoeConfig, artifacts: &IndexArtifacts) -> TwoServerReplica {
    let quant = config.quantizer();
    let d = config.d_reduced;
    let clusters = artifacts.clustering.num_clusters();
    let rows = artifacts.meta.rows;
    let cluster_domain = clusters.next_power_of_two().trailing_zeros();
    let mut rank: Mat<u32> = Mat::zeros(rows, d << cluster_domain);
    for (ci, members) in artifacts.clustering.members.iter().enumerate() {
        for (row, &doc) in members.iter().enumerate() {
            let signed = quant.to_signed(&artifacts.reduced_embeddings[doc as usize]);
            for (j, &v) in signed.iter().enumerate() {
                rank.set(row, ci * d + j, v as i32 as u32);
            }
        }
    }

    // URL records: identical payloads to the single-server PIR
    // database, but over Z_{2^32} shares instead of LWE ciphertexts.
    let packer = BitPacker::new(config.url_lwe.p);
    let record_bytes =
        artifacts.url_batches.iter().map(|b| b.compressed.len()).max().unwrap_or(1);
    let records = artifacts.url_batches.len().max(1);
    let record_domain = records.next_power_of_two().trailing_zeros();
    let url_rows = packer.entries_for(record_bytes);
    let mut urls: Mat<u32> = Mat::zeros(url_rows, 1 << record_domain);
    let mut column = Vec::new();
    for (c, batch) in artifacts.url_batches.iter().enumerate() {
        column.clear();
        packer.pack_into(&batch.compressed, record_bytes, &mut column);
        for (r, &e) in column.iter().enumerate() {
            urls.set(r, c, e);
        }
    }

    TwoServerReplica {
        rank,
        urls,
        d,
        clusters,
        cluster_domain,
        record_domain,
        record_bytes,
        packer,
    }
}

impl TwoServerReplica {
    /// Number of clusters served.
    pub fn clusters(&self) -> usize {
        self.clusters
    }

    /// Scores returned per ranking query.
    pub fn rows(&self) -> usize {
        self.rank.rows()
    }

    /// Answers a ranking query share: expands the DPF key into `q̃_w`
    /// and computes the plaintext product `M · q̃_w` (the same §4 scan,
    /// no cryptography). Touches the whole matrix, so the access
    /// pattern is share-independent.
    ///
    /// # Panics
    ///
    /// Panics if the key's domain/block disagree with the matrix.
    pub fn answer_ranking(&self, key: &DpfKey) -> Vec<u32> {
        assert_eq!(key.block_len(), self.d, "block must be the embedding dimension");
        assert_eq!(
            key.domain_size() * self.d,
            self.rank.cols(),
            "key domain must cover the padded cluster space"
        );
        let share = full_eval(key);
        matvec(&self.rank, &share)
    }

    /// Answers a URL query share (two-server PIR over `Z_{2^32}`).
    ///
    /// # Panics
    ///
    /// Panics if the key's domain/block disagree with the URL matrix.
    pub fn answer_urls(&self, key: &DpfKey) -> Vec<u32> {
        assert_eq!(key.block_len(), 1, "URL selection uses 1-value blocks");
        assert_eq!(key.domain_size(), self.urls.cols(), "key domain must cover records");
        let share = full_eval(key);
        matvec(&self.urls, &share)
    }
}

/// Per-query communication of the two-server protocol (both servers).
#[derive(Debug, Clone, Copy, Default)]
pub struct TwoServerCost {
    /// Total upload (two ranking keys + two URL keys).
    pub up: u64,
    /// Total download (two score shares + two record shares).
    pub down: u64,
}

impl TwoServerCost {
    /// Total traffic.
    pub fn total(&self) -> u64 {
        self.up + self.down
    }
}

/// Results of a two-server private search.
pub struct TwoServerResults {
    /// The searched cluster (client-side secret, exposed for tests).
    pub cluster: usize,
    /// `(doc, url, score)` hits, best first.
    pub hits: Vec<(u32, String, f32)>,
    /// Exact communication.
    pub cost: TwoServerCost,
}

/// Runs one private search against two non-colluding replicas.
///
/// `servers` are the two (physically separate) replicas; in this
/// simulation they are two references to identical state.
pub fn search_two_server<R: Rng + ?Sized>(
    config: &TiptoeConfig,
    artifacts: &IndexArtifacts,
    servers: [&TwoServerReplica; 2],
    query_embedding_raw: &[f32],
    k: usize,
    rng: &mut R,
) -> TwoServerResults {
    let quant = Quantizer::new(config.quant_bits, config.rank_lwe.p);
    let mut q = artifacts.pca.project(query_embedding_raw);
    normalize(&mut q);
    let cluster = artifacts.clustering.nearest_centroid(&q);
    let beta: Vec<u32> = quant.to_signed(&q).iter().map(|&v| v as i32 as u32).collect();

    // Ranking: share the Figure 10 vector via DPF.
    let replica = servers[0];
    let (k0, k1) = dpf_generate(replica.cluster_domain, cluster, &beta, rng);
    let mut cost = TwoServerCost { up: k0.byte_len() + k1.byte_len(), down: 0 };
    let a0 = servers[0].answer_ranking(&k0);
    let a1 = servers[1].answer_ranking(&k1);
    cost.down += (a0.len() + a1.len()) as u64 * 4;
    let members = &artifacts.clustering.members[cluster];
    let scores: Vec<i64> = a0
        .iter()
        .zip(a1.iter())
        .take(members.len())
        .map(|(&x, &y)| center(x.wrapping_add(y) as u64, 1 << 32))
        .collect();
    let best_row = scores.iter().enumerate().max_by_key(|(_, &s)| s).map(|(i, _)| i).unwrap_or(0);

    // URL batch: two-server PIR with a 1-valued DPF.
    let batch_idx = artifacts.meta.batch_of(cluster, best_row);
    let (u0, u1) = dpf_generate(replica.record_domain, batch_idx, &[1u32], rng);
    cost.up += u0.byte_len() + u1.byte_len();
    let r0 = servers[0].answer_urls(&u0);
    let r1 = servers[1].answer_urls(&u1);
    cost.down += (r0.len() + r1.len()) as u64 * 4;
    let entries: Vec<u32> =
        r0.iter().zip(r1.iter()).map(|(&x, &y)| x.wrapping_add(y)).collect();
    let payload = replica.packer.unpack(&entries, replica.record_bytes);
    let decoded = crate::batch::CompressedUrlBatch::decode_payload(&payload).unwrap_or_default();

    let upb = artifacts.meta.urls_per_batch as usize;
    let first_row = (best_row / upb) * upb;
    let scale2 = (quant.encoder().scale() * quant.encoder().scale()) as f32;
    let mut hits: Vec<(u32, String, f32)> = decoded
        .into_iter()
        .enumerate()
        .filter_map(|(offset, (doc, url))| {
            let score = *scores.get(first_row + offset)?;
            Some((doc, url, score as f32 / scale2))
        })
        .collect();
    hits.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
    hits.truncate(k);

    TwoServerResults { cluster, hits, cost }
}

/// A sanity check used by `dpf_eval` consumers in tests.
pub fn reconstruct_point(k0: &DpfKey, k1: &DpfKey, x: usize) -> Vec<u32> {
    dpf_eval(k0, x)
        .into_iter()
        .zip(dpf_eval(k1, x))
        .map(|(a, b)| a.wrapping_add(b))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiptoe_corpus::synth::{generate, CorpusConfig};
    use tiptoe_embed::text::TextEmbedder;
    use tiptoe_embed::Embedder;
    use tiptoe_math::rng::seeded_rng;

    use crate::batch::run_batch_jobs;
    use crate::instance::TiptoeInstance;

    fn setup() -> (TiptoeConfig, IndexArtifacts, TwoServerReplica, TextEmbedder,
                   tiptoe_corpus::synth::Corpus) {
        let corpus = generate(&CorpusConfig::small(220, 67), 20);
        let config = TiptoeConfig::test_small(220, 67);
        let embedder = TextEmbedder::new(config.d_embed, 67, 0);
        let artifacts = run_batch_jobs(&config, &embedder, &corpus);
        let replica = build_replica(&config, &artifacts);
        (config, artifacts, replica, embedder, corpus)
    }

    #[test]
    fn two_server_search_returns_valid_urls() {
        let (config, artifacts, replica, embedder, corpus) = setup();
        let mut rng = seeded_rng(1);
        let q_raw = embedder.embed_text(&corpus.queries[0].text);
        let results = search_two_server(&config, &artifacts, [&replica, &replica], &q_raw, 10, &mut rng);
        assert!(!results.hits.is_empty());
        for (doc, url, _) in &results.hits {
            assert_eq!(url, &corpus.docs[*doc as usize].url);
        }
        for w in results.hits.windows(2) {
            assert!(w[0].2 >= w[1].2);
        }
    }

    #[test]
    fn two_server_matches_single_server_ranking() {
        // The two modes share the selection pipeline, so the chosen
        // cluster and top documents must agree.
        let (config, _, replica, embedder, corpus) = setup();
        let instance = TiptoeInstance::build(&config, embedder.clone(), &corpus);
        let mut client = instance.new_client(1);
        let mut rng = seeded_rng(2);
        for q in corpus.queries.iter().take(5) {
            let single = client.search(&instance, &q.text, 8);
            let q_raw = embedder.embed_text(&q.text);
            let double = search_two_server(
                &config,
                &instance.artifacts,
                [&replica, &replica],
                &q_raw,
                8,
                &mut rng,
            );
            assert_eq!(single.cluster, double.cluster, "cluster selection diverged");
            let s_docs: Vec<u32> = single.hits.iter().map(|h| h.doc).collect();
            let d_docs: Vec<u32> = double.hits.iter().map(|(d, _, _)| *d).collect();
            assert_eq!(s_docs, d_docs, "rankings diverged for {:?}", q.text);
        }
    }

    #[test]
    fn two_server_traffic_is_far_below_single_server() {
        let (config, artifacts, replica, embedder, corpus) = setup();
        let mut rng = seeded_rng(3);
        let q_raw = embedder.embed_text(&corpus.queries[0].text);
        let two =
            search_two_server(&config, &artifacts, [&replica, &replica], &q_raw, 5, &mut rng);
        let instance = TiptoeInstance::build(&config, embedder, &corpus);
        let mut client = instance.new_client(2);
        let one = client.search(&instance, &corpus.queries[0].text, 5);
        assert!(
            two.cost.total() * 10 < one.cost.total_bytes(),
            "two-server {} vs single-server {}",
            two.cost.total(),
            one.cost.total_bytes()
        );
    }

    #[test]
    fn query_shares_have_query_independent_sizes() {
        let (config, artifacts, replica, embedder, corpus) = setup();
        let mut rng = seeded_rng(4);
        let a = search_two_server(
            &config,
            &artifacts,
            [&replica, &replica],
            &embedder.embed_text(&corpus.queries[0].text),
            5,
            &mut rng,
        );
        let b = search_two_server(
            &config,
            &artifacts,
            [&replica, &replica],
            &embedder.embed_text("completely different planets galaxy"),
            5,
            &mut rng,
        );
        assert_eq!(a.cost.up, b.cost.up);
        assert_eq!(a.cost.down, b.cost.down);
    }
}
