//! Private advertising (paper §9, "Private advertising").
//!
//! "Just as a client uses Tiptoe to fetch relevant webpages, a client
//! could use Tiptoe to fetch relevant textual ads. The search provider
//! could embed each ad using an embedding function. The client would
//! then use Tiptoe to identify the ads most relevant to its query —
//! instead of privately fetching a URL in the last protocol step, the
//! client would privately fetch the text of the ad."
//!
//! This module is exactly that pipeline: ads are embedded and
//! clustered into a Figure 3 matrix served by the private ranking
//! protocol, and the *ad creative text* (rather than a URL batch) is
//! the PIR record fetched in the last step. The ad network learns
//! neither the query nor which ad was shown — its privacy holds until
//! the user clicks (as the paper notes).

use rand::Rng;
use tiptoe_cluster::{cluster_documents, Clustering};
use tiptoe_embed::vector::normalize;
use tiptoe_math::matrix::Mat;
use tiptoe_math::rng::derive_seed;
use tiptoe_pir::{PirClient, PirDatabase, PirServer};
use tiptoe_underhood::{ClientKey, EncryptedSecret, Underhood};

use crate::config::TiptoeConfig;
use crate::ranking::RankingService;

/// One advertisement.
#[derive(Debug, Clone)]
pub struct Ad {
    /// Campaign identifier.
    pub id: u32,
    /// The creative text shown to the user.
    pub creative: String,
    /// The ad's embedding in the same space as search queries.
    pub embedding: Vec<f32>,
}

/// The private ad service: a ranking matrix over ad embeddings plus a
/// PIR store of creatives, grouped by cluster like URL batches.
pub struct AdService {
    ranking: RankingService,
    creatives: PirServer,
    clustering: Clustering,
    config: TiptoeConfig,
    /// `record_of[cluster][row]` = PIR record index of that ad slot.
    ads_per_record: usize,
    record_start: Vec<u32>,
    ids_by_slot: Vec<Vec<u32>>,
}

impl AdService {
    /// Builds the service over an ad inventory.
    ///
    /// # Panics
    ///
    /// Panics if the inventory is empty or embedding dimensions differ
    /// from `config.d_reduced`.
    pub fn build(config: &TiptoeConfig, mut ads: Vec<Ad>, ads_per_record: usize) -> Self {
        assert!(!ads.is_empty(), "empty ad inventory");
        let d = config.d_reduced;
        assert!(ads.iter().all(|a| a.embedding.len() == d), "ad embedding dimension mismatch");
        for ad in ads.iter_mut() {
            normalize(&mut ad.embedding);
        }
        let embeddings: Vec<Vec<f32>> = ads.iter().map(|a| a.embedding.clone()).collect();
        let clustering = cluster_documents(&embeddings, &config.cluster);

        // Ranking matrix over ad embeddings (Figure 3 layout).
        let quant = config.quantizer();
        let c = clustering.num_clusters();
        let rows = clustering.max_cluster_size();
        let mut matrix: Mat<u32> = Mat::zeros(rows, d * c);
        for (ci, members) in clustering.members.iter().enumerate() {
            for (row, &ad) in members.iter().enumerate() {
                let q = quant.to_zp(&ads[ad as usize].embedding);
                matrix.row_mut(row)[ci * d..ci * d + d].copy_from_slice(&q);
            }
        }
        let ranking = RankingService::from_matrix(config, &matrix);

        // Creative store: records of `ads_per_record` creatives in
        // cluster-major slot order ("id\tcreative" lines).
        let ads_per_record = ads_per_record.max(1);
        let mut records = Vec::new();
        let mut record_start = Vec::with_capacity(c);
        let mut ids_by_slot = Vec::with_capacity(c);
        for members in &clustering.members {
            record_start.push(records.len() as u32);
            ids_by_slot.push(members.iter().map(|&m| ads[m as usize].id).collect());
            for chunk in members.chunks(ads_per_record) {
                let blob: String = chunk
                    .iter()
                    .map(|&m| format!("{}\t{}", ads[m as usize].id, ads[m as usize].creative))
                    .collect::<Vec<_>>()
                    .join("\n");
                records.push(blob.into_bytes());
            }
        }
        let uh = Underhood::with_outer(config.url_lwe, config.rlwe, config.switch_log_q2);
        let db = PirDatabase::build_with_params(&records, config.url_lwe);
        let creatives = PirServer::new(db, derive_seed(config.seed, 0xad5), uh);

        Self {
            ranking,
            creatives,
            clustering,
            config: config.clone(),
            ads_per_record,
            record_start,
            ids_by_slot,
        }
    }

    /// The ranking service (clients share tokens with it).
    pub fn ranking(&self) -> &RankingService {
        &self.ranking
    }

    /// The creative PIR store's composed-scheme parameters.
    pub fn creative_underhood(&self) -> &Underhood {
        self.creatives.underhood()
    }

    /// Privately fetches the `(id, creative)` of the ad most relevant
    /// to a (reduced, normalized) query embedding. The service sees
    /// only ciphertexts in both steps.
    pub fn fetch_relevant_ad<R: Rng + ?Sized>(
        &self,
        key: &ClientKey,
        query_reduced: &[f32],
        rng: &mut R,
    ) -> Option<(u32, String)> {
        let d = self.config.d_reduced;
        assert_eq!(query_reduced.len(), d, "query dimension mismatch");
        let mut q = query_reduced.to_vec();
        normalize(&mut q);
        let cluster = self.clustering.nearest_centroid(&q);

        // Private ranking over the ad inventory.
        let uh = self.ranking.underhood();
        let es = EncryptedSecret::encrypt(uh, key, rng);
        let expanded = es.expand(uh);
        let (rank_token, _) = self.ranking.generate_token_expanded(&expanded);
        let mut rank_decoded = uh.decode_token::<u64>(key, &rank_token);
        let quant = self.config.quantizer();
        let q_zp = quant.to_zp(&q);
        let mut v = vec![0u64; self.ranking.upload_dim()];
        for (j, &x) in q_zp.iter().enumerate() {
            v[cluster * d + j] = x as u64;
        }
        let ct = uh.encrypt_query::<u64, _>(key, &self.ranking.public_matrix(), &v, rng);
        let (applied, _) = self.ranking.answer(&ct);
        let raw = uh.decrypt(&mut rank_decoded, &applied);
        let members = self.ids_by_slot[cluster].len();
        let best_row = raw
            .iter()
            .take(members)
            .enumerate()
            .max_by_key(|(_, &s)| quant.encoder().decode_signed(s))
            .map(|(i, _)| i)?;

        // Private creative fetch.
        let record = self.record_start[cluster] as usize + best_row / self.ads_per_record;
        let uh_url = self.creatives.underhood();
        let es2 = EncryptedSecret::encrypt(uh_url, key, rng);
        let token = self.creatives.generate_token(&es2);
        let pir = PirClient::new(uh_url, key);
        let mut decoded = pir.decode_token(&token);
        let pir_ct = pir.query(
            &self.creatives.public_matrix(),
            self.creatives.database().num_records(),
            record,
            rng,
        );
        let answer = self.creatives.answer(&pir_ct);
        let payload = pir
            .recover(self.creatives.database(), &mut decoded, &answer)
            .expect("in-process PIR answer has the declared length");
        let text = String::from_utf8_lossy(&payload);
        let want_id = self.ids_by_slot[cluster][best_row];
        text.lines().find_map(|line| {
            let (id, creative) = line.split_once('\t')?;
            let id: u32 = id.parse().ok()?;
            (id == want_id).then(|| (id, creative.trim_end_matches('\0').to_owned()))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiptoe_math::rng::seeded_rng;

    fn inventory(config: &TiptoeConfig) -> Vec<Ad> {
        let mut rng = seeded_rng(5);
        let themes =
            ["running shoes", "tax software", "garden tools", "noise-cancelling headphones"];
        (0..120)
            .map(|i| {
                let theme = i % themes.len();
                let mut e: Vec<f32> = (0..config.d_reduced)
                    .map(|j| {
                        // Theme anchor plus noise: a crude embedding
                        // with clear cluster structure.
                        let anchor = ((theme * 31 + j * 7) % 13) as f32 / 13.0 - 0.5;
                        anchor + rng.gen_range(-0.15f32..0.15)
                    })
                    .collect();
                normalize(&mut e);
                Ad {
                    id: i as u32,
                    creative: format!("Buy {} today! (campaign {})", themes[theme], i),
                    embedding: e,
                }
            })
            .collect()
    }

    #[test]
    fn relevant_ad_is_fetched_privately() {
        let config = TiptoeConfig::test_small(120, 55);
        let ads = inventory(&config);
        let service = AdService::build(&config, ads.clone(), 8);
        let mut rng = seeded_rng(6);
        let key = ClientKey::generate(
            service.ranking().underhood(),
            config.rank_lwe.n.max(config.url_lwe.n),
            &mut rng,
        );

        // A query near ad #2's embedding should retrieve an ad of the
        // same theme.
        let probe = &ads[2];
        let (id, creative) = service
            .fetch_relevant_ad(&key, &probe.embedding, &mut rng)
            .expect("an ad should be found");
        assert!(creative.contains("Buy"), "creative: {creative}");
        // Same theme as the probe (ids congruent mod 4).
        assert_eq!(id % 4, 2, "fetched ad {id} from the wrong theme: {creative}");
    }

    #[test]
    fn creative_roundtrips_exactly() {
        let config = TiptoeConfig::test_small(120, 56);
        let ads = inventory(&config);
        let service = AdService::build(&config, ads.clone(), 4);
        let mut rng = seeded_rng(7);
        let key = ClientKey::generate(
            service.ranking().underhood(),
            config.rank_lwe.n.max(config.url_lwe.n),
            &mut rng,
        );
        let (id, creative) = service
            .fetch_relevant_ad(&key, &ads[10].embedding, &mut rng)
            .expect("found");
        let original = ads.iter().find(|a| a.id == id).expect("inventory has the id");
        assert_eq!(creative, original.creative);
    }
}
