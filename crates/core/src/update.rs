//! Incremental corpus updates (paper §3.2, "Handling updates to the
//! corpus"): "the Tiptoe servers can run the new or changed documents
//! through the embedding function, assign them to a cluster, and
//! publish the updated cluster centroids and metadata to the clients."
//!
//! An update indexes the new document into its cluster's padding slot,
//! applies a rank-one correction to the affected ranking-shard hint,
//! refreshes a single NTT chunk, and re-batches the cluster's URLs —
//! no full cryptographic re-preprocessing. Outstanding query tokens
//! become stale, exactly as §6.3 states ("these tokens are usable
//! until the document corpus changes"); clients refetch metadata and
//! tokens afterwards.

use tiptoe_embed::vector::normalize;
use tiptoe_embed::Embedder;

use crate::batch::CompressedUrlBatch;
use crate::instance::TiptoeInstance;
use crate::url::UrlService;

/// Why an incremental update could not be applied (a production
/// deployment would queue the document for the next full re-shard).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateError {
    /// The target cluster has no padding slot left; the matrix must be
    /// re-laid-out (all clusters pad to the largest).
    ClusterFull,
    /// The cluster's last URL batch is full; appending would shift the
    /// batch numbering of later clusters.
    BatchFull,
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::ClusterFull => write!(f, "cluster has no free slot; re-shard needed"),
            UpdateError::BatchFull => write!(f, "cluster's URL batch is full; re-shard needed"),
        }
    }
}

impl std::error::Error for UpdateError {}

/// Nearest centroid by inner product over the client's decompressed
/// centroid cache.
fn nearest_client_centroid(centroids: &[Vec<f32>], q: &[f32]) -> usize {
    let mut best = 0usize;
    let mut best_score = f32::NEG_INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let s = tiptoe_embed::vector::dot(c, q);
        if s > best_score {
            best_score = s;
            best = i;
        }
    }
    best
}

/// The outcome of a successful incremental update.
#[derive(Debug, Clone, Copy)]
pub struct UpdateReport {
    /// The new document's ID.
    pub doc: u32,
    /// The cluster it joined.
    pub cluster: usize,
    /// Its row within the cluster.
    pub row: usize,
    /// Bytes clients must re-download (centroids + metadata).
    pub metadata_bytes: u64,
}

impl<E: Embedder> TiptoeInstance<E> {
    /// Incrementally indexes one new text document.
    ///
    /// # Errors
    ///
    /// Returns [`UpdateError`] when the target cluster's matrix or
    /// URL-batch capacity is exhausted.
    pub fn add_document(&mut self, text: &str, url: &str) -> Result<UpdateReport, UpdateError> {
        let raw = self.embedder.embed_text(text);
        self.add_document_embedding(&raw, url)
    }

    /// Incrementally indexes a document given its raw (pre-PCA)
    /// embedding — the path image deployments use.
    ///
    /// # Errors
    ///
    /// Returns [`UpdateError`] when the target cluster's matrix or
    /// URL-batch capacity is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if the embedding dimension differs from the model's.
    pub fn add_document_embedding(
        &mut self,
        raw_embedding: &[f32],
        url: &str,
    ) -> Result<UpdateReport, UpdateError> {
        assert_eq!(raw_embedding.len(), self.config.d_embed, "embedding dimension mismatch");
        let mut reduced = self.artifacts.pca.project(raw_embedding);
        normalize(&mut reduced);
        // Assign with the *client-visible* (compressed) centroids, not
        // the full-precision ones: otherwise a borderline document can
        // land in a cluster that no client's local selection ever
        // searches.
        let cluster = nearest_client_centroid(&self.artifacts.meta.centroids, &reduced);
        let row = self.artifacts.clustering.members[cluster].len();
        if row >= self.artifacts.meta.rows {
            return Err(UpdateError::ClusterFull);
        }
        let upb = self.artifacts.meta.urls_per_batch as usize;
        if row.is_multiple_of(upb) {
            // The slot would start a new batch; batch numbering is
            // arithmetic per cluster, so this needs a re-shard.
            return Err(UpdateError::BatchFull);
        }

        // 1. Ranking index: matrix slot + incremental hint refresh.
        let quant = self.config.quantizer();
        let q_zp = quant.to_zp(&reduced);
        self.ranking.add_document(cluster, row, &q_zp);

        // 2. Mirror into the batch artifacts (kept consistent for
        //    evaluation and for URL-service rebuilds).
        let doc = self.artifacts.reduced_embeddings.len() as u32;
        let d = self.config.d_reduced;
        self.artifacts.rank_matrix.row_mut(row)[cluster * d..cluster * d + d]
            .copy_from_slice(&q_zp);
        self.artifacts.reduced_embeddings.push(reduced);
        self.artifacts.clustering.members[cluster].push(doc);
        self.artifacts.clustering.primary.push(cluster as u32);
        self.artifacts.meta.cluster_sizes[cluster] += 1;
        let pos = self.artifacts.cluster_offsets[cluster] as usize + row;
        self.artifacts.order.insert(pos, doc);
        for off in self.artifacts.cluster_offsets[cluster + 1..].iter_mut() {
            *off += 1;
        }

        // 3. URL batch: append to the cluster's last batch and rebuild
        //    the (small) URL service; its PIR hint depends on every
        //    record's padded length, and tokens are stale regardless.
        let batch_idx = self.artifacts.meta.batch_start[cluster] as usize + row / upb;
        let mut entries = self.artifacts.url_batches[batch_idx]
            .decode()
            .expect("own batches decode");
        entries.push((doc, url.to_owned()));
        let borrowed: Vec<(u32, &str)> =
            entries.iter().map(|(d, u)| (*d, u.as_str())).collect();
        self.artifacts.url_batches[batch_idx] = CompressedUrlBatch::build(&borrowed);
        self.url = UrlService::build(&self.config, &self.artifacts);

        Ok(UpdateReport {
            doc,
            cluster,
            row,
            metadata_bytes: self.metadata_update_bytes(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiptoe_corpus::synth::{generate, CorpusConfig};
    use tiptoe_embed::text::TextEmbedder;

    use crate::config::TiptoeConfig;

    fn build() -> (tiptoe_corpus::synth::Corpus, TiptoeInstance<TextEmbedder>) {
        let corpus = generate(&CorpusConfig::small(200, 77), 5);
        let config = TiptoeConfig::test_small(200, 77);
        let embedder = TextEmbedder::new(config.d_embed, 77, 0);
        let instance = TiptoeInstance::build(&config, embedder, &corpus);
        (corpus, instance)
    }

    #[test]
    fn added_document_is_privately_searchable() {
        let (_, mut instance) = build();
        let text = "zzap unique incremental document about lunar gardening routines";
        let url = "https://www.example.com/fresh/lunar-gardening";
        // Retry with salted text if the first target cluster is full
        // (possible on tiny corpora).
        let mut report = None;
        for salt in 0..40 {
            let salted = format!("{text} v{salt}");
            match instance.add_document(&salted, url) {
                Ok(r) => {
                    report = Some((r, salted));
                    break;
                }
                Err(_) => continue,
            }
        }
        let (report, salted) = report.expect("some salt finds a cluster with room");

        // A *fresh* client (new metadata, new tokens) finds the doc.
        let mut client = instance.new_client(9);
        let results = client.search(&instance, &salted, 20);
        assert!(
            results.hits.iter().any(|h| h.doc == report.doc && h.url == url),
            "new document not retrieved: {:?}",
            results.hits
        );
    }

    /// A raw embedding whose PCA projection lands at a cluster with a
    /// free slot (deterministic: lift the centroid).
    fn raw_probe_for_free_slot(instance: &TiptoeInstance<TextEmbedder>) -> Vec<f32> {
        let meta = &instance.artifacts.meta;
        let upb = meta.urls_per_batch as usize;
        let cluster = (0..meta.c)
            .find(|&c| {
                let len = instance.artifacts.clustering.members[c].len();
                len < meta.rows && !len.is_multiple_of(upb)
            })
            .expect("some cluster has room");
        // Lift the *client-visible* centroid so the assignment rule
        // (which uses the compressed cache) picks this cluster.
        instance.artifacts.pca.lift(&meta.centroids[cluster])
    }

    #[test]
    fn incremental_hint_matches_full_rebuild() {
        let (corpus, mut instance) = build();
        let url = "https://www.example.com/fresh/tidal-synths";
        let probe = raw_probe_for_free_slot(&instance);
        instance
            .add_document_embedding(&probe, url)
            .expect("centroid probe lands in a cluster with room");

        // Rebuild the ranking service from the mutated artifacts: the
        // incremental state must answer queries identically.
        let rebuilt = crate::ranking::RankingService::build(&instance.config, &instance.artifacts);
        let mut rng = tiptoe_math::rng::seeded_rng(5);
        use rand::Rng;
        let uh = instance.ranking.underhood();
        let key = tiptoe_underhood::ClientKey::generate(uh, instance.config.rank_lwe.n, &mut rng);
        let v: Vec<u64> = (0..instance.ranking.upload_dim())
            .map(|_| rng.gen_range(0..instance.config.rank_lwe.p))
            .collect();
        let ct = uh.encrypt_query::<u64, _>(&key, &instance.ranking.public_matrix(), &v, &mut rng);
        let (incremental, _) = instance.ranking.answer(&ct);
        let (full, _) = rebuilt.answer(&ct);
        assert_eq!(incremental, full, "incremental index diverged from a full rebuild");
        drop(corpus);
    }

    #[test]
    fn full_cluster_is_reported_not_corrupted() {
        let (_, mut instance) = build();
        // Fill whatever cluster the probe lands in until it errors.
        let mut errors = 0;
        for i in 0..500 {
            let text = format!("filler doc {i} w1 w2 w3");
            match instance.add_document(&text, "https://x.example/f") {
                Ok(_) => {}
                Err(UpdateError::ClusterFull) | Err(UpdateError::BatchFull) => {
                    errors += 1;
                    break;
                }
            }
        }
        assert!(errors > 0, "capacity limits must eventually surface");
        // The instance still answers queries after the failed update.
        let mut client = instance.new_client(3);
        let results = client.search(&instance, "w1 w2 w3", 5);
        assert!(!results.hits.is_empty());
    }
}
