//! Private recommendations (paper §9, "Private recommendations").
//!
//! "In a recommendation system, the client can hold a vector
//! representing its profile or its recently viewed items. Then, with
//! Tiptoe's private nearest-neighbor search protocol, the client can
//! privately retrieve similar items from the recommendation system's
//! servers." This module is exactly that: items are embedded, the
//! catalog is clustered into the Figure 3 matrix, and the profile
//! vector drives the same private ranking protocol — the server never
//! learns the profile or which items were recommended.

use rand::Rng;
use tiptoe_cluster::{cluster_documents, Clustering};
use tiptoe_embed::vector::normalize;
use tiptoe_math::matrix::Mat;
use tiptoe_underhood::{ClientKey, EncryptedSecret};

use crate::config::TiptoeConfig;
use crate::ranking::RankingService;

/// A catalog item.
#[derive(Debug, Clone)]
pub struct Item {
    /// Item identifier.
    pub id: u32,
    /// Display name.
    pub name: String,
    /// Item embedding (unit-normalized on ingestion).
    pub embedding: Vec<f32>,
}

/// A privately-served recommendation engine.
pub struct RecommendationEngine {
    service: RankingService,
    clustering: Clustering,
    items: Vec<Item>,
    config: TiptoeConfig,
}

impl RecommendationEngine {
    /// Builds the engine over a catalog.
    ///
    /// # Panics
    ///
    /// Panics if the catalog is empty or embedding dimensions differ
    /// from `config.d_reduced`.
    pub fn build(config: &TiptoeConfig, mut items: Vec<Item>) -> Self {
        assert!(!items.is_empty(), "empty catalog");
        let d = config.d_reduced;
        assert!(
            items.iter().all(|i| i.embedding.len() == d),
            "item embeddings must have dimension {d}"
        );
        for item in items.iter_mut() {
            normalize(&mut item.embedding);
        }
        let embeddings: Vec<Vec<f32>> = items.iter().map(|i| i.embedding.clone()).collect();
        let clustering = cluster_documents(&embeddings, &config.cluster);

        // Figure 3 layout over the catalog.
        let quant = config.quantizer();
        let c = clustering.num_clusters();
        let rows = clustering.max_cluster_size();
        let mut matrix: Mat<u32> = Mat::zeros(rows, d * c);
        for (ci, members) in clustering.members.iter().enumerate() {
            for (row, &item) in members.iter().enumerate() {
                let q = quant.to_zp(&items[item as usize].embedding);
                matrix.row_mut(row)[ci * d..ci * d + d].copy_from_slice(&q);
            }
        }
        let service = RankingService::from_matrix(config, &matrix);
        Self { service, clustering, items, config: config.clone() }
    }

    /// The ranking service (exposed so clients can share tokens).
    pub fn service(&self) -> &RankingService {
        &self.service
    }

    /// The catalog size.
    pub fn num_items(&self) -> usize {
        self.items.len()
    }

    /// Privately retrieves the `k` catalog items nearest to `profile`.
    /// The engine sees only ciphertexts; cluster selection happens
    /// client-side against the (public) centroids.
    ///
    /// # Panics
    ///
    /// Panics if `profile.len() != d`.
    pub fn recommend<R: Rng + ?Sized>(
        &self,
        key: &ClientKey,
        profile: &[f32],
        k: usize,
        rng: &mut R,
    ) -> Vec<(u32, String, f32)> {
        let d = self.config.d_reduced;
        assert_eq!(profile.len(), d, "profile dimension mismatch");
        let mut p = profile.to_vec();
        normalize(&mut p);
        let cluster = self.clustering.nearest_centroid(&p);

        // Offline: token. Online: encrypted profile query.
        let uh = self.service.underhood();
        let es = EncryptedSecret::encrypt(uh, key, rng);
        let (token, _) = self.service.generate_token(&es);
        let mut decoded = uh.decode_token::<u64>(key, &token);

        let quant = self.config.quantizer();
        let p_zp = quant.to_zp(&p);
        let mut v = vec![0u64; self.service.upload_dim()];
        for (j, &x) in p_zp.iter().enumerate() {
            v[cluster * d + j] = x as u64;
        }
        let ct = uh.encrypt_query::<u64, _>(key, &self.service.public_matrix(), &v, rng);
        let (applied, _) = self.service.answer(&ct);
        let raw = uh.decrypt(&mut decoded, &applied);

        let members = &self.clustering.members[cluster];
        let scale2 = (quant.encoder().scale() * quant.encoder().scale()) as f32;
        let mut scored: Vec<(u32, String, f32)> = members
            .iter()
            .enumerate()
            .map(|(row, &item)| {
                let score = quant.encoder().decode_signed(raw[row]) as f32 / scale2;
                (self.items[item as usize].id, self.items[item as usize].name.clone(), score)
            })
            .collect();
        scored.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(k);
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiptoe_math::rng::seeded_rng;

    fn catalog(n: usize, d: usize, seed: u64) -> Vec<Item> {
        let mut rng = seeded_rng(seed);
        (0..n)
            .map(|i| {
                let mut e: Vec<f32> = (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                normalize(&mut e);
                Item { id: i as u32, name: format!("item-{i}"), embedding: e }
            })
            .collect()
    }

    #[test]
    fn profile_retrieves_similar_items_privately() {
        let config = TiptoeConfig::test_small(120, 33);
        let items = catalog(120, config.d_reduced, 1);
        let engine = RecommendationEngine::build(&config, items.clone());
        let mut rng = seeded_rng(2);
        let key = ClientKey::generate(engine.service().underhood(), config.rank_lwe.n, &mut rng);

        // Profile = a slightly perturbed catalog item: that item should
        // top the recommendations.
        let target = 17usize;
        let mut profile = items[target].embedding.clone();
        profile[0] += 0.05;
        let recs = engine.recommend(&key, &profile, 5, &mut rng);
        assert_eq!(recs.len().min(5), recs.len());
        assert_eq!(recs[0].0, target as u32, "top rec {:?}", recs[0]);
        for w in recs.windows(2) {
            assert!(w[0].2 >= w[1].2);
        }
    }

    #[test]
    fn recommendations_carry_names() {
        let config = TiptoeConfig::test_small(60, 34);
        let items = catalog(60, config.d_reduced, 3);
        let engine = RecommendationEngine::build(&config, items);
        let mut rng = seeded_rng(4);
        let key = ClientKey::generate(engine.service().underhood(), config.rank_lwe.n, &mut rng);
        let profile = vec![0.1f32; config.d_reduced];
        let recs = engine.recommend(&key, &profile, 3, &mut rng);
        assert!(!recs.is_empty());
        assert!(recs[0].1.starts_with("item-"));
    }
}
