//! A complete Tiptoe deployment: both services plus the client-facing
//! metadata, built from a corpus in one call.

use tiptoe_corpus::synth::Corpus;
use tiptoe_embed::Embedder;
use tiptoe_net::Transcript;

use crate::batch::{run_batch_jobs, IndexArtifacts};
use crate::client::TiptoeClient;
use crate::config::TiptoeConfig;
use crate::ranking::RankingService;
use crate::url::UrlService;

/// A running deployment (simulated on one machine; see `tiptoe-net`).
pub struct TiptoeInstance<E: Embedder> {
    /// Deployment configuration.
    pub config: TiptoeConfig,
    /// The embedding model (served to clients).
    pub embedder: E,
    /// Batch-job outputs (the server-side index state).
    pub artifacts: IndexArtifacts,
    /// The private ranking service (§4).
    pub ranking: RankingService,
    /// The URL service (§5).
    pub url: UrlService,
    /// Client↔service traffic ledger.
    pub transcript: Transcript,
}

impl<E: Embedder> TiptoeInstance<E> {
    /// Runs the batch jobs and brings up both services.
    ///
    /// # Panics
    ///
    /// Panics on an empty corpus or inconsistent configuration.
    pub fn build(config: &TiptoeConfig, embedder: E, corpus: &Corpus) -> Self {
        let artifacts = run_batch_jobs(config, &embedder, corpus);
        Self::from_artifacts(config, embedder, artifacts)
    }

    /// Brings up a deployment over precomputed *document* embeddings
    /// (e.g. CLIP image latents for text-to-image search, §7), with
    /// `embedder` as the client-side query tower.
    pub fn build_with_embeddings(
        config: &TiptoeConfig,
        embedder: E,
        corpus: &Corpus,
        doc_embeddings: Vec<Vec<f32>>,
    ) -> Self {
        let model_bytes = embedder.model_bytes();
        let artifacts = crate::batch::run_batch_jobs_from_embeddings(
            config,
            doc_embeddings,
            std::time::Duration::ZERO,
            corpus,
            model_bytes,
        );
        Self::from_artifacts(config, embedder, artifacts)
    }

    fn from_artifacts(config: &TiptoeConfig, embedder: E, mut artifacts: IndexArtifacts) -> Self {
        // Observability: `TIPTOE_TRACE=…` enables tracing with no code
        // change; an explicit config knob overrides the ambient env.
        tiptoe_obs::init_from_env();
        if let Some(path) = &config.trace_path {
            tiptoe_obs::enable_with_path(path.clone());
        }
        // Span sampling: the env sets the ambient default; an explicit
        // config knob above 1 overrides it (1 leaves the ambient rate).
        if config.trace_sample > 1 {
            tiptoe_obs::set_span_sample(config.trace_sample);
        }
        let ranking = RankingService::build(config, &artifacts);
        let url = UrlService::build(config, &artifacts);
        artifacts.report.crypto = ranking.preproc_time + url.preproc_time;
        Self {
            config: config.clone(),
            embedder,
            artifacts,
            ranking,
            url,
            transcript: Transcript::new(),
        }
    }

    /// Creates a client with fresh keys, accounting for its one-time
    /// setup download (model + centroids + PCA).
    pub fn new_client(&self, seed: u64) -> TiptoeClient {
        TiptoeClient::new(self, seed)
    }

    /// Brings up the serving plane over this deployment's services:
    /// one batch-coalescing lane per ranking shard plus one for the
    /// URL server, under the configured [`TiptoeConfig::coalesce`]
    /// policy, with admission control and circuit breakers per
    /// [`TiptoeConfig::admission`] and [`TiptoeConfig::breaker`] (both
    /// disabled by default). The plane borrows the services, so drop
    /// it before any mutable corpus update.
    pub fn serving_plane(&self) -> crate::serving::ServingPlane<'_> {
        crate::serving::ServingPlane::with_overload(
            &self.ranking,
            &self.url,
            self.config.coalesce,
            self.config.admission,
            self.config.breaker,
        )
    }

    /// Total server-side index storage across both services.
    pub fn server_storage_bytes(&self) -> u64 {
        self.ranking.server_storage_bytes() + self.url.storage_bytes()
    }

    /// Publishes updated centroids/metadata after a corpus change
    /// (§3.2 "Handling updates to the corpus"): returns the bytes a
    /// client must re-download.
    pub fn metadata_update_bytes(&self) -> u64 {
        self.artifacts.meta.centroid_bytes
            + (self.artifacts.meta.cluster_sizes.len() as u64) * 8
    }
}
