//! Query-throughput machinery (paper §8.1: "to measure query
//! throughput, we simulate running up to 19 clients … which generates
//! enough load to saturate the servers"; Table 7's queries/s rows).
//!
//! Two pieces:
//!
//! - [`RankingCluster`] — the §4.3 coordinator/worker runtime over a
//!   real message-passing pool ([`tiptoe_net::WorkerPool`]): ciphertext
//!   chunks travel over channels to long-lived worker threads, partial
//!   products return, and the coordinator sums them. Results are
//!   bit-identical to the sequential [`RankingService::answer`].
//! - [`measure_online_throughput`] — a closed-loop multi-client driver
//!   that prefetches tokens, then hammers the online path and reports
//!   sustained queries/s.

use std::sync::Arc;
use std::time::{Duration, Instant};

use tiptoe_corpus::synth::Corpus;
use tiptoe_embed::Embedder;
use tiptoe_lwe::LweCiphertext;
use tiptoe_math::zq::Word;
use tiptoe_net::WorkerPool;

use crate::instance::TiptoeInstance;
use crate::ranking::RankingService;

/// A ranking service deployed across worker threads with channel-borne
/// requests (the message-flow shape of the paper's 40-machine text
/// deployment).
pub struct RankingCluster {
    service: Arc<RankingService>,
    pool: WorkerPool<Vec<Vec<u64>>, Vec<Vec<u64>>>,
}

impl RankingCluster {
    /// Spawns one worker thread per shard. Each worker answers whole
    /// *batches* of ciphertext chunks per message via the batched
    /// kernel ([`RankingService::shard_answer_many`]), so a shard row
    /// is read from DRAM once per batch instead of once per query.
    pub fn spawn(service: Arc<RankingService>) -> Self {
        let for_pool = Arc::clone(&service);
        let pool = WorkerPool::spawn(service.num_shards(), move |idx, chunks: Vec<Vec<u64>>| {
            for_pool.shard_answer_many(idx, &chunks)
        });
        Self { service, pool }
    }

    /// Coordinator: splits the ciphertext by shard columns, fans the
    /// chunks out over channels, and sums the partial answers.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext dimension differs from `d·C`.
    pub fn answer(&self, ct: &LweCiphertext<u64>) -> Vec<u64> {
        self.answer_batch(std::slice::from_ref(ct)).pop().expect("one answer per ciphertext")
    }

    /// Batched coordinator: answers `B` concurrent queries in one
    /// scatter/gather round. Each shard receives all `B` of its column
    /// chunks in a single message and scans its matrix once for the
    /// whole batch; every answer is bit-identical to the sequential
    /// per-query path.
    ///
    /// # Panics
    ///
    /// Panics if any ciphertext dimension differs from `d·C`.
    pub fn answer_batch(&self, cts: &[LweCiphertext<u64>]) -> Vec<Vec<u64>> {
        if cts.is_empty() {
            return Vec::new();
        }
        for ct in cts {
            assert_eq!(ct.c.len(), self.service.upload_dim(), "ciphertext dimension mismatch");
        }
        let requests: Vec<Vec<Vec<u64>>> = (0..self.service.num_shards())
            .map(|idx| {
                let (start, end) = self.service.shard_columns(idx);
                cts.iter().map(|ct| ct.c[start..end].to_vec()).collect()
            })
            .collect();
        let parts = self.pool.scatter_gather(requests);
        let mut totals = vec![vec![0u64; self.service.rows()]; cts.len()];
        for shard_answers in parts {
            for (total, part) in totals.iter_mut().zip(shard_answers.iter()) {
                for (t, p) in total.iter_mut().zip(part.iter()) {
                    *t = t.wadd(*p);
                }
            }
        }
        totals
    }

    /// Shuts down the worker threads.
    pub fn shutdown(self) {
        self.pool.shutdown();
    }
}

/// Outcome of a throughput run.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputReport {
    /// Total queries completed.
    pub queries: usize,
    /// Wall-clock time of the measured (online) phase.
    pub wall: Duration,
    /// Sustained online queries per second.
    pub qps: f64,
}

/// Runs `clients` concurrent closed-loop clients, each issuing
/// `queries_per_client` online searches with pre-fetched tokens, and
/// reports the sustained rate. (Token prefetch is excluded from the
/// measured window, matching the paper's split of token-generation and
/// ranking throughput.)
///
/// # Panics
///
/// Panics if `clients == 0`, `queries_per_client == 0`, or the corpus
/// has no benchmark queries.
pub fn measure_online_throughput<E: Embedder + Send + Sync>(
    instance: &TiptoeInstance<E>,
    corpus: &Corpus,
    clients: usize,
    queries_per_client: usize,
) -> ThroughputReport {
    assert!(clients > 0 && queries_per_client > 0, "degenerate load");
    assert!(!corpus.queries.is_empty(), "no benchmark queries");

    // Prefetch phase (unmeasured).
    let mut prepared: Vec<_> = (0..clients)
        .map(|i| {
            let mut client = instance.new_client(1000 + i as u64);
            for _ in 0..queries_per_client {
                client.fetch_token(instance);
            }
            client
        })
        .collect();

    // Measured online phase: clients run concurrently.
    let start = Instant::now();
    std::thread::scope(|scope| {
        for (i, client) in prepared.iter_mut().enumerate() {
            let queries = &corpus.queries;
            scope.spawn(move || {
                for k in 0..queries_per_client {
                    let q = &queries[(i + k) % queries.len()];
                    let results = client.search(instance, &q.text, 10);
                    std::hint::black_box(results);
                }
            });
        }
    });
    let wall = start.elapsed();
    let queries = clients * queries_per_client;
    ThroughputReport { queries, wall, qps: queries as f64 / wall.as_secs_f64() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use tiptoe_corpus::synth::{generate, CorpusConfig};
    use tiptoe_embed::text::TextEmbedder;
    use tiptoe_math::rng::seeded_rng;
    use tiptoe_underhood::ClientKey;

    use crate::batch::run_batch_jobs;
    use crate::config::TiptoeConfig;

    #[test]
    fn cluster_answers_match_sequential_service() {
        let corpus = generate(&CorpusConfig::small(150, 71), 0);
        let config = TiptoeConfig::test_small(150, 71);
        let embedder = TextEmbedder::new(config.d_embed, 71, 0);
        let artifacts = run_batch_jobs(&config, &embedder, &corpus);
        let service = Arc::new(RankingService::build(&config, &artifacts));
        let cluster = RankingCluster::spawn(Arc::clone(&service));

        let mut rng = seeded_rng(1);
        let uh = service.underhood();
        let key = ClientKey::generate(uh, config.rank_lwe.n, &mut rng);
        for _ in 0..3 {
            let v: Vec<u64> =
                (0..service.upload_dim()).map(|_| rng.gen_range(0..config.rank_lwe.p)).collect();
            let ct = uh.encrypt_query::<u64, _>(&key, &service.public_matrix(), &v, &mut rng);
            let (sequential, _) = service.answer(&ct);
            let concurrent = cluster.answer(&ct);
            assert_eq!(sequential, concurrent, "cluster must be bit-identical");
        }
        cluster.shutdown();
    }

    #[test]
    fn batched_cluster_answers_match_sequential_service() {
        let corpus = generate(&CorpusConfig::small(150, 73), 0);
        let config = TiptoeConfig::test_small(150, 73);
        let embedder = TextEmbedder::new(config.d_embed, 73, 0);
        let artifacts = run_batch_jobs(&config, &embedder, &corpus);
        let service = Arc::new(RankingService::build(&config, &artifacts));
        let cluster = RankingCluster::spawn(Arc::clone(&service));

        let mut rng = seeded_rng(2);
        let uh = service.underhood();
        let key = ClientKey::generate(uh, config.rank_lwe.n, &mut rng);
        let cts: Vec<_> = (0..3)
            .map(|_| {
                let v: Vec<u64> = (0..service.upload_dim())
                    .map(|_| rng.gen_range(0..config.rank_lwe.p))
                    .collect();
                uh.encrypt_query::<u64, _>(&key, &service.public_matrix(), &v, &mut rng)
            })
            .collect();
        let batched = cluster.answer_batch(&cts);
        assert_eq!(batched.len(), cts.len());
        for (ct, got) in cts.iter().zip(batched.iter()) {
            let (sequential, _) = service.answer(ct);
            assert_eq!(&sequential, got, "batched answers must be bit-identical");
        }
        assert!(cluster.answer_batch(&[]).is_empty());
        cluster.shutdown();
    }

    #[test]
    fn throughput_driver_completes_all_queries() {
        let corpus = generate(&CorpusConfig::small(120, 72), 6);
        let config = TiptoeConfig::test_small(120, 72);
        let embedder = TextEmbedder::new(config.d_embed, 72, 0);
        let instance = TiptoeInstance::build(&config, embedder, &corpus);
        let report = measure_online_throughput(&instance, &corpus, 2, 2);
        assert_eq!(report.queries, 4);
        assert!(report.qps > 0.0);
        assert!(report.wall > Duration::ZERO);
    }
}
