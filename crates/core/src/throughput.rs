//! Query-throughput machinery (paper §8.1: "to measure query
//! throughput, we simulate running up to 19 clients … which generates
//! enough load to saturate the servers"; Table 7's queries/s rows).
//!
//! The load generator runs `clients` concurrent closed-loop clients
//! against the instance, either straight at the services (every query
//! pays its own database scans) or through the serving plane
//! ([`crate::serving::ServingPlane`]), where concurrently in-flight
//! queries are coalesced into shared scans. Both modes return
//! bit-identical results; only sustained queries/s and the latency
//! distribution differ.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use tiptoe_corpus::synth::Corpus;
use tiptoe_embed::Embedder;

use crate::instance::TiptoeInstance;

/// Outcome of a throughput run.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputReport {
    /// Total queries completed.
    pub queries: usize,
    /// Wall-clock time of the measured (online) phase.
    pub wall: Duration,
    /// Sustained online queries per second.
    pub qps: f64,
    /// Median per-query latency (client-observed, this process).
    pub p50: Duration,
    /// 95th-percentile per-query latency.
    pub p95: Duration,
    /// 99th-percentile per-query latency.
    pub p99: Duration,
}

/// Nearest-rank percentile over an unsorted latency sample.
fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Runs `clients` concurrent closed-loop clients, each issuing
/// `queries_per_client` online searches with pre-fetched tokens, and
/// reports the sustained rate plus latency percentiles. (Token
/// prefetch is excluded from the measured window, matching the
/// paper's split of token-generation and ranking throughput.)
///
/// # Panics
///
/// Panics if `clients == 0`, `queries_per_client == 0`, or the corpus
/// has no benchmark queries.
pub fn measure_online_throughput<E: Embedder + Send + Sync>(
    instance: &TiptoeInstance<E>,
    corpus: &Corpus,
    clients: usize,
    queries_per_client: usize,
) -> ThroughputReport {
    run_load(instance, corpus, clients, queries_per_client, false)
}

/// [`measure_online_throughput`] through the serving plane: the same
/// closed-loop load, but every query's shard compute goes through the
/// plane's batch coalescers, so concurrent clients share database
/// scans. Results are bit-identical; this measures the speedup.
///
/// # Panics
///
/// Panics if `clients == 0`, `queries_per_client == 0`, or the corpus
/// has no benchmark queries.
pub fn measure_online_throughput_coalesced<E: Embedder + Send + Sync>(
    instance: &TiptoeInstance<E>,
    corpus: &Corpus,
    clients: usize,
    queries_per_client: usize,
) -> ThroughputReport {
    run_load(instance, corpus, clients, queries_per_client, true)
}

fn run_load<E: Embedder + Send + Sync>(
    instance: &TiptoeInstance<E>,
    corpus: &Corpus,
    clients: usize,
    queries_per_client: usize,
    coalesced: bool,
) -> ThroughputReport {
    assert!(clients > 0 && queries_per_client > 0, "degenerate load");
    assert!(!corpus.queries.is_empty(), "no benchmark queries");

    // Prefetch phase (unmeasured).
    let mut prepared: Vec<_> = (0..clients)
        .map(|i| {
            let mut client = instance.new_client(1000 + i as u64);
            for _ in 0..queries_per_client {
                client.fetch_token(instance);
            }
            client
        })
        .collect();

    // Measured online phase: clients run concurrently.
    let plane = coalesced.then(|| instance.serving_plane());
    let latencies = Mutex::new(Vec::with_capacity(clients * queries_per_client));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for (i, client) in prepared.iter_mut().enumerate() {
            let queries = &corpus.queries;
            let plane = plane.as_ref();
            let latencies = &latencies;
            scope.spawn(move || {
                let mut mine = Vec::with_capacity(queries_per_client);
                for k in 0..queries_per_client {
                    let q = &queries[(i + k) % queries.len()];
                    let t0 = Instant::now();
                    let results = match plane {
                        Some(plane) => client.search_served(instance, &q.text, 10, plane),
                        None => client.search(instance, &q.text, 10),
                    };
                    mine.push(t0.elapsed());
                    std::hint::black_box(results);
                }
                latencies.lock().expect("latency lock").extend(mine);
            });
        }
    });
    let wall = start.elapsed();
    let queries = clients * queries_per_client;
    let mut sample = latencies.into_inner().expect("latency lock");
    sample.sort_unstable();
    ThroughputReport {
        queries,
        wall,
        qps: queries as f64 / wall.as_secs_f64(),
        p50: percentile(&sample, 0.50),
        p95: percentile(&sample, 0.95),
        p99: percentile(&sample, 0.99),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use tiptoe_corpus::synth::{generate, CorpusConfig};
    use tiptoe_embed::text::TextEmbedder;
    use tiptoe_math::rng::seeded_rng;
    use tiptoe_underhood::ClientKey;

    use crate::config::TiptoeConfig;

    #[test]
    fn plane_answers_match_sequential_service() {
        let corpus = generate(&CorpusConfig::small(150, 71), 0);
        let config = TiptoeConfig::test_small(150, 71);
        let embedder = TextEmbedder::new(config.d_embed, 71, 0);
        let instance = TiptoeInstance::build(&config, embedder, &corpus);
        let service = &instance.ranking;
        let plane = instance.serving_plane();

        let mut rng = seeded_rng(1);
        let uh = service.underhood();
        let key = ClientKey::generate(uh, config.rank_lwe.n, &mut rng);
        for _ in 0..3 {
            let v: Vec<u64> =
                (0..service.upload_dim()).map(|_| rng.gen_range(0..config.rank_lwe.p)).collect();
            let ct = uh.encrypt_query::<u64, _>(&key, &service.public_matrix(), &v, &mut rng);
            let (sequential, _) = service.answer(&ct);
            let (coalesced, _) = service.answer_via(&ct, Some(&plane));
            assert_eq!(sequential, coalesced, "plane must be bit-identical");
        }
    }

    #[test]
    fn coalesced_searches_match_direct_searches() {
        let corpus = generate(&CorpusConfig::small(150, 73), 0);
        let config = TiptoeConfig::test_small(150, 73);
        let embedder = TextEmbedder::new(config.d_embed, 73, 0);
        let instance = TiptoeInstance::build(&config, embedder, &corpus);
        let plane = instance.serving_plane();

        // Same client seed ⇒ same keys, tokens, and query randomness;
        // the only difference is the serving mode.
        let mut direct = instance.new_client(9);
        let mut served = instance.new_client(9);
        for q in corpus.queries.iter().take(2) {
            let a = direct.search(&instance, &q.text, 10);
            let b = served.search_served(&instance, &q.text, 10, &plane);
            assert_eq!(a.cluster, b.cluster);
            assert_eq!(a.hits, b.hits, "coalesced search must be bit-identical");
        }
    }

    #[test]
    fn throughput_driver_completes_all_queries() {
        let corpus = generate(&CorpusConfig::small(120, 72), 6);
        let config = TiptoeConfig::test_small(120, 72);
        let embedder = TextEmbedder::new(config.d_embed, 72, 0);
        let instance = TiptoeInstance::build(&config, embedder, &corpus);
        let report = measure_online_throughput(&instance, &corpus, 2, 2);
        assert_eq!(report.queries, 4);
        assert!(report.qps > 0.0);
        assert!(report.wall > Duration::ZERO);
        assert!(report.p50 <= report.p95 && report.p95 <= report.p99);
        assert!(report.p99 > Duration::ZERO);

        let coalesced = measure_online_throughput_coalesced(&instance, &corpus, 2, 2);
        assert_eq!(coalesced.queries, 4);
        assert!(coalesced.qps > 0.0);
    }
}
