//! Tiptoe's private ranking service (paper §4).
//!
//! The service holds the Figure 3 matrix `M` (one `d`-wide column
//! block per cluster), vertically partitioned across `W` worker shards
//! (§4.3): worker `w` stores `M_w` and the matching rows of the public
//! LWE matrix `A`. Per query, the coordinator splits the client's
//! ciphertext `ct = (ct_1 ∥ … ∥ ct_W)`, each worker computes
//! `a_w = M_w · ct_w`, and the coordinator returns `Σ_w a_w`.
//!
//! Token generation (§6.3) follows the same sharding: each worker
//! evaluates `Enc2(hint_w · s)` and the coordinator combines partial
//! tokens by ciphertext addition.

use std::time::{Duration, Instant};

use tiptoe_lwe::{scheme, LweCiphertext, MatrixA};
use tiptoe_math::matrix::Mat;
use tiptoe_math::nibble::NibbleMat;
use tiptoe_math::rng::derive_seed;
use tiptoe_math::wire::{WireError, WireReader, WireWriter};
use tiptoe_math::zq::Word;
use tiptoe_net::{
    dispatch, DeadlineBudget, DispatchContext, Dispatched, FaultPlan, FaultPolicy, Ledger,
    ParallelTiming, ServeError, Service,
};
use tiptoe_underhood::{
    combine_partial_tokens, EncryptedSecret, ExpandedSecret, QueryToken, ServerHint, Underhood,
};

use crate::batch::IndexArtifacts;
use crate::config::{Parallelism, TiptoeConfig};
use crate::serving::ServingPlane;

/// One shard's database: plain `Z_p` residues or packed signed
/// nibbles (8× smaller; power-of-two `p` only).
enum ShardDb {
    Plain(Mat<u32>),
    Packed(NibbleMat),
}

impl ShardDb {
    fn cols(&self) -> usize {
        match self {
            ShardDb::Plain(m) => m.cols(),
            ShardDb::Packed(m) => m.cols(),
        }
    }

    fn apply(&self, ct: &LweCiphertext<u64>) -> Vec<u64> {
        match self {
            ShardDb::Plain(m) => scheme::apply(m, ct),
            ShardDb::Packed(m) => scheme::apply_packed(m, ct),
        }
    }

    /// Answers a batch of ciphertexts in one pass over the shard
    /// (bit-identical to per-ciphertext [`ShardDb::apply`]).
    fn apply_many(&self, cts: &[LweCiphertext<u64>], num_threads: usize) -> Vec<Vec<u64>> {
        match self {
            ShardDb::Plain(m) => scheme::apply_many(m, cts, num_threads),
            ShardDb::Packed(m) => scheme::apply_packed_many(m, cts, num_threads),
        }
    }

    fn storage_bytes(&self) -> u64 {
        match self {
            ShardDb::Plain(m) => (m.len() * std::mem::size_of::<u32>()) as u64,
            ShardDb::Packed(m) => m.storage_bytes() as u64,
        }
    }
}

/// One ranking worker: its vertical matrix shard plus crypto state.
struct RankingShard {
    /// Columns `[col_start, col_start + db.cols())` of the full matrix.
    col_start: usize,
    db: ShardDb,
    /// The raw SimplePIR hint (kept for incremental corpus updates).
    hint: Mat<u64>,
    server_hint: ServerHint,
}

/// The sharded ranking service.
pub struct RankingService {
    shards: Vec<RankingShard>,
    uh: Underhood,
    a: MatrixA,
    rows: usize,
    cols: usize,
    /// Embedding dimension: each cluster owns a contiguous `d`-column
    /// block, so shard/cluster bookkeeping divides by `d`.
    d: usize,
    parallelism: Parallelism,
    /// Wall-clock spent in cryptographic preprocessing at build time.
    pub preproc_time: Duration,
}

/// The ranking fan-out as a typed [`Service`]: shard `w` slices its
/// column range out of the query ciphertext, applies `M_w` (directly
/// or through a coalescing lane of the serving plane), and ships the
/// partial product; the coordinator wrapping-adds the parts. Failed
/// shards contribute zero, so their clusters decode to garbage the
/// client discards.
struct RankAnswer<'a> {
    svc: &'a RankingService,
    via: Option<&'a ServingPlane<'a>>,
    /// The query's deadline budget, when admission control issued one:
    /// coalesced shard compute then runs under `submit_within` so a
    /// stalled lane surfaces as a typed error instead of blocking.
    budget: Option<&'a DeadlineBudget>,
}

impl Service for RankAnswer<'_> {
    type Request = LweCiphertext<u64>;
    type Part = Vec<u64>;
    type Response = Vec<u64>;

    fn outer_span(&self) -> &'static str {
        "rank.answer"
    }

    fn shard_span(&self) -> &'static str {
        "rank.shard"
    }

    fn num_shards(&self) -> usize {
        self.svc.shards.len()
    }

    fn serve(&self, idx: usize, ct: &LweCiphertext<u64>) -> Result<Vec<u8>, ServeError> {
        let shard = &self.svc.shards[idx];
        let chunk = ct.c[shard.col_start..shard.col_start + shard.db.cols()].to_vec();
        let part = match (self.via, self.budget) {
            (Some(plane), Some(b)) => plane.rank_chunk_within(idx, chunk, b.check()?)?,
            (Some(plane), None) => plane.rank_chunk(idx, chunk),
            (None, _) => shard.db.apply(&LweCiphertext { c: chunk }),
        };
        let mut w = WireWriter::new();
        w.put_u64_slice(&part);
        Ok(w.finish())
    }

    fn parse(&self, _idx: usize, payload: &[u8]) -> Result<Vec<u64>, WireError> {
        let mut r = WireReader::new(payload);
        let part = r.get_u64_slice()?;
        r.finish()?;
        if part.len() != self.svc.rows {
            return Err(WireError::Invalid("shard answer has the wrong row count"));
        }
        Ok(part)
    }

    fn combine(&self, parts: Vec<Option<Vec<u64>>>) -> Vec<u64> {
        let mut total = vec![0u64; self.svc.rows];
        for part in parts.into_iter().flatten() {
            for (t, p) in total.iter_mut().zip(part.iter()) {
                *t = t.wadd(*p);
            }
        }
        total
    }

    fn cluster_range(&self) -> Option<(usize, usize)> {
        Some((0, self.svc.cols / self.svc.d))
    }
}

/// Token generation (§6.3) as a typed [`Service`]: each worker
/// evaluates `Enc2(hint_w · s)` over its hint shard; parts stay
/// separate (the combined-token path sums them afterwards).
struct RankToken<'a> {
    svc: &'a RankingService,
}

impl Service for RankToken<'_> {
    type Request = ExpandedSecret;
    type Part = QueryToken;
    type Response = Vec<QueryToken>;

    fn outer_span(&self) -> &'static str {
        "rank.token"
    }

    fn shard_span(&self) -> &'static str {
        "rank.token_shard"
    }

    fn num_shards(&self) -> usize {
        self.svc.shards.len()
    }

    fn serve(&self, idx: usize, es: &ExpandedSecret) -> Result<Vec<u8>, ServeError> {
        // Inside each shard the (chunk, limb) NTT multiply-accumulate
        // units fan out across threads; the token is bit-identical to
        // the sequential evaluation.
        let threads = self.svc.parallelism.num_threads;
        let shard = &self.svc.shards[idx];
        Ok(self.svc.uh.generate_token_expanded_par(&shard.server_hint, es, threads).encode())
    }

    fn parse(&self, _idx: usize, payload: &[u8]) -> Result<QueryToken, WireError> {
        QueryToken::decode(payload)
    }

    fn combine(&self, parts: Vec<Option<QueryToken>>) -> Vec<QueryToken> {
        parts.into_iter().flatten().collect()
    }
}

impl RankingService {
    /// Builds the service from batch artifacts: shards the matrix,
    /// computes each shard's SimplePIR hint, and prepares the
    /// NTT-ready limb decomposition for token generation.
    pub fn build(config: &TiptoeConfig, artifacts: &IndexArtifacts) -> Self {
        Self::from_matrix(config, &artifacts.rank_matrix)
    }

    /// Builds the service over an explicit Figure 3 matrix (used by
    /// the §9 extensions, which bring their own item corpora).
    pub fn from_matrix(config: &TiptoeConfig, matrix: &Mat<u32>) -> Self {
        let uh = Underhood::with_outer(config.rank_lwe, config.rlwe, config.switch_log_q2);
        let m = matrix.cols();
        let d = config.d_reduced;
        let a = MatrixA::new(derive_seed(config.seed, 0xA124), m, config.rank_lwe.n);
        assert!(
            uh.supports_upload_dim(m),
            "upload dimension {m} exceeds the noise budget of the ranking parameters"
        );
        crate::encrypted::record_noise_budget_gauge("ranking", &uh, m);

        let t0 = Instant::now();
        // Vertical partition on cluster boundaries: shard w covers a
        // contiguous range of clusters (multiples of d columns).
        let c = m / d;
        let w = config.num_shards.min(c.max(1));
        let mut shards = Vec::with_capacity(w);
        let clusters_per = c.div_ceil(w);
        let mut cluster = 0usize;
        while cluster < c {
            let hi = (cluster + clusters_per).min(c);
            let col_start = cluster * d;
            let col_end = hi * d;
            let plain = matrix.column_slice(col_start, col_end);
            let range = a.row_range(col_start, col_end - col_start);
            // Parallel hint computation is bit-identical to the
            // scalar kernel, so the build is deterministic regardless
            // of the thread count.
            let threads = config.parallelism.num_threads;
            let (db, hint) = if config.pack_ranking_db {
                let packed = NibbleMat::from_residues_mod_p(&plain, config.rank_lwe.p);
                let hint = scheme::preproc_packed_par::<u64>(&packed, &range, threads);
                (ShardDb::Packed(packed), hint)
            } else {
                let hint = scheme::preproc_par::<u64>(&plain, &range, threads);
                (ShardDb::Plain(plain), hint)
            };
            let server_hint = uh.preprocess_hint(&hint);
            shards.push(RankingShard { col_start, db, hint, server_hint });
            cluster = hi;
        }
        let preproc_time = t0.elapsed();

        Self {
            shards,
            uh,
            a,
            rows: matrix.rows(),
            cols: m,
            d,
            parallelism: config.parallelism,
            preproc_time,
        }
    }

    /// The parallelism knobs this service was built with.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// The composed-scheme parameters (shared with clients).
    pub fn underhood(&self) -> &Underhood {
        &self.uh
    }

    /// The public matrix clients encrypt against.
    pub fn public_matrix(&self) -> MatrixA {
        self.a
    }

    /// Scores returned per query (padded cluster size).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Upload dimension `m = d·C`.
    pub fn upload_dim(&self) -> usize {
        self.cols
    }

    /// Number of worker shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Bytes of index state held across all workers (matrix + the
    /// NTT-ready hint polys dominate).
    pub fn server_storage_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                let matrix = s.db.storage_bytes();
                let hint_polys = (s.server_hint.chunks()
                    * self.uh.limb_count() as usize
                    * s.server_hint.secret_dim()
                    * self.uh.outer().params().degree
                    * 8) as u64;
                matrix + hint_polys
            })
            .sum()
    }

    /// Incrementally indexes one new document (§3.2 "Handling updates
    /// to the corpus"): writes its quantized embedding into the padding
    /// slot `(cluster, row)`, updates the affected shard's hint by the
    /// rank-one correction `ΔH[row] = Σ_j q[j]·A[col_j]`, and refreshes
    /// only the NTT chunk containing `row` — no full re-preprocessing.
    ///
    /// Outstanding query tokens become stale (the paper: tokens "are
    /// usable until the document corpus changes").
    ///
    /// # Panics
    ///
    /// Panics if the slot is out of range, already occupied (nonzero),
    /// or `q_zp.len()` differs from the embedding dimension.
    pub fn add_document(&mut self, cluster: usize, row: usize, q_zp: &[u32]) {
        let d = q_zp.len();
        let col_lo = cluster * d;
        let col_hi = col_lo + d;
        assert!(col_hi <= self.cols, "cluster out of range");
        assert!(row < self.rows, "row out of range");
        let shard = self
            .shards
            .iter_mut()
            .find(|s| col_lo >= s.col_start && col_hi <= s.col_start + s.db.cols())
            .expect("cluster maps into exactly one shard");
        let local_lo = col_lo - shard.col_start;

        // 1. Write the matrix slot (must be padding). Packed shards do
        //    not support in-place updates in this prototype.
        match &mut shard.db {
            ShardDb::Plain(m) => {
                let slot = &mut m.row_mut(row)[local_lo..local_lo + d];
                assert!(slot.iter().all(|&x| x == 0), "slot already occupied");
                slot.copy_from_slice(q_zp);
            }
            ShardDb::Packed(_) => {
                panic!("incremental updates require plain (unpacked) shard storage")
            }
        }

        // 2. Rank-one hint correction: ΔH[row] += Σ_j q[j]·A[local_lo+j].
        let n = self.a.cols();
        let range = self.a.row_range(shard.col_start, shard.db.cols());
        let mut a_row = vec![0u64; n];
        for (j, &qj) in q_zp.iter().enumerate() {
            if qj == 0 {
                continue;
            }
            range.expand_row(local_lo + j, &mut a_row);
            for (h, &a_val) in shard.hint.row_mut(row).iter_mut().zip(a_row.iter()) {
                *h = h.wrapping_add((qj as u64).wrapping_mul(a_val));
            }
        }

        // 3. Refresh only the NTT chunk holding `row`.
        let chunk = row / self.uh.outer().params().degree;
        let polys = self.uh.hint_chunk_polys(&shard.hint, chunk);
        shard.server_hint.replace_chunk(chunk, polys);
    }

    /// Generates a (single-use) query token for a client's encrypted
    /// secret: each worker evaluates its hint shard under `Enc2`, the
    /// coordinator sums (§6.3, offline path).
    pub fn generate_token(&self, es: &EncryptedSecret) -> (QueryToken, ParallelTiming) {
        self.generate_token_expanded(&es.expand(&self.uh))
    }

    /// Token generation over a pre-expanded secret; the expansion can
    /// be shared with the URL service (§A.3's shared-key upload).
    pub fn generate_token_expanded(&self, es: &ExpandedSecret) -> (QueryToken, ParallelTiming) {
        let (parts, timing) = self.generate_token_parts_expanded(es);
        (combine_partial_tokens(&self.uh, &parts), timing)
    }

    /// Per-shard query tokens, *not* combined: clients on the
    /// fault-tolerant path keep them separate so they can decrypt over
    /// any surviving subset of shards
    /// ([`tiptoe_underhood::combine_decoded_subset`]). Costs `W×` the
    /// token download of the combined path.
    pub fn generate_token_parts_expanded(
        &self,
        es: &ExpandedSecret,
    ) -> (Vec<QueryToken>, ParallelTiming) {
        let plan = FaultPlan::none();
        let policy = FaultPolicy::default();
        let d = dispatch(&RankToken { svc: self }, es, 0, DispatchContext::new(&plan, &policy), None)
            .expect("healthy token dispatch cannot fail");
        (d.response, d.timing)
    }

    /// Batched per-shard token generation for `B` clients: every
    /// shard's hint polynomials are read from DRAM once for the whole
    /// batch (the token-path counterpart of
    /// [`RankingService::shard_answer_many`]). Returns one `Vec` of
    /// per-shard tokens (in shard order) per client, each
    /// bit-identical to that client's
    /// [`RankingService::generate_token_parts_expanded`] result; the
    /// serving plane's token lane flushes through this kernel.
    pub fn generate_token_parts_expanded_many(
        &self,
        secrets: &[&ExpandedSecret],
    ) -> Vec<Vec<QueryToken>> {
        let mut span = tiptoe_obs::span("rank.token");
        span.attr_u64("batch", secrets.len() as u64);
        let threads = self.parallelism.num_threads;
        // [shard][client] — each shard evaluated once over the batch.
        let per_shard: Vec<Vec<QueryToken>> = self
            .shards
            .iter()
            .map(|shard| {
                let mut s = tiptoe_obs::span("rank.token_shard");
                s.attr_u64("batch", secrets.len() as u64);
                self.uh.generate_token_expanded_many(&shard.server_hint, secrets, threads)
            })
            .collect();
        // Transpose to [client][shard] for the per-client bundles.
        let mut iters: Vec<_> = per_shard.into_iter().map(|v| v.into_iter()).collect();
        (0..secrets.len())
            .map(|_| iters.iter_mut().map(|it| it.next().expect("client count")).collect())
            .collect()
    }

    /// The column range `[start, end)` served by shard `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn shard_columns(&self, idx: usize) -> (usize, usize) {
        let s = &self.shards[idx];
        (s.col_start, s.col_start + s.db.cols())
    }

    /// The cluster range `[start, end)` served by shard `idx` (shards
    /// partition on cluster boundaries, so this is exact).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn shard_clusters(&self, idx: usize) -> (usize, usize) {
        let (lo, hi) = self.shard_columns(idx);
        (lo / self.d, hi / self.d)
    }

    /// One worker's partial product `M_w · ct_w` (the §4.3 per-machine
    /// step, exposed for the message-passing cluster runtime).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or the chunk width differs from
    /// the shard's column count.
    pub fn shard_answer(&self, idx: usize, chunk: &[u64]) -> Vec<u64> {
        let shard = &self.shards[idx];
        assert_eq!(chunk.len(), shard.db.cols(), "chunk width mismatch");
        let ct = LweCiphertext { c: chunk.to_vec() };
        shard.db.apply(&ct)
    }

    /// Batched form of [`RankingService::shard_answer`]: answers `B`
    /// ciphertext chunks in one pass over the shard's matrix, so a
    /// database row is read from DRAM once for the whole batch. Each
    /// answer is bit-identical to the per-ciphertext path.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or any chunk width differs from
    /// the shard's column count.
    pub fn shard_answer_many(&self, idx: usize, chunks: &[Vec<u64>]) -> Vec<Vec<u64>> {
        let shard = &self.shards[idx];
        let cts: Vec<LweCiphertext<u64>> = chunks
            .iter()
            .map(|chunk| {
                assert_eq!(chunk.len(), shard.db.cols(), "chunk width mismatch");
                LweCiphertext { c: chunk.clone() }
            })
            .collect();
        shard.db.apply_many(&cts, self.parallelism.num_threads)
    }

    /// Answers an online ranking query: workers compute their partial
    /// matrix-vector products, the coordinator sums.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext dimension differs from `d·C`.
    pub fn answer(&self, ct: &LweCiphertext<u64>) -> (Vec<u64>, ParallelTiming) {
        self.answer_via(ct, None)
    }

    /// [`RankingService::answer`], optionally routing each shard's
    /// compute through the serving plane's coalescing lanes so
    /// concurrent queries share database scans. Coalesced answers are
    /// bit-identical to direct ones.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext dimension differs from `d·C`.
    pub fn answer_via(
        &self,
        ct: &LweCiphertext<u64>,
        via: Option<&ServingPlane<'_>>,
    ) -> (Vec<u64>, ParallelTiming) {
        let d = self.dispatch_answer(ct, &FaultPlan::none(), &FaultPolicy::default(), None, via);
        (d.response, d.timing)
    }

    /// Dispatches an online ranking query through the typed service
    /// plane ([`tiptoe_net::dispatch`]): transcript accounting via
    /// `ledger`, fault handling under `plan`/`policy` (healthy fan-out
    /// when the policy is disabled), and optional batch coalescing via
    /// the serving plane — one engine for every serving mode.
    ///
    /// With a benign plan every shard answers on the first attempt and
    /// the response equals [`RankingService::answer`] exactly; shards
    /// that never deliver contribute zero to the sum (see
    /// [`RankingService::missing_clusters`]).
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext dimension differs from `d·C` or an
    /// enabled policy is invalid.
    pub fn dispatch_answer(
        &self,
        ct: &LweCiphertext<u64>,
        plan: &FaultPlan,
        policy: &FaultPolicy,
        ledger: Option<&Ledger<'_>>,
        via: Option<&ServingPlane<'_>>,
    ) -> Dispatched<Vec<u64>> {
        self.try_dispatch_answer(ct, plan, policy, ledger, via, None)
            .expect("unbudgeted dispatch cannot fail on a valid policy")
    }

    /// [`RankingService::dispatch_answer`] under the overload-safety
    /// layers: the query's deadline `budget` is checked before the
    /// fan-out and charged with its wall time, and the serving plane's
    /// circuit breakers (if enabled) gate per-shard traffic on the
    /// fault-aware path. Without a budget this cannot fail on a valid
    /// policy — breakers alone only degrade the combine.
    ///
    /// # Errors
    ///
    /// [`ServeError::DeadlineExceeded`] when the budget runs out,
    /// [`ServeError::LaneFailed`] on a permanently crashed coalescer
    /// lane, [`ServeError::InvalidPolicy`] on an invalid enabled
    /// policy.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext dimension differs from `d·C`.
    pub fn try_dispatch_answer(
        &self,
        ct: &LweCiphertext<u64>,
        plan: &FaultPlan,
        policy: &FaultPolicy,
        ledger: Option<&Ledger<'_>>,
        via: Option<&ServingPlane<'_>>,
        budget: Option<&DeadlineBudget>,
    ) -> Result<Dispatched<Vec<u64>>, ServeError> {
        assert_eq!(ct.c.len(), self.cols, "ciphertext dimension mismatch");
        let ctx = DispatchContext::new(plan, policy)
            .with_budget(budget)
            .with_breakers(via.and_then(|p| p.breakers()));
        dispatch(&RankAnswer { svc: self, via, budget }, ct, 0, ctx, ledger)
    }

    /// Cluster indices lost with the failed shards of a dispatch:
    /// `survivors[w] == false` means shard `w`'s cluster range is
    /// unavailable this query.
    pub fn missing_clusters(&self, survivors: &[bool]) -> Vec<usize> {
        survivors
            .iter()
            .enumerate()
            .filter(|(_, ok)| !**ok)
            .flat_map(|(w, _)| {
                let (lo, hi) = self.shard_clusters(w);
                lo..hi
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use tiptoe_corpus::synth::{generate, CorpusConfig};
    use tiptoe_embed::text::TextEmbedder;
    use tiptoe_math::rng::seeded_rng;
    use tiptoe_underhood::ClientKey;

    use crate::batch::run_batch_jobs;

    fn setup() -> (TiptoeConfig, IndexArtifacts, RankingService) {
        let corpus = generate(&CorpusConfig::small(200, 9), 0);
        let config = TiptoeConfig::test_small(200, 9);
        let embedder = TextEmbedder::new(config.d_embed, 9, 0);
        let artifacts = run_batch_jobs(&config, &embedder, &corpus);
        let service = RankingService::build(&config, &artifacts);
        (config, artifacts, service)
    }

    #[test]
    fn private_scores_match_plaintext_inner_products() {
        let (config, artifacts, service) = setup();
        let mut rng = seeded_rng(31);
        let uh = service.underhood();
        let key = ClientKey::generate(uh, config.rank_lwe.n, &mut rng);
        let es = EncryptedSecret::encrypt(uh, &key, &mut rng);
        let (token, _) = service.generate_token(&es);
        let mut decoded = uh.decode_token::<u64>(&key, &token);

        // Query for cluster i*: random quantized embedding vector.
        let quant = config.quantizer();
        let target = artifacts.clustering.num_clusters() / 2;
        let d = config.d_reduced;
        let mut qvec: Vec<f32> = (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        tiptoe_embed::vector::normalize(&mut qvec);
        let q_zp = quant.to_zp(&qvec);
        let mut v = vec![0u64; service.upload_dim()];
        for (j, &x) in q_zp.iter().enumerate() {
            v[target * d + j] = x as u64;
        }
        let ct = uh.encrypt_query::<u64, _>(&key, &service.public_matrix(), &v, &mut rng);
        let (applied, _) = service.answer(&ct);
        let scores = uh.decrypt(&mut decoded, &applied);

        // Reference: quantized inner products with the cluster members.
        let members = &artifacts.clustering.members[target];
        for ((row, &doc), &score) in members.iter().enumerate().zip(scores.iter()) {
            let doc_zp = quant.to_zp(&artifacts.reduced_embeddings[doc as usize]);
            let want = quant.quantized_dot(&doc_zp, &q_zp);
            let got = quant.encoder().decode_signed(score);
            assert_eq!(got, want, "row {row} (doc {doc})");
        }
        // Padding rows decode to zero.
        for (row, &score) in scores.iter().enumerate().skip(members.len()) {
            assert_eq!(quant.encoder().decode_signed(score), 0, "padding row {row}");
        }
    }

    #[test]
    fn packed_storage_answers_identically_and_saves_memory() {
        let corpus = generate(&CorpusConfig::small(180, 10), 0);
        let mut config = TiptoeConfig::test_small(180, 10);
        let embedder = TextEmbedder::new(config.d_embed, 10, 0);
        let artifacts = run_batch_jobs(&config, &embedder, &corpus);
        let plain = RankingService::build(&config, &artifacts);
        config.pack_ranking_db = true;
        config.validate();
        let packed = RankingService::build(&config, &artifacts);

        let mut rng = seeded_rng(41);
        let uh = plain.underhood();
        let key = ClientKey::generate(uh, config.rank_lwe.n, &mut rng);
        for _ in 0..2 {
            let v: Vec<u64> =
                (0..plain.upload_dim()).map(|_| rng.gen_range(0..config.rank_lwe.p)).collect();
            let ct = uh.encrypt_query::<u64, _>(&key, &plain.public_matrix(), &v, &mut rng);
            // Decrypted results must agree exactly (both reduce mod p).
            let es = EncryptedSecret::encrypt(uh, &key, &mut rng);
            let (t1, _) = plain.generate_token(&es);
            let (t2, _) = packed.generate_token(&es);
            let mut d1 = uh.decode_token::<u64>(&key, &t1);
            let mut d2 = uh.decode_token::<u64>(&key, &t2);
            let (a1, _) = plain.answer(&ct);
            let (a2, _) = packed.answer(&ct);
            assert_eq!(uh.decrypt(&mut d1, &a1), uh.decrypt(&mut d2, &a2));
        }
        assert!(
            packed.server_storage_bytes() < plain.server_storage_bytes(),
            "packing must shrink server state: {} vs {}",
            packed.server_storage_bytes(),
            plain.server_storage_bytes()
        );
    }

    #[test]
    fn sharding_covers_all_columns_exactly_once() {
        let (_, artifacts, service) = setup();
        assert!(service.num_shards() >= 2);
        let total_cols: usize = service.shards.iter().map(|s| s.db.cols()).sum();
        assert_eq!(total_cols, artifacts.rank_matrix.cols());
        let mut expected_start = 0;
        for s in &service.shards {
            assert_eq!(s.col_start, expected_start);
            expected_start += s.db.cols();
        }
    }

    #[test]
    fn answer_rejects_wrong_dimension() {
        let (_, _, service) = setup();
        let ct = LweCiphertext { c: vec![0u64; service.upload_dim() + 1] };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| service.answer(&ct)));
        assert!(result.is_err());
    }

    #[test]
    fn storage_accounting_is_positive() {
        let (_, _, service) = setup();
        assert!(service.server_storage_bytes() > 0);
        assert!(service.preproc_time > Duration::ZERO);
    }
}
