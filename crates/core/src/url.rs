//! Tiptoe's URL service (paper §5): private retrieval of one
//! compressed, content-grouped URL batch via SimplePIR.

use std::time::Duration;

use tiptoe_lwe::{LweCiphertext, MatrixA};
use tiptoe_math::rng::derive_seed;
use tiptoe_math::wire::{WireError, WireReader, WireWriter};
use tiptoe_net::{
    dispatch, timed, DeadlineBudget, DispatchContext, Dispatched, FaultPlan, FaultPolicy, Ledger,
    ParallelTiming, ServeError, Service,
};
use tiptoe_pir::{PirDatabase, PirServer};
use tiptoe_underhood::{EncryptedSecret, ExpandedSecret, QueryToken, Underhood};

use crate::batch::IndexArtifacts;
use crate::config::TiptoeConfig;
use crate::serving::ServingPlane;

/// The URL retrieval as a typed [`Service`]: a single "shard" (the
/// PIR server) answers the query ciphertext, optionally through the
/// serving plane's coalescing lane.
struct UrlAnswer<'a> {
    svc: &'a UrlService,
    via: Option<&'a ServingPlane<'a>>,
    /// The query's deadline budget, when admission control issued one
    /// (see [`crate::ranking`]'s `RankAnswer`).
    budget: Option<&'a DeadlineBudget>,
}

impl Service for UrlAnswer<'_> {
    type Request = LweCiphertext<u32>;
    type Part = Vec<u32>;
    type Response = Option<Vec<u32>>;

    fn outer_span(&self) -> &'static str {
        "url.answer"
    }

    fn shard_span(&self) -> &'static str {
        "url.shard"
    }

    fn num_shards(&self) -> usize {
        1
    }

    fn serve(&self, _idx: usize, ct: &LweCiphertext<u32>) -> Result<Vec<u8>, ServeError> {
        let answer = match (self.via, self.budget) {
            (Some(plane), Some(b)) => plane.url_answer_within(ct.clone(), b.check()?)?,
            (Some(plane), None) => plane.url_answer(ct.clone()),
            (None, _) => self.svc.server.answer(ct),
        };
        let mut w = WireWriter::new();
        w.put_u32_slice(&answer);
        Ok(w.finish())
    }

    fn parse(&self, _idx: usize, payload: &[u8]) -> Result<Vec<u32>, WireError> {
        let mut r = WireReader::new(payload);
        let answer = r.get_u32_slice()?;
        r.finish()?;
        if answer.len() != self.svc.server.database().rows() {
            return Err(WireError::Invalid("PIR answer has the wrong row count"));
        }
        Ok(answer)
    }

    fn combine(&self, mut parts: Vec<Option<Vec<u32>>>) -> Option<Vec<u32>> {
        parts.pop().flatten()
    }
}

/// The URL service: a PIR server over the compressed URL batches.
pub struct UrlService {
    server: PirServer,
    /// Wall-clock spent in cryptographic preprocessing at build time.
    pub preproc_time: Duration,
}

impl UrlService {
    /// Builds the service from batch artifacts.
    ///
    /// # Panics
    ///
    /// Panics if there are no URL batches.
    pub fn build(config: &TiptoeConfig, artifacts: &IndexArtifacts) -> Self {
        let records: Vec<Vec<u8>> =
            artifacts.url_batches.iter().map(|b| b.compressed.clone()).collect();
        let db = PirDatabase::build_with_params(&records, config.url_lwe);
        let uh = Underhood::with_outer(config.url_lwe, config.rlwe, config.switch_log_q2);
        let (server, preproc_time) =
            timed(|| PirServer::new(db, derive_seed(config.seed, 0xB161), uh));
        Self { server, preproc_time }
    }

    /// The composed-scheme parameters (shared with clients).
    pub fn underhood(&self) -> &Underhood {
        self.server.underhood()
    }

    /// The public matrix clients encrypt against.
    pub fn public_matrix(&self) -> MatrixA {
        self.server.public_matrix()
    }

    /// The PIR database metadata (record size and count).
    pub fn database(&self) -> &PirDatabase {
        self.server.database()
    }

    /// Generates a (single-use) URL-retrieval token.
    pub fn generate_token(&self, es: &EncryptedSecret) -> (QueryToken, ParallelTiming) {
        let (token, wall) = timed(|| self.server.generate_token(es));
        (token, ParallelTiming { wall, cpu: wall })
    }

    /// Token generation over a pre-expanded secret.
    pub fn generate_token_expanded(&self, es: &ExpandedSecret) -> (QueryToken, ParallelTiming) {
        let (token, wall) = timed(|| self.server.generate_token_expanded(es));
        (token, ParallelTiming { wall, cpu: wall })
    }

    /// Batched token generation for `B` clients in one pass over the
    /// hint polynomials (each bit-identical to
    /// [`UrlService::generate_token_expanded`] for that client); the
    /// serving plane's token lane flushes through this kernel.
    pub fn generate_token_expanded_many(
        &self,
        secrets: &[&ExpandedSecret],
        num_threads: usize,
    ) -> Vec<QueryToken> {
        self.server.generate_token_expanded_many(secrets, num_threads)
    }

    /// Answers an online PIR query.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext dimension differs from the record
    /// count.
    pub fn answer(&self, ct: &LweCiphertext<u32>) -> (Vec<u32>, ParallelTiming) {
        let d = self.dispatch_answer(ct, 0, &FaultPlan::none(), &FaultPolicy::default(), None, None);
        (d.response.expect("healthy dispatch always answers"), d.timing)
    }

    /// Answers a batch of PIR queries in one pass over the database
    /// (bit-identical to per-query [`UrlService::answer`]); the
    /// serving plane's coalescing lane flushes through this kernel.
    pub fn answer_many(&self, cts: &[LweCiphertext<u32>], num_threads: usize) -> Vec<Vec<u32>> {
        self.server.answer_many(cts, num_threads)
    }

    /// Dispatches an online PIR query through the typed service plane
    /// ([`tiptoe_net::dispatch`]): transcript accounting via `ledger`,
    /// fault handling under `plan`/`policy` (the server is addressed
    /// as shard `shard_base` so ranking and URL share one plan), and
    /// optional batch coalescing via the serving plane. The response
    /// is `None` if the server never delivers a verified answer within
    /// the deadline (impossible when the policy is disabled).
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext dimension differs from the record
    /// count or an enabled policy is invalid.
    pub fn dispatch_answer(
        &self,
        ct: &LweCiphertext<u32>,
        shard_base: usize,
        plan: &FaultPlan,
        policy: &FaultPolicy,
        ledger: Option<&Ledger<'_>>,
        via: Option<&ServingPlane<'_>>,
    ) -> Dispatched<Option<Vec<u32>>> {
        self.try_dispatch_answer(ct, shard_base, plan, policy, ledger, via, None)
            .expect("unbudgeted dispatch cannot fail on a valid policy")
    }

    /// [`UrlService::dispatch_answer`] under the overload-safety
    /// layers (deadline `budget` plus the serving plane's circuit
    /// breakers — the URL server owns breaker `shard_base`).
    ///
    /// # Errors
    ///
    /// [`ServeError::DeadlineExceeded`] when the budget runs out,
    /// [`ServeError::LaneFailed`] on a permanently crashed coalescer
    /// lane, [`ServeError::InvalidPolicy`] on an invalid enabled
    /// policy.
    #[allow(clippy::too_many_arguments)]
    pub fn try_dispatch_answer(
        &self,
        ct: &LweCiphertext<u32>,
        shard_base: usize,
        plan: &FaultPlan,
        policy: &FaultPolicy,
        ledger: Option<&Ledger<'_>>,
        via: Option<&ServingPlane<'_>>,
        budget: Option<&DeadlineBudget>,
    ) -> Result<Dispatched<Option<Vec<u32>>>, ServeError> {
        let ctx = DispatchContext::new(plan, policy)
            .with_budget(budget)
            .with_breakers(via.and_then(|p| p.breakers()));
        dispatch(&UrlAnswer { svc: self, via, budget }, ct, shard_base, ctx, ledger)
    }

    /// Server-side storage.
    pub fn storage_bytes(&self) -> u64 {
        self.server.database().storage_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiptoe_corpus::synth::{generate, CorpusConfig};
    use tiptoe_embed::text::TextEmbedder;
    use tiptoe_math::rng::seeded_rng;
    use tiptoe_pir::PirClient;
    use tiptoe_underhood::ClientKey;

    use crate::batch::run_batch_jobs;

    #[test]
    fn retrieves_the_batch_for_a_ranked_document() {
        let corpus = generate(&CorpusConfig::small(150, 13), 0);
        let config = TiptoeConfig::test_small(150, 13);
        let embedder = TextEmbedder::new(config.d_embed, 13, 0);
        let artifacts = run_batch_jobs(&config, &embedder, &corpus);
        let service = UrlService::build(&config, &artifacts);
        let mut rng = seeded_rng(77);

        let uh = service.underhood();
        let key = ClientKey::generate(uh, config.url_lwe.n, &mut rng);
        let es = EncryptedSecret::encrypt(uh, &key, &mut rng);
        let client = PirClient::new(uh, &key);

        // Pretend ranking returned row 0 of cluster 0.
        let cluster = 0usize;
        let row = 0usize;
        let batch_idx = artifacts.meta.batch_of(cluster, row);

        let (token, _) = service.generate_token(&es);
        let mut decoded = client.decode_token(&token);
        let ct = client.query(
            &service.public_matrix(),
            service.database().num_records(),
            batch_idx,
            &mut rng,
        );
        let (answer, _) = service.answer(&ct);
        let record =
            client.recover(service.database(), &mut decoded, &answer).expect("full answer");

        // The recovered (padded) record starts with the stored batch.
        let want = &artifacts.url_batches[batch_idx].compressed;
        assert_eq!(&record[..want.len()], &want[..]);

        // And it decodes to the right URLs.
        let doc = artifacts.clustering.members[cluster][row];
        let decoded_urls = artifacts.url_batches[batch_idx].decode().expect("decodes");
        assert!(decoded_urls
            .iter()
            .any(|(d, u)| *d == doc && *u == corpus.docs[doc as usize].url));
    }
}
